// Command mntlint runs the project-invariant static-analysis suite of
// internal/lint over the module and exits non-zero on findings. It is
// part of the tier-1+ gate: `make lint` (folded into `make check`) and
// CI both run it.
//
// Usage:
//
//	mntlint [-root dir] [-disable a,b] [-json] [-sarif] [-fix] [-list]
//
// Findings print one per line as file:line:col: message (analyzer), as
// a JSON array with -json, or as a SARIF 2.1.0 log with -sarif (for CI
// annotation upload). -fix applies every suggested fix to disk, then
// reports what is left. Exit status: 0 clean, 1 findings, 2 usage or
// load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mntlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module directory to lint")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	fix := fs.Bool("fix", false, "apply suggested fixes to disk, then report what remains")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "mntlint: -json and -sarif are mutually exclusive")
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := make(map[string]bool, len(all))
	var active []*lint.Analyzer
	for _, a := range all {
		known[a.Name] = true
		if !disabled[a.Name] {
			active = append(active, a)
		}
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(stderr, "mntlint: unknown analyzer %q (see -list)\n", name)
			return 2
		}
	}

	// Normalize the root so diagnostics and fix targets are independent
	// of how the caller spelled the path (., ./, ../repo/.).
	absRoot, err := filepath.Abs(filepath.Clean(*root))
	if err != nil {
		fmt.Fprintf(stderr, "mntlint: %v\n", err)
		return 2
	}

	pkgs, err := lint.Load(absRoot)
	if err != nil {
		fmt.Fprintf(stderr, "mntlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, active)

	if *fix {
		changed, err := lint.ApplyFixes(absRoot, pkgs, diags)
		if err != nil {
			fmt.Fprintf(stderr, "mntlint: %v\n", err)
			return 2
		}
		for _, path := range changed {
			fmt.Fprintf(stdout, "fixed %s\n", path)
		}
		if len(changed) > 0 {
			// Reload and re-run: applied fixes resolve their findings and
			// the remainder is reported against the rewritten sources.
			pkgs, err = lint.Load(absRoot)
			if err != nil {
				fmt.Fprintf(stderr, "mntlint: %v\n", err)
				return 2
			}
			diags = lint.Run(pkgs, active)
		}
	}

	switch {
	case *jsonOut:
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := encodeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "mntlint: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := encodeJSON(stdout, lint.ToSARIF(diags, all)); err != nil {
			fmt.Fprintf(stderr, "mntlint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mntlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
