// Command mntlint runs the project-invariant static-analysis suite of
// internal/lint over the module and exits non-zero on findings. It is
// part of the tier-1+ gate: `make lint` (folded into `make check`) and
// CI both run it.
//
// Usage:
//
//	mntlint [-root dir] [-disable a,b] [-json] [-list]
//
// Findings print one per line as file:line:col: message (analyzer), or
// as a JSON array with -json. Exit status: 0 clean, 1 findings, 2 usage
// or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mntlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module directory to lint")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := make(map[string]bool, len(all))
	var active []*lint.Analyzer
	for _, a := range all {
		known[a.Name] = true
		if !disabled[a.Name] {
			active = append(active, a)
		}
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(stderr, "mntlint: unknown analyzer %q (see -list)\n", name)
			return 2
		}
	}

	pkgs, err := lint.Load(*root)
	if err != nil {
		fmt.Fprintf(stderr, "mntlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, active)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "mntlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mntlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
