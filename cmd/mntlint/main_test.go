package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const panicbanFixture = "../../internal/lint/testdata/src/panicban"

func TestFindingsExitNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", panicbanFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "panicban") {
		t.Errorf("output lacks analyzer name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "internal/lib/lib.go:") {
		t.Errorf("output lacks file:line positions:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", panicbanFixture, "-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Position struct {
			Filename string `json:"Filename"`
			Line     int    `json:"Line"`
		} `json:"position"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output has no findings")
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.Position.Filename == "" || d.Position.Line <= 0 || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

func TestDisableAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", panicbanFixture, "-disable", "panicban"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 with panicban disabled; out: %s", code, out.String())
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Errorf("expected no output, got:\n%s", out.String())
	}
}

func TestDisableUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown analyzer", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr lacks explanation: %s", errb.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	want := []string{
		"ctxfirst", "errcmp", "obslabel", "printban", "panicban", "seedarg",
		"lockbalance", "ctxloop", "goroleak", "hotalloc", "atomicmix",
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(want) {
		t.Errorf("-list printed %d analyzers, want %d:\n%s", len(lines), len(want), out.String())
	}
	for i, name := range want {
		if i < len(lines) && !strings.HasPrefix(lines[i], name) {
			t.Errorf("-list line %d = %q, want analyzer %s", i, lines[i], name)
		}
	}
}

func TestRootNormalization(t *testing.T) {
	// The same tree addressed through ./, a trailing slash-dot, and a
	// parent-hop must yield byte-identical -json output.
	variants := []string{
		panicbanFixture,
		"./" + panicbanFixture,
		panicbanFixture + "/.",
		"../../internal/perf/../lint/testdata/src/panicban",
	}
	var first string
	for _, root := range variants {
		var out, errb bytes.Buffer
		if code := run([]string{"-root", root, "-json"}, &out, &errb); code != 1 {
			t.Fatalf("root %q: exit code = %d, want 1; stderr: %s", root, code, errb.String())
		}
		if first == "" {
			first = out.String()
			continue
		}
		if out.String() != first {
			t.Errorf("root %q output differs:\n%s\n-- vs --\n%s", root, out.String(), first)
		}
	}
}

func TestSARIFOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-root", panicbanFixture, "-sarif"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "mntlint" {
		t.Errorf("malformed SARIF envelope: version=%q runs=%d", doc.Version, len(doc.Runs))
	}
	if len(doc.Runs[0].Results) == 0 {
		t.Error("SARIF output has no results for a failing fixture")
	}
}

func TestJSONAndSARIFExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 for -json -sarif", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("stderr lacks explanation: %s", errb.String())
	}
}

func TestFixFlag(t *testing.T) {
	// Copy the fix fixture to a temp tree, run -fix, and expect exit 0
	// with the comparison rewritten on disk.
	src := "../../internal/lint/testdata/fix/errcmp"
	root := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(path, ".golden") {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{"-root", root, "-fix"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 after fixes; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "fixed internal/lib/lib.go") {
		t.Errorf("stdout lacks fixed-file report:\n%s", out.String())
	}
	fixed, err := os.ReadFile(filepath.Join(root, "internal", "lib", "lib.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "errors.Is(err, ErrClosed)") {
		t.Errorf("-fix did not rewrite the comparison:\n%s", fixed)
	}
}
