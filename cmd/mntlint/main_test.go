package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const panicbanFixture = "../../internal/lint/testdata/src/panicban"

func TestFindingsExitNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", panicbanFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "panicban") {
		t.Errorf("output lacks analyzer name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "internal/lib/lib.go:") {
		t.Errorf("output lacks file:line positions:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", panicbanFixture, "-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Position struct {
			Filename string `json:"Filename"`
			Line     int    `json:"Line"`
		} `json:"position"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output has no findings")
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.Position.Filename == "" || d.Position.Line <= 0 || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

func TestDisableAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", panicbanFixture, "-disable", "panicban"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 with panicban disabled; out: %s", code, out.String())
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Errorf("expected no output, got:\n%s", out.String())
	}
}

func TestDisableUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown analyzer", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr lacks explanation: %s", errb.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"ctxfirst", "errcmp", "obslabel", "printban", "panicban"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks %s:\n%s", name, out.String())
		}
	}
}
