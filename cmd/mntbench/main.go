// Command mntbench is the MNT Bench reproduction tool: it generates FCN
// gate-level layouts for the benchmark suites across all tool
// combinations, regenerates the paper's Table I, serves the web
// interface, and converts between Verilog networks and .fgl layouts.
//
// Usage:
//
//	mntbench list
//	mntbench table    [-lib qcaone|bestagon] [-set NAME] [-full] [-workers N] [-out FILE] [-trace FILE.json] [-journal FILE.jsonl]
//	mntbench generate [-lib ...] [-set ...] [-workers N] [-dir DIR] [-trace FILE.json] [-journal FILE.jsonl]
//	mntbench serve    [-addr :8080] [-set ...] [-traces] [-store DIR]
//	mntbench import   -store DIR [-campaign NAME] [-skip-drc] SRCDIR...
//	mntbench loadtest [-n 5000] [-c 256] [-p99 250ms] [-set NAME]
//	mntbench layout   [-in FILE.v] [-algo ortho|exact|nanoplacer] [-lib ...] [-plo] [-inord] [-out FILE.fgl]
//	mntbench convert  [-in FILE.fgl] [-out FILE.v]
//	mntbench verify   [-layout FILE.fgl] [-net FILE.v]
//	mntbench perfsnap [-benchtime 1s] [-experiments LIST] [-profile-dir DIR] [-out FILE]
//	mntbench perfdiff [-threshold metric=rel,...] OLD.json NEW.json
//	mntbench selftest [-seed N] [-n N] [-workers N] [-flows LIST] [-json] [-repro-dir DIR] [-replay FILE]
//	mntbench tail     [-follow] [-poll 500ms] FILE.jsonl
//	mntbench journal  summary|verify|jobs [-dir DIR] [-done|-ok|-unfinished] FILE.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/fgl"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/loadtest"
	"repro/internal/server/registry"
	"repro/internal/verify"
	"repro/internal/verilog"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "table":
		err = cmdTable(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(os.Args[2:])
	case "layout":
		err = cmdLayout(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "cells":
		err = cmdCells(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "draw":
		err = cmdDraw(os.Args[2:])
	case "tracecheck":
		err = cmdTraceCheck(os.Args[2:])
	case "perfsnap":
		err = cmdPerfSnap(os.Args[2:])
	case "perfdiff":
		err = cmdPerfDiff(os.Args[2:])
	case "selftest":
		err = cmdSelftest(os.Args[2:])
	case "tail":
		err = cmdTail(os.Args[2:])
	case "journal":
		err = cmdJournal(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mntbench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mntbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mntbench — MNT Bench (DATE 2024) reproduction

commands:
  list       list the benchmark suites and functions
  table      regenerate the paper's Table I for one gate library
  generate   generate layouts for all tool combinations into a directory
  serve      run the MNT Bench web interface
  import     bulk-import generated layout directories into a registry store
  loadtest   hammer the registry API in-process and assert its p99 latency
  layout     run one physical design flow on a Verilog file
  convert    convert a .fgl layout back to structural Verilog
  verify     check a .fgl layout against a .v network
  stats      timing, energy, and DRC analysis of a .fgl layout
  cells      expand a .fgl layout to QCADesigner (.qca) / SiQAD (.sqd) cells
  simulate   bistable QCA cell simulation of a .fgl layout
  draw       render a .fgl layout as ASCII art or SVG
  tracecheck validate a -trace Chrome trace-event file
  perfsnap   run the E1-E7 experiment suite and write a BENCH_<n>.json snapshot
  perfdiff   compare two snapshots; exits nonzero on performance regression
  selftest   property-based conformance harness over every registered flow
  tail       render a campaign journal as live progress lines (-follow to watch)
  journal    summarize, verify, or list jobs of a campaign journal`)
}

// selectBenches picks benchmarks by set/name and a size cap.
func selectBenches(set, name string, full bool) ([]bench.Benchmark, error) {
	var out []bench.Benchmark
	for _, b := range bench.All() {
		if set != "" && !strings.EqualFold(b.Set, set) {
			continue
		}
		if name != "" && !strings.EqualFold(b.Name, name) {
			continue
		}
		if !full && b.PubNodes > 5000 {
			continue // the giant EPFL/ISCAS circuits need -full
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmarks match set=%q name=%q", set, name)
	}
	return out, nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-11s %-14s %9s %7s  %s\n", "SET", "NAME", "I/O", "N", "ORIGIN")
	for _, b := range bench.All() {
		fmt.Printf("%-11s %-14s %4d/%-4d %7d  %s\n", b.Set, b.Name, b.PubIn, b.PubOut, b.PubNodes, b.Origin)
	}
	return nil
}

func limitsFromFlags(exactSec, nanoSec, ploSec int) core.Limits {
	return core.Limits{
		ExactTimeout: time.Duration(exactSec) * time.Second,
		NanoTimeout:  time.Duration(nanoSec) * time.Second,
		PLOTimeout:   time.Duration(ploSec) * time.Second,
	}
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	lib := fs.String("lib", "qcaone", "gate library: qcaone or bestagon")
	set := fs.String("set", "", "restrict to one benchmark set")
	name := fs.String("name", "", "restrict to one function")
	full := fs.Bool("full", false, "include the largest ISCAS85/EPFL circuits")
	out := fs.String("out", "", "also write the table to this file")
	exactSec := fs.Int("exact-timeout", 3, "exact search budget per function (seconds)")
	nanoSec := fs.Int("nano-timeout", 5, "NanoPlaceR budget per function (seconds)")
	ploSec := fs.Int("plo-timeout", 20, "post-layout optimization budget (seconds)")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = all CPU cores)")
	quiet := fs.Bool("q", false, "suppress progress output")
	traceFile := fs.String("trace", "", "write the campaign timeline as Chrome trace-event JSON to this file")
	journalFile := fs.String("journal", "", "append campaign lifecycle events to this JSONL journal file")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	library, err := gatelib.ByName(*lib)
	if err != nil {
		return err
	}
	benches, err := selectBenches(*set, *name, *full)
	if err != nil {
		return err
	}
	journal, err := openJournalFlag(*journalFile)
	if err != nil {
		return err
	}
	defer journal.Close()
	traces := campaignTraces(*traceFile)
	ctx, ready, err := of.activate(context.Background(), traces, journal)
	if err != nil {
		return err
	}
	ready.Ready()
	progress := func(p core.Progress) { fmt.Fprintln(os.Stderr, p.String()) }
	if *quiet {
		progress = nil
	}
	limits := limitsFromFlags(*exactSec, *nanoSec, *ploSec)
	limits.DiscardLayouts = true
	limits.Workers = *workers
	db := core.Generate(ctx, benches, library, limits, progress)
	if s := db.SkippedSummary(); s != "" {
		fmt.Fprintln(os.Stderr, s)
	}
	text := core.RenderTableI(db.TableI(benches, library), library)
	fmt.Print(text)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			return err
		}
	}
	if *traceFile != "" {
		if err := writeTraceFile(traces, *traceFile); err != nil {
			return err
		}
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	lib := fs.String("lib", "", "gate library (empty = both)")
	set := fs.String("set", "", "restrict to one benchmark set")
	name := fs.String("name", "", "restrict to one function")
	full := fs.Bool("full", false, "include the largest circuits")
	dir := fs.String("dir", "mntbench-out", "output directory")
	exactSec := fs.Int("exact-timeout", 3, "exact search budget (seconds)")
	nanoSec := fs.Int("nano-timeout", 5, "NanoPlaceR budget (seconds)")
	ploSec := fs.Int("plo-timeout", 20, "PLO budget (seconds)")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = all CPU cores)")
	quiet := fs.Bool("q", false, "suppress progress output")
	traceFile := fs.String("trace", "", "write the campaign timeline as Chrome trace-event JSON to this file")
	journalFile := fs.String("journal", "", "append campaign lifecycle events to this JSONL journal file")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := selectBenches(*set, *name, *full)
	if err != nil {
		return err
	}
	libs := gatelib.All()
	if *lib != "" {
		l, err := gatelib.ByName(*lib)
		if err != nil {
			return err
		}
		libs = []*gatelib.Library{l}
	}
	journal, err := openJournalFlag(*journalFile)
	if err != nil {
		return err
	}
	defer journal.Close()
	traces := campaignTraces(*traceFile)
	ctx, ready, err := of.activate(context.Background(), traces, journal)
	if err != nil {
		return err
	}
	ready.Ready()
	// Ctrl-C stops the campaign at the next stage boundary; the layouts
	// finished so far are still written and the summaries still print.
	// Campaign-boundary journal events fsync, so even a second, harder
	// interrupt loses at most the last flush interval of job events.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	progress := func(p core.Progress) { fmt.Fprintln(os.Stderr, p.String()) }
	if *quiet {
		progress = nil
	}
	limits := limitsFromFlags(*exactSec, *nanoSec, *ploSec)
	limits.Workers = *workers
	written := 0
	skipped := &core.Database{}
	exported := &core.Database{}
	for _, library := range libs {
		db := core.Generate(ctx, benches, library, limits, progress)
		skipped.Failures = append(skipped.Failures, db.Failures...)
		w, err := core.SaveDatabase(db, *dir)
		written += w
		if err != nil {
			return err
		}
		exported.Entries = append(exported.Entries, db.Entries...)
	}
	// The manifest spans every library written into the directory; it is
	// what `mntbench import` verifies blobs against.
	if len(exported.Entries) > 0 && !limits.DiscardLayouts {
		if err := core.WriteManifest(exported, *dir); err != nil {
			return err
		}
	}
	if s := skipped.SkippedSummary(); s != "" {
		fmt.Fprintln(os.Stderr, s)
	}
	if s := stageSummary(obs.Default()); s != "" {
		fmt.Fprint(os.Stderr, s)
	}
	if s := slowestSummary(traces, 10); s != "" {
		fmt.Fprint(os.Stderr, s)
	}
	if *traceFile != "" {
		if err := writeTraceFile(traces, *traceFile); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d layouts to %s\n", written, *dir)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("generation interrupted: %w", err)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	lib := fs.String("lib", "", "gate library (empty = both)")
	set := fs.String("set", "Trindade16", "benchmark set(s) to generate at startup ('' = all)")
	full := fs.Bool("full", false, "include the largest circuits")
	dir := fs.String("dir", "", "serve pre-generated layouts from this directory instead of generating")
	storeDir := fs.String("store", "", "back the /v1 registry API with this on-disk content-addressed store")
	reverify := fs.Bool("reverify", false, "with -dir: re-establish functional equivalence on load")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
	tracesOn := fs.Bool("traces", false, "retain request/flow traces and mount /debug/traces")
	perfDir := fs.String("perf-dir", ".", "directory whose latest BENCH_<n>.json /debug/perf serves")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var traces *obs.TraceStore
	if *tracesOn {
		traces = obs.NewTraceStore(obs.TracePolicy{})
	}
	// A broadcast-only journal: the startup generation campaign streams
	// its lifecycle events to /debug/events watchers (sidecar and web
	// interface alike) without writing a file.
	journal := obs.NewJournal(nil, obs.Default())
	ctx, ready, err := of.activate(context.Background(), traces, journal)
	if err != nil {
		return err
	}
	ready.NotReady("database loading")
	opts := []server.Option{server.WithPerfDir(*perfDir), server.WithJournal(journal)}
	if *storeDir != "" {
		st, err := registry.OpenDiskStore(*storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		stats := st.Stats()
		fmt.Printf("registry store %s: %d layouts, %d blobs\n", *storeDir, stats.Layouts, stats.Blobs)
		opts = append(opts, server.WithStorage(st))
	}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
	}
	if traces != nil {
		opts = append(opts, server.WithTraces(traces))
	}
	if *dir != "" {
		db, err := core.LoadDatabase(*dir, *reverify)
		if err != nil {
			return err
		}
		for _, f := range db.Failures {
			fmt.Fprintln(os.Stderr, "skipped:", f.Reason)
		}
		fmt.Printf("serving %d pre-generated layouts on %s\n", len(db.Entries), *addr)
		return serveGraceful(ctx, *addr, server.New(db, opts...), ready)
	}
	benches, err := selectBenches(*set, "", *full)
	if err != nil {
		return err
	}
	libs := gatelib.All()
	if *lib != "" {
		l, err := gatelib.ByName(*lib)
		if err != nil {
			return err
		}
		libs = []*gatelib.Library{l}
	}
	db := &core.Database{}
	for _, library := range libs {
		part := core.Generate(ctx, benches, library, core.Limits{}, func(p core.Progress) { fmt.Fprintln(os.Stderr, p.String()) })
		db.Entries = append(db.Entries, part.Entries...)
		db.Failures = append(db.Failures, part.Failures...)
	}
	fmt.Printf("serving %d layouts on %s\n", len(db.Entries), *addr)
	return serveGraceful(ctx, *addr, server.New(db, opts...), ready)
}

// serveGraceful runs the web interface until SIGINT/SIGTERM, then flips
// /readyz (sidecar and server alike) to 503 so load balancers stop
// routing, and drains in-flight requests before returning. The sidecar
// readiness turns ready here: the database is loaded once serving
// starts.
func serveGraceful(ctx context.Context, addr string, s *server.Server, ready *obs.Readiness) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	ready.Ready()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	ready.NotReady("shutting down")
	s.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

// cmdImport bulk-ingests `generate` output directories into an on-disk
// content-addressed registry store. Each directory lands as one atomic
// campaign; re-imports are idempotent by content hash.
func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	storeDir := fs.String("store", "", "registry store directory (required; created if missing)")
	campaign := fs.String("campaign", "", "campaign name for all imported directories (default: each directory's base name)")
	skipDRC := fs.Bool("skip-drc", false, "trust the layouts and skip design-rule checking")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" || fs.NArg() == 0 {
		return fmt.Errorf("usage: mntbench import -store DIR [-campaign NAME] [-skip-drc] SRCDIR...")
	}
	st, err := registry.OpenDiskStore(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for _, src := range fs.Args() {
		rep, err := registry.ImportDir(ctx, st, src, registry.ImportOptions{Campaign: *campaign, SkipDRC: *skipDRC})
		if err != nil {
			return err
		}
		fmt.Printf("%s -> campaign %q: %d files, %d added, %d updated, %d unchanged\n",
			src, rep.Campaign, rep.Files, rep.Added, rep.Updated, rep.Unchanged)
		for _, s := range rep.Skipped {
			fmt.Fprintln(os.Stderr, "skipped:", s)
		}
		if rep.HashMismatches > 0 {
			return fmt.Errorf("%d file(s) in %s disagree with the manifest — refusing to register corrupted layouts", rep.HashMismatches, src)
		}
	}
	stats := st.Stats()
	fmt.Printf("store %s: %d layouts, %d blobs, %d bytes\n", *storeDir, stats.Layouts, stats.Blobs, stats.Bytes)
	return nil
}

// cmdLoadtest generates a small campaign, mounts the registry server
// over it in-process, and hammers the /v1 API, asserting the p99 from
// the server's own latency histograms. Exits nonzero when any request
// fails or the latency budget is blown, so CI can gate on it.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	n := fs.Int("n", 5000, "total requests")
	c := fs.Int("c", 256, "concurrent workers")
	p99 := fs.Duration("p99", 250*time.Millisecond, "fail when the /v1 p99 exceeds this (0 = report only)")
	set := fs.String("set", "Trindade16", "benchmark set to generate the fixture campaign from")
	storeDir := fs.String("store", "", "load the catalogue from this registry store instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	reg := obs.NewRegistry()
	opts := []server.Option{server.WithRegistry(reg)}
	db := &core.Database{}
	if *storeDir != "" {
		st, err := registry.OpenDiskStore(*storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		opts = append(opts, server.WithStorage(st))
	} else {
		benches, err := selectBenches(*set, "", false)
		if err != nil {
			return err
		}
		db = core.Generate(ctx, benches, gatelib.QCAOne, core.Limits{}, nil)
		if len(db.Entries) == 0 {
			return fmt.Errorf("fixture generation produced no layouts")
		}
	}
	rep, err := loadtest.Run(ctx, server.New(db, opts...), reg, loadtest.Options{
		Concurrency: *c, Requests: *n, MaxP99: *p99,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, rep.String())
		return err
	}
	fmt.Println(rep.String())
	return nil
}

// openJournalFlag opens the -journal file when the flag was given; a
// nil *obs.Journal (every method no-ops) when it was not.
func openJournalFlag(path string) (*obs.Journal, error) {
	if path == "" {
		return nil, nil
	}
	j, err := obs.OpenJournal(path, obs.Default())
	if err != nil {
		return nil, err
	}
	if j.Recovered() {
		fmt.Fprintf(os.Stderr, "journal: %s had a damaged final line (crashed writer); truncated to the last complete event\n", path)
	}
	return j, nil
}

func cmdLayout(args []string) error {
	fs := flag.NewFlagSet("layout", flag.ExitOnError)
	in := fs.String("in", "", "input Verilog file (required)")
	lib := fs.String("lib", "qcaone", "gate library")
	algo := fs.String("algo", "ortho", "algorithm: ortho, exact, nanoplacer")
	inOrd := fs.Bool("inord", false, "apply input ordering (ortho)")
	plo := fs.Bool("plo", false, "apply post-layout optimization")
	hex := fs.Bool("hex", false, "apply 45° hexagonalization (implied for bestagon+ortho)")
	strash := fs.Bool("strash", false, "structurally hash and constant-fold the network first")
	balance := fs.Bool("balance", false, "insert buffers to path-balance the network first")
	out := fs.String("out", "", "output .fgl file (default stdout)")
	exactSec := fs.Int("exact-timeout", 10, "exact search budget (seconds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("layout: -in FILE.v is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	n, err := verilog.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	if *strash {
		merged := n.Strash()
		folded := n.PropagateConstants()
		fmt.Fprintf(os.Stderr, "strash: removed %d duplicate and %d constant-fed nodes\n", merged, folded)
	}
	if *balance {
		fmt.Fprintf(os.Stderr, "balance: inserted %d buffers\n", n.Balance(true))
	}
	library, err := gatelib.ByName(*lib)
	if err != nil {
		return err
	}
	var algorithm core.Algorithm
	switch strings.ToLower(*algo) {
	case "ortho":
		algorithm = core.AlgoOrtho
	case "exact":
		algorithm = core.AlgoExact
	case "nanoplacer":
		algorithm = core.AlgoNanoPlaceR
	default:
		return fmt.Errorf("layout: unknown algorithm %q", *algo)
	}
	scheme := clocking.TwoDDWave
	hexify := *hex
	if library == gatelib.Bestagon {
		scheme = clocking.Row
		if algorithm == core.AlgoOrtho {
			hexify = true
		}
	}
	flow := core.Flow{Library: library, Scheme: scheme, Algorithm: algorithm,
		InputOrder: *inOrd, PostLayout: *plo, Hexagonalize: hexify}
	entry, err := core.RunFlowOnNetwork(context.Background(), n, "custom", flow, core.Limits{
		ExactTimeout:  time.Duration(*exactSec) * time.Second,
		ExactMaxNodes: 1 << 30,
	})
	if err != nil {
		return err
	}
	text, err := fgl.WriteString(entry.Layout)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(text)
		return nil
	}
	fmt.Fprintf(os.Stderr, "%s: %dx%d = %d tiles (verified=%v, %v)\n",
		n.Name, entry.Width, entry.Height, entry.Area, entry.Verified, entry.Runtime.Round(time.Millisecond))
	return os.WriteFile(*out, []byte(text), 0o644)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input .fgl file (required)")
	out := fs.String("out", "", "output .v file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("convert: -in FILE.fgl is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	l, err := fgl.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	n, err := verify.ExtractNetwork(l)
	if err != nil {
		return err
	}
	text, err := verilog.WriteString(n)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(text)
		return nil
	}
	return os.WriteFile(*out, []byte(text), 0o644)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	layoutFile := fs.String("layout", "", "layout .fgl file (required)")
	netFile := fs.String("net", "", "reference .v network (optional: DRC only when absent)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *layoutFile == "" {
		return fmt.Errorf("verify: -layout FILE.fgl is required")
	}
	f, err := os.Open(*layoutFile)
	if err != nil {
		return err
	}
	l, err := fgl.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	report := verify.CheckDesignRules(l)
	if !report.OK() {
		for _, v := range report.Violations {
			fmt.Println("DRC:", v)
		}
		return fmt.Errorf("%d design rule violations", len(report.Violations))
	}
	fmt.Println("DRC: clean")
	if *netFile == "" {
		return nil
	}
	nf, err := os.Open(*netFile)
	if err != nil {
		return err
	}
	n, err := verilog.Parse(nf)
	nf.Close()
	if err != nil {
		return err
	}
	eq, err := verify.Equivalent(l, n)
	if err != nil {
		return err
	}
	if !eq {
		return fmt.Errorf("layout is NOT equivalent to %s", *netFile)
	}
	fmt.Println("equivalence: layout implements the network")
	return nil
}
