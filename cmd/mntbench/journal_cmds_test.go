package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestGenerateJournalEndToEnd drives the flight-recorder acceptance
// path through the CLI: a tiny generate campaign with -journal, then
// journal verify, summary with the directory cross-check, the jobs
// listing, and a non-follow tail over the finished file.
func TestGenerateJournalEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign generation in -short mode")
	}
	dir := t.TempDir()
	outDir := filepath.Join(dir, "layouts")
	jf := filepath.Join(dir, "campaign.jsonl")
	err := cmdGenerate([]string{"-set", "Trindade16", "-name", "mux21", "-q",
		"-exact-timeout", "1", "-dir", outDir, "-journal", jf})
	if err != nil {
		t.Fatal(err)
	}

	// generate runs one campaign per gate library; both must replay as
	// complete from the same journal file.
	events, truncated, err := obs.ReadJournalFile(jf)
	if err != nil || truncated {
		t.Fatalf("journal after generate: err=%v truncated=%v", err, truncated)
	}
	campaigns := 0
	for _, e := range events {
		if e.Type == obs.EventCampaignStart {
			campaigns++
		}
	}
	if campaigns != 2 {
		t.Fatalf("journal holds %d campaigns, want 2 (one per library)", campaigns)
	}

	if err := cmdJournalVerify([]string{jf}); err != nil {
		t.Errorf("verify of a completed campaign journal failed: %v", err)
	}
	if err := cmdJournalSummary([]string{"-dir", outDir, jf}); err != nil {
		t.Errorf("summary cross-check against the output directory failed: %v", err)
	}
	for _, flags := range [][]string{{jf}, {"-ok", jf}, {"-unfinished", jf}} {
		if err := cmdJournalJobs(flags); err != nil {
			t.Errorf("journal jobs %v: %v", flags, err)
		}
	}
	if err := cmdTail([]string{jf}); err != nil {
		t.Errorf("tail over a finished journal: %v", err)
	}

	// Tamper with the output directory: the cross-check must now fail.
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".fgl") {
			if err := os.Remove(filepath.Join(outDir, de.Name())); err != nil {
				t.Fatal(err)
			}
			removed = true
			break
		}
	}
	if !removed {
		t.Fatal("generate wrote no layouts")
	}
	if err := cmdJournalSummary([]string{"-dir", outDir, jf}); err == nil {
		t.Error("summary cross-check passed against a tampered directory")
	}
}

func TestJournalCommandErrors(t *testing.T) {
	if err := cmdJournal(nil); err == nil {
		t.Error("journal with no subcommand accepted")
	}
	if err := cmdJournal([]string{"frobnicate"}); err == nil {
		t.Error("unknown journal subcommand accepted")
	}
	if err := cmdJournalVerify([]string{filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Error("verify of a missing file succeeded")
	}
	if err := cmdJournalJobs([]string{"-ok", "-unfinished", "x.jsonl"}); err == nil {
		t.Error("conflicting jobs flags accepted")
	}
}

// TestRenderTailEvent pins the tail view's output. All rates derive
// from event timestamps, so rendering is deterministic.
func TestRenderTailEvent(t *testing.T) {
	var buf bytes.Buffer
	st := newTailState()
	start := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC).UnixNano()
	renderTailEvent(&buf, st, obs.Event{Type: obs.EventCampaignStart, Campaign: "c1",
		Library: "qcaone", Benchmarks: 1, Total: 2, Workers: 1, Time: start})
	renderTailEvent(&buf, st, obs.Event{Type: obs.EventJobDone, Campaign: "c1", Job: 1,
		Set: "Trindade16", Benchmark: "mux21", Flow: "ortho-2ddwave", Outcome: "ok",
		Width: 3, Height: 3, Area: 9, ElapsedUS: 2_000_000,
		Time: start + int64(2*time.Second)})
	renderTailEvent(&buf, st, obs.Event{Type: obs.EventJobDone, Campaign: "c1", Job: 2,
		Set: "Trindade16", Benchmark: "mux21", Flow: "exact-2ddwave", Outcome: "timeout",
		ElapsedUS: 1_000_000, Time: start + int64(4*time.Second)})
	renderTailEvent(&buf, st, obs.Event{Type: obs.EventCampaignDone, Campaign: "c1",
		Done: 2, Entries: 1, Failures: 1, Time: start + int64(4*time.Second)})

	out := buf.String()
	for _, want := range []string{
		"campaign c1 started: library=qcaone benchmarks=1 jobs=2 workers=1",
		"[1/2]",
		"3x3",
		"A=9",
		"0.5 flows/s ETA 2s",
		"[2/2]",
		"skipped: timeout (1s)",
		"campaign c1 done: 2 jobs finished, 1 layouts, 1 failures",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tail output missing %q:\n%s", want, out)
		}
	}
	// The final job carries a rate but no ETA (nothing remains).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	final := lines[2]
	if !strings.Contains(final, "flows/s") || strings.Contains(final, "ETA") {
		t.Errorf("final job line %q", final)
	}

	// Unknown campaigns (journal cut before campaign_start) and
	// malformed lines must not panic or kill the stream.
	renderTailEvent(&buf, st, obs.Event{Type: obs.EventJobDone, Campaign: "ghost", Job: 1, Outcome: "ok"})
	renderTailLine(&buf, st, []byte("not json at all"))
	renderTailLine(&buf, st, []byte("   \n"))
}

// TestTailFollowStopsOnEOF checks plain (non-follow) tail handles a
// file whose final line is torn, as after a crash.
func TestTailTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	body := `{"seq":1,"type":"campaign_start","campaign":"c1","schema":1,"total":1}` + "\n" +
		`{"seq":2,"type":"job_st`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdTail([]string{path}); err != nil {
		t.Fatalf("tail over a torn journal: %v", err)
	}
}
