package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/perf"
)

// obsFlags bundles the observability flags shared by the long-running
// commands (table, generate, serve).
type obsFlags struct {
	logLevel    *string
	logJSON     *bool
	metricsAddr *string
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		logLevel:    fs.String("log-level", "info", "log level: debug, info, warn, error"),
		logJSON:     fs.Bool("log-json", false, "emit logs as JSON lines"),
		metricsAddr: fs.String("metrics-addr", "", "expose /metrics, /healthz, /debug/traces and /debug/pprof on this address (e.g. :9090)"),
	}
}

// activate installs the configured logger as the process default,
// optionally starts the metrics sidecar server, and returns a context
// carrying the logger, the process registry, and — when traces/journal
// are non-nil — the trace store and event journal, which the sidecar
// then also serves at /debug/traces and /debug/events. The returned
// readiness is mounted at the sidecar's /readyz, starts not-ready, and
// is flipped by the command once its database or campaign is loaded.
func (o *obsFlags) activate(ctx context.Context, traces *obs.TraceStore, journal *obs.Journal) (context.Context, *obs.Readiness, error) {
	level, err := obs.ParseLevel(*o.logLevel)
	if err != nil {
		return nil, nil, err
	}
	log := obs.NewLogger(os.Stderr, level, *o.logJSON)
	obs.SetDefaultLogger(log)
	reg := obs.Default()
	obs.RegisterBuildInfo(reg)
	ready := obs.NewReadiness("starting up")
	ctx = obs.WithLogger(obs.WithRegistry(ctx, reg), log)
	if traces != nil {
		ctx = obs.WithTraces(ctx, traces)
	}
	if journal == nil && *o.metricsAddr != "" {
		// No durable journal file, but a live surface: a broadcast-only
		// journal feeds /debug/events without touching disk. It lives for
		// the process, like the runtime collector below.
		journal = obs.NewJournal(nil, reg)
	}
	if journal != nil {
		ctx = obs.WithJournal(ctx, journal)
	}
	if *o.metricsAddr != "" {
		// The collector keeps the mntbench_go_* runtime gauges fresh for
		// the whole campaign; scrapes additionally resample so exported
		// values are never stale. Process-lifetime: no Stop needed.
		obs.StartRuntimeCollector(reg, 10*time.Second)
		mux := http.NewServeMux()
		metricsHandler := reg.MetricsHandler()
		mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			obs.UpdateRuntimeGauges(reg)
			metricsHandler.ServeHTTP(w, r)
		}))
		mux.HandleFunc("/healthz", obs.Healthz)
		mux.Handle("/readyz", ready.Handler())
		mux.Handle("/debug/events", journal.EventsHandler())
		mux.Handle("/debug/perf", perf.Handler("."))
		if traces != nil {
			mux.Handle("/debug/traces", traces.Handler())
			mux.Handle("/debug/traces/", traces.Handler())
		}
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *o.metricsAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("metrics listener: %w", err)
		}
		log.Info("metrics listening", "addr", ln.Addr().String())
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
	}
	return ctx, ready, nil
}

// campaignTraces builds the trace store for a table/generate campaign:
// the bounded default policy for the in-memory slowest/failed view, or
// keep-everything when the timeline is being exported to a file.
func campaignTraces(traceFile string) *obs.TraceStore {
	return obs.NewTraceStore(obs.TracePolicy{KeepAll: traceFile != ""})
}

// writeTraceFile exports every retained trace as a Chrome trace-event
// file loadable in Perfetto or chrome://tracing.
func writeTraceFile(ts *obs.TraceStore, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ts.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace file: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote campaign timeline to %s (open in https://ui.perfetto.dev or chrome://tracing)\n", path)
	return nil
}

// stageSummary renders a per-stage timing table from the span
// histograms collected during a campaign; empty when nothing was timed.
func stageSummary(reg *obs.Registry) string {
	type row struct {
		stage                 string
		calls                 uint64
		total, mean, p50, p95 float64
	}
	var rows []row
	for _, fam := range reg.Snapshot() {
		if fam.Name != obs.SpanMetric {
			continue
		}
		for _, s := range fam.Series {
			if s.Histogram == nil || s.Histogram.Count == 0 {
				continue
			}
			stage := ""
			for _, l := range s.Labels {
				if l.Key == "stage" {
					stage = l.Value
				}
			}
			if stage == "" || stage == "flow" || stage == "worker" || stage == "http" {
				continue // aggregate root spans carry extra labels; only stages belong here
			}
			h := *s.Histogram
			rows = append(rows, row{stage, h.Count, h.Sum, h.Mean(), h.Quantile(0.5), h.Quantile(0.95)})
		}
	}
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %7s %10s %10s %10s %10s\n", "stage", "calls", "total", "mean", "p50", "p95")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %7d %10s %10s %10s %10s\n", r.stage, r.calls,
			fmtSec(r.total), fmtSec(r.mean), fmtSec(r.p50), fmtSec(r.p95))
	}
	return sb.String()
}

// slowestSummary renders the slowest flows retained by the campaign's
// trace store, with each flow's dominant stage; empty when no flow
// traces were retained.
func slowestSummary(ts *obs.TraceStore, n int) string {
	type row struct {
		dur             time.Duration
		bench, flow     string
		status          string
		topStage        string
		topStagePercent int
	}
	var rows []row
	for _, t := range ts.Snapshot() {
		fe := t.FlowEvent()
		if fe == nil {
			continue
		}
		r := row{dur: fe.Duration, status: "ok"}
		if fe.Err != "" {
			r.status = "failed"
		}
		r.bench = fe.Attrs["set"] + "/" + fe.Attrs["benchmark"]
		r.flow = fe.Attrs["flow"]
		var topDur time.Duration
		for _, c := range t.Children(fe.ID) {
			if c.Duration > topDur {
				topDur = c.Duration
				r.topStage = c.Name
			}
		}
		if r.topStage != "" && fe.Duration > 0 {
			r.topStagePercent = int(100 * topDur / fe.Duration)
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dur > rows[j].dur })
	if len(rows) > n {
		rows = rows[:n]
	}
	var sb strings.Builder
	sb.WriteString("slowest flows:\n")
	fmt.Fprintf(&sb, "%10s  %-22s %-34s %-7s %s\n", "elapsed", "benchmark", "flow", "status", "dominant stage")
	for _, r := range rows {
		top := "-"
		if r.topStage != "" {
			top = fmt.Sprintf("%s %d%%", r.topStage, r.topStagePercent)
		}
		fmt.Fprintf(&sb, "%10s  %-22s %-34s %-7s %s\n",
			r.dur.Round(10*time.Microsecond), r.bench, r.flow, r.status, top)
	}
	return sb.String()
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// cmdTraceCheck validates a -trace output file: it must parse as
// Chrome trace-event JSON with properly shaped span events. Used by the
// CI smoke test and handy after long campaigns.
func cmdTraceCheck(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("tracecheck: usage: mntbench tracecheck FILE.json")
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   *float64          `json:"ts"`
			PID  *int              `json:"pid"`
			TID  *int              `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("tracecheck: %s is not trace-event JSON: %w", path, err)
	}
	spans := 0
	rows := make(map[int]bool)
	tracesSeen := make(map[string]bool)
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.PID == nil || e.TS == nil {
			return fmt.Errorf("tracecheck: event %d is malformed (needs name, ph, pid, ts)", i)
		}
		if e.Ph != "X" {
			continue
		}
		if e.TID == nil {
			return fmt.Errorf("tracecheck: span event %d has no tid", i)
		}
		spans++
		rows[*e.TID] = true
		if id := e.Args["trace"]; id != "" {
			tracesSeen[id] = true
		}
	}
	if spans == 0 {
		return fmt.Errorf("tracecheck: %s contains no span events", path)
	}
	fmt.Printf("%s: ok — %d span events, %d traces, %d timeline rows\n",
		path, spans, len(tracesSeen), len(rows))
	return nil
}
