package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// obsFlags bundles the observability flags shared by the long-running
// commands (table, generate, serve).
type obsFlags struct {
	logLevel    *string
	logJSON     *bool
	metricsAddr *string
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		logLevel:    fs.String("log-level", "info", "log level: debug, info, warn, error"),
		logJSON:     fs.Bool("log-json", false, "emit logs as JSON lines"),
		metricsAddr: fs.String("metrics-addr", "", "expose /metrics, /healthz and /debug/pprof on this address (e.g. :9090)"),
	}
}

// activate installs the configured logger as the process default,
// optionally starts the metrics sidecar server, and returns a context
// carrying the logger and the process registry.
func (o *obsFlags) activate(ctx context.Context) (context.Context, error) {
	level, err := obs.ParseLevel(*o.logLevel)
	if err != nil {
		return nil, err
	}
	log := obs.NewLogger(os.Stderr, level, *o.logJSON)
	obs.SetDefaultLogger(log)
	reg := obs.Default()
	ctx = obs.WithLogger(obs.WithRegistry(ctx, reg), log)
	if *o.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.MetricsHandler())
		mux.HandleFunc("/healthz", obs.Healthz)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *o.metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		log.Info("metrics listening", "addr", ln.Addr().String())
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
	}
	return ctx, nil
}

// stageSummary renders a per-stage timing table from the span
// histograms collected during a campaign; empty when nothing was timed.
func stageSummary(reg *obs.Registry) string {
	type row struct {
		stage                 string
		calls                 uint64
		total, mean, p50, p95 float64
	}
	var rows []row
	for _, fam := range reg.Snapshot() {
		if fam.Name != obs.SpanMetric {
			continue
		}
		for _, s := range fam.Series {
			if s.Histogram == nil || s.Histogram.Count == 0 {
				continue
			}
			stage := ""
			for _, l := range s.Labels {
				if l.Key == "stage" {
					stage = l.Value
				}
			}
			if stage == "" || stage == "flow" || stage == "worker" {
				continue // flow/worker spans carry extra labels; only stages belong here
			}
			h := *s.Histogram
			rows = append(rows, row{stage, h.Count, h.Sum, h.Mean(), h.Quantile(0.5), h.Quantile(0.95)})
		}
	}
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %7s %10s %10s %10s %10s\n", "stage", "calls", "total", "mean", "p50", "p95")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %7d %10s %10s %10s %10s\n", r.stage, r.calls,
			fmtSec(r.total), fmtSec(r.mean), fmtSec(r.p50), fmtSec(r.p95))
	}
	return sb.String()
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
