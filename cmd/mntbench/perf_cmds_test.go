package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
)

// writeTestSnapshot marshals a minimal snapshot to path with the given
// E1 wall time.
func writeTestSnapshot(t *testing.T, path string, nsPerOp float64) {
	t.Helper()
	s := &perf.Snapshot{
		Schema: perf.SchemaVersion,
		Env:    perf.Fingerprint(),
		Results: []perf.Result{{
			ID: "E1", Name: "TableIQCAOne", Iterations: 3,
			NsPerOp: nsPerOp, AllocsPerOp: 1000, BytesPerOp: 50000,
			Metrics: map[string]float64{"tiles-total": 4242},
		}},
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPerfDiffRegression pins the acceptance criterion: an injected
// wall-time regression makes `mntbench perfdiff` exit nonzero.
func TestPerfDiffRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_1.json")
	newPath := filepath.Join(dir, "BENCH_2.json")
	writeTestSnapshot(t, oldPath, 1e9)
	writeTestSnapshot(t, newPath, 2e9) // +100% wall time, far past the 30% default

	out, err := captureStdout(t, func() error {
		return cmdPerfDiff([]string{oldPath, newPath})
	})
	if err == nil {
		t.Fatalf("perfdiff accepted a 2x regression:\n%s", out)
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("error = %v, want a regression message", err)
	}
	if !strings.Contains(out, "regressed") || !strings.Contains(out, "ns_per_op") {
		t.Errorf("report does not name the regressed metric:\n%s", out)
	}

	// The same pair in the improving direction passes.
	out, err = captureStdout(t, func() error {
		return cmdPerfDiff([]string{newPath, oldPath})
	})
	if err != nil {
		t.Fatalf("perfdiff rejected an improvement: %v\n%s", err, out)
	}

	// A custom threshold loosens the gate.
	if _, err := captureStdout(t, func() error {
		return cmdPerfDiff([]string{"-threshold", "ns_per_op=1.5", oldPath, newPath})
	}); err != nil {
		t.Errorf("perfdiff with ns_per_op=1.5 should pass: %v", err)
	}
}

func TestPerfDiffSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	writeTestSnapshot(t, path, 1e9)
	out, err := captureStdout(t, func() error {
		return cmdPerfDiff([]string{"-schema-check", path})
	})
	if err != nil {
		t.Fatalf("schema-check: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok — schema 1") {
		t.Errorf("schema-check output:\n%s", out)
	}

	if err := os.WriteFile(path, []byte(`{"schema": 99, "env": {}, "results": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdPerfDiff([]string{"-schema-check", path})
	}); err == nil {
		t.Error("schema-check accepted a bad snapshot")
	}
}

// TestPerfSnapBounded runs a real bounded snapshot over the cheapest
// experiment and validates the written file end to end (the same shape
// as the CI perfsnap-smoke step).
func TestPerfSnapBounded(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return cmdPerfSnap([]string{"-dir", dir, "-benchtime", "1x", "-experiments", "E6/mux21", "-q"})
	})
	if err != nil {
		t.Fatalf("perfsnap: %v\n%s", err, out)
	}
	path := filepath.Join(dir, "BENCH_1.json")
	if !strings.Contains(out, path) {
		t.Errorf("perfsnap did not report %s:\n%s", path, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := perf.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 1 || snap.Results[0].ID != "E6/mux21" {
		t.Fatalf("results = %+v", snap.Results)
	}
	r := snap.Results[0]
	if r.Error != "" || r.Iterations < 1 || r.NsPerOp <= 0 {
		t.Errorf("E6/mux21 = %+v", r)
	}
	if _, ok := r.Metrics["tiles"]; !ok {
		t.Errorf("custom tiles metric missing: %v", r.Metrics)
	}
	if snap.CreatedAt == "" || snap.BenchTime != "1x" {
		t.Errorf("snapshot stamps: created_at=%q benchtime=%q", snap.CreatedAt, snap.BenchTime)
	}

	// A second run lands on BENCH_2.json.
	if _, err := captureStdout(t, func() error {
		return cmdPerfSnap([]string{"-dir", dir, "-benchtime", "1x", "-experiments", "E6/mux21", "-q"})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Errorf("second snapshot: %v", err)
	}

	// And the freshly produced snapshot diffs cleanly against itself.
	if _, err := captureStdout(t, func() error {
		return cmdPerfDiff([]string{path, path})
	}); err != nil {
		t.Errorf("self-diff: %v", err)
	}
}
