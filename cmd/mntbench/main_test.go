package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/obs"
)

func TestSelectBenches(t *testing.T) {
	all, err := selectBenches("", "", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range all {
		if b.PubNodes > 5000 {
			t.Errorf("%s (%d nodes) included without -full", b.Name, b.PubNodes)
		}
	}
	full, err := selectBenches("", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(all) {
		t.Errorf("-full selected %d <= %d", len(full), len(all))
	}
	one, err := selectBenches("Trindade16", "mux21", false)
	if err != nil || len(one) != 1 || one[0].Name != "mux21" {
		t.Errorf("single select: %v %v", one, err)
	}
	if _, err := selectBenches("Nope", "", false); err == nil {
		t.Error("unknown set accepted")
	}
}

func TestLimitsFromFlags(t *testing.T) {
	l := limitsFromFlags(3, 5, 20)
	if l.ExactTimeout != 3*time.Second || l.NanoTimeout != 5*time.Second || l.PLOTimeout != 20*time.Second {
		t.Errorf("limits: %+v", l)
	}
}

// TestLayoutConvertVerifyCommands drives the file-based subcommands end
// to end through their exported entry points.
func TestLayoutConvertVerifyCommands(t *testing.T) {
	dir := t.TempDir()
	vfile := filepath.Join(dir, "f.v")
	src := `module f(a, b, y);
  input a, b; output y;
  assign y = a ^ b;
endmodule`
	if err := os.WriteFile(vfile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fglFile := filepath.Join(dir, "f.fgl")
	if err := cmdLayout([]string{"-in", vfile, "-lib", "bestagon", "-algo", "ortho", "-out", fglFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-layout", fglFile, "-net", vfile}); err != nil {
		t.Fatal(err)
	}
	vOut := filepath.Join(dir, "back.v")
	if err := cmdConvert([]string{"-in", fglFile, "-out", vOut}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(vOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module") {
		t.Error("converted Verilog malformed")
	}
	if err := cmdStats([]string{"-in", fglFile, "-balance"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDraw([]string{"-in", fglFile}); err != nil {
		t.Fatal(err)
	}
	svg := filepath.Join(dir, "f.svg")
	if err := cmdDraw([]string{"-in", fglFile, "-out", svg}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCells([]string{"-in", fglFile, "-out", filepath.Join(dir, "f.sqd")}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsWrongNetwork(t *testing.T) {
	dir := t.TempDir()
	vfile := filepath.Join(dir, "f.v")
	os.WriteFile(vfile, []byte("module f(a, b, y); input a, b; output y; assign y = a ^ b; endmodule"), 0o644)
	wrong := filepath.Join(dir, "g.v")
	os.WriteFile(wrong, []byte("module f(a, b, y); input a, b; output y; assign y = a & b; endmodule"), 0o644)
	fglFile := filepath.Join(dir, "f.fgl")
	if err := cmdLayout([]string{"-in", vfile, "-lib", "qcaone", "-algo", "ortho", "-out", fglFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-layout", fglFile, "-net", wrong}); err == nil {
		t.Error("wrong network accepted")
	}
}

// TestTableTraceFlag drives the acceptance path end to end: a tiny
// campaign with -trace must write a Chrome trace-event file whose flow
// and stage events nest inside worker events on per-worker rows, and
// the file must pass tracecheck.
func TestTableTraceFlag(t *testing.T) {
	dir := t.TempDir()
	tf := filepath.Join(dir, "trace.json")
	err := cmdTable([]string{"-set", "Trindade16", "-name", "mux21", "-q",
		"-exact-timeout", "1", "-trace", tf})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tf)
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}

	byTID := map[int][]event{}
	rowNames := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			rowNames[e.TID] = e.Args["name"]
		}
		if e.Ph == "X" {
			byTID[e.TID] = append(byTID[e.TID], e)
		}
	}
	if len(byTID) == 0 {
		t.Fatal("no span events in trace file")
	}
	// contains reports whether outer's time window encloses inner's.
	contains := func(outer, inner event) bool {
		const eps = 0.01 // µs slack for float rounding
		return inner.TS >= outer.TS-eps && inner.TS+inner.Dur <= outer.TS+outer.Dur+eps
	}
	flows, nestedFlows, nestedStages := 0, 0, 0
	for tid, events := range byTID {
		if !strings.HasPrefix(rowNames[tid], "w") {
			t.Errorf("row %d named %q, want a worker row", tid, rowNames[tid])
		}
		for _, e := range events {
			switch e.Name {
			case "worker":
				if e.Args["worker_id"] == "" {
					t.Errorf("worker event without worker_id: %v", e.Args)
				}
			case "flow":
				flows++
				if e.Args["benchmark"] != "mux21" {
					t.Errorf("flow event args = %v", e.Args)
				}
				for _, w := range events {
					if w.Name == "worker" && contains(w, e) {
						nestedFlows++
						break
					}
				}
			default: // a pipeline stage: must sit inside a flow on its row
				for _, f := range events {
					if f.Name == "flow" && contains(f, e) {
						nestedStages++
						break
					}
				}
			}
		}
	}
	if flows == 0 {
		t.Fatal("no flow events")
	}
	if nestedFlows != flows {
		t.Errorf("%d of %d flow events nest inside a worker event", nestedFlows, flows)
	}
	if nestedStages == 0 {
		t.Error("no stage events nested inside flows")
	}

	if err := cmdTraceCheck([]string{tf}); err != nil {
		t.Errorf("tracecheck rejected the file: %v", err)
	}
	if err := cmdTraceCheck([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("tracecheck accepted a missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"traceEvents":[]}`), 0o644)
	if err := cmdTraceCheck([]string{bad}); err == nil {
		t.Error("tracecheck accepted an empty trace")
	}
}

func TestSlowestSummaryFormat(t *testing.T) {
	ts := obs.NewTraceStore(obs.TracePolicy{})
	ctx := obs.WithTraces(obs.WithRegistry(context.Background(), obs.NewRegistry()), ts)
	benches, err := selectBenches("Trindade16", "mux21", false)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := gatelib.ByName("qcaone")
	if err != nil {
		t.Fatal(err)
	}
	limits := limitsFromFlags(1, 1, 1)
	limits.DiscardLayouts = true
	core.Generate(ctx, benches, lib, limits, nil)
	s := slowestSummary(ts, 3)
	if s == "" {
		t.Fatal("no slowest-flows summary after a campaign")
	}
	if !strings.Contains(s, "slowest flows:") || !strings.Contains(s, "Trindade16/mux21") {
		t.Errorf("summary = %q", s)
	}
	if n := strings.Count(s, "\n"); n > 2+3 {
		t.Errorf("summary not capped at 3 rows:\n%s", s)
	}
	if slowestSummary(obs.NewTraceStore(obs.TracePolicy{}), 3) != "" {
		t.Error("empty store must yield an empty summary")
	}
}
