package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSelectBenches(t *testing.T) {
	all, err := selectBenches("", "", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range all {
		if b.PubNodes > 5000 {
			t.Errorf("%s (%d nodes) included without -full", b.Name, b.PubNodes)
		}
	}
	full, err := selectBenches("", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(all) {
		t.Errorf("-full selected %d <= %d", len(full), len(all))
	}
	one, err := selectBenches("Trindade16", "mux21", false)
	if err != nil || len(one) != 1 || one[0].Name != "mux21" {
		t.Errorf("single select: %v %v", one, err)
	}
	if _, err := selectBenches("Nope", "", false); err == nil {
		t.Error("unknown set accepted")
	}
}

func TestLimitsFromFlags(t *testing.T) {
	l := limitsFromFlags(3, 5, 20)
	if l.ExactTimeout != 3*time.Second || l.NanoTimeout != 5*time.Second || l.PLOTimeout != 20*time.Second {
		t.Errorf("limits: %+v", l)
	}
}

// TestLayoutConvertVerifyCommands drives the file-based subcommands end
// to end through their exported entry points.
func TestLayoutConvertVerifyCommands(t *testing.T) {
	dir := t.TempDir()
	vfile := filepath.Join(dir, "f.v")
	src := `module f(a, b, y);
  input a, b; output y;
  assign y = a ^ b;
endmodule`
	if err := os.WriteFile(vfile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fglFile := filepath.Join(dir, "f.fgl")
	if err := cmdLayout([]string{"-in", vfile, "-lib", "bestagon", "-algo", "ortho", "-out", fglFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-layout", fglFile, "-net", vfile}); err != nil {
		t.Fatal(err)
	}
	vOut := filepath.Join(dir, "back.v")
	if err := cmdConvert([]string{"-in", fglFile, "-out", vOut}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(vOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module") {
		t.Error("converted Verilog malformed")
	}
	if err := cmdStats([]string{"-in", fglFile, "-balance"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDraw([]string{"-in", fglFile}); err != nil {
		t.Fatal(err)
	}
	svg := filepath.Join(dir, "f.svg")
	if err := cmdDraw([]string{"-in", fglFile, "-out", svg}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCells([]string{"-in", fglFile, "-out", filepath.Join(dir, "f.sqd")}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsWrongNetwork(t *testing.T) {
	dir := t.TempDir()
	vfile := filepath.Join(dir, "f.v")
	os.WriteFile(vfile, []byte("module f(a, b, y); input a, b; output y; assign y = a ^ b; endmodule"), 0o644)
	wrong := filepath.Join(dir, "g.v")
	os.WriteFile(wrong, []byte("module f(a, b, y); input a, b; output y; assign y = a & b; endmodule"), 0o644)
	fglFile := filepath.Join(dir, "f.fgl")
	if err := cmdLayout([]string{"-in", vfile, "-lib", "qcaone", "-algo", "ortho", "-out", fglFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-layout", fglFile, "-net", wrong}); err == nil {
		t.Error("wrong network accepted")
	}
}
