package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/conformance"
	"repro/internal/core"
)

// cmdSelftest runs the property-based conformance harness: seeded
// random networks through every registered flow, the full invariant
// battery on each result, and automatic shrinking of any failure to a
// minimal repro artifact. Exits non-zero when a hard invariant is
// violated. See docs/CONFORMANCE.md.
func cmdSelftest(args []string) error {
	fs := flag.NewFlagSet("selftest", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "root seed; every case derives from it")
	n := fs.Int("n", 10, "number of random networks to generate")
	workers := fs.Int("workers", 0, "parallel workers (0 = all CPU cores); the report is identical for any value")
	flows := fs.String("flows", "", "comma-separated flow filter (exact IDs or substrings; empty = every registered flow)")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of text")
	reproDir := fs.String("repro-dir", "selftest-repros", "directory for shrunk failure artifacts")
	noShrink := fs.Bool("no-shrink", false, "report failures without shrinking them")
	replay := fs.String("replay", "", "replay a repro artifact instead of running the selftest")
	steps := fs.Int("exact-steps", 0, "deterministic exact-search step budget (0 = default)")
	quiet := fs.Bool("q", false, "suppress progress output")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, ready, err := of.activate(context.Background(), nil, nil)
	if err != nil {
		return err
	}
	ready.Ready()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replay != "" {
		return replayRepro(ctx, *replay, *workers)
	}

	cfg := conformance.Config{
		Seed:       *seed,
		N:          *n,
		Workers:    *workers,
		Flows:      *flows,
		ExactSteps: *steps,
		Shrink:     !*noShrink,
		ReproDir:   *reproDir,
	}
	if !*quiet {
		cfg.Progress = func(p core.Progress) { fmt.Fprintln(os.Stderr, p.String()) }
	}
	report, err := conformance.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		fmt.Print(report.JSON())
	} else {
		fmt.Print(report.Text())
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("selftest interrupted: %w", err)
	}
	if report.Failed() {
		return fmt.Errorf("selftest failed: %d invariant violations", len(report.Violations))
	}
	return nil
}

// replayRepro re-runs one shrunk failure artifact and reports whether
// the violation still reproduces.
func replayRepro(ctx context.Context, path string, workers int) error {
	violations, repro, err := conformance.Replay(ctx, path, workers)
	if err != nil {
		return err
	}
	fmt.Printf("replay %s: case %s (seed %#x), flow %s, %d gates\n",
		path, repro.Case, repro.CaseSeed, repro.Flow, repro.Gates)
	if len(violations) == 0 {
		fmt.Printf("  recorded invariant %q no longer violated — the bug appears fixed\n", repro.Invariant)
		return nil
	}
	for _, v := range violations {
		fmt.Printf("  %s\n", v)
	}
	return fmt.Errorf("replay reproduced %d violations", len(violations))
}
