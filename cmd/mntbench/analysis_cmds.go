package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/export"
	"repro/internal/fgl"
	"repro/internal/gatelib"
	"repro/internal/layout"
	"repro/internal/qcasim"
	"repro/internal/render"
	"repro/internal/verify"
)

func readLayoutFile(path string) (*layout.Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fgl.Read(f)
}

// cmdStats prints geometry, timing, and energy analyses of a .fgl layout.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "layout .fgl file (required)")
	balance := fs.Bool("balance", false, "list fanin arrival-skew issues per gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: -in FILE.fgl is required")
	}
	l, err := readLayoutFile(*in)
	if err != nil {
		return err
	}
	report, err := analysis.Analyze(l)
	if err != nil {
		return err
	}
	fmt.Println("layout:  ", report.Stats)
	fmt.Println("timing:  ", report.Timing)
	fmt.Println("energy:  ", report.Energy)
	if l.Library != "" {
		if lib, err := gatelib.ByName(l.Library); err == nil {
			fmt.Printf("physical: %.0f nm² (%s)\n", lib.LayoutAreaNM2(l), lib.Name)
		}
	}
	if drc := verify.CheckDesignRules(l); !drc.OK() {
		fmt.Printf("DRC:      %d violations (first: %s)\n", len(drc.Violations), drc.Violations[0])
	} else {
		fmt.Println("DRC:      clean")
	}
	if *balance {
		issues, err := analysis.BalanceCheck(l)
		if err != nil {
			return err
		}
		if len(issues) == 0 {
			fmt.Println("balance:  all reconvergent paths phase-aligned")
		}
		for _, issue := range issues {
			fmt.Println("balance: ", issue)
		}
	}
	return nil
}

// cmdCells expands a gate-level layout to technology cells and exports
// QCADesigner (.qca) or SiQAD (.sqd) files.
func cmdCells(args []string) error {
	fs := flag.NewFlagSet("cells", flag.ExitOnError)
	in := fs.String("in", "", "layout .fgl file (required)")
	out := fs.String("out", "", "output file: .qca (QCA ONE layouts) or .sqd (Bestagon layouts)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("cells: -in FILE.fgl is required")
	}
	l, err := readLayoutFile(*in)
	if err != nil {
		return err
	}
	lib, err := gatelib.ByName(l.Library)
	if err != nil {
		return fmt.Errorf("cells: layout has no usable library tag: %w", err)
	}
	cells, err := lib.Expand(l)
	if err != nil {
		return err
	}
	w, h := cells.BoundingBox()
	fmt.Fprintf(os.Stderr, "%s: %d cells, %dx%d, %.0f nm²\n", l.Name, cells.NumCells(), w, h, cells.AreaNM2())
	if *out == "" {
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(*out, ".qca"):
		return export.WriteQCA(f, cells)
	case strings.HasSuffix(*out, ".sqd"):
		return export.WriteSQD(f, cells)
	}
	return fmt.Errorf("cells: output must end in .qca or .sqd")
}

// cmdSimulate runs the bistable QCA cell simulation of a layout and
// compares the simulated truth table against the layout's logic.
func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("in", "", "layout .fgl file (QCA ONE, required)")
	maxInputs := fs.Int("max-inputs", 8, "skip exhaustive simulation beyond this many inputs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("simulate: -in FILE.fgl is required")
	}
	l, err := readLayoutFile(*in)
	if err != nil {
		return err
	}
	cells, err := gatelib.ExpandQCAOne(l)
	if err != nil {
		return err
	}
	engine, err := qcasim.New(cells)
	if err != nil {
		return err
	}
	if engine.NumInputs() > *maxInputs {
		return fmt.Errorf("simulate: %d inputs exceed -max-inputs %d", engine.NumInputs(), *maxInputs)
	}
	// Reference truth table from the layout's logical structure.
	ref, err := verify.ExtractNetwork(l)
	if err != nil {
		return err
	}
	refTT, err := ref.TruthTable()
	if err != nil {
		return err
	}
	simTT, err := engine.TruthTable()
	if err != nil {
		return err
	}
	// The engine orders I/O cells geometrically; align via the layout's
	// deterministic tile order, which ExtractNetwork shares.
	match := 0
	for r := range simTT {
		same := len(simTT[r]) == len(refTT[r])
		if same {
			for c := range simTT[r] {
				if simTT[r][c] != refTT[r][c] {
					same = false
					break
				}
			}
		}
		if same {
			match++
		}
	}
	fmt.Printf("%s: %d cells, %d inputs, %d outputs\n", l.Name, cells.NumCells(), engine.NumInputs(), engine.NumOutputs())
	fmt.Printf("bistable simulation matches logic on %d/%d patterns\n", match, len(simTT))
	if match != len(simTT) {
		return fmt.Errorf("simulate: physical simulation disagrees with the logical layout")
	}
	return nil
}

// cmdDraw renders a .fgl layout as SVG or ASCII art.
func cmdDraw(args []string) error {
	fs := flag.NewFlagSet("draw", flag.ExitOnError)
	in := fs.String("in", "", "layout .fgl file (required)")
	out := fs.String("out", "", "output .svg file (default: ASCII art on stdout)")
	tile := fs.Int("tile", 28, "SVG tile size in pixels")
	legend := fs.Bool("legend", false, "print the ASCII glyph legend")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *legend {
		fmt.Print(render.Legend())
		return nil
	}
	if *in == "" {
		return fmt.Errorf("draw: -in FILE.fgl is required")
	}
	l, err := readLayoutFile(*in)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(render.ASCII(l))
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	return render.WriteSVG(f, l, render.SVGOptions{TileSize: *tile})
}
