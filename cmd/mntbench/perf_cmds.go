package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/perf"
	"repro/internal/perf/suite"
)

// cmdPerfSnap runs the E1–E7 experiment suite programmatically and
// writes a schema-versioned, environment-stamped BENCH_<n>.json
// performance snapshot — one point on the repository's perf trajectory.
// See docs/OBSERVABILITY.md, "Performance snapshots & runtime
// telemetry".
func cmdPerfSnap(args []string) error {
	fs := flag.NewFlagSet("perfsnap", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
	out := fs.String("out", "", "write the snapshot to this file instead of the next BENCH_<n>.json")
	benchtime := fs.String("benchtime", "1s", "testing benchtime per experiment (e.g. 1x for a bounded smoke run)")
	only := fs.String("experiments", "", "comma-separated experiment IDs to run (prefix match: E6 covers E6/*; empty = all)")
	profileDir := fs.String("profile-dir", "", "also write per-experiment CPU and heap profiles into this directory")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := perf.Options{
		BenchTime:  *benchtime,
		Only:       *only,
		ProfileDir: *profileDir,
		Now:        time.Now(),
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "perfsnap:", line) }
	}
	snap, err := perf.Collect(context.Background(), suite.Experiments(), opts)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		if path, err = perf.NextSnapshotPath(*dir); err != nil {
			return err
		}
	}
	data, err := snap.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Print(snap.Summary())
	fmt.Printf("wrote %s (%d experiments)\n", path, len(snap.Results))
	return nil
}

// cmdPerfDiff compares two performance snapshots and exits nonzero on
// regression — the seam CI and hot-path PRs assert against. With
// -schema-check it instead validates a single snapshot file.
func cmdPerfDiff(args []string) error {
	fs := flag.NewFlagSet("perfdiff", flag.ExitOnError)
	thresholdFlag := fs.String("threshold", "", `per-metric relative thresholds, "metric=rel,..." overlaid on the defaults (ns_per_op=0.3, allocs_per_op=0.1, bytes_per_op=0.15); negative values guard throughput metrics against decreases; "none" disables failing entirely`)
	verbose := fs.Bool("v", false, "also print unchanged and unguarded metrics")
	schemaCheck := fs.Bool("schema-check", false, "validate one snapshot file instead of diffing two")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemaCheck {
		if fs.NArg() != 1 {
			return fmt.Errorf("perfdiff: usage: mntbench perfdiff -schema-check FILE.json")
		}
		snap, err := readSnapshot(fs.Arg(0))
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok — schema %d, %d experiments, env %s\n",
			fs.Arg(0), snap.Schema, len(snap.Results), snap.Env.String())
		return nil
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("perfdiff: usage: mntbench perfdiff [-threshold ...] OLD.json NEW.json")
	}
	th, err := perf.ParseThresholds(*thresholdFlag)
	if err != nil {
		return err
	}
	oldSnap, err := readSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}
	rep := perf.Diff(oldSnap, newSnap, th)
	fmt.Print(rep.Text(*verbose))
	if rep.Failed() {
		return fmt.Errorf("performance regression: %s is worse than %s", fs.Arg(1), fs.Arg(0))
	}
	return nil
}

func readSnapshot(path string) (*perf.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := perf.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}
