package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed. The pipe is drained concurrently so large
// reports cannot deadlock the writer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestSelftestCommand(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return cmdSelftest([]string{
			"-seed", "1", "-n", "2", "-flows", "ortho",
			"-repro-dir", dir, "-q",
		})
	})
	if err != nil {
		t.Fatalf("selftest: %v\n%s", err, out)
	}
	if !strings.Contains(out, "violations: none") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

func TestSelftestCommandJSON(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return cmdSelftest([]string{
			"-seed", "1", "-n", "2", "-flows", "qcaone_2ddwave_ortho",
			"-repro-dir", dir, "-json", "-q",
		})
	})
	if err != nil {
		t.Fatalf("selftest -json: %v\n%s", err, out)
	}
	if !strings.Contains(out, `"seed": 1`) || !strings.Contains(out, `"flows"`) {
		t.Fatalf("not a JSON report:\n%s", out)
	}
}

func TestSelftestCommandBadFlowFilter(t *testing.T) {
	if err := cmdSelftest([]string{"-flows", "nosuchflow", "-q"}); err == nil {
		t.Fatal("bogus flow filter accepted")
	}
}

func TestSelftestReplayMissingFile(t *testing.T) {
	if err := cmdSelftest([]string{"-replay", filepath.Join(t.TempDir(), "nope.json"), "-q"}); err == nil {
		t.Fatal("missing replay artifact accepted")
	}
}
