package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// cmdTail renders a campaign journal as live progress lines: one line
// per finished job with running throughput and ETA, plus campaign
// start/done banners. With -follow it keeps watching the file for new
// events, turning any terminal into a live campaign dashboard without
// the HTTP sidecar.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	follow := fs.Bool("follow", false, "keep watching the journal for new events (stop with Ctrl-C)")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval while following")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("tail: usage: mntbench tail [-follow] [-poll 500ms] FILE.jsonl")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r := bufio.NewReader(f)
	st := newTailState()
	// partial accumulates a line across polls: the writer flushes whole
	// lines but a read can still land mid-line, and in -follow mode the
	// final line may simply not be finished yet.
	var partial []byte
	for {
		chunk, rerr := r.ReadBytes('\n')
		partial = append(partial, chunk...)
		if rerr == nil {
			renderTailLine(os.Stdout, st, partial)
			partial = partial[:0]
			continue
		}
		if !errors.Is(rerr, io.EOF) {
			return rerr
		}
		if !*follow {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*poll):
		}
	}
}

// tailState tracks per-campaign progress across events so job_done
// lines can carry running throughput and ETA. All timing derives from
// event timestamps, never the local clock, so replaying a finished
// journal renders the same rates the live run showed.
type tailState struct {
	campaigns map[string]*tailCampaign
}

type tailCampaign struct {
	total int
	done  int
	start int64 // campaign_start timestamp, unix nanoseconds
}

func newTailState() *tailState {
	return &tailState{campaigns: make(map[string]*tailCampaign)}
}

// renderTailLine parses one journal line and renders it; malformed
// lines are reported to stderr and skipped so a damaged tail never
// kills a live view.
func renderTailLine(w io.Writer, st *tailState, line []byte) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return
	}
	var e obs.Event
	if err := json.Unmarshal(line, &e); err != nil {
		fmt.Fprintf(os.Stderr, "tail: skipping malformed journal line: %v\n", err)
		return
	}
	renderTailEvent(w, st, e)
}

// renderTailEvent renders one journal event as the tail view's output.
func renderTailEvent(w io.Writer, st *tailState, e obs.Event) {
	switch e.Type {
	case obs.EventCampaignStart:
		st.campaigns[e.Campaign] = &tailCampaign{total: e.Total, start: e.Time}
		fmt.Fprintf(w, "campaign %s started: library=%s benchmarks=%d jobs=%d workers=%d\n",
			e.Campaign, e.Library, e.Benchmarks, e.Total, e.Workers)
	case obs.EventJobDone:
		c := st.campaigns[e.Campaign]
		var counter, rate string
		if c != nil {
			c.done++
			counter = fmt.Sprintf("[%d/%d] ", c.done, c.total)
			if wall := time.Duration(e.Time - c.start); wall > 0 && c.start > 0 && e.Time > 0 {
				throughput := float64(c.done) / wall.Seconds()
				rate = fmt.Sprintf("  %.1f flows/s", throughput)
				if remaining := c.total - c.done; remaining > 0 && throughput > 0 {
					eta := time.Duration(float64(remaining) / throughput * float64(time.Second))
					rate += fmt.Sprintf(" ETA %v", eta.Round(time.Second))
				}
			}
		}
		elapsed := time.Duration(e.ElapsedUS) * time.Microsecond
		if e.Outcome != string(core.OutcomeOK) {
			fmt.Fprintf(w, "%s%-10s %-14s %-34s skipped: %s (%v)%s\n",
				counter, e.Set, e.Benchmark, e.Flow, e.Outcome, elapsed, rate)
			return
		}
		fmt.Fprintf(w, "%s%-10s %-14s %-34s %4dx%-4d A=%-8d (%v)%s\n",
			counter, e.Set, e.Benchmark, e.Flow, e.Width, e.Height, e.Area, elapsed, rate)
	case obs.EventCampaignDone:
		status := "done"
		if e.Canceled {
			status = "canceled"
		}
		fmt.Fprintf(w, "campaign %s %s: %d jobs finished, %d layouts, %d failures\n",
			e.Campaign, status, e.Done, e.Entries, e.Failures)
		delete(st.campaigns, e.Campaign)
	}
	// job_start events stay silent: the done line carries everything.
}

// cmdJournal dispatches the journal analysis subcommands: summary
// (recompute the campaign outcome table from events), verify (integrity
// and completeness check), and jobs (list job keys, the resume seam).
func cmdJournal(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("journal: usage: mntbench journal summary|verify|jobs [flags] FILE.jsonl")
	}
	switch args[0] {
	case "summary":
		return cmdJournalSummary(args[1:])
	case "verify":
		return cmdJournalVerify(args[1:])
	case "jobs":
		return cmdJournalJobs(args[1:])
	}
	return fmt.Errorf("journal: unknown subcommand %q (want summary, verify, or jobs)", args[0])
}

// readReplay loads and replays one journal file.
func readReplay(path string) (*core.JournalReplay, error) {
	events, truncated, err := obs.ReadJournalFile(path)
	if err != nil {
		return nil, err
	}
	return core.ReplayJournal(events, truncated), nil
}

func cmdJournalSummary(args []string) error {
	fs := flag.NewFlagSet("journal summary", flag.ExitOnError)
	dir := fs.String("dir", "", "cross-check ok jobs against this generate output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("journal summary: usage: mntbench journal summary [-dir DIR] FILE.jsonl")
	}
	rep, err := readReplay(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(core.RenderJournalSummary(rep))
	if *dir != "" {
		n, err := core.CheckReplayAgainstDir(rep, *dir)
		if err != nil {
			return err
		}
		fmt.Printf("cross-check: %d layouts in %s match the journal\n", n, *dir)
	}
	return nil
}

func cmdJournalVerify(args []string) error {
	fs := flag.NewFlagSet("journal verify", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("journal verify: usage: mntbench journal verify FILE.jsonl")
	}
	rep, err := readReplay(fs.Arg(0))
	if err != nil {
		return err
	}
	text, ok := core.RenderJournalVerify(rep)
	fmt.Print(text)
	if !ok {
		return fmt.Errorf("journal verify: %s is incomplete or damaged", fs.Arg(0))
	}
	return nil
}

func cmdJournalJobs(args []string) error {
	fs := flag.NewFlagSet("journal jobs", flag.ExitOnError)
	done := fs.Bool("done", false, "finished jobs, the resume seam (default)")
	okOnly := fs.Bool("ok", false, "only jobs that produced a layout")
	unfinished := fs.Bool("unfinished", false, "jobs that started but never finished")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("journal jobs: usage: mntbench journal jobs [-done|-ok|-unfinished] FILE.jsonl")
	}
	if *okOnly && *unfinished || *done && *unfinished || *done && *okOnly {
		return fmt.Errorf("journal jobs: -done, -ok, and -unfinished are mutually exclusive")
	}
	rep, err := readReplay(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, c := range rep.Campaigns {
		var keys []core.JobKey
		switch {
		case *okOnly:
			keys = c.OKKeys()
		case *unfinished:
			keys = c.Unfinished()
		default:
			keys = c.DoneKeys()
		}
		for _, k := range keys {
			fmt.Println(k.String())
		}
	}
	return nil
}
