// Customflow demonstrates a full custom design flow for the Bestagon
// silicon-dangling-bond library: parse a structural Verilog netlist,
// choose the input order, generate a Cartesian 2DDWave layout with
// ortho, map it to the hexagonal ROW-clocked grid with the 45° transform,
// shrink it with post-layout optimization, expand it to SiDB dots, and
// verify every intermediate step.
package main

import (
	"fmt"
	"log"

	"repro/internal/gatelib"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/inord"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/verify"
	"repro/internal/verilog"
)

const src = `
// 1-bit full adder, AOIG style
module fulladder(a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire axb;
  assign axb  = a ^ b;
  assign sum  = axb ^ cin;
  assign cout = (a & b) | (axb & cin);
endmodule
`

func main() {
	// Parse the netlist.
	n, err := verilog.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:        ", n.ComputeStats())

	// Bestagon provides native XOR tiles, so preparation keeps the XORs.
	prepared, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		log.Fatal(err)
	}

	// Input-ordering optimization picks the PI permutation that yields
	// the smallest ortho layout.
	cart, order, err := inord.Place(prepared, inord.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ortho+InOrd:   ", cart.ComputeStats(), "input order:", order)
	if err := verify.Check(cart, n); err != nil {
		log.Fatal("cartesian check: ", err)
	}

	// 45° hexagonalization: Cartesian 2DDWave -> hexagonal ROW.
	hex, err := hexagonal.Map(cart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("45° hexagonal: ", hex.ComputeStats())
	if err := verify.Check(hex, n); err != nil {
		log.Fatal("hexagonal check: ", err)
	}

	// Post-layout optimization on the hexagonal layout.
	opt, err := postlayout.Optimize(hex, postlayout.Options{})
	if err != nil {
		log.Fatal(err)
	}
	opt.Library = gatelib.Bestagon.Name
	fmt.Println("PLO:           ", opt.ComputeStats())
	if err := verify.Check(opt, n); err != nil {
		log.Fatal("optimized check: ", err)
	}
	if err := gatelib.Bestagon.CheckLayout(opt); err != nil {
		log.Fatal(err)
	}

	// Expand to silicon dangling bonds and report the physical footprint.
	dots, err := gatelib.Bestagon.Expand(opt)
	if err != nil {
		log.Fatal(err)
	}
	w, h := dots.BoundingBox()
	fmt.Printf("SiDB expansion: %d dots, %dx%d lattice sites, %.1f nm²\n",
		dots.NumCells(), w, h, dots.AreaNM2())

	// Same flow, plain ortho without InOrd, for comparison.
	plain, err := ortho.Place(prepared, ortho.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plainHex, err := hexagonal.Map(plain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("area: plain ortho+45° = %d, optimized flow = %d (%.1f%%)\n",
		plainHex.Area(), opt.Area(), 100*float64(opt.Area())/float64(plainHex.Area()))
}
