// Webserver runs the MNT Bench web interface (Figure 1 of the paper) on
// a freshly generated layout database: filter panes for gate library,
// clocking scheme, physical design algorithm, and optimizations, with
// .fgl / .v / ZIP downloads.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	set := flag.String("set", "Trindade16", "benchmark set to generate at startup")
	flag.Parse()

	benches := bench.BySet(*set)
	if len(benches) == 0 {
		log.Fatalf("unknown benchmark set %q", *set)
	}
	db := &core.Database{}
	for _, lib := range gatelib.All() {
		part := core.Generate(context.Background(), benches, lib, core.Limits{}, func(p core.Progress) { fmt.Fprintln(os.Stderr, p.String()) })
		db.Entries = append(db.Entries, part.Entries...)
	}
	fmt.Printf("MNT Bench: %d layouts ready — http://localhost%s/\n", len(db.Entries), *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(db)))
}
