// Simulate demonstrates the physical-layer validation stack beneath MNT
// Bench layouts: a half adder is laid out and optimized for QCA ONE,
// expanded to QCA cells, simulated with the clocked bistable engine
// against its logic, exported to QCADesigner format — and its Bestagon
// counterpart's dangling-bond arrangement is charge-checked with the
// SiDB ground-state model.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/export"
	"repro/internal/gatelib"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/qcasim"
	"repro/internal/sidbsim"
	"repro/internal/verify"
)

func main() {
	n := bench.HalfAdder()

	// 1. QCA ONE layout: ortho construction plus post-layout optimization.
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		log.Fatal(err)
	}
	placed, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lay, err := postlayout.Optimize(placed, postlayout.Options{Timeout: 20 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.Check(lay, n); err != nil {
		log.Fatal(err)
	}
	lay.Library = gatelib.QCAOne.Name
	fmt.Println("optimized layout:", lay.ComputeStats())

	// 2. Expand to QCA cells and simulate physically.
	cells, err := gatelib.ExpandQCAOne(lay)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := qcasim.New(cells)
	if err != nil {
		log.Fatal(err)
	}
	simTT, err := engine.TruthTable()
	if err != nil {
		log.Fatal(err)
	}
	ref, err := verify.ExtractNetwork(lay)
	if err != nil {
		log.Fatal(err)
	}
	refTT, err := ref.TruthTable()
	if err != nil {
		log.Fatal(err)
	}
	match := 0
	for r := range simTT {
		ok := true
		for c := range simTT[r] {
			if simTT[r][c] != refTT[r][c] {
				ok = false
			}
		}
		if ok {
			match++
		}
	}
	fmt.Printf("bistable QCA simulation: %d cells, %d/%d patterns match the logic\n",
		cells.NumCells(), match, len(simTT))

	// 3. Export for QCADesigner.
	f, err := os.Create("ha.qca")
	if err != nil {
		log.Fatal(err)
	}
	if err := export.WriteQCA(f, cells); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("wrote ha.qca")

	// 4. Bestagon side: hexagonal layout, SiDB dots, charge ground state.
	bprep, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		log.Fatal(err)
	}
	cart, err := ortho.Place(bprep, ortho.Options{})
	if err != nil {
		log.Fatal(err)
	}
	hex, err := hexagonal.Map(cart)
	if err != nil {
		log.Fatal(err)
	}
	dots, err := gatelib.ExpandBestagon(hex)
	if err != nil {
		log.Fatal(err)
	}
	var sqd strings.Builder
	if err := export.WriteSQD(&sqd, dots); err != nil {
		log.Fatal(err)
	}
	coords, err := export.ReadSQDDots(strings.NewReader(sqd.String()))
	if err != nil {
		log.Fatal(err)
	}
	limit := len(coords)
	if limit > 14 {
		limit = 14 // exhaustive charge search scope
	}
	var dbs []sidbsim.DB
	for _, c := range coords[:limit] {
		dbs = append(dbs, sidbsim.DB{N: c[0], M: c[1], L: c[2]})
	}
	sys, err := sidbsim.NewSystem(dbs, sidbsim.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	gs, err := sys.GroundState()
	if err != nil {
		log.Fatal(err)
	}
	negative := 0
	for _, q := range gs.Charges {
		if q == -1 {
			negative++
		}
	}
	fmt.Printf("SiDB charge ground state over %d dots: %d DB-, E = %.3f eV (critical separation: %d dimer rows)\n",
		len(dbs), negative, gs.EnergyEV, sidbsim.CriticalSeparation(sidbsim.Defaults()))
}
