// Quickstart: build a logic network, run the scalable ortho physical
// design flow for the QCA ONE library, optimize, verify, and write the
// result as a .fgl file and as structural Verilog.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fgl"
	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/verify"
	"repro/internal/verilog"
)

func main() {
	// 1. Describe the function: a 2:1 multiplexer.
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	f := n.AddOr(n.AddAnd(a, n.AddNot(s)), n.AddAnd(b, s))
	n.AddPO(f, "f")
	fmt.Println("network:", n.ComputeStats())

	// 2. Prepare for the QCA ONE gate library (decompose unsupported
	// functions, bound fanout) and generate a 2DDWave layout with ortho.
	prepared, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		log.Fatal(err)
	}
	lay, err := ortho.Place(prepared, ortho.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ortho:  ", lay.ComputeStats())

	// 3. Shrink it with post-layout optimization.
	opt, err := postlayout.Optimize(lay, postlayout.Options{})
	if err != nil {
		log.Fatal(err)
	}
	opt.Library = gatelib.QCAOne.Name
	fmt.Println("PLO:    ", opt.ComputeStats())

	// 4. Verify: design rules + functional equivalence.
	if err := verify.Check(opt, n); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verify:  DRC clean, layout equivalent to network")

	// 5. Physical size under QCA ONE (20 nm cell pitch, 5x5 cells/tile).
	fmt.Printf("physical: %.0f nm²\n", gatelib.QCAOne.LayoutAreaNM2(opt))

	// 6. Serialize.
	if err := writeFile("mux21.fgl", func(fh *os.File) error { return fgl.Write(fh, opt) }); err != nil {
		log.Fatal(err)
	}
	if err := writeFile("mux21.v", func(fh *os.File) error { return verilog.Write(fh, n) }); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote mux21.fgl and mux21.v")
}

func writeFile(name string, write func(*os.File) error) error {
	fh, err := os.Create(name)
	if err != nil {
		return err
	}
	defer fh.Close()
	return write(fh)
}
