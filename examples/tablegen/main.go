// Tablegen regenerates the paper's Table I ("most efficient layouts
// w.r.t. area discovered thus far") for both gate libraries over the
// small benchmark suites, printing the per-function best flow, its area,
// and the ΔA improvement over the plain ortho baseline.
//
// Pass -set/-full to widen coverage (see cmd/mntbench table for the full
// command-line interface).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gatelib"
)

func main() {
	set := flag.String("set", "Trindade16", "benchmark set to tabulate")
	verbose := flag.Bool("v", false, "print per-flow progress")
	flag.Parse()

	benches := bench.BySet(*set)
	if len(benches) == 0 {
		log.Fatalf("unknown benchmark set %q", *set)
	}
	var progress func(core.Progress)
	if *verbose {
		progress = func(p core.Progress) { fmt.Fprintln(os.Stderr, p.String()) }
	}
	for _, lib := range gatelib.All() {
		db := core.Generate(context.Background(), benches, lib, core.Limits{}, progress)
		rows := db.TableI(benches, lib)
		fmt.Print(core.RenderTableI(rows, lib))
		fmt.Printf("(%d layouts generated, %d flows skipped)\n\n", len(db.Entries), len(db.Failures))
	}
}
