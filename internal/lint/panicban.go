package lint

import (
	"go/ast"
	"strings"
)

// PanicBan returns the panicban analyzer: library packages under
// internal/ must not panic except inside Must*/must*-prefixed helpers,
// whose name advertises the contract. The engine runs thousands of
// flows per campaign; a panic in one flow must be an explicit,
// greppable invariant assertion, not an ambient control-flow habit —
// expected failures travel as errors and are classified by
// core.ClassifyOutcome.
func PanicBan() *Analyzer {
	return &Analyzer{
		Name: "panicban",
		Doc:  "no panic in internal/ library packages outside Must*/must* helpers",
		Run:  runPanicBan,
	}
}

func runPanicBan(p *Package) []Diagnostic {
	if !p.InDir("internal") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			exempt := isFunc && isMustName(fd.Name.Name)
			if exempt {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					out = append(out, Diagnostic{
						Analyzer: "panicban",
						Position: f.Fset.Position(call.Pos()),
						Message:  "panic outside a Must*/must* helper; return an error or move the assertion into a must-prefixed helper",
					})
				}
				return true
			})
		}
	}
	return out
}

func isMustName(name string) bool {
	return strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must")
}
