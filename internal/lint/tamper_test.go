package lint

import (
	"strings"
	"testing"
)

// tamperCases injects one true-positive per v2 analyzer into a
// synthetic module. Each snippet carries a //GUARD marker line directly
// above the offending statement: the unguarded variant must fire, and
// replacing the marker with a reasoned //lint:ignore must silence it.
// Together the two runs prove both the detection and the only
// sanctioned escape hatch.
var tamperCases = []struct {
	analyzer string
	src      string
}{
	{
		analyzer: "lockbalance",
		src: `package lib

import "sync"

var mu sync.Mutex
var v int

func Get() int {
	//GUARD
	mu.Lock()
	return v
}
`,
	},
	{
		analyzer: "ctxloop",
		src: `package lib

import "context"

func Run(ctx context.Context, jobs chan int, out chan int) {
	go func() {
		_ = ctx.Err()
	}()
	//GUARD
	for j := range jobs {
		out <- j
	}
}
`,
	},
	{
		analyzer: "goroleak",
		src: `package lib

import "context"

func Run(ctx context.Context, done chan struct{}) {
	//GUARD
	go func() {
		done <- struct{}{}
	}()
	<-done
}
`,
	},
	{
		analyzer: "hotalloc",
		src: `package lib

import "fmt"

// Label is on the hot path.
//
//perf:hot
func Label(n int) string {
	//GUARD
	return fmt.Sprintf("n=%d", n)
}
`,
	},
	{
		analyzer: "atomicmix",
		src: `package lib

import "sync/atomic"

var n int64

func Incr() {
	atomic.AddInt64(&n, 1)
}

func Read() int64 {
	//GUARD
	return n
}
`,
	},
}

func TestTamperDetection(t *testing.T) {
	for _, tc := range tamperCases {
		t.Run(tc.analyzer, func(t *testing.T) {
			unguarded := strings.Replace(tc.src, "//GUARD\n", "", 1)
			diags := loadTempModule(t, map[string]string{"internal/lib/lib.go": unguarded})
			if n := countAnalyzer(diags, tc.analyzer); n < 1 {
				t.Errorf("injected %s violation not detected; diags: %v", tc.analyzer, diags)
			}

			guarded := strings.Replace(tc.src, "//GUARD",
				"//lint:ignore "+tc.analyzer+" tamper-test fixture exercising the escape hatch", 1)
			diags = loadTempModule(t, map[string]string{"internal/lib/lib.go": guarded})
			if n := countAnalyzer(diags, tc.analyzer); n != 0 {
				t.Errorf("reasoned ignore did not suppress %s; diags: %v", tc.analyzer, diags)
			}
		})
	}
}
