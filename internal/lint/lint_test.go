package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted substrings of a // want "..." comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want comment: a file:line plus an expected
// message substring.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// runFixture loads testdata/src/<name>, runs the full analyzer suite,
// and asserts that the emitted diagnostics and the fixture's // want
// comments match one-to-one by file, line, and message substring.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	diags := Run(pkgs, Analyzers())

	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					line := f.Fset.Position(c.Pos()).Line
					ms := wantRe.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Errorf("%s:%d: malformed want comment %q", f.Path, line, c.Text)
						continue
					}
					for _, m := range ms {
						wants = append(wants, &expectation{file: f.Path, line: line, substr: m[1]})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", name)
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if strings.Contains(d.Message, w.substr) || strings.Contains(d.String(), w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
	return diags
}

// requireAnalyzerFindings asserts that at least min findings of the
// named analyzer carry exact positions inside the fixture.
func requireAnalyzerFindings(t *testing.T, diags []Diagnostic, analyzer string, min int) {
	t.Helper()
	n := 0
	for _, d := range diags {
		if d.Analyzer != analyzer {
			continue
		}
		if d.Position.Filename == "" || d.Position.Line <= 0 || d.Position.Column <= 0 {
			t.Errorf("%s diagnostic lacks a full position: %+v", analyzer, d)
		}
		n++
	}
	if n < min {
		t.Errorf("analyzer %s: %d true-positive findings, want at least %d", analyzer, n, min)
	}
}

func TestCtxFirstFixture(t *testing.T) {
	diags := runFixture(t, "ctxfirst")
	requireAnalyzerFindings(t, diags, "ctxfirst", 4)
}

func TestErrCmpFixture(t *testing.T) {
	diags := runFixture(t, "errcmp")
	requireAnalyzerFindings(t, diags, "errcmp", 5)
}

func TestObsLabelFixture(t *testing.T) {
	diags := runFixture(t, "obslabel")
	requireAnalyzerFindings(t, diags, "obslabel", 7)
}

func TestPrintBanFixture(t *testing.T) {
	diags := runFixture(t, "printban")
	requireAnalyzerFindings(t, diags, "printban", 4)
}

func TestPanicBanFixture(t *testing.T) {
	diags := runFixture(t, "panicban")
	requireAnalyzerFindings(t, diags, "panicban", 2)
}

func TestSeedArgFixture(t *testing.T) {
	diags := runFixture(t, "seedarg")
	requireAnalyzerFindings(t, diags, "seedarg", 4)
}

func TestLockBalanceFixture(t *testing.T) {
	diags := runFixture(t, "lockbalance")
	requireAnalyzerFindings(t, diags, "lockbalance", 5)
}

func TestCtxLoopFixture(t *testing.T) {
	diags := runFixture(t, "ctxloop")
	requireAnalyzerFindings(t, diags, "ctxloop", 2)
}

func TestGoroLeakFixture(t *testing.T) {
	diags := runFixture(t, "goroleak")
	requireAnalyzerFindings(t, diags, "goroleak", 2)
}

func TestHotAllocFixture(t *testing.T) {
	diags := runFixture(t, "hotalloc")
	requireAnalyzerFindings(t, diags, "hotalloc", 7)
}

func TestAtomicMixFixture(t *testing.T) {
	diags := runFixture(t, "atomicmix")
	requireAnalyzerFindings(t, diags, "atomicmix", 2)
}

// TestTypeInfoFixture covers the resolution edge cases the v2 engine
// exists for: decoy types named like stdlib ones must not match, and
// import aliases must not hide real matches.
func TestTypeInfoFixture(t *testing.T) {
	diags := runFixture(t, "typeinfo")
	requireAnalyzerFindings(t, diags, "atomicmix", 1)
	requireAnalyzerFindings(t, diags, "lockbalance", 1)
}

// TestTypeInfoAvailable asserts the loader attaches go/types results to
// module packages: the repository's own internal/lint must type-check
// with zero errors, and fixture trees must still get (possibly partial)
// Info rather than nil.
func TestTypeInfoAvailable(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if p.Dir != "internal/lint" {
			continue
		}
		if p.Info == nil || p.Types == nil {
			t.Fatalf("internal/lint has no type info")
		}
		if len(p.TypeErrors) != 0 {
			t.Errorf("internal/lint type errors: %v", p.TypeErrors)
		}
		if p.Types.Path() == "" {
			t.Errorf("internal/lint has empty types path")
		}
		return
	}
	t.Fatal("internal/lint package not loaded")
}

// TestLoaderSkips proves the loader ignores generated files and nested
// testdata trees: the skip fixture's only loadable file is lib.go, and
// the panicban violations in gen.go and testdata/inner.go never load.
func TestLoaderSkips(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "skip"))
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		for _, f := range p.Files {
			paths = append(paths, f.Path)
		}
	}
	want := []string{"internal/lib/lib.go"}
	if len(paths) != 1 || paths[0] != want[0] {
		t.Fatalf("loaded files = %v, want %v", paths, want)
	}
	if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
		t.Errorf("skip fixture findings: %v", diags)
	}
}

func TestIgnoreDirectives(t *testing.T) {
	diags := runFixture(t, "ignore")
	// Two panics are suppressed, one stays because the directive names
	// the wrong analyzer.
	requireAnalyzerFindings(t, diags, "panicban", 1)
}

func TestMalformedIgnoreReported(t *testing.T) {
	dir := t.TempDir()
	src := `package lib

func Broken() {
	//lint:ignore panicban
	panic("still reported")
}
`
	if err := os.MkdirAll(filepath.Join(dir, "internal", "lib"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "internal", "lib", "lib.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	var gotMalformed, gotPanic bool
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "malformed ignore directive") {
			gotMalformed = true
		}
		if d.Analyzer == "panicban" {
			gotPanic = true
		}
	}
	if !gotMalformed {
		t.Errorf("malformed //lint:ignore not reported; diags: %v", diags)
	}
	if !gotPanic {
		t.Errorf("reasonless //lint:ignore suppressed the finding anyway; diags: %v", diags)
	}
}

// loadTempModule writes the given root-relative files into a temp dir,
// loads it, and runs the full analyzer suite.
func loadTempModule(t *testing.T, files map[string]string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		abs := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(abs, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkgs, Analyzers())
}

// countAnalyzer returns how many diagnostics the named analyzer emitted.
func countAnalyzer(diags []Diagnostic, analyzer string) int {
	n := 0
	for _, d := range diags {
		if d.Analyzer == analyzer {
			n++
		}
	}
	return n
}

// TestIgnoreCoversMultilineStatement: a standalone directive line must
// cover the full extent of the statement below it, not just its first
// line — here the errcmp finding anchors to the argument two lines
// down.
func TestIgnoreCoversMultilineStatement(t *testing.T) {
	diags := loadTempModule(t, map[string]string{
		"internal/lib/lib.go": `package lib

import "fmt"

func Wrap(err error) error {
	//lint:ignore errcmp flattening is deliberate for the legacy log format
	return fmt.Errorf("op failed: %v",
		err)
}
`,
	})
	if n := countAnalyzer(diags, "errcmp"); n != 0 {
		t.Errorf("errcmp findings = %d, want 0 (directive should cover the whole statement); diags: %v", n, diags)
	}
}

// TestIgnoreCommaSeparated: one directive naming several analyzers
// suppresses each of them.
func TestIgnoreCommaSeparated(t *testing.T) {
	diags := loadTempModule(t, map[string]string{
		"internal/lib/lib.go": `package lib

import (
	"errors"
	"fmt"
)

var ErrBad = errors.New("bad")

func Debug(err error) {
	//lint:ignore printban,errcmp transitional debug helper, tracked for removal
	fmt.Println(err == ErrBad)
}
`,
	})
	if n := countAnalyzer(diags, "printban"); n != 0 {
		t.Errorf("printban findings = %d, want 0; diags: %v", n, diags)
	}
	if n := countAnalyzer(diags, "errcmp"); n != 0 {
		t.Errorf("errcmp findings = %d, want 0; diags: %v", n, diags)
	}
}

// TestIgnoreUnknownAnalyzerReported: a directive naming an analyzer
// that is not in the catalogue is itself a finding, and suppresses
// nothing.
func TestIgnoreUnknownAnalyzerReported(t *testing.T) {
	diags := loadTempModule(t, map[string]string{
		"internal/lib/lib.go": `package lib

func Boom() {
	//lint:ignore nosuchcheck this analyzer does not exist
	panic("still reported")
}
`,
	})
	var gotUnknown bool
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, `unknown analyzer "nosuchcheck"`) {
			gotUnknown = true
		}
	}
	if !gotUnknown {
		t.Errorf("unknown-analyzer directive not reported; diags: %v", diags)
	}
	if n := countAnalyzer(diags, "panicban"); n != 1 {
		t.Errorf("panicban findings = %d, want 1 (bogus directive must not suppress); diags: %v", n, diags)
	}
}

// TestRepositoryIsClean is the meta-test of the tier-1+ gate: mntlint
// must report zero findings on the repository itself.
func TestRepositoryIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the test working directory")
		}
		dir = parent
	}
}
