package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted substrings of a // want "..." comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want comment: a file:line plus an expected
// message substring.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// runFixture loads testdata/src/<name>, runs the full analyzer suite,
// and asserts that the emitted diagnostics and the fixture's // want
// comments match one-to-one by file, line, and message substring.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	diags := Run(pkgs, Analyzers())

	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					line := f.Fset.Position(c.Pos()).Line
					ms := wantRe.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Errorf("%s:%d: malformed want comment %q", f.Path, line, c.Text)
						continue
					}
					for _, m := range ms {
						wants = append(wants, &expectation{file: f.Path, line: line, substr: m[1]})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", name)
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if strings.Contains(d.Message, w.substr) || strings.Contains(d.String(), w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
	return diags
}

// requireAnalyzerFindings asserts that at least min findings of the
// named analyzer carry exact positions inside the fixture.
func requireAnalyzerFindings(t *testing.T, diags []Diagnostic, analyzer string, min int) {
	t.Helper()
	n := 0
	for _, d := range diags {
		if d.Analyzer != analyzer {
			continue
		}
		if d.Position.Filename == "" || d.Position.Line <= 0 || d.Position.Column <= 0 {
			t.Errorf("%s diagnostic lacks a full position: %+v", analyzer, d)
		}
		n++
	}
	if n < min {
		t.Errorf("analyzer %s: %d true-positive findings, want at least %d", analyzer, n, min)
	}
}

func TestCtxFirstFixture(t *testing.T) {
	diags := runFixture(t, "ctxfirst")
	requireAnalyzerFindings(t, diags, "ctxfirst", 4)
}

func TestErrCmpFixture(t *testing.T) {
	diags := runFixture(t, "errcmp")
	requireAnalyzerFindings(t, diags, "errcmp", 5)
}

func TestObsLabelFixture(t *testing.T) {
	diags := runFixture(t, "obslabel")
	requireAnalyzerFindings(t, diags, "obslabel", 6)
}

func TestPrintBanFixture(t *testing.T) {
	diags := runFixture(t, "printban")
	requireAnalyzerFindings(t, diags, "printban", 4)
}

func TestPanicBanFixture(t *testing.T) {
	diags := runFixture(t, "panicban")
	requireAnalyzerFindings(t, diags, "panicban", 2)
}

func TestSeedArgFixture(t *testing.T) {
	diags := runFixture(t, "seedarg")
	requireAnalyzerFindings(t, diags, "seedarg", 4)
}

func TestIgnoreDirectives(t *testing.T) {
	diags := runFixture(t, "ignore")
	// Two panics are suppressed, one stays because the directive names
	// the wrong analyzer.
	requireAnalyzerFindings(t, diags, "panicban", 1)
}

func TestMalformedIgnoreReported(t *testing.T) {
	dir := t.TempDir()
	src := `package lib

func Broken() {
	//lint:ignore panicban
	panic("still reported")
}
`
	if err := os.MkdirAll(filepath.Join(dir, "internal", "lib"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "internal", "lib", "lib.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	var gotMalformed, gotPanic bool
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "malformed ignore directive") {
			gotMalformed = true
		}
		if d.Analyzer == "panicban" {
			gotPanic = true
		}
	}
	if !gotMalformed {
		t.Errorf("malformed //lint:ignore not reported; diags: %v", diags)
	}
	if !gotPanic {
		t.Errorf("reasonless //lint:ignore suppressed the finding anyway; diags: %v", diags)
	}
}

// TestRepositoryIsClean is the meta-test of the tier-1+ gate: mntlint
// must report zero findings on the repository itself.
func TestRepositoryIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the test working directory")
		}
		dir = parent
	}
}
