// Package lint is the project-invariant static-analysis suite behind
// cmd/mntlint and the tier-1+ gate. It is deliberately stdlib-only
// (go/parser, go/ast, go/token): the module has no dependencies and the
// linter must not introduce one.
//
// The framework loads every Go source file of the module into per-
// directory Packages, runs a set of Analyzers over them, and reports
// Diagnostics with file:line:column positions. Two source-level
// directives interact with the analyzers:
//
//   - "//lint:ignore <analyzer> <reason>" suppresses that analyzer's
//     findings on the same line, or — for a standalone comment line — on
//     the next source line.
//   - "//lint:bounded" in a function's doc comment declares that the
//     function's results are drawn from a bounded set, which the
//     obslabel analyzer accepts as a metric label value.
//
// See docs/STATIC_ANALYSIS.md for the analyzer catalogue and the rules
// for adding a new one.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// TextEdit is one byte-range replacement inside a root-relative file.
// Start and End are byte offsets into the file's source; an insertion
// has Start == End.
type TextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// SuggestedFix is one self-contained remediation for a diagnostic:
// applying all its edits (and gofmt-ing the result) resolves the
// finding. Fixes must be safe to apply mechanically — behavior-
// preserving or strictly more correct.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Diagnostic is one finding: an analyzer, a source position, a
// human-readable message, and optionally machine-applicable fixes
// (`mntlint -fix`).
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
	Fixes    []SuggestedFix `json:"fixes,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check run over a loaded package.
type Analyzer struct {
	// Name is the identifier used by -disable flags and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of what the analyzer enforces.
	Doc string
	// Run inspects one package and returns its raw findings; ignore
	// directives are applied by the framework afterwards.
	Run func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in stable order: the six syntactic
// v1 analyzers, then the five type-aware v2 analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxFirst(),
		ErrCmp(),
		ObsLabel(),
		PrintBan(),
		PanicBan(),
		SeedArg(),
		LockBalance(),
		CtxLoop(),
		GoroLeak(),
		HotAlloc(),
		AtomicMix(),
	}
}

// Run executes the given analyzers over the given packages, drops
// findings suppressed by //lint:ignore directives, and returns the rest
// in a fully deterministic order (file, line, column, analyzer,
// message) so -json output is byte-stable for CI diffing. Malformed
// ignore directives (missing analyzer name or reason) and directives
// naming analyzers that do not exist in the catalogue are themselves
// reported, so suppressions stay auditable and cannot silently rot.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := knownAnalyzerNames()
	var out []Diagnostic
	for _, p := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			raw = append(raw, a.Run(p)...)
		}
		for _, f := range p.Files {
			raw = append(raw, f.malformedIgnores...)
			for _, ig := range f.ignores {
				if !known[ig.analyzer] {
					raw = append(raw, Diagnostic{
						Analyzer: "lint",
						Position: ig.pos,
						Message:  fmt.Sprintf("ignore directive names unknown analyzer %q (see mntlint -list)", ig.analyzer),
					})
				}
			}
		}
		for _, d := range raw {
			if !suppressed(p, d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// knownAnalyzerNames is the full catalogue plus the framework's own
// "lint" pseudo-analyzer — the set //lint:ignore directives may name,
// independent of which analyzers a given Run enables.
func knownAnalyzerNames() map[string]bool {
	known := map[string]bool{"lint": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// suppressed reports whether an ignore directive covers the diagnostic.
func suppressed(p *Package, d Diagnostic) bool {
	for _, f := range p.Files {
		if f.Path != d.Position.Filename {
			continue
		}
		for _, ig := range f.ignores {
			if ig.analyzer == d.Analyzer && ig.covers(d.Position.Line) {
				return true
			}
		}
	}
	return false
}

// ignore is one parsed //lint:ignore directive (a comma-separated
// directive yields one ignore per named analyzer).
type ignore struct {
	analyzer string
	pos      token.Position
	// line is the comment's own line; target..targetEnd is the source
	// line span the directive applies to: the same line for trailing
	// comments, or — for a standalone comment line — the full extent of
	// the statement or declaration starting on the next source line, so
	// a directive above a multi-line call suppresses findings anchored
	// to any of its lines.
	line, target, targetEnd int
}

func (ig ignore) covers(line int) bool {
	return line == ig.line || (line >= ig.target && line <= ig.targetEnd)
}

const (
	ignorePrefix  = "//lint:ignore"
	boundedMarker = "lint:bounded"
)

// parseDirectives extracts the ignore directives of a parsed file and
// records malformed ones as diagnostics. A directive may name several
// analyzers separated by commas: //lint:ignore a,b <reason>.
func (f *File) parseDirectives() {
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := f.Fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
			if len(fields) < 2 {
				f.malformedIgnores = append(f.malformedIgnores, Diagnostic{
					Analyzer: "lint",
					Position: pos,
					Message:  "malformed ignore directive: want //lint:ignore <analyzer>[,<analyzer>...] <reason>",
				})
				continue
			}
			target := pos.Line + 1
			end := f.stmtEndLine(target)
			for _, name := range strings.Split(fields[0], ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				f.ignores = append(f.ignores, ignore{
					analyzer:  name,
					pos:       pos,
					line:      pos.Line,
					target:    target,
					targetEnd: end,
				})
			}
		}
	}
}

// stmtEndLine returns the last line of the widest statement, spec, or
// declaration that starts on the given line, and the line itself when
// none does.
func (f *File) stmtEndLine(line int) int {
	end := line
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, ast.Decl, ast.Spec:
			if f.Fset.Position(n.Pos()).Line == line {
				if e := f.Fset.Position(n.End()).Line; e > end {
					end = e
				}
			}
		}
		return true
	})
	return end
}

// hasBoundedMarker reports whether a doc comment declares the function's
// results bounded.
func hasBoundedMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, boundedMarker) {
			return true
		}
	}
	return false
}
