// Package lint is the project-invariant static-analysis suite behind
// cmd/mntlint and the tier-1+ gate. It is deliberately stdlib-only
// (go/parser, go/ast, go/token): the module has no dependencies and the
// linter must not introduce one.
//
// The framework loads every Go source file of the module into per-
// directory Packages, runs a set of Analyzers over them, and reports
// Diagnostics with file:line:column positions. Two source-level
// directives interact with the analyzers:
//
//   - "//lint:ignore <analyzer> <reason>" suppresses that analyzer's
//     findings on the same line, or — for a standalone comment line — on
//     the next source line.
//   - "//lint:bounded" in a function's doc comment declares that the
//     function's results are drawn from a bounded set, which the
//     obslabel analyzer accepts as a metric label value.
//
// See docs/STATIC_ANALYSIS.md for the analyzer catalogue and the rules
// for adding a new one.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer, a source position, and a
// human-readable message.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check run over a loaded package.
type Analyzer struct {
	// Name is the identifier used by -disable flags and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of what the analyzer enforces.
	Doc string
	// Run inspects one package and returns its raw findings; ignore
	// directives are applied by the framework afterwards.
	Run func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxFirst(),
		ErrCmp(),
		ObsLabel(),
		PrintBan(),
		PanicBan(),
		SeedArg(),
	}
}

// Run executes the given analyzers over the given packages, drops
// findings suppressed by //lint:ignore directives, and returns the rest
// sorted by position. Malformed ignore directives (missing analyzer
// name or reason) are themselves reported, so suppressions stay
// auditable.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			raw = append(raw, a.Run(p)...)
		}
		for _, f := range p.Files {
			raw = append(raw, f.malformedIgnores...)
		}
		for _, d := range raw {
			if !suppressed(p, d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// suppressed reports whether an ignore directive covers the diagnostic.
func suppressed(p *Package, d Diagnostic) bool {
	for _, f := range p.Files {
		if f.Path != d.Position.Filename {
			continue
		}
		for _, ig := range f.ignores {
			if ig.analyzer == d.Analyzer && ig.covers(d.Position.Line) {
				return true
			}
		}
	}
	return false
}

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	analyzer string
	// line is the comment's own line; target is the source line the
	// directive applies to (the same line for trailing comments, the
	// following line for standalone comment lines).
	line, target int
}

func (ig ignore) covers(line int) bool { return line == ig.line || line == ig.target }

const (
	ignorePrefix  = "//lint:ignore"
	boundedMarker = "lint:bounded"
)

// parseDirectives extracts the ignore directives of a parsed file and
// records malformed ones as diagnostics.
func (f *File) parseDirectives() {
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := f.Fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
			if len(fields) < 2 {
				f.malformedIgnores = append(f.malformedIgnores, Diagnostic{
					Analyzer: "lint",
					Position: pos,
					Message:  "malformed ignore directive: want //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			f.ignores = append(f.ignores, ignore{
				analyzer: fields[0],
				line:     pos.Line,
				target:   pos.Line + 1,
			})
		}
	}
}

// hasBoundedMarker reports whether a doc comment declares the function's
// results bounded.
func hasBoundedMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, boundedMarker) {
			return true
		}
	}
	return false
}
