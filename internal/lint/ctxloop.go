package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoop returns the ctxloop analyzer. It enforces the scheduler-
// cancellation invariant from the parallel campaign work (PR 3): in a
// goroutine-spawning internal package, an event loop — a condition-less
// `for` built around channel operations, or a range over a channel —
// running where a context.Context is in scope must observe ctx.Done()
// or ctx.Err(), otherwise canceling the campaign leaves the loop (and
// the worker it drives) running forever.
//
// Bounded computational loops (CAS retries, frontier pops) contain no
// channel operations and are not flagged; loops in functions with no
// context in scope have nothing to observe and are skipped.
func CtxLoop() *Analyzer {
	return &Analyzer{
		Name: "ctxloop",
		Doc:  "channel event loops in goroutine-spawning packages must observe ctx.Done/ctx.Err",
		Run:  runCtxLoop,
	}
}

func runCtxLoop(p *Package) []Diagnostic {
	if p.Info == nil || !p.InDir("internal") || !spawnsGoroutines(p) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, sc := range fileScopes(p, f) {
			if !sc.hasCtx {
				continue
			}
			walkNoLits(sc.body, func(n ast.Node) bool {
				switch loop := n.(type) {
				case *ast.ForStmt:
					if loop.Cond != nil || loop.Init != nil || loop.Post != nil {
						return true
					}
					if !hasChannelOp(loop.Body) || checksCtxDone(p, loop.Body) {
						return true
					}
					out = append(out, Diagnostic{
						Analyzer: "ctxloop",
						Position: f.Fset.Position(loop.Pos()),
						Message:  "unbounded channel loop never checks ctx.Done/ctx.Err; cancellation cannot stop it",
					})
				case *ast.RangeStmt:
					if !isChannelType(p.TypeOf(loop.X)) || checksCtxDone(p, loop.Body) {
						return true
					}
					out = append(out, Diagnostic{
						Analyzer: "ctxloop",
						Position: f.Fset.Position(loop.Pos()),
						Message:  "range over channel never checks ctx.Done/ctx.Err; cancellation cannot stop it",
					})
				}
				return true
			})
		}
	}
	return out
}

// hasChannelOp reports whether the loop body (excluding nested function
// literals) performs a channel operation: a send, a receive, or a
// select.
func hasChannelOp(body *ast.BlockStmt) bool {
	found := false
	walkNoLits(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		}
		return true
	})
	return found
}

// isChannelType reports whether t's underlying type is a channel.
func isChannelType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
