package lint

import (
	"bufio"
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed source file plus the derived indexes the analyzers
// need.
type File struct {
	// Path is the file path relative to the load root, slash-separated.
	Path string
	Fset *token.FileSet
	AST  *ast.File
	// Src is the raw source, kept so suggested fixes can splice exact
	// original text.
	Src []byte
	// Test marks _test.go files, which most analyzers skip.
	Test bool
	// Imports maps the local name of each import to its path, e.g.
	// "obs" -> "repro/internal/obs". Dot and blank imports are omitted.
	Imports map[string]string

	ignores          []ignore
	malformedIgnores []Diagnostic
}

// Text returns the original source for the byte range [start, end) of
// the file, or "" when out of range.
func (f *File) Text(start, end int) string {
	if start < 0 || end > len(f.Src) || start > end {
		return ""
	}
	return string(f.Src[start:end])
}

// Offset converts a token position in this file to a byte offset.
func (f *File) Offset(pos token.Pos) int { return f.Fset.Position(pos).Offset }

// ImportName returns the local name under which the file imports the
// given path, and whether it is imported at all.
func (f *File) ImportName(path string) (string, bool) {
	for name, p := range f.Imports {
		if p == path {
			return name, true
		}
	}
	return "", false
}

// ImportsSuffix reports whether any import path equals suffix or ends in
// "/"+suffix (used to match intra-module packages without knowing the
// module path).
func (f *File) ImportsSuffix(suffix string) bool {
	for _, p := range f.Imports {
		if p == suffix || strings.HasSuffix(p, "/"+suffix) {
			return true
		}
	}
	return false
}

// Package groups the files of one directory.
type Package struct {
	// Dir is the directory relative to the load root, slash-separated;
	// "" for the root itself.
	Dir string
	// Name is the package name of the first non-test file (or the first
	// file when all are tests).
	Name string
	// Files holds every parsed .go file of the directory.
	Files []*File
	// Consts indexes the package-level constant names declared in
	// non-test files.
	Consts map[string]bool
	// Bounded indexes package-level functions whose doc comment carries
	// the //lint:bounded marker.
	Bounded map[string]bool

	// Types and Info hold the go/types result for the package's non-test
	// files; nil when the package has no non-test files. Info may be
	// partial when imports did not resolve (fixture trees) — analyzers
	// access it through the nil-safe TypeOf/ObjectOf/Selection helpers.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects (never fails on) type-check errors, for
	// debugging fixtures and the loader's own tests.
	TypeErrors []error
}

// InDir reports whether the package lives in or below any of the given
// root-relative directories.
func (p *Package) InDir(dirs ...string) bool {
	for _, d := range dirs {
		if p.Dir == d || strings.HasPrefix(p.Dir, d+"/") {
			return true
		}
	}
	return false
}

// skipDirs are directory names the loader never descends into: the go
// tool ignores testdata, and the rest are not module source.
var skipDirs = map[string]bool{
	"testdata":     true,
	"vendor":       true,
	"node_modules": true,
}

// generatedRe matches the conventional generated-file marker line
// (https://go.dev/s/generatedcode); such files are machine output, not
// module source, and the loader skips them entirely.
var generatedRe = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGenerated reports whether the source carries a generated-code
// marker line before its package clause.
func isGenerated(src []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(src))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "package ") {
			return false
		}
		if generatedRe.MatchString(line) {
			return true
		}
	}
	return false
}

// Load parses every .go file under root (recursively), grouping files by
// directory and type-checking each package (see typecheck.go).
// Directories named testdata or vendor, hidden directories, and files
// with a "// Code generated ... DO NOT EDIT." header are skipped,
// matching the go tool's notion of module source.
func Load(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	byDir := make(map[string]*Package)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (skipDirs[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		src, rdErr := os.ReadFile(path)
		if rdErr != nil {
			return rdErr
		}
		if isGenerated(src) {
			return nil
		}
		// Parse under the root-relative name so diagnostic positions,
		// File.Path, and ignore-directive matching all agree.
		astf, perr := parser.ParseFile(fset, rel, src, parser.ParseComments)
		if perr != nil {
			return perr
		}
		f := &File{
			Path:    rel,
			Fset:    fset,
			AST:     astf,
			Src:     src,
			Test:    strings.HasSuffix(name, "_test.go"),
			Imports: importNames(astf),
		}
		f.parseDirectives()
		dir := filepath.ToSlash(filepath.Dir(rel))
		if dir == "." {
			dir = ""
		}
		p := byDir[dir]
		if p == nil {
			p = &Package{Dir: dir, Consts: make(map[string]bool), Bounded: make(map[string]bool)}
			byDir[dir] = p
		}
		p.Files = append(p.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p := byDir[dir]
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Path < p.Files[j].Path })
		p.index()
		pkgs = append(pkgs, p)
	}
	newTypeChecker(fset, modulePath(root), byDir).checkAll(dirs)
	return pkgs, nil
}

// modulePath reads the module path from root's go.mod; "" when there is
// none (fixture trees), in which case imports resolve by directory
// suffix.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// index fills the package-level name, constant, and bounded-function
// indexes from the parsed files.
func (p *Package) index() {
	for _, f := range p.Files {
		if p.Name == "" || !f.Test {
			p.Name = f.AST.Name.Name
		}
		if !f.Test {
			break
		}
	}
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, n := range vs.Names {
						p.Consts[n.Name] = true
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil && hasBoundedMarker(d.Doc) {
					p.Bounded[d.Name.Name] = true
				}
			}
		}
	}
}

// importNames maps local import names to paths for one file.
func importNames(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		} else {
			// Without go/types the best available local name is the last
			// path element; this matches every package in this module and
			// the stdlib packages the analyzers care about.
			name = path[strings.LastIndex(path, "/")+1:]
		}
		out[name] = path
	}
	return out
}
