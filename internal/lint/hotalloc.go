package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotMarker annotates a function as being on a measured hot path: the
// PR-6 BENCH_<n>.json experiments exercise it per-gate or per-tile, so
// per-call allocations show up directly on the performance trajectory.
const hotMarker = "perf:hot"

// HotAlloc returns the hotalloc analyzer. Inside functions annotated
// //perf:hot it flags the three allocation patterns that most often
// regress the benchmark suite without failing any test:
//
//   - string concatenation (+ / += on strings) — allocates per call;
//   - fmt.Sprintf — allocates and reflects;
//   - map and slice composite literals — allocate on every execution.
//
// make() with a computed capacity, struct literals, and error paths via
// fmt.Errorf stay allowed: the analyzer targets steady-state per-call
// garbage, not one-time setup. The annotation is a claim tied to the
// committed perf snapshots; see docs/STATIC_ANALYSIS.md.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "//perf:hot functions must not concatenate strings, call fmt.Sprintf, or build map/slice literals",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotMarker(fd.Doc) {
				continue
			}
			out = append(out, checkHotFunc(p, f, fd)...)
		}
	}
	return out
}

// hasHotMarker reports whether a doc comment carries //perf:hot.
func hasHotMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, hotMarker) {
			return true
		}
	}
	return false
}

// checkHotFunc flags allocation patterns anywhere inside a hot
// function, nested literals included (closures built per call allocate
// too).
func checkHotFunc(p *Package, f *File, fd *ast.FuncDecl) []Diagnostic {
	name := fd.Name.Name
	var out []Diagnostic
	flag := func(pos token.Pos, what string) {
		out = append(out, Diagnostic{
			Analyzer: "hotalloc",
			Position: f.Fset.Position(pos),
			Message:  fmt.Sprintf("%s in //perf:hot function %s; it allocates on every call — hoist it out of the hot path", what, name),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringType(p.TypeOf(v.X)) {
				flag(v.OpPos, "string concatenation")
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isStringType(p.TypeOf(v.Lhs[0])) {
				flag(v.TokPos, "string concatenation")
			}
		case *ast.CallExpr:
			if pkgPath, fn, ok := pkgFuncCall(p, v); ok && pkgPath == "fmt" && fn == "Sprintf" {
				flag(v.Pos(), "fmt.Sprintf")
			}
		case *ast.CompositeLit:
			if t := p.TypeOf(v); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					flag(v.Pos(), "map literal")
				case *types.Slice:
					flag(v.Pos(), "slice literal")
				}
			}
		}
		return true
	})
	return out
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
