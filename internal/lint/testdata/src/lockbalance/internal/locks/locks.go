package locks

import "sync"

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	val int
}

// Broken leaks the mutex: no Unlock anywhere in the function.
func (s *store) Broken(fail bool) int {
	s.mu.Lock() // want "s.mu.Lock() has no matching s.mu.Unlock() in Broken"
	if fail {
		return 0
	}
	return s.val
}

// ReadBroken leaks the read lock.
func (s *store) ReadBroken() int {
	s.rw.RLock() // want "s.rw.RLock() has no matching s.rw.RUnlock() in ReadBroken"
	return s.val
}

// SendWhileHeld sends on a channel with the mutex held; the deferred
// unlock only runs after the send completes.
func (s *store) SendWhileHeld(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- s.val // want "channel send while holding s.mu"
}

// Balanced pairs its lock and unlock — clean.
func (s *store) Balanced() int {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	return v
}

// SendAfterRelease releases the lock before sending — clean.
func (s *store) SendAfterRelease(ch chan int) {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	ch <- v
}

// DeferredBalanced uses the canonical defer pairing — clean.
func (s *store) DeferredBalanced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

// InClosure shows each function literal is its own scope: the literal
// locks without unlocking even though the enclosing function is empty
// of lock calls.
func (s *store) InClosure() func() int {
	return func() int {
		s.mu.Lock() // want "s.mu.Lock() has no matching s.mu.Unlock() in InClosure.func"
		return s.val
	}
}

type guarded struct {
	sync.Mutex
	n int
}

// Bump locks through the promoted method of the embedded mutex; the
// type-resolved matcher still sees a sync.Mutex receiver.
func (g *guarded) Bump() {
	g.Lock() // want "g.Lock() has no matching g.Unlock() in Bump"
	g.n++
}

// BumpBalanced is the correct promoted-method pairing — clean.
func (g *guarded) BumpBalanced() {
	g.Lock()
	defer g.Unlock()
	g.n++
}
