// Package lib is the seedarg golden fixture: randomness must come from
// an explicitly seeded generator, never the global source or an
// anonymous seed expression.
package lib

import (
	"math/rand"
	"time"
)

// Roll draws from the global nondeterministic source.
func Roll() int {
	return rand.Intn(6) // want "draws from the global nondeterministic source"
}

// ShuffleAll uses the global source for shuffling.
func ShuffleAll(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "draws from the global nondeterministic source"
}

// NewWallClock seeds from the wall clock — irreproducible.
func NewWallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seed is not visibly deterministic"
}

// NewFixed seeds with a constant: fine.
func NewFixed() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// NewSeeded takes the seed as a parameter whose name says so: fine.
func NewSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// NewDerived converts and offsets a seed-named value: fine.
func NewDerived(caseSeed int64) *rand.Rand {
	return rand.New(rand.NewSource(caseSeed + 1))
}

// NewOpaque seeds from a value whose name says nothing: flagged.
func NewOpaque(n int64) *rand.Rand {
	return rand.New(rand.NewSource(n)) // want "seed is not visibly deterministic"
}
