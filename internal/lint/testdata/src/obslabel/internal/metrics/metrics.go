// Package metrics is the obslabel golden fixture: label values reaching
// the obs registry must be literals, constants, or declared bounded
// sets.
package metrics

import (
	"fmt"

	"repro/internal/obs"
)

// stageLabel is a named constant: allowed.
const stageLabel = "place.ortho"

// algoLabel returns one of a fixed set of algorithm names.
//
//lint:bounded
func algoLabel(i int) string {
	if i == 0 {
		return "exact"
	}
	return "ortho"
}

// Record exercises the allowed and banned label-value forms.
func Record(reg *obs.Registry, path string, code int) {
	reg.Counter("flows_total", obs.L("stage", stageLabel)).Inc()
	reg.Counter("flows_total", obs.L("stage", "literal")).Inc()
	reg.Counter("http_total", obs.L("path", path)).Inc()       // want "metric label value path is not a literal, named constant, or declared bounded set"
	reg.Gauge("g", obs.L("q", fmt.Sprintf("%d", code))).Set(1) // want "metric label value fmt.Sprintf(...) is not a literal, named constant, or declared bounded set"
	reg.Histogram("d_seconds", nil, obs.L("algo", algoLabel(1))).Observe(0.5)
}

// RecordLocals shows local identifiers traced through their
// assignments.
func RecordLocals(reg *obs.Registry, path string) {
	rt := path + "/x"
	reg.Counter("routes_total", obs.L("route", rt)).Inc() // want "metric label value rt is not a literal, named constant, or declared bounded set"
	kind := "fixed"
	reg.Counter("kinds_total", obs.L("kind", kind)).Inc()
	combo := "pre." + stageLabel
	reg.Counter("combos_total", obs.L("combo", combo)).Inc()
}

// RecordSpan covers the StartSpan entry point.
func RecordSpan(path string) {
	_, span := obs.StartSpan(nil, "flow", obs.L("path", path)) // want "metric label value path is not a literal, named constant, or declared bounded set"
	_ = span
}

// RecordAnnotations pins the metric/trace boundary: Span.Annotate
// carries trace-only attributes that never become metric series, so
// unbounded values are deliberately allowed there and obslabel must
// stay silent — only the StartSpan label is checked.
func RecordAnnotations(path string) {
	_, span := obs.StartSpan(nil, "http", obs.L("route", "/api"))
	span.Annotate("path", path)
	span.Annotate("query", fmt.Sprintf("q=%s", path))
	span.End()
}

// RecordRuntime mirrors the mntbench_go_* runtime-telemetry gauges:
// label-free gauges are always fine, a bounded commit label passes via
// the lint:bounded declaration, and attaching an unbounded value to a
// runtime gauge is flagged like any other series.
func RecordRuntime(reg *obs.Registry, hostname string) {
	reg.Gauge("mntbench_go_goroutines").Set(8)
	reg.Gauge("mntbench_go_heap_live_bytes").Set(1 << 20)
	reg.Counter("mntbench_go_runtime_reads_total").Inc()
	reg.Gauge("mntbench_go_build_info", obs.L("commit", commitLabel())).Set(1)
	reg.Gauge("mntbench_go_goroutines", obs.L("host", hostname)).Set(8) // want "metric label value hostname is not a literal, named constant, or declared bounded set"
}

// commitLabel returns a short VCS revision; the set of values per build
// is a single string, so the cardinality is bounded.
//
//lint:bounded
func commitLabel() string {
	return "deadbeef"
}

// RecordJournal mirrors the flight-recorder counters: the event-type
// label is a closed set of journal event names, so literals pass, but
// tagging the drop counter with a per-subscriber identity would mint a
// series per consumer and is flagged.
func RecordJournal(reg *obs.Registry, subscriber string) {
	reg.Counter("mntbench_journal_events_total", obs.L("type", "job_done")).Inc()
	reg.Counter("mntbench_journal_dropped_total").Inc()
	reg.Counter("mntbench_journal_dropped_total", obs.L("subscriber", subscriber)).Inc() // want "metric label value subscriber is not a literal, named constant, or declared bounded set"
}

// RecordComposite covers direct Label literals.
func RecordComposite(reg *obs.Registry, user string) {
	reg.Counter("users_total", obs.Label{Key: "user", Value: user}).Inc() // want "metric label value user is not a literal, named constant, or declared bounded set"
	reg.Counter("users_total", obs.Label{Key: "user", Value: "anon"}).Inc()
}
