// Package lib is the errcmp golden fixture: sentinel errors must be
// checked with errors.Is, and fmt.Errorf must wrap errors with %w.
package lib

import (
	"errors"
	"fmt"
)

// ErrBudget marks searches that exhausted their budget.
var ErrBudget = errors.New("budget exhausted")

// Compare tests a sentinel with ==.
func Compare(err error) bool {
	return err == ErrBudget // want "error compared to sentinel ErrBudget with ==; use errors.Is"
}

// CompareNeq tests a sentinel with !=, operands flipped.
func CompareNeq(perr error) bool {
	return ErrBudget != perr // want "error compared to sentinel ErrBudget with !=; use errors.Is"
}

// CompareCtx tests a stdlib sentinel that lacks the Err prefix.
func CompareCtx(err error) bool {
	return err == context.Canceled // want "error compared to sentinel context.Canceled with ==; use errors.Is"
}

// Wrap flattens an error with %v.
func Wrap(err error) error {
	return fmt.Errorf("stage failed: %v", err) // want "error err passed to fmt.Errorf with %v; use %w"
}

// WrapIndirect flattens a differently named error with %s after a
// width-star argument.
func WrapIndirect(width int, derr error) error {
	return fmt.Errorf("stage %*d failed: %s", width, 7, derr) // want "error derr passed to fmt.Errorf with %s; use %w"
}

// WrapGood wraps properly.
func WrapGood(err error) error {
	return fmt.Errorf("stage failed: %w", err)
}

// NilCheck is fine: nil is not a sentinel.
func NilCheck(err error) bool {
	return err == nil
}

// IsGood uses errors.Is.
func IsGood(err error) bool {
	return errors.Is(err, ErrBudget)
}
