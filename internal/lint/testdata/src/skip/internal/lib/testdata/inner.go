package inner

// Boom would be a panicban finding if the loader descended into
// testdata directories.
func Boom() {
	panic("testdata trees are fixtures, not module source")
}
