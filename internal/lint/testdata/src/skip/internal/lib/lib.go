// Package lib is the only file of the skip fixture the loader should
// see: gen.go carries a generated-code header and testdata/inner.go
// lives in a testdata directory, and both contain violations that must
// never be reported.
package lib

// Answer is clean code.
func Answer() int { return 42 }
