package hot

import "fmt"

// names is the lookup table the hot path should use instead of
// building strings per call.
var names = map[int]string{0: "and", 1: "or"}

// gateLabel concatenates strings on the measured hot path.
//
//perf:hot
func gateLabel(id int, kind string) string {
	s := "gate-" + kind // want "string concatenation in //perf:hot function gateLabel"
	s += names[id]      // want "string concatenation in //perf:hot function gateLabel"
	return s
}

// describe formats per call.
//
//perf:hot
func describe(id int) string {
	return fmt.Sprintf("gate %d", id) // want "fmt.Sprintf in //perf:hot function describe"
}

// neighbors builds a slice literal on every call.
//
//perf:hot
func neighbors(id int) []int {
	return []int{id - 1, id + 1} // want "slice literal in //perf:hot function neighbors"
}

// weightOf builds a map literal on every call.
//
//perf:hot
func weightOf(id int) map[int]float64 {
	return map[int]float64{id: 1.0} // want "map literal in //perf:hot function weightOf"
}

// coldLabel is not annotated: the same patterns are allowed off the
// hot path.
func coldLabel(id int, kind string) string {
	return fmt.Sprintf("gate-%s-%d", kind, id)
}

// hotOK sticks to the allowed forms: make with capacity, integer
// arithmetic, append into a preallocated slice — clean.
//
//perf:hot
func hotOK(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i*i)
	}
	return out
}

// op is one word-evaluator instruction, fixture-shaped after the
// compiled simulation kernel.
type op struct {
	fn   int
	a, b int
}

// evalWords is the clean kernel shape: indexed instruction walk over a
// caller-provided scratch slice, no per-call allocation — must not be
// flagged.
//
//perf:hot
func evalWords(ops []op, values []uint64) {
	for i := range ops {
		o := &ops[i]
		switch o.fn {
		case 0:
			values[i] = values[o.a] & values[o.b]
		default:
			values[i] = ^values[o.a]
		}
	}
}

// evalWordsBad builds its scratch as a slice literal on every call
// instead of reusing a buffer.
//
//perf:hot
func evalWordsBad(ops []op) []uint64 {
	values := []uint64{0, 0, 0, 0} // want "slice literal in //perf:hot function evalWordsBad"
	evalWords(ops, values)
	return values
}

// coord is a fixture stand-in for a layout coordinate.
type coord struct{ x, y int }

// appendNeighbors is the clean neighbor-expansion shape: append into
// the caller's reusable buffer — must not be flagged.
//
//perf:hot
func appendNeighbors(c coord, dst []coord) []coord {
	dst = append(dst, coord{c.x + 1, c.y}, coord{c.x, c.y + 1})
	return dst
}

// neighborsBad materializes a fresh neighbor slice per expansion.
//
//perf:hot
func neighborsBad(c coord) []coord {
	return []coord{ // want "slice literal in //perf:hot function neighborsBad"
		{c.x + 1, c.y},
		{c.x, c.y + 1},
	}
}
