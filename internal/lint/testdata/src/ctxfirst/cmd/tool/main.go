// Command tool shows the ctxfirst exemption: binaries own the root
// context, so context.Background() is allowed under cmd/.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
