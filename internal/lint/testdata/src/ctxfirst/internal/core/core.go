// Package core is the ctxfirst golden fixture: exported pipeline APIs
// must take context.Context first, and library code must not mint root
// contexts.
package core

import "context"

// RunMisplaced takes its context second.
func RunMisplaced(name string, ctx context.Context) error { // want "exported RunMisplaced takes context.Context as parameter 2; it must come first"
	_ = name
	_ = ctx
	return nil
}

// RunLast buries its context behind two parameters.
func RunLast(name string, tries int, ctx context.Context) error { // want "exported RunLast takes context.Context as parameter 3; it must come first"
	_ = name
	_ = tries
	_ = ctx
	return nil
}

// Detach mints a root context in library code.
func Detach() context.Context {
	return context.Background() // want "context.Background() in library code: thread the caller's context instead"
}

// Later parks work on a TODO context.
func Later() context.Context {
	return context.TODO() // want "context.TODO() in library code: thread the caller's context instead"
}

// RunGood is compliant: context first.
func RunGood(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

// helper is unexported; the parameter-order rule applies to the
// exported API surface only.
func helper(name string, ctx context.Context) {
	_ = name
	_ = ctx
}
