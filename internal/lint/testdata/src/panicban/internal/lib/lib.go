// Package lib is the panicban golden fixture: internal/ library code
// panics only inside Must*/must* helpers.
package lib

import "errors"

// ErrNegative reports a negative input.
var ErrNegative = errors.New("negative input")

// Check panics where it should return an error.
func Check(n int) {
	if n < 0 {
		panic("negative input") // want "panic outside a Must*/must* helper"
	}
}

// Undo panics from inside a deferred closure of a non-must function.
func Undo() {
	defer func() {
		panic("rollback failed") // want "panic outside a Must*/must* helper"
	}()
}

// mustCheck asserts the invariant; the must prefix advertises the
// panic.
func mustCheck(n int) {
	if n < 0 {
		panic("negative input")
	}
}

// MustParse is the exported flavor of an asserting helper.
func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// CheckErr returns the error instead.
func CheckErr(n int) error {
	if n < 0 {
		return ErrNegative
	}
	return nil
}
