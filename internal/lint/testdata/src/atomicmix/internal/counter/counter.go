package counter

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
}

// Incr records a hit atomically.
func (s *stats) Incr() {
	atomic.AddInt64(&s.hits, 1)
}

// Snapshot reads hits plainly — a data race with Incr.
func (s *stats) Snapshot() int64 {
	return s.hits // want "hits is accessed with sync/atomic"
}

// Add mixes a plain read-modify-write next to the atomic ops on total.
func (s *stats) Add(n int64) {
	s.total += n // want "total is accessed with sync/atomic"
}

// Total reads atomically — clean.
func (s *stats) Total() int64 {
	return atomic.LoadInt64(&s.total)
}

var ready int32

// SetReady flips the flag atomically.
func SetReady() {
	atomic.StoreInt32(&ready, 1)
}

// IsReady reads it atomically — clean.
func IsReady() bool {
	return atomic.LoadInt32(&ready) == 1
}

var plain int64

// BumpPlain never touches sync/atomic, so plain access is fine.
func BumpPlain() {
	plain++
}
