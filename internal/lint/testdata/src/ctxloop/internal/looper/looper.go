package looper

import "context"

// Run spawns the workers; the go statement makes this package a
// goroutine-spawning one, which activates ctxloop.
func Run(ctx context.Context, jobs, out chan int) {
	go worker(ctx, jobs, out)
	go pump(ctx, jobs, out)
}

// worker ranges over the jobs channel without ever observing ctx.
func worker(ctx context.Context, jobs, out chan int) {
	for j := range jobs { // want "range over channel never checks ctx.Done/ctx.Err"
		out <- j
	}
}

// pump loops forever around channel operations without observing ctx.
func pump(ctx context.Context, in, out chan int) {
	for { // want "unbounded channel loop never checks ctx.Done/ctx.Err"
		v := <-in
		out <- v
	}
}

// goodWorker checks ctx.Err inside the range body — clean.
func goodWorker(ctx context.Context, jobs, out chan int) {
	for j := range jobs {
		if ctx.Err() != nil {
			return
		}
		out <- j
	}
}

// goodPump selects on ctx.Done — clean.
func goodPump(ctx context.Context, in, out chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			out <- v
		}
	}
}

// accumulate is a bounded computational loop with no channel
// operations; not an event loop, not flagged.
func accumulate(ctx context.Context, n int) int {
	total := 0
	for {
		total += n
		if total > 100 {
			return total
		}
	}
}

// noCtx has no context in scope, so there is nothing to observe.
func noCtx(jobs, out chan int) {
	for j := range jobs {
		out <- j
	}
}
