// Package lib is the suppression fixture: //lint:ignore directives with
// a reason silence a finding on their own line or the next one, and
// malformed directives are themselves reported.
package lib

// Standalone suppresses the finding on the following line.
func Standalone() {
	//lint:ignore panicban fixture demonstrates standalone suppression
	panic("suppressed")
}

// Trailing suppresses the finding on its own line.
func Trailing() {
	panic("suppressed") //lint:ignore panicban fixture demonstrates trailing suppression
}

// WrongAnalyzer does not suppress findings of other analyzers.
func WrongAnalyzer() {
	//lint:ignore printban wrong analyzer name, panic stays reported
	panic("still reported") // want "panic outside a Must*/must* helper"
}
