// Package lib is the printban golden fixture: internal/ library code
// must route output through the obs logger.
package lib

import (
	"fmt"
	"io"
	stdlog "log"
)

// Report writes through every banned sink.
func Report(x int) {
	fmt.Println("x =", x)    // want "fmt.Println writes to stdout from library code; use the obs logger"
	fmt.Printf("x=%d\n", x)  // want "fmt.Printf writes to stdout from library code; use the obs logger"
	stdlog.Printf("x=%d", x) // want "stdlib log.Printf in library code; use the obs logger"
	println(x)               // want "builtin println writes to stderr; use the obs logger"
}

// ReportTo is fine: the caller chose the writer.
func ReportTo(w io.Writer, x int) {
	fmt.Fprintln(w, "x =", x)
}
