package spawn

import "context"

// Fire launches a goroutine that ignores the in-scope ctx entirely;
// cancellation can never reach it.
func Fire(ctx context.Context, done chan struct{}) {
	go func() { // want "goroutine does not capture the in-scope ctx"
		done <- struct{}{}
	}()
	<-done
}

// Result sends the answer over an unbuffered channel with no select
// guard: if the caller's select takes the ctx.Done branch first, the
// goroutine blocks on the send forever.
func Result(ctx context.Context) int {
	ch := make(chan int)
	go func() {
		if ctx.Err() != nil {
			return
		}
		ch <- compute() // want "bare send on unbuffered channel"
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// GuardedResult wraps the send in a select with a ctx escape — clean.
func GuardedResult(ctx context.Context) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-ctx.Done():
		}
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// BufferedResult sends on a buffered channel; the send can never block,
// so the goroutine cannot leak on it — clean.
func BufferedResult(ctx context.Context) int {
	ch := make(chan int, 1)
	go func() {
		if ctx.Err() != nil {
			return
		}
		ch <- compute()
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Relay passes ctx into the spawned function — clean.
func Relay(ctx context.Context, out chan int) {
	go relay(ctx, out)
}

func relay(ctx context.Context, out chan int) {
	select {
	case out <- compute():
	case <-ctx.Done():
	}
}

func compute() int { return 42 }
