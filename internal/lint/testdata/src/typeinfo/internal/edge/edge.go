// Package edge exercises the type-resolution edge cases of the v2
// analyzers: import aliases, decoy types that shadow stdlib names, and
// promoted methods. A purely syntactic matcher would get every case
// here wrong in one direction or the other.
package edge

import (
	sy "sync"
	at "sync/atomic"
)

// Mutex is a decoy: same method set as sync.Mutex, different type.
// lockbalance must not flag it.
type Mutex struct{ locked bool }

func (m *Mutex) Lock()   { m.locked = true }
func (m *Mutex) Unlock() { m.locked = false }

// decoyLock locks the decoy with no unlock — clean, it is not a
// sync.Mutex.
func decoyLock(m *Mutex) bool {
	m.Lock()
	return m.locked
}

var n int64

// bump goes through the aliased sync/atomic import; detection is
// type-based, not import-name-based.
func bump() {
	at.AddInt64(&n, 1)
}

// read mixes in a plain access; the alias does not hide it.
func read() int64 {
	return n // want "n is accessed with sync/atomic"
}

type box struct {
	mu sy.Mutex
	v  int
}

// leak is caught through the aliased sync import too.
func leak(b *box) int {
	b.mu.Lock() // want "b.mu.Lock() has no matching b.mu.Unlock() in leak"
	return b.v
}

// balanced pairs the aliased mutex correctly — clean.
func balanced(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}
