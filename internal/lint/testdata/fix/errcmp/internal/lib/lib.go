package lib

import (
	"errors"
	"fmt"
)

// ErrClosed is the sentinel error of this fixture.
var ErrClosed = errors.New("closed")

// Classify compares the sentinel the wrong way twice and flattens the
// error in Errorf; `mntlint -fix` rewrites all three sites.
func Classify(err error) error {
	if err == ErrClosed {
		return nil
	}
	if err != ErrClosed {
		return fmt.Errorf("classify: %v", err)
	}
	return nil
}
