package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ErrCmp returns the errcmp analyzer. It enforces the PR 1 outcome-
// classification convention:
//
//  1. Errors must never be compared to exported sentinel values with ==
//     or != (wrapped errors — which the core pipeline produces for every
//     stage failure — would not match); use errors.Is.
//  2. fmt.Errorf must wrap error operands with %w, not flatten them with
//     %v, %s, or %q, so errors.Is/errors.As keep working downstream.
func ErrCmp() *Analyzer {
	return &Analyzer{
		Name: "errcmp",
		Doc:  "compare sentinel errors with errors.Is and wrap errors in fmt.Errorf with %w",
		Run:  runErrCmp,
	}
}

func runErrCmp(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		fmtName, hasFmt := f.ImportName("fmt")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				var sentinel string
				var errOp, sentOp ast.Expr
				switch {
				case isSentinelRef(e.X) && isErrIdent(e.Y):
					sentinel, errOp, sentOp = exprString(e.X), e.Y, e.X
				case isSentinelRef(e.Y) && isErrIdent(e.X):
					sentinel, errOp, sentOp = exprString(e.Y), e.X, e.Y
				default:
					return true
				}
				out = append(out, Diagnostic{
					Analyzer: "errcmp",
					Position: f.Fset.Position(e.Pos()),
					Message: fmt.Sprintf("error compared to sentinel %s with %s; use errors.Is (wrapped errors will not match)",
						sentinel, e.Op),
					Fixes: errorsIsFix(f, e, errOp, sentOp),
				})
			case *ast.CallExpr:
				if hasFmt {
					out = append(out, checkErrorf(f, fmtName, e)...)
				}
			}
			return true
		})
	}
	return out
}

// checkErrorf pairs the printf verbs of a fmt.Errorf call with its
// arguments and flags error operands formatted with a flattening verb.
func checkErrorf(f *File, fmtName string, call *ast.CallExpr) []Diagnostic {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return nil
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Name != fmtName {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil
	}
	verbs := parseVerbs(format)
	var out []Diagnostic
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		v := verbs[i]
		if v == 'w' || !isErrIdent(arg) {
			continue
		}
		if v == 'v' || v == 's' || v == 'q' {
			out = append(out, Diagnostic{
				Analyzer: "errcmp",
				Position: f.Fset.Position(arg.Pos()),
				Message: fmt.Sprintf("error %s passed to fmt.Errorf with %%%c; use %%w so errors.Is/errors.As keep working",
					exprString(arg), v),
				Fixes: wrapVerbFix(f, lit, format, i),
			})
		}
	}
	return out
}

// parseVerbs returns one verb rune per consumed argument, in order.
// '*' width/precision arguments are recorded as '*'.
func parseVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// Flags.
		for i < len(runes) && strings.ContainsRune("+-# 0", runes[i]) {
			i++
		}
		// Width.
		for i < len(runes) {
			if runes[i] == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if runes[i] >= '0' && runes[i] <= '9' {
				i++
				continue
			}
			break
		}
		// Precision.
		if i < len(runes) && runes[i] == '.' {
			i++
			for i < len(runes) {
				if runes[i] == '*' {
					verbs = append(verbs, '*')
					i++
					continue
				}
				if runes[i] >= '0' && runes[i] <= '9' {
					i++
					continue
				}
				break
			}
		}
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		verbs = append(verbs, runes[i])
	}
	return verbs
}

// isErrIdent reports whether an expression names an error by this
// codebase's conventions: the identifier "err", any *err/*Err suffix
// (cerr, perr, derr, routeErr, ...), or a field selector with such a
// name. "stderr" is excluded — it names a stream, not an error.
func isErrIdent(e ast.Expr) bool {
	var name string
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	default:
		return false
	}
	if name == "stderr" || strings.HasSuffix(name, "Stderr") {
		return false
	}
	return name == "err" || strings.HasSuffix(name, "err") || strings.HasSuffix(name, "Err")
}

// isSentinelRef matches references to exported sentinel errors: ErrX
// identifiers, pkg.ErrX selectors, and the well-known stdlib sentinels.
func isSentinelRef(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return isSentinelName(v.Name)
	case *ast.SelectorExpr:
		x, ok := v.X.(*ast.Ident)
		if !ok {
			return false
		}
		if isSentinelName(v.Sel.Name) {
			return true
		}
		// Stdlib sentinels that do not follow the Err prefix.
		switch x.Name + "." + v.Sel.Name {
		case "io.EOF", "context.Canceled", "context.DeadlineExceeded":
			return true
		}
	}
	return false
}

func isSentinelName(name string) bool {
	return len(name) > 3 && strings.HasPrefix(name, "Err") &&
		name[3] >= 'A' && name[3] <= 'Z'
}

// errorsIsFix builds the suggested fix replacing a sentinel comparison
// with errors.Is (negated for !=). Offered only when the file already
// imports the errors package — the fix applier does not manage imports.
func errorsIsFix(f *File, cmp *ast.BinaryExpr, errOp, sentOp ast.Expr) []SuggestedFix {
	name, ok := f.ImportName("errors")
	if !ok {
		return nil
	}
	neg := ""
	if cmp.Op == token.NEQ {
		neg = "!"
	}
	errText := f.Text(f.Offset(errOp.Pos()), f.Offset(errOp.End()))
	sentText := f.Text(f.Offset(sentOp.Pos()), f.Offset(sentOp.End()))
	if errText == "" || sentText == "" {
		return nil
	}
	return []SuggestedFix{{
		Message: fmt.Sprintf("replace with %serrors.Is(%s, %s)", neg, errText, sentText),
		Edits: []TextEdit{{
			Filename: f.Path,
			Start:    f.Offset(cmp.Pos()),
			End:      f.Offset(cmp.End()),
			NewText:  neg + name + ".Is(" + errText + ", " + sentText + ")",
		}},
	}}
}

// wrapVerbFix builds the suggested fix rewriting the argIndex-th verb
// of a fmt.Errorf format string to %w. The whole string literal is
// replaced with a re-quoted format, so escaping stays exact.
func wrapVerbFix(f *File, lit *ast.BasicLit, format string, argIndex int) []SuggestedFix {
	newFormat, ok := replaceVerb(format, argIndex)
	if !ok {
		return nil
	}
	return []SuggestedFix{{
		Message: "wrap the error with %w",
		Edits: []TextEdit{{
			Filename: f.Path,
			Start:    f.Offset(lit.Pos()),
			End:      f.Offset(lit.End()),
			NewText:  strconv.Quote(newFormat),
		}},
	}}
}

// replaceVerb rewrites the verb consuming the argIndex-th argument of a
// printf format string to %w, mirroring parseVerbs' scan so indexes
// agree. ok is false when the argument maps to a width/precision '*'
// or the format has fewer verbs.
func replaceVerb(format string, argIndex int) (string, bool) {
	runes := []rune(format)
	arg := 0
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		for i < len(runes) && strings.ContainsRune("+-# 0", runes[i]) {
			i++
		}
		for i < len(runes) {
			if runes[i] == '*' {
				if arg == argIndex {
					return "", false
				}
				arg++
				i++
				continue
			}
			if runes[i] >= '0' && runes[i] <= '9' {
				i++
				continue
			}
			break
		}
		if i < len(runes) && runes[i] == '.' {
			i++
			for i < len(runes) {
				if runes[i] == '*' {
					if arg == argIndex {
						return "", false
					}
					arg++
					i++
					continue
				}
				if runes[i] >= '0' && runes[i] <= '9' {
					i++
					continue
				}
				break
			}
		}
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		if arg == argIndex {
			runes[i] = 'w'
			return string(runes), true
		}
		arg++
	}
	return "", false
}

// exprString renders simple expressions (idents and selectors) for
// diagnostics.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	}
	return "expression"
}
