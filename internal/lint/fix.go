package lint

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
)

// ApplyFixes applies every suggested fix carried by the diagnostics to
// the files under root and returns the root-relative paths it rewrote,
// sorted. Edits are applied per file in offset order; when two fixes
// overlap, the one whose edit starts first wins and the later one is
// dropped — deterministic, and safe because each fix is self-contained.
// Rewritten files are passed through go/format, so applying fixes never
// leaves a file gofmt-dirty.
func ApplyFixes(root string, pkgs []*Package, diags []Diagnostic) ([]string, error) {
	srcByPath := make(map[string][]byte)
	for _, p := range pkgs {
		for _, f := range p.Files {
			srcByPath[f.Path] = f.Src
		}
	}

	byFile := make(map[string][]TextEdit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
		}
	}

	var changed []string
	for path, edits := range byFile {
		src, ok := srcByPath[path]
		if !ok {
			return changed, fmt.Errorf("fix targets unknown file %s", path)
		}
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		// Drop overlapping edits: keep the first, skip any edit starting
		// before the previous accepted edit's end.
		kept := edits[:0]
		prevEnd := -1
		for _, e := range edits {
			if e.Start < prevEnd || e.Start < 0 || e.End > len(src) || e.Start > e.End {
				continue
			}
			kept = append(kept, e)
			prevEnd = e.End
		}
		// Apply back to front so earlier offsets stay valid.
		out := append([]byte(nil), src...)
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
		}
		formatted, err := format.Source(out)
		if err != nil {
			return changed, fmt.Errorf("fixes for %s do not format: %w", path, err)
		}
		abs := filepath.Join(root, filepath.FromSlash(path))
		info, err := os.Stat(abs)
		if err != nil {
			return changed, fmt.Errorf("stat %s: %w", abs, err)
		}
		if err := os.WriteFile(abs, formatted, info.Mode().Perm()); err != nil {
			return changed, fmt.Errorf("write %s: %w", abs, err)
		}
		changed = append(changed, path)
	}
	sort.Strings(changed)
	return changed, nil
}

// FixCount returns how many diagnostics carry at least one suggested
// fix.
func FixCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			n++
		}
	}
	return n
}
