package lint

// SARIF 2.1.0 output for CI annotation upload (GitHub code scanning
// accepts it via codeql-action/upload-sarif). Only the small, stable
// subset of the schema the viewer actually reads is emitted; the
// structs double as the format contract tested by sarif_test.go.

// SarifLog is the top-level SARIF 2.1.0 document.
type SarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SarifRun `json:"runs"`
}

// SarifRun is one analysis run: the tool description plus its results.
type SarifRun struct {
	Tool    SarifTool     `json:"tool"`
	Results []SarifResult `json:"results"`
}

// SarifTool wraps the driver component.
type SarifTool struct {
	Driver SarifDriver `json:"driver"`
}

// SarifDriver identifies mntlint and declares one rule per analyzer.
type SarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SarifRule `json:"rules"`
}

// SarifRule is one analyzer in the rules catalogue.
type SarifRule struct {
	ID               string       `json:"id"`
	ShortDescription SarifMessage `json:"shortDescription"`
}

// SarifResult is one diagnostic.
type SarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SarifMessage    `json:"message"`
	Locations []SarifLocation `json:"locations"`
}

// SarifMessage carries plain text.
type SarifMessage struct {
	Text string `json:"text"`
}

// SarifLocation points at a file region.
type SarifLocation struct {
	PhysicalLocation SarifPhysicalLocation `json:"physicalLocation"`
}

// SarifPhysicalLocation is an artifact reference plus a region.
type SarifPhysicalLocation struct {
	ArtifactLocation SarifArtifactLocation `json:"artifactLocation"`
	Region           SarifRegion           `json:"region"`
}

// SarifArtifactLocation is a root-relative file URI.
type SarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

// SarifRegion is a 1-based start position.
type SarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// ToSARIF converts diagnostics into a SARIF 2.1.0 log. Every analyzer
// in the catalogue gets a rule entry (plus the framework's "lint"
// pseudo-rule for directive findings), so ruleIndex is stable whether
// or not an analyzer fired. Diagnostics must already be sorted; the
// results array preserves their order.
func ToSARIF(diags []Diagnostic, analyzers []*Analyzer) SarifLog {
	rules := []SarifRule{{
		ID:               "lint",
		ShortDescription: SarifMessage{Text: "lint directive hygiene (malformed or unknown //lint:ignore)"},
	}}
	index := map[string]int{"lint": 0}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, SarifRule{
			ID:               a.Name,
			ShortDescription: SarifMessage{Text: a.Doc},
		})
	}

	results := make([]SarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Analyzer]
		if !ok {
			idx = 0
		}
		results = append(results, SarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   SarifMessage{Text: d.Message},
			Locations: []SarifLocation{{
				PhysicalLocation: SarifPhysicalLocation{
					ArtifactLocation: SarifArtifactLocation{
						URI:       d.Position.Filename,
						URIBaseID: "SRCROOT",
					},
					Region: SarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}

	return SarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []SarifRun{{
			Tool: SarifTool{Driver: SarifDriver{
				Name:  "mntlint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
}
