package lint

import (
	"go/ast"
	"go/types"
)

// funcScope is one function body analyzed as an independent unit by the
// concurrency analyzers: a declared function or a function literal.
// Nested literals are excluded from their parent's walk (they run on a
// different goroutine or at a different time) and appear as scopes of
// their own.
type funcScope struct {
	// name labels the scope in diagnostics: the declared name, or
	// "<name>.func" for literals nested in it.
	name string
	body *ast.BlockStmt
	// decl is the enclosing top-level declaration (the scope itself for
	// declared functions); goroleak searches it for channel make sites.
	decl *ast.FuncDecl
	// hasCtx reports whether a context.Context parameter is in scope —
	// the scope's own or, for literals, any enclosing function's
	// (closures capture it).
	hasCtx bool
}

// fileScopes returns every function scope of a file in source order.
func fileScopes(p *Package, f *File) []funcScope {
	var out []funcScope
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		hasCtx := paramsHaveCtx(p, fd.Type)
		out = append(out, funcScope{name: fd.Name.Name, body: fd.Body, decl: fd, hasCtx: hasCtx})
		collectLitScopes(p, fd, fd.Body, fd.Name.Name, hasCtx, &out)
	}
	return out
}

// collectLitScopes appends a scope for every function literal nested
// (at any depth) under root, threading ctx visibility down.
func collectLitScopes(p *Package, decl *ast.FuncDecl, root ast.Node, name string, hasCtx bool, out *[]funcScope) {
	walkNoLits(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		litCtx := hasCtx || paramsHaveCtx(p, lit.Type)
		*out = append(*out, funcScope{name: name + ".func", body: lit.Body, decl: decl, hasCtx: litCtx})
		collectLitScopes(p, decl, lit.Body, name+".func", litCtx, out)
		return false
	})
}

// paramsHaveCtx reports whether a function type declares a
// context.Context parameter.
func paramsHaveCtx(p *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(p.TypeOf(field.Type)) {
			return true
		}
		// Fixture trees without resolvable type info still follow the
		// ctx-first convention syntactically.
		if sel, ok := field.Type.(*ast.SelectorExpr); ok {
			if x, isIdent := sel.X.(*ast.Ident); isIdent && x.Name == "context" && sel.Sel.Name == "Context" {
				return true
			}
		}
	}
	return false
}

// walkNoLits traverses the subtree under root in source order but does
// not descend into function literals: fn still sees each *ast.FuncLit
// node (so callers can collect them as scopes of their own), only the
// literal's interior is withheld. Callers never pass a FuncLit as root.
func walkNoLits(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n)
			return false
		}
		return fn(n)
	})
}

// usesContextValue reports whether any identifier under root (function
// literals included — a captured ctx counts) resolves to a value of
// type context.Context.
func usesContextValue(p *Package, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, isVar := p.ObjectOf(id).(*types.Var); isVar && isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}

// checksCtxDone reports whether the subtree under root (excluding
// nested function literals, which run elsewhere) calls Done or Err on a
// context.Context value.
func checksCtxDone(p *Package, root ast.Node) bool {
	found := false
	walkNoLits(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
			return true
		}
		if isContextType(p.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

// spawnsGoroutines reports whether any non-test file of the package
// contains a go statement.
func spawnsGoroutines(p *Package) bool {
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		found := false
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if found {
				return false
			}
			if _, ok := n.(*ast.GoStmt); ok {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// exprText renders an expression as its exact source text (falling back
// to exprString for out-of-range positions).
func exprText(f *File, e ast.Expr) string {
	if s := f.Text(f.Offset(e.Pos()), f.Offset(e.End())); s != "" {
		return s
	}
	return exprString(e)
}
