package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak returns the goroleak analyzer, aimed at the two goroutine-
// leak shapes that matter for a long-running benchmark service:
//
//  1. A goroutine launched where a context.Context is in scope but not
//     captured by the goroutine: nothing can cancel it, so campaign
//     shutdown and request cancellation silently stop propagating.
//  2. A `go func` literal sending on an unbuffered channel with no
//     select around the send: if the receiver returns early (error
//     path, timeout), the send blocks forever and the goroutine — plus
//     everything it pins — leaks.
//
// Both rules apply to internal packages only; binaries own their
// goroutine lifecycles.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "goroutines must capture the in-scope ctx; unbuffered sends from goroutines need a select guard",
		Run:  runGoroLeak,
	}
}

func runGoroLeak(p *Package) []Diagnostic {
	if p.Info == nil || !p.InDir("internal") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, sc := range fileScopes(p, f) {
			walkNoLits(sc.body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if sc.hasCtx && !usesContextValue(p, g.Call) {
					out = append(out, Diagnostic{
						Analyzer: "goroleak",
						Position: f.Fset.Position(g.Pos()),
						Message:  "goroutine does not capture the in-scope ctx; cancellation cannot reach it",
					})
				}
				if lit, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
					out = append(out, checkUnbufferedSends(p, f, sc.decl, lit)...)
				}
				return true
			})
		}
	}
	return out
}

// checkUnbufferedSends flags bare sends on unbuffered channels inside a
// goroutine literal. Sends wrapped in a select are exempt: a ctx/done
// case (or default) gives the goroutine a way out when the receiver is
// gone.
func checkUnbufferedSends(p *Package, f *File, decl *ast.FuncDecl, lit *ast.FuncLit) []Diagnostic {
	guarded := make(map[*ast.SendStmt]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, isCC := clause.(*ast.CommClause)
			if !isCC {
				continue
			}
			if send, isSend := cc.Comm.(*ast.SendStmt); isSend {
				guarded[send] = true
			}
		}
		return true
	})
	var out []Diagnostic
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || guarded[send] {
			return true
		}
		id, isIdent := send.Chan.(*ast.Ident)
		if !isIdent {
			return true
		}
		obj, isVar := p.ObjectOf(id).(*types.Var)
		if !isVar || !makesUnbufferedChan(p, decl, obj) {
			return true
		}
		out = append(out, Diagnostic{
			Analyzer: "goroleak",
			Position: f.Fset.Position(send.Pos()),
			Message:  fmt.Sprintf("bare send on unbuffered channel %q from a goroutine; if the receiver bails out this goroutine leaks — guard the send with a select", id.Name),
		})
		return true
	})
	return out
}

// makesUnbufferedChan reports whether the channel variable is created
// by an unbuffered make(chan T) inside the enclosing declaration.
func makesUnbufferedChan(p *Package, decl *ast.FuncDecl, obj *types.Var) bool {
	if decl == nil || decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent || p.ObjectOf(id) != obj || i >= len(assign.Rhs) {
				continue
			}
			if isUnbufferedMake(assign.Rhs[i]) {
				found = true
			}
		}
		return true
	})
	return found
}

// isUnbufferedMake matches make(chan T) and make(chan T, 0).
func isUnbufferedMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	lit, isLit := call.Args[1].(*ast.BasicLit)
	return isLit && lit.Kind == token.INT && lit.Value == "0"
}
