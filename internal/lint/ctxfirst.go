package lint

import (
	"fmt"
	"go/ast"
)

// ctxFirstDirs are the pipeline packages whose exported API must follow
// the ctx-first convention introduced in PR 1.
var ctxFirstDirs = []string{"internal/core", "internal/physical", "internal/route"}

// ctxExemptDirs may construct contexts: binaries own the root context.
var ctxExemptDirs = []string{"cmd", "examples"}

// CtxFirst returns the ctxfirst analyzer. It enforces two rules:
//
//  1. In internal/core, internal/physical, and internal/route, an
//     exported function or method that accepts a context.Context must
//     take it as the first parameter.
//  2. context.Background() and context.TODO() are banned outside cmd/,
//     examples/, and _test.go files: library code must thread the
//     caller's context (which carries the obs registry and logger) and
//     never mint a fresh root.
func CtxFirst() *Analyzer {
	return &Analyzer{
		Name: "ctxfirst",
		Doc:  "context.Context must be the first parameter of exported pipeline APIs; no context.Background/TODO in library code",
		Run:  runCtxFirst,
	}
}

func runCtxFirst(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		ctxName, ok := f.ImportName("context")
		if !ok {
			continue
		}
		if p.InDir(ctxFirstDirs...) {
			for _, decl := range f.AST.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				if !isFunc || !fd.Name.IsExported() {
					continue
				}
				out = append(out, checkCtxParam(f, ctxName, fd)...)
			}
		}
		if !p.InDir(ctxExemptDirs...) {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				sel, isSel := call.Fun.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				x, isIdent := sel.X.(*ast.Ident)
				if !isIdent || x.Name != ctxName {
					return true
				}
				if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
					out = append(out, Diagnostic{
						Analyzer: "ctxfirst",
						Position: f.Fset.Position(call.Pos()),
						Message: fmt.Sprintf("context.%s() in library code: thread the caller's context instead",
							sel.Sel.Name),
					})
				}
				return true
			})
		}
	}
	return out
}

// checkCtxParam flags context.Context parameters that are not first.
func checkCtxParam(f *File, ctxName string, fd *ast.FuncDecl) []Diagnostic {
	if fd.Type.Params == nil {
		return nil
	}
	var out []Diagnostic
	index := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(ctxName, field.Type) && index != 0 {
			out = append(out, Diagnostic{
				Analyzer: "ctxfirst",
				Position: f.Fset.Position(field.Pos()),
				Message: fmt.Sprintf("exported %s takes context.Context as parameter %d; it must come first",
					fd.Name.Name, index+1),
			})
		}
		index += n
	}
	return out
}

// isCtxType matches the type expression <ctxName>.Context.
func isCtxType(ctxName string, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == ctxName && sel.Sel.Name == "Context"
}
