package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// LockBalance returns the lockbalance analyzer. It guards the two lock
// mistakes that threaten the parallel campaign scheduler and the obs
// registry under load:
//
//  1. A sync.Mutex/RWMutex Lock (or RLock) with no matching Unlock
//     (RUnlock) anywhere in the same function scope — the classic
//     early-return leak that deadlocks every later caller. Matching is
//     type-resolved, so embedded and promoted mutexes count, and each
//     function literal is its own scope (a lock taken in a closure must
//     be released in that closure).
//  2. A channel send while a lock is held (including after a deferred
//     unlock): if the receiver is gone or slow, the send blocks with
//     the lock held and the whole lock domain stalls behind it.
func LockBalance() *Analyzer {
	return &Analyzer{
		Name: "lockbalance",
		Doc:  "sync.Mutex/RWMutex locks need a same-function unlock, and must not be held across channel sends",
		Run:  runLockBalance,
	}
}

// lockEvent is one lock-related operation or channel send, in source
// order within a function scope.
type lockEvent struct {
	pos      token.Pos
	kind     string // "Lock", "RLock", "Unlock", "RUnlock", "send"
	recv     string // rendered receiver expression; "" for sends
	deferred bool
}

func runLockBalance(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, sc := range fileScopes(p, f) {
			out = append(out, checkLockScope(p, f, sc)...)
		}
	}
	return out
}

// checkLockScope analyzes one function scope: collect lock events in
// source order, then apply the balance and held-across-send rules.
func checkLockScope(p *Package, f *File, sc funcScope) []Diagnostic {
	var events []lockEvent
	walkNoLits(sc.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			if ev, ok := mutexEvent(p, f, v.Call); ok {
				ev.deferred = true
				events = append(events, ev)
			}
			// Skip the subtree so the deferred call is not revisited as
			// a non-deferred event (deferred literals become scopes of
			// their own via fileScopes).
			return false
		case *ast.CallExpr:
			if ev, ok := mutexEvent(p, f, v); ok {
				events = append(events, ev)
			}
		case *ast.SendStmt:
			events = append(events, lockEvent{pos: v.Arrow, kind: "send"})
		}
		return true
	})
	if len(events) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	type balance struct {
		locks, unlocks, rlocks, runlocks int
		firstLock, firstRLock            token.Pos
	}
	held := make(map[string]bool)
	perRecv := make(map[string]*balance)
	order := []string{}
	var out []Diagnostic
	for _, ev := range events {
		if ev.kind == "send" {
			for _, recv := range order {
				if held[recv] {
					out = append(out, Diagnostic{
						Analyzer: "lockbalance",
						Position: f.Fset.Position(ev.pos),
						Message:  fmt.Sprintf("channel send while holding %s: a blocked receiver stalls every other user of the lock; release it before sending", recv),
					})
					break
				}
			}
			continue
		}
		b := perRecv[ev.recv]
		if b == nil {
			b = &balance{}
			perRecv[ev.recv] = b
			order = append(order, ev.recv)
		}
		switch ev.kind {
		case "Lock":
			b.locks++
			if b.firstLock == token.NoPos {
				b.firstLock = ev.pos
			}
			held[ev.recv] = true
		case "RLock":
			b.rlocks++
			if b.firstRLock == token.NoPos {
				b.firstRLock = ev.pos
			}
			held[ev.recv] = true
		case "Unlock":
			b.unlocks++
			if !ev.deferred {
				held[ev.recv] = false
			}
		case "RUnlock":
			b.runlocks++
			if !ev.deferred {
				held[ev.recv] = false
			}
		}
	}
	for _, recv := range order {
		b := perRecv[recv]
		if b.locks > 0 && b.unlocks == 0 {
			out = append(out, Diagnostic{
				Analyzer: "lockbalance",
				Position: f.Fset.Position(b.firstLock),
				Message:  fmt.Sprintf("%s.Lock() has no matching %s.Unlock() in %s; every path out of the function must release the lock", recv, recv, sc.name),
			})
		}
		if b.rlocks > 0 && b.runlocks == 0 {
			out = append(out, Diagnostic{
				Analyzer: "lockbalance",
				Position: f.Fset.Position(b.firstRLock),
				Message:  fmt.Sprintf("%s.RLock() has no matching %s.RUnlock() in %s; every path out of the function must release the lock", recv, recv, sc.name),
			})
		}
	}
	return out
}

// mutexEvent resolves a call to a sync.Mutex/RWMutex lock-family method
// (including promoted methods of embedded mutexes) into a lock event.
func mutexEvent(p *Package, f *File, call *ast.CallExpr) (lockEvent, bool) {
	pkgPath, recvName, method, ok := methodCall(p, call)
	if !ok || pkgPath != "sync" || (recvName != "Mutex" && recvName != "RWMutex") {
		return lockEvent{}, false
	}
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	return lockEvent{pos: call.Pos(), kind: method, recv: exprText(f, sel.X)}, true
}
