package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// obsLabelCallees are the registry/span entry points whose label
// arguments feed mntbench_* metric series.
var obsLabelCallees = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"StartSpan": true,
}

// ObsLabel returns the obslabel analyzer. Metric label values passed to
// the internal/obs registry lookups (Counter, Gauge, Histogram) and to
// StartSpan must be string literals, named constants, or values drawn
// from a declared bounded set — a local identifier assigned only from
// such values, or a call to a function whose doc comment carries the
// //lint:bounded marker. Anything else (request paths, benchmark
// payloads, error strings, ...) can explode the cardinality of a family
// and with it the memory of every scrape.
//
// Limitations, by design of a stdlib-only analyzer: spread arguments
// (labels...) are not traced, and selectors on imported packages are
// trusted as named values.
func ObsLabel() *Analyzer {
	return &Analyzer{
		Name: "obslabel",
		Doc:  "metric label values must be literals, constants, or declared bounded sets",
		Run:  runObsLabel,
	}
}

func runObsLabel(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		// Only files that talk to the obs layer: package obs itself or
		// importers of internal/obs.
		if p.Name != "obs" && !f.ImportsSuffix("internal/obs") {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isObsLabelCallee(call.Fun) {
					return true
				}
				for _, arg := range call.Args {
					if v, ok := labelValueExpr(arg); ok {
						out = append(out, checkLabelValue(p, f, fd, v)...)
					}
				}
				return true
			})
		}
	}
	return out
}

// isObsLabelCallee matches Counter/Gauge/Histogram/StartSpan whether
// called as methods (reg.Counter), package functions (obs.StartSpan), or
// bare identifiers inside package obs.
func isObsLabelCallee(fun ast.Expr) bool {
	switch v := fun.(type) {
	case *ast.Ident:
		return obsLabelCallees[v.Name]
	case *ast.SelectorExpr:
		return obsLabelCallees[v.Sel.Name]
	}
	return false
}

// labelValueExpr extracts the label-value expression from an argument
// that constructs a label: L(k, v) / obs.L(k, v) calls and
// Label{Key: ..., Value: ...} / obs.Label{...} composite literals.
func labelValueExpr(arg ast.Expr) (ast.Expr, bool) {
	switch v := arg.(type) {
	case *ast.CallExpr:
		if !isLCallee(v.Fun) || len(v.Args) != 2 {
			return nil, false
		}
		return v.Args[1], true
	case *ast.CompositeLit:
		if !isLabelType(v.Type) {
			return nil, false
		}
		for _, el := range v.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				// Positional: Label{key, value}.
				if len(v.Elts) == 2 {
					return v.Elts[1], true
				}
				return nil, false
			}
			if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "Value" {
				return kv.Value, true
			}
		}
	}
	return nil, false
}

func isLCallee(fun ast.Expr) bool {
	switch v := fun.(type) {
	case *ast.Ident:
		return v.Name == "L"
	case *ast.SelectorExpr:
		return v.Sel.Name == "L"
	}
	return false
}

func isLabelType(t ast.Expr) bool {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name == "Label"
	case *ast.SelectorExpr:
		return v.Sel.Name == "Label"
	}
	return false
}

// checkLabelValue reports a diagnostic when the value expression is not
// provably bounded.
func checkLabelValue(p *Package, f *File, fd *ast.FuncDecl, v ast.Expr) []Diagnostic {
	if boundedValue(p, f, fd, v, make(map[string]bool), 0) {
		return nil
	}
	return []Diagnostic{{
		Analyzer: "obslabel",
		Position: f.Fset.Position(v.Pos()),
		Message: fmt.Sprintf("metric label value %s is not a literal, named constant, or declared bounded set; unbounded labels explode series cardinality",
			exprString(v)),
	}}
}

// boundedValue is the allow-list at the heart of obslabel.
func boundedValue(p *Package, f *File, fd *ast.FuncDecl, v ast.Expr, seen map[string]bool, depth int) bool {
	if depth > 10 {
		return false
	}
	switch e := v.(type) {
	case *ast.BasicLit:
		return e.Kind == token.STRING
	case *ast.ParenExpr:
		return boundedValue(p, f, fd, e.X, seen, depth+1)
	case *ast.BinaryExpr:
		// Concatenation of bounded parts stays bounded.
		if e.Op != token.ADD {
			return false
		}
		return boundedValue(p, f, fd, e.X, seen, depth+1) &&
			boundedValue(p, f, fd, e.Y, seen, depth+1)
	case *ast.Ident:
		if p.Consts[e.Name] {
			return true
		}
		return localBounded(p, f, fd, e.Name, seen, depth)
	case *ast.SelectorExpr:
		// pkg.Name on an imported package: a named constant or variable
		// declared elsewhere; trusted as a deliberate, reviewable choice.
		x, ok := e.X.(*ast.Ident)
		if !ok {
			return false
		}
		_, isImport := f.Imports[x.Name]
		return isImport
	case *ast.CallExpr:
		// string(x) conversion keeps x's boundedness.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if id.Name == "string" && len(e.Args) == 1 {
				return boundedValue(p, f, fd, e.Args[0], seen, depth+1)
			}
			return p.Bounded[id.Name]
		}
		return false
	}
	return false
}

// localBounded resolves an identifier through the enclosing function's
// assignments: the identifier is bounded when it has at least one
// definition and every definition assigns a bounded value. Local const
// declarations are bounded by construction.
func localBounded(p *Package, f *File, fd *ast.FuncDecl, name string, seen map[string]bool, depth int) bool {
	if seen[name] {
		return false
	}
	seen[name] = true
	defs := 0
	bounded := true
	ast.Inspect(fd, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				// Multi-value assignment from one call: unresolvable.
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
						defs++
						bounded = false
					}
				}
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != name {
					continue
				}
				defs++
				if !boundedValue(p, f, fd, s.Rhs[i], seen, depth+1) {
					bounded = false
				}
			}
		case *ast.ValueSpec:
			for i, id := range s.Names {
				if id.Name != name {
					continue
				}
				defs++
				if i < len(s.Values) {
					if !boundedValue(p, f, fd, s.Values[i], seen, depth+1) {
						bounded = false
					}
				} else {
					bounded = false
				}
			}
		}
		return true
	})
	return defs > 0 && bounded
}
