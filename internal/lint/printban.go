package lint

import (
	"fmt"
	"go/ast"
)

// fmtPrintFuncs are the fmt functions that write to process stdout.
// Fprint* variants take an explicit writer and are allowed.
var fmtPrintFuncs = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

// PrintBan returns the printban analyzer: library packages under
// internal/ must not write to stdout/stderr behind the caller's back.
// The obs structured logger is the only sanctioned output sink — it is
// leveled, capturable, and redirectable, while stray fmt.Print/log
// output corrupts machine-read CLI output (tables, JSON exports) and
// bypasses the -log-json pipeline.
func PrintBan() *Analyzer {
	return &Analyzer{
		Name: "printban",
		Doc:  "no fmt.Print*/print/println/log.* output in internal/ library packages; use the obs logger",
		Run:  runPrintBan,
	}
}

func runPrintBan(p *Package) []Diagnostic {
	if !p.InDir("internal") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		fmtName, hasFmt := f.ImportName("fmt")
		logName, hasLog := f.ImportName("log")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "print" || fun.Name == "println" {
					out = append(out, Diagnostic{
						Analyzer: "printban",
						Position: f.Fset.Position(call.Pos()),
						Message:  fmt.Sprintf("builtin %s writes to stderr; use the obs logger", fun.Name),
					})
				}
			case *ast.SelectorExpr:
				x, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				if hasFmt && x.Name == fmtName && fmtPrintFuncs[fun.Sel.Name] {
					out = append(out, Diagnostic{
						Analyzer: "printban",
						Position: f.Fset.Position(call.Pos()),
						Message:  fmt.Sprintf("fmt.%s writes to stdout from library code; use the obs logger or take an io.Writer", fun.Sel.Name),
					})
				}
				if hasLog && x.Name == logName {
					out = append(out, Diagnostic{
						Analyzer: "printban",
						Position: f.Fset.Position(call.Pos()),
						Message:  fmt.Sprintf("stdlib log.%s in library code; use the obs logger", fun.Sel.Name),
					})
				}
			}
			return true
		})
	}
	return out
}
