package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SeedArg returns the seedarg analyzer: randomness must be explicitly
// seeded. The conformance harness and the campaign scheduler promise
// byte-identical results for a given seed, so any code — and especially
// test helpers — drawing from math/rand's globally-seeded source, or
// constructing a source from an expression that does not name a seed,
// silently breaks reproducibility. Deterministic code uses a constant
// or takes the seed as a parameter whose name says so.
func SeedArg() *Analyzer {
	return &Analyzer{
		Name: "seedarg",
		Doc:  "randomness must take an explicit seed: no global math/rand source, no anonymous seed expressions",
		Run:  runSeedArg,
	}
}

// globalRandFns are the math/rand package-level functions that draw
// from the process-global, nondeterministically seeded source.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// seedCtorFns construct a generator or source from a seed argument;
// that argument must visibly be a seed.
var seedCtorFns = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runSeedArg(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		randNames := mathRandImports(f.AST)
		if len(randNames) == 0 {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || !randNames[pkg.Name] {
				return true
			}
			switch {
			case globalRandFns[sel.Sel.Name]:
				out = append(out, Diagnostic{
					Analyzer: "seedarg",
					Position: f.Fset.Position(call.Pos()),
					Message: "rand." + sel.Sel.Name + " draws from the global nondeterministic source; " +
						"construct a generator from an explicit seed instead",
				})
			case seedCtorFns[sel.Sel.Name]:
				for _, arg := range call.Args {
					if !isExplicitSeed(arg) {
						out = append(out, Diagnostic{
							Analyzer: "seedarg",
							Position: f.Fset.Position(arg.Pos()),
							Message: "rand." + sel.Sel.Name + " seed is not visibly deterministic; " +
								"pass a constant or a value whose name contains \"seed\"",
						})
						break
					}
				}
			}
			return true
		})
	}
	return out
}

// mathRandImports returns the local names under which a file imports
// math/rand or math/rand/v2.
func mathRandImports(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		name := "rand"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		names[name] = true
	}
	return names
}

// isExplicitSeed reports whether an expression visibly denotes a
// deterministic seed: an integer/constant expression, or a name (or
// selector/call of a name) containing "seed".
func isExplicitSeed(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.INT
	case *ast.Ident:
		return strings.Contains(strings.ToLower(v.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(v.Sel.Name), "seed")
	case *ast.CallExpr:
		// Conversions and derivations like uint64(seed) or caseSeed(i).
		for _, arg := range v.Args {
			if isExplicitSeed(arg) {
				return true
			}
		}
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			return strings.Contains(strings.ToLower(sel.Sel.Name), "seed")
		}
		if id, ok := v.Fun.(*ast.Ident); ok {
			return strings.Contains(strings.ToLower(id.Name), "seed")
		}
		return false
	case *ast.BinaryExpr:
		return isExplicitSeed(v.X) && isExplicitSeed(v.Y)
	case *ast.ParenExpr:
		return isExplicitSeed(v.X)
	case *ast.UnaryExpr:
		return isExplicitSeed(v.X)
	}
	return false
}
