package lint

import (
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixTree copies testdata/fix/<name> (minus .golden files) into a
// temp dir so ApplyFixes can rewrite it.
func copyFixTree(t *testing.T, name string) string {
	t.Helper()
	src := filepath.Join("testdata", "fix", name)
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(path, ".golden") {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestApplyFixesGolden applies every suggested fix of the errcmp fix
// fixture and compares the rewritten files against their .golden
// twins; the result must also round-trip gofmt unchanged.
func TestApplyFixesGolden(t *testing.T) {
	root := copyFixTree(t, "errcmp")
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	if FixCount(diags) == 0 {
		t.Fatalf("fix fixture produced no fixable diagnostics: %v", diags)
	}
	changed, err := ApplyFixes(root, pkgs, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != "internal/lib/lib.go" {
		t.Fatalf("changed = %v, want [internal/lib/lib.go]", changed)
	}

	got, err := os.ReadFile(filepath.Join(root, "internal", "lib", "lib.go"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fix", "errcmp", "internal", "lib", "lib.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fixed file differs from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	formatted, err := format.Source(got)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if string(formatted) != string(got) {
		t.Errorf("fixed file is not gofmt-clean")
	}

	// The applied fixes must resolve their findings: a reload reports
	// zero errcmp diagnostics.
	pkgs, err = Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if n := countAnalyzer(Run(pkgs, Analyzers()), "errcmp"); n != 0 {
		t.Errorf("errcmp findings after fix = %d, want 0", n)
	}
}

// TestApplyFixesOverlapDeterministic: when two edits overlap, the one
// starting first wins and the result still formats.
func TestApplyFixesOverlap(t *testing.T) {
	root := copyFixTree(t, "errcmp")
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	var f *File
	for _, p := range pkgs {
		for _, pf := range p.Files {
			if pf.Path == "internal/lib/lib.go" {
				f = pf
			}
		}
	}
	if f == nil {
		t.Fatal("fixture file not loaded")
	}
	// Two fixes rewriting the same comparison: only the first applies.
	cmp := strings.Index(string(f.Src), "err == ErrClosed")
	if cmp < 0 {
		t.Fatal("comparison not found in fixture source")
	}
	diags := []Diagnostic{
		{Fixes: []SuggestedFix{{Edits: []TextEdit{{
			Filename: f.Path, Start: cmp, End: cmp + len("err == ErrClosed"),
			NewText: "errors.Is(err, ErrClosed)",
		}}}}},
		{Fixes: []SuggestedFix{{Edits: []TextEdit{{
			Filename: f.Path, Start: cmp + 4, End: cmp + len("err == ErrClosed"),
			NewText: "BROKEN",
		}}}}},
	}
	if _, err := ApplyFixes(root, pkgs, diags); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(root, "internal", "lib", "lib.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(got), "BROKEN") {
		t.Errorf("overlapping edit was applied:\n%s", got)
	}
	if !strings.Contains(string(got), "errors.Is(err, ErrClosed)") {
		t.Errorf("first edit was not applied:\n%s", got)
	}
}
