package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix returns the atomicmix analyzer: once a variable or struct
// field is accessed through sync/atomic anywhere in a package, every
// other access must be atomic too. A single plain read or write next to
// atomic ones is a data race the race detector only catches when the
// interleaving happens to occur; the type-resolved sweep catches it
// structurally. (Typed atomics — atomic.Int64 and friends — make the
// mistake impossible and are the preferred fix.)
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "a variable accessed via sync/atomic must never be read or written plainly",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	// Pass 1: every object passed by address to a sync/atomic function,
	// with the identifier nodes of those atomic accesses (skipped in
	// pass 2).
	atomicAt := make(map[*types.Var]token.Position)
	atomicNodes := make(map[ast.Node]bool)
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, _, isFn := pkgFuncCall(p, call)
			if !isFn || pkgPath != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			unary, isUnary := call.Args[0].(*ast.UnaryExpr)
			if !isUnary || unary.Op != token.AND {
				return true
			}
			obj := addressedVar(p, unary.X)
			if obj == nil {
				return true
			}
			pos := f.Fset.Position(call.Pos())
			if prev, seen := atomicAt[obj]; !seen || before(pos, prev) {
				atomicAt[obj] = pos
			}
			atomicNodes[unary.X] = true
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}
	// Pass 2: any other use of those objects is a plain access.
	var out []Diagnostic
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if atomicNodes[n] {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, isVar := p.Info.Uses[id].(*types.Var)
			if !isVar {
				return true
			}
			first, isAtomic := atomicAt[obj]
			if !isAtomic {
				return true
			}
			out = append(out, Diagnostic{
				Analyzer: "atomicmix",
				Position: f.Fset.Position(id.Pos()),
				Message:  fmt.Sprintf("%s is accessed with sync/atomic (first at %s:%d) but read/written plainly here; mixing modes is a data race — use atomic ops or a typed atomic everywhere", id.Name, first.Filename, first.Line),
			})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return before(out[i].Position, out[j].Position) })
	return out
}

// addressedVar resolves the variable or field object behind the operand
// of a unary & expression; nil when it is not a plain ident/selector.
func addressedVar(p *Package, e ast.Expr) *types.Var {
	switch v := e.(type) {
	case *ast.Ident:
		obj, _ := p.ObjectOf(v).(*types.Var)
		return obj
	case *ast.SelectorExpr:
		obj, _ := p.ObjectOf(v.Sel).(*types.Var)
		return obj
	}
	return nil
}

// before orders positions by file, line, column.
func before(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
