package lint

import (
	"encoding/json"
	"testing"
)

// TestSARIFStructure validates the emitted log against the SARIF 2.1.0
// invariants GitHub code scanning relies on: schema URI, version, a
// named driver with a rules catalogue, and per-result ruleId/ruleIndex
// agreement with physical locations.
func TestSARIFStructure(t *testing.T) {
	diags := runFixture(t, "atomicmix")
	logDoc := ToSARIF(diags, Analyzers())

	data, err := json.Marshal(logDoc)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if generic["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", generic["version"])
	}
	schema, _ := generic["$schema"].(string)
	if schema == "" {
		t.Error("missing $schema")
	}

	if len(logDoc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(logDoc.Runs))
	}
	run := logDoc.Runs[0]
	if run.Tool.Driver.Name != "mntlint" {
		t.Errorf("driver name = %q, want mntlint", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the framework's "lint" pseudo-rule.
	if want := len(Analyzers()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v lacks id or shortDescription", r)
		}
	}

	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for i, res := range run.Results {
		if res.RuleID != diags[i].Analyzer {
			t.Errorf("result %d ruleId = %q, want %q", i, res.RuleID, diags[i].Analyzer)
		}
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %d ruleIndex %d out of range", i, res.RuleIndex)
			continue
		}
		if rid := run.Tool.Driver.Rules[res.RuleIndex].ID; rid != res.RuleID {
			t.Errorf("result %d ruleIndex points at %q, want %q", i, rid, res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, res.Level)
		}
		if res.Message.Text != diags[i].Message {
			t.Errorf("result %d message mismatch", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d locations = %d, want 1", i, len(res.Locations))
		}
		phys := res.Locations[0].PhysicalLocation
		if phys.ArtifactLocation.URI != diags[i].Position.Filename {
			t.Errorf("result %d uri = %q, want %q", i, phys.ArtifactLocation.URI, diags[i].Position.Filename)
		}
		if phys.Region.StartLine != diags[i].Position.Line || phys.Region.StartColumn != diags[i].Position.Column {
			t.Errorf("result %d region = %+v, want %d:%d", i, phys.Region, diags[i].Position.Line, diags[i].Position.Column)
		}
	}
}

// TestSARIFEmpty: a clean run still yields a structurally valid log
// with an empty (non-null) results array.
func TestSARIFEmpty(t *testing.T) {
	logDoc := ToSARIF(nil, Analyzers())
	data, err := json.Marshal(logDoc)
	if err != nil {
		t.Fatal(err)
	}
	var generic struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	if generic.Runs[0].Results == nil {
		t.Error("results serialized as null; GitHub upload requires an array")
	}
}
