package lint

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// The v2 engine type-checks every loaded package with go/types so
// analyzers can resolve methods, field objects, and expression types
// instead of pattern-matching identifier spellings. Resolution stays
// stdlib-only: standard-library imports are satisfied by the go/importer
// source importer (parsing GOROOT/src, memoized for the process
// lifetime), module-local imports by type-checking the sibling directory
// that was already loaded, and anything unresolvable — fixture trees
// import fake module paths on purpose — by an empty placeholder package.
// Type errors are collected on Package.TypeErrors, never fatal: a file
// that does not fully type-check still gets syntactic analysis, and the
// type-aware analyzers degrade to silence rather than false positives.

// stdImporterState memoizes one source importer for the whole process;
// source-importing a large package (net/http) costs seconds, so the
// cache matters across the many Load calls of a test run. The importer
// keeps its own FileSet: positions inside stdlib sources are never
// reported, so mixing it with per-Load FileSets is harmless.
var stdImporterState struct {
	once sync.Once
	mu   sync.Mutex
	imp  types.Importer
}

// stdImport resolves a standard-library import path from GOROOT source.
func stdImport(path string) (*types.Package, error) {
	stdImporterState.once.Do(func() {
		stdImporterState.imp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	stdImporterState.mu.Lock()
	defer stdImporterState.mu.Unlock()
	return stdImporterState.imp.Import(path)
}

// typeChecker resolves imports for the packages of one Load call. It
// implements types.Importer.
type typeChecker struct {
	fset   *token.FileSet
	module string // module path from go.mod, "" for fixture roots
	byDir  map[string]*Package

	checked  map[string]*types.Package // by dir
	checking map[string]bool           // cycle guard, by dir
	fakes    map[string]*types.Package // by import path
}

// newTypeChecker indexes the loaded packages for import resolution.
func newTypeChecker(fset *token.FileSet, module string, byDir map[string]*Package) *typeChecker {
	return &typeChecker{
		fset:     fset,
		module:   module,
		byDir:    byDir,
		checked:  make(map[string]*types.Package),
		checking: make(map[string]bool),
		fakes:    make(map[string]*types.Package),
	}
}

// checkAll type-checks every loaded package (dependencies are pulled in
// recursively through Import, so iteration order does not matter).
func (tc *typeChecker) checkAll(dirs []string) {
	for _, dir := range dirs {
		tc.checkDir(dir)
	}
}

// importPath returns the import path under which a loaded directory is
// type-checked.
func (tc *typeChecker) importPath(dir string) string {
	switch {
	case dir == "":
		return tc.module
	case tc.module == "":
		return dir
	default:
		return tc.module + "/" + dir
	}
}

// checkDir type-checks the non-test files of one loaded directory,
// filling the Package's Types, Info, and TypeErrors fields. Packages
// with only test files (or none) keep nil type info.
func (tc *typeChecker) checkDir(dir string) *types.Package {
	if pkg, ok := tc.checked[dir]; ok {
		return pkg
	}
	p := tc.byDir[dir]
	if p == nil || tc.checking[dir] {
		return nil
	}
	tc.checking[dir] = true
	defer delete(tc.checking, dir)

	var files []*ast.File
	for _, f := range p.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		tc.checked[dir] = nil
		return nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    tc,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	path := tc.importPath(dir)
	if path == "" {
		path = p.Name
	}
	// Check never fails hard: the Error collector keeps it going, and a
	// partially-resolved Info is exactly what the nil-safe helpers below
	// are for.
	pkg, _ := conf.Check(path, tc.fset, files, info)
	p.Types = pkg
	p.Info = info
	tc.checked[dir] = pkg
	return pkg
}

// Import implements types.Importer. It never returns an error: fixture
// trees deliberately import nonexistent module paths, and a placeholder
// package keeps the checker moving (collecting member-lookup errors on
// the side) instead of aborting the file.
func (tc *typeChecker) Import(path string) (*types.Package, error) {
	if dir, ok := tc.localDir(path); ok {
		if pkg := tc.checkDir(dir); pkg != nil {
			return pkg, nil
		}
		return tc.fake(path), nil
	}
	if isStdlibPath(path) {
		if pkg, err := stdImport(path); err == nil {
			return pkg, nil
		}
	}
	return tc.fake(path), nil
}

// localDir maps an import path to a loaded directory: an exact module
// prefix match when a go.mod names the module, otherwise (fixture roots)
// the longest loaded directory that is a path suffix of the import.
func (tc *typeChecker) localDir(path string) (string, bool) {
	if tc.module != "" {
		if path == tc.module {
			return "", tc.byDir[""] != nil
		}
		if rest, ok := strings.CutPrefix(path, tc.module+"/"); ok {
			_, loaded := tc.byDir[rest]
			return rest, loaded
		}
		return "", false
	}
	best, found := "", false
	for dir := range tc.byDir {
		if dir == "" {
			continue
		}
		if path == dir || strings.HasSuffix(path, "/"+dir) {
			if len(dir) > len(best) {
				best, found = dir, true
			}
		}
	}
	return best, found
}

// isStdlibPath reports whether an import path can only name a
// standard-library package: no dot in the first element (host names
// have dots) and not a module-ish multi-segment private path we know is
// local-only. The source importer is the arbiter; this just avoids
// pointless GOROOT lookups for paths like "repro/internal/obs".
func isStdlibPath(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	if strings.Contains(first, ".") {
		return false
	}
	// Heuristic: stdlib top-level elements are short and well-known;
	// unknown first elements still get one (memoized) lookup attempt.
	return true
}

// fake returns (memoized) an empty placeholder package for an
// unresolvable import. It is marked complete so the checker reports
// undefined members instead of cascading "incomplete package" errors.
func (tc *typeChecker) fake(path string) *types.Package {
	if pkg, ok := tc.fakes[path]; ok {
		return pkg
	}
	name := path[strings.LastIndex(path, "/")+1:]
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	tc.fakes[path] = pkg
	return pkg
}

// TypeOf returns the type of an expression, or nil when the package has
// no type info or the expression did not resolve. Analyzers must treat
// nil as "unknown" and stay silent.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes (uses first, then
// defs), or nil.
func (p *Package) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// Selection returns the method/field selection for a selector
// expression, or nil.
func (p *Package) Selection(sel *ast.SelectorExpr) *types.Selection {
	if p.Info == nil {
		return nil
	}
	return p.Info.Selections[sel]
}

// isNamedType reports whether t (after pointer dereference) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return isNamedType(t, "context", "Context") }

// pkgFuncCall resolves a call to a package-level function and returns
// its package path and name ("sync/atomic", "AddInt64"), or ok=false.
func pkgFuncCall(p *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := p.ObjectOf(sel.Sel)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// methodCall resolves a method call expression and returns the defining
// package path, receiver type name, and method name — promoted methods
// (an embedded sync.Mutex) resolve to their origin, so
// ("sync", "Mutex", "Lock") matches s.Lock() on a struct embedding the
// mutex. ok is false for non-methods or unresolved calls.
func methodCall(p *Package, call *ast.CallExpr) (pkgPath, recvName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	obj := p.ObjectOf(sel.Sel)
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return "", "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), fn.Name(), true
}
