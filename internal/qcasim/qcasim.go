// Package qcasim simulates QCA cell layouts under the bistable
// approximation used by QCADesigner: every cell carries a polarization
// P in [-1, 1]; the kink energy between two cells is computed from the
// electrostatic interaction of their four quantum dots; and each free
// cell relaxes to
//
//	P_i = tanh-like( Σ_j Ek_ij · P_j / 2γ )
//
// with fixed and input cells clamped. The engine validates the QCA ONE
// standard-cell shapes produced by internal/gatelib physically: a
// majority gate really computes majority, the fork inverter really
// inverts, wires really propagate.
package qcasim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gatelib"
)

// Physical constants of the default QCADesigner technology.
const (
	cellPitchNM    = 18.0 // cell center-to-center distance
	dotOffsetNM    = 4.5  // quantum-dot offset from the cell center
	radiusNM       = 65.0 // radius of effect for cell-cell interaction
	gammaOverE     = 0.05 // tunneling energy relative to the kink unit
	convergenceEps = 1e-6
	maxIterations  = 20000
	damping        = 0.5 // Gauss-Seidel under-relaxation factor
)

// debugDump, when set by tests, receives the engine state on a
// convergence failure.
var debugDump func(e *Engine, z int, gamma float64, members []int)

// clockRamp is the quasi-adiabatic switch-phase schedule of the
// tunneling energy: relaxation starts soft (low update gain, no
// oscillation) and hardens toward the hold value, like the clock field
// of a physical QCA array.
var clockRamp = []float64{1.6, 0.8, 0.4, 0.2, 0.1, gammaOverE}

// Cell is one simulated cell.
type Cell struct {
	X, Y, Z int
	Type    gatelib.CellType
	// Clock is the cell's clock zone, driving the switching schedule.
	Clock int
	// P is the current polarization.
	P float64
}

// Engine holds a cell layout with its precomputed couplings.
type Engine struct {
	cells []Cell
	// couplings[i] lists (j, Ek_ij) for every neighbor within the radius
	// of effect, normalized to the nearest-neighbor kink energy.
	couplings [][]coupling
	inputs    []int // indices of input cells in deterministic order
	outputs   []int // indices of output cells in deterministic order
	// source is the originating cell layout (carries via declarations).
	source *gatelib.CellLayout
	// rank[i] is the signal-flow rank assigned by the cell expansion
	// (tile arrival order plus intra-tile position); it orders updates
	// and gates feedforward propagation.
	rank []int
}

type coupling struct {
	other int
	ek    float64
}

// New builds a simulation engine from a QCA ONE cell layout.
func New(cl *gatelib.CellLayout) (*Engine, error) {
	if cl.Library != gatelib.QCAOne {
		return nil, fmt.Errorf("qcasim: needs a QCA ONE cell layout, got %s", cl.Library.Name)
	}
	coords := cl.Coords()
	if len(coords) == 0 {
		return nil, fmt.Errorf("qcasim: empty cell layout")
	}
	e := &Engine{cells: make([]Cell, len(coords)), source: cl}
	for i, c := range coords {
		cell, _ := cl.At(c)
		e.cells[i] = Cell{X: c.X, Y: c.Y, Z: c.Z, Type: cell.Type, Clock: cell.Clock}
		e.rank = append(e.rank, cell.Rank)
		switch cell.Type {
		case gatelib.CellInput:
			e.inputs = append(e.inputs, i)
		case gatelib.CellOutput:
			e.outputs = append(e.outputs, i)
		}
	}
	e.buildCouplings()
	return e, nil
}

// NumInputs returns the number of input cells.
func (e *Engine) NumInputs() int { return len(e.inputs) }

// NumOutputs returns the number of output cells.
func (e *Engine) NumOutputs() int { return len(e.outputs) }

// buildCouplings precomputes normalized kink energies between all cell
// pairs within the radius of effect.
func (e *Engine) buildCouplings() {
	e.couplings = make([][]coupling, len(e.cells))
	// Normalize against the nearest-neighbor collinear kink energy so
	// that gamma is technology-independent.
	unit := kinkEnergy(cellPitchNM, 0, 0)
	for i := range e.cells {
		for j := range e.cells {
			if i == j {
				continue
			}
			dx := float64(e.cells[j].X-e.cells[i].X) * cellPitchNM
			dy := float64(e.cells[j].Y-e.cells[i].Y) * cellPitchNM
			if dx*dx+dy*dy > radiusNM*radiusNM {
				continue
			}
			// Cross-layer idealization: physical implementations realize
			// wire crossings coplanar with rotated cells, which couple to
			// normal cells with net zero; only declared vias carry a
			// signal across layers. Inter-layer coupling therefore exists
			// exactly at via pairs, at nominal driving strength.
			if e.cells[j].Z != e.cells[i].Z {
				a := gatelib.CellCoord{X: e.cells[i].X, Y: e.cells[i].Y, Z: e.cells[i].Z}
				b := gatelib.CellCoord{X: e.cells[j].X, Y: e.cells[j].Y, Z: e.cells[j].Z}
				if !e.source.IsVia(a, b) {
					continue
				}
				e.couplings[i] = append(e.couplings[i], coupling{other: j, ek: 1})
				continue
			}
			ek := kinkEnergy(dx, dy, 0) / unit
			if math.Abs(ek) < 1e-6 {
				continue
			}
			e.couplings[i] = append(e.couplings[i], coupling{other: j, ek: ek})
		}
	}
}

// kinkEnergy computes the (unnormalized) energy difference between
// anti-aligned and aligned polarizations of two four-dot cells whose
// centers are separated by (dx, dy, dz) nanometres. Positive values mean
// the cells prefer equal polarization (collinear neighbors); negative
// values mean they prefer opposite polarization (diagonal neighbors).
//
// Following QCADesigner's model, each cell is a charge quadrupole: the
// two electrons sit on the polarization diagonal and every dot carries a
// neutralizing +e/2 background, leaving +e/2 on the occupied diagonal
// and -e/2 on the other. Without the background compensation the
// diagonal anti-coupling comes out almost as strong as the collinear
// coupling and plus-shaped majority junctions stop working.
func kinkEnergy(dx, dy, dz float64) float64 {
	type charge struct{ x, y, q float64 }
	// Quadrupole for polarization +1: occupied diagonal +e/2, free
	// diagonal -e/2 (units of e/2).
	quad := func(p float64) []charge {
		return []charge{
			{+dotOffsetNM, +dotOffsetNM, p},
			{-dotOffsetNM, -dotOffsetNM, p},
			{+dotOffsetNM, -dotOffsetNM, -p},
			{-dotOffsetNM, +dotOffsetNM, -p},
		}
	}
	inter := func(a, b []charge) float64 {
		s := 0.0
		for _, p := range a {
			for _, q := range b {
				ex := dx + q.x - p.x
				ey := dy + q.y - p.y
				s += p.q * q.q / math.Sqrt(ex*ex+ey*ey+dz*dz)
			}
		}
		return s
	}
	aligned := inter(quad(1), quad(1))
	anti := inter(quad(1), quad(-1))
	return anti - aligned
}

// Simulate clamps the input cells to the given logical values, runs the
// clocked bistable relaxation to a steady state, and returns the output
// cell values (true for polarization +1). Inputs are ordered by the
// deterministic cell order (Y, then X, then Z) of the input cells;
// Outputs likewise.
//
// The clock zones recorded on the cells drive the schedule exactly as in
// QCADesigner's bistable engine: in every phase one zone switches — its
// free cells are depolarized (the physical release phase) and then
// relaxed against the frozen remainder of the array — while the other
// zones hold. Phases repeat until a full clock round leaves every cell
// unchanged. The release-phase reset is what makes the simulation
// directional: without it, output wire stubs can hold stale polarization
// and trap gates in echo states.
func (e *Engine) Simulate(inputs []bool) ([]bool, error) {
	if len(inputs) != len(e.inputs) {
		return nil, fmt.Errorf("qcasim: %d input values for %d input cells", len(inputs), len(e.inputs))
	}
	// Reset polarizations.
	for i := range e.cells {
		switch e.cells[i].Type {
		case gatelib.CellFixedMinus:
			e.cells[i].P = -1
		case gatelib.CellFixedPlus:
			e.cells[i].P = 1
		default:
			e.cells[i].P = 0
		}
	}
	for k, idx := range e.inputs {
		if inputs[k] {
			e.cells[idx].P = 1
		} else {
			e.cells[idx].P = -1
		}
	}

	// Group free cells by clock zone, each in propagation order
	// (breadth-first from clamped cells along strong couplings) so that
	// within a zone the Gauss-Seidel sweep follows the physical signal
	// direction.
	order := e.propagationOrder()
	maxZone := 0
	for i := range e.cells {
		if e.cells[i].Clock > maxZone {
			maxZone = e.cells[i].Clock
		}
	}
	zones := make([][]int, maxZone+1)
	for _, i := range order {
		switch e.cells[i].Type {
		case gatelib.CellInput, gatelib.CellFixedMinus, gatelib.CellFixedPlus:
			continue
		}
		z := e.cells[i].Clock
		zones[z] = append(zones[z], i)
	}

	// update relaxes cell i while zone z is switching. Only the holding
	// zone (z-1), cells of z itself, and clamped cells exert influence:
	// downstream zones are physically in their release phase
	// (depolarized), so their couplings are masked — without this,
	// symmetric couplings let stale downstream values flow backwards and
	// pin kinks into wire chains.
	numZones := len(zones)
	update := func(i, z int, gamma float64) float64 {
		hold := (z + numZones - 1) % numZones
		sum := 0.0
		for _, cp := range e.couplings[i] {
			o := &e.cells[cp.other]
			active := o.Clock == z || o.Clock == hold
			if !active {
				switch o.Type {
				case gatelib.CellInput, gatelib.CellFixedMinus, gatelib.CellFixedPlus:
					active = true
				}
			}
			if !active {
				continue
			}
			// Feedforward gating: ignore free neighbors that lie later in
			// signal-flow order than this cell — its own downstream wire,
			// the upper wire of a crossing (stacked cells anti-couple
			// strongly), or weak diagonal crosstalk from later chains.
			// This directional approximation keeps gate centers from
			// latching their output arm's stale value, keeps crossing
			// wires from fighting each other, and removes the marginal
			// weak-coupling loops around elbows that otherwise prevent
			// convergence at low tunneling energies. Clamped cells always
			// drive.
			clamped := o.Type == gatelib.CellInput || o.Type == gatelib.CellFixedMinus || o.Type == gatelib.CellFixedPlus
			if !clamped && e.flowsAfter(cp.other, i) {
				continue
			}
			sum += cp.ek * o.P
		}
		x := sum / (2 * gamma)
		target := x / math.Sqrt(1+x*x)
		// Damped update: frustrated clusters of anti-aligning couplings
		// can make the undamped Gauss-Seidel sweep oscillate.
		newP := e.cells[i].P + damping*(target-e.cells[i].P)
		delta := math.Abs(newP - e.cells[i].P)
		e.cells[i].P = newP
		return delta
	}

	// relaxZone depolarizes one zone (the physical release phase) and
	// settles it against the held previous zone.
	relaxZone := func(z int, members []int) error {
		for _, i := range members {
			e.cells[i].P = 0
		}
		worst := -1
		for _, gamma := range clockRamp {
			converged := false
			for iter := 0; iter < maxIterations; iter++ {
				maxDelta := 0.0
				for _, i := range members {
					if d := update(i, z, gamma); d > maxDelta {
						maxDelta = d
						worst = i
					}
				}
				if maxDelta < convergenceEps {
					converged = true
					break
				}
			}
			if !converged {
				c := e.cells[worst]
				if debugDump != nil {
					debugDump(e, z, gamma, members)
				}
				return fmt.Errorf("qcasim: zone %d did not converge after %d iterations at gamma %.2f (worst cell (%d,%d,%d) rank %d P=%.3f)",
					z, maxIterations, gamma, c.X, c.Y, c.Z, e.rank[worst], c.P)
			}
		}
		return nil
	}

	maxRounds := len(e.cells) + 8
	prev := make([]float64, len(e.cells))
	for round := 0; round < maxRounds; round++ {
		for i := range e.cells {
			prev[i] = e.cells[i].P
		}
		for z, members := range zones {
			if len(members) == 0 {
				continue
			}
			if err := relaxZone(z, members); err != nil {
				return nil, err
			}
		}
		stable := true
		for i := range e.cells {
			if math.Abs(prev[i]-e.cells[i].P) > 10*convergenceEps {
				stable = false
				break
			}
		}
		if stable && round > 0 {
			out := make([]bool, len(e.outputs))
			for k, idx := range e.outputs {
				p := e.cells[idx].P
				if math.Abs(p) < 0.1 {
					return nil, fmt.Errorf("qcasim: output cell %d undecided (P=%.3f)", k, p)
				}
				out[k] = p > 0
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("qcasim: no steady state after %d clock rounds", maxRounds)
}

// flowsAfter reports whether cell j comes strictly later than cell i in
// the signal-flow order: ranks first, coordinates as the deterministic
// tie-break (so even parallel wires and crossing layers have a defined
// direction).
func (e *Engine) flowsAfter(j, i int) bool {
	if e.rank[j] != e.rank[i] {
		return e.rank[j] > e.rank[i]
	}
	cj, ci := e.cells[j], e.cells[i]
	if cj.X+cj.Y != ci.X+ci.Y {
		return cj.X+cj.Y > ci.X+ci.Y
	}
	if cj.Y != ci.Y {
		return cj.Y > ci.Y
	}
	if cj.X != ci.X {
		return cj.X > ci.X
	}
	return cj.Z > ci.Z
}

// propagationOrder returns the cell update order: ascending signal-flow
// order as defined by flowsAfter.
func (e *Engine) propagationOrder() []int {
	order := make([]int, len(e.cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return e.flowsAfter(order[b], order[a])
	})
	return order
}

// TruthTable simulates all 2^n input patterns (n <= 16) and returns the
// output rows; bit i of the row index is input i.
func (e *Engine) TruthTable() ([][]bool, error) {
	n := len(e.inputs)
	if n > 16 {
		return nil, fmt.Errorf("qcasim: %d inputs exceed the truth-table limit", n)
	}
	rows := make([][]bool, 1<<n)
	in := make([]bool, n)
	for r := range rows {
		for i := 0; i < n; i++ {
			in[i] = r&(1<<i) != 0
		}
		out, err := e.Simulate(in)
		if err != nil {
			return nil, fmt.Errorf("qcasim: pattern %b: %w", r, err)
		}
		rows[r] = out
	}
	return rows, nil
}

// Polarization exposes the final polarization of cell (x, y, z) after
// the latest Simulate call, for diagnostics.
func (e *Engine) Polarization(x, y, z int) (float64, bool) {
	for i := range e.cells {
		c := e.cells[i]
		if c.X == x && c.Y == y && c.Z == z {
			return c.P, true
		}
	}
	return 0, false
}
