package qcasim

import (
	"testing"

	"repro/internal/gatelib"
	"repro/internal/physical/ortho"
)

func BenchmarkSimulateMux21(b *testing.B) {
	n := muxNet()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		b.Fatal(err)
	}
	l, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cells, err := gatelib.ExpandQCAOne(l)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(cells)
	if err != nil {
		b.Fatal(err)
	}
	in := []bool{true, false, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Simulate(in); err != nil {
			b.Fatal(err)
		}
	}
}
