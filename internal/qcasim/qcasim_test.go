package qcasim

import (
	"testing"

	"repro/internal/clocking"
	"repro/internal/gatelib"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/verify"
)

// expand builds the QCA cell layout for a hand-constructed tile layout.
func expand(t *testing.T, l *layout.Layout) *Engine {
	t.Helper()
	cells, err := gatelib.ExpandQCAOne(l)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cells)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWireLinePropagates(t *testing.T) {
	l := layout.New("wire", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	prev := layout.C(0, 0)
	for x := 1; x <= 3; x++ {
		c := layout.C(x, 0)
		l.MustPlace(c, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{prev}})
		prev = c
	}
	l.MustPlace(layout.C(4, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{prev}})
	e := expand(t, l)
	for _, v := range []bool{false, true} {
		out, err := e.Simulate([]bool{v})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != v {
			t.Errorf("wire(%v) = %v", v, out[0])
		}
	}
}

func TestCornerWirePropagates(t *testing.T) {
	l := layout.New("corner", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(1, 0)}})
	l.MustPlace(layout.C(1, 2), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 1)}})
	e := expand(t, l)
	for _, v := range []bool{false, true} {
		out, err := e.Simulate([]bool{v})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != v {
			t.Errorf("corner(%v) = %v", v, out[0])
		}
	}
}

// gate2 builds PI,PI -> gate -> PO with the gate at a 2DDWave-legal spot.
func gate2(t *testing.T, fn network.Gate) *Engine {
	l := layout.New("g2", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 1), layout.Tile{Fn: network.PI, Name: "b"})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: fn, Incoming: []layout.Coord{layout.C(1, 0), layout.C(0, 1)}})
	l.MustPlace(layout.C(2, 1), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 1)}})
	return expand(t, l)
}

func TestAndGateBistable(t *testing.T) {
	e := gate2(t, network.And)
	tt, err := e.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		a, b := r&1 != 0, r&2 != 0
		if tt[r][0] != (a && b) {
			t.Errorf("AND(%v,%v) = %v", a, b, tt[r][0])
		}
	}
}

func TestOrGateBistable(t *testing.T) {
	e := gate2(t, network.Or)
	tt, err := e.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		a, b := r&1 != 0, r&2 != 0
		if tt[r][0] != (a || b) {
			t.Errorf("OR(%v,%v) = %v", a, b, tt[r][0])
		}
	}
}

func TestMajorityGateBistable(t *testing.T) {
	// A three-input majority tile needs all inputs in the zone before the
	// gate; no regular scheme offers that, so use a custom zone pattern
	// (inputs zone 0, gate zone 1, output zone 2).
	scheme, err := clocking.Custom("maj-test", 4, [][]int{
		{0, 0, 0},
		{0, 1, 2},
		{0, 0, 0},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	l := layout.New("maj", layout.Cartesian, scheme)
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 1), layout.Tile{Fn: network.PI, Name: "b"})
	l.MustPlace(layout.C(1, 2), layout.Tile{Fn: network.PI, Name: "c"})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.Maj,
		Incoming: []layout.Coord{layout.C(1, 0), layout.C(0, 1), layout.C(1, 2)}})
	l.MustPlace(layout.C(2, 1), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 1)}})
	e := expand(t, l)
	tt, err := e.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		ones := 0
		for i := 0; i < 3; i++ {
			if r&(1<<i) != 0 {
				ones++
			}
		}
		if tt[r][0] != (ones >= 2) {
			t.Errorf("MAJ pattern %03b = %v", r, tt[r][0])
		}
	}
}

func TestForkInverterBistable(t *testing.T) {
	// Straight west-to-east inverter.
	l := layout.New("inv", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Not, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})
	e := expand(t, l)
	for _, v := range []bool{false, true} {
		out, err := e.Simulate([]bool{v})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != !v {
			t.Errorf("NOT(%v) = %v, want %v", v, out[0], !v)
		}
	}
}

func TestFanoutBistable(t *testing.T) {
	l := layout.New("fan", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Fanout, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.PO, Name: "g", Incoming: []layout.Coord{layout.C(1, 0)}})
	e := expand(t, l)
	for _, v := range []bool{false, true} {
		out, err := e.Simulate([]bool{v})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != v || out[1] != v {
			t.Errorf("FANOUT(%v) = %v,%v", v, out[0], out[1])
		}
	}
}

func TestAndOrChainBistable(t *testing.T) {
	// f = (a & b) | c as a two-gate cascade with wires between.
	l := layout.New("aoi", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 1), layout.Tile{Fn: network.PI, Name: "b"})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.And, Incoming: []layout.Coord{layout.C(1, 0), layout.C(0, 1)}})
	l.MustPlace(layout.C(2, 1), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(1, 1)}})
	l.MustPlace(layout.C(3, 0), layout.Tile{Fn: network.PI, Name: "c"})
	l.MustPlace(layout.C(3, 1), layout.Tile{Fn: network.Or, Incoming: []layout.Coord{layout.C(2, 1), layout.C(3, 0)}})
	l.MustPlace(layout.C(3, 2), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(3, 1)}})
	e := expand(t, l)
	tt, err := e.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	// Engine input order is by cell coordinates (row-major): PI a sits at
	// row 0 column 7, PI c at row 0 column 17, PI b at row 7 — so the
	// pattern bits map to (a, c, b).
	for r := 0; r < 8; r++ {
		a, c, b := r&1 != 0, r&2 != 0, r&4 != 0
		want := (a && b) || c
		if tt[r][0] != want {
			t.Errorf("pattern %03b: got %v want %v", r, tt[r][0], want)
		}
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	e := gate2(t, network.And)
	if _, err := e.Simulate([]bool{true}); err == nil {
		t.Error("accepted wrong input count")
	}
	if e.NumInputs() != 2 || e.NumOutputs() != 1 {
		t.Errorf("I/O = %d/%d", e.NumInputs(), e.NumOutputs())
	}
}

func TestKinkEnergySigns(t *testing.T) {
	collinear := kinkEnergy(cellPitchNM, 0, 0)
	if collinear <= 0 {
		t.Errorf("collinear neighbors must prefer alignment, Ek = %v", collinear)
	}
	diagonal := kinkEnergy(cellPitchNM, cellPitchNM, 0)
	if diagonal >= 0 {
		t.Errorf("diagonal neighbors must prefer anti-alignment, Ek = %v", diagonal)
	}
	if kinkEnergy(0, cellPitchNM, 0) <= 0 {
		t.Error("vertical neighbors must prefer alignment")
	}
}

func TestCrossingIsolation(t *testing.T) {
	// Two signals crossing: a runs east on the ground layer, b crosses
	// north-to-south over it on the crossing layer.
	l := layout.New("xing", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 1), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 1), wireTile(layout.C(0, 1)))
	l.MustPlace(layout.C(2, 1), wireTile(layout.C(1, 1)))
	l.MustPlace(layout.C(3, 1), layout.Tile{Fn: network.PO, Name: "fa", Incoming: []layout.Coord{layout.C(2, 1)}})

	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PI, Name: "b"})
	over := layout.Coord{X: 2, Y: 1, Z: 1}
	l.MustPlace(over, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(2, 0)}})
	l.MustPlace(layout.C(2, 2), layout.Tile{Fn: network.PO, Name: "fb", Incoming: []layout.Coord{over}})

	cells, err := gatelib.ExpandQCAOne(l)
	if err != nil {
		t.Fatal(err)
	}
	if cells.NumVias() == 0 {
		t.Fatal("no vias declared for the layer transitions")
	}
	e, err := New(cells)
	if err != nil {
		t.Fatal(err)
	}
	// Engine input order by coordinates: b's cell is at row 2, a's at
	// row 7, so inputs are [b, a]; outputs: fa at (3,1) row 7 center
	// (17,7), fb at (2,2) center (12,12) -> [fa, fb].
	for pat := 0; pat < 4; pat++ {
		b, a := pat&1 != 0, pat&2 != 0
		out, err := e.Simulate([]bool{b, a})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != a || out[1] != b {
			t.Errorf("crossing corrupted signals: a=%v b=%v got fa=%v fb=%v", a, b, out[0], out[1])
		}
	}
}

func wireTile(in ...layout.Coord) layout.Tile {
	return layout.Tile{Fn: network.Buf, Wire: true, Incoming: in}
}

// TestFullLayoutSimulation physically simulates complete placed-and-
// optimized layouts — the strongest validation of the QCA ONE cell
// library: every truth-table row of the bistable simulation must match
// the layout's logic.
func TestFullLayoutSimulation(t *testing.T) {
	cases := []*network.Network{muxNet(), haNet()}
	for _, n := range cases {
		n := n
		t.Run(n.Name, func(t *testing.T) {
			prep, err := gatelib.QCAOne.Prepare(n)
			if err != nil {
				t.Fatal(err)
			}
			placed, err := ortho.Place(prep, ortho.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := postlayout.Optimize(placed, postlayout.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, lay := range []*layout.Layout{placed, opt} {
				cells, err := gatelib.ExpandQCAOne(lay)
				if err != nil {
					t.Fatal(err)
				}
				e, err := New(cells)
				if err != nil {
					t.Fatal(err)
				}
				simTT, err := e.TruthTable()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := verify.ExtractNetwork(lay)
				if err != nil {
					t.Fatal(err)
				}
				refTT, err := ref.TruthTable()
				if err != nil {
					t.Fatal(err)
				}
				for r := range simTT {
					for c := range simTT[r] {
						if simTT[r][c] != refTT[r][c] {
							t.Fatalf("pattern %d output %d: simulation %v, logic %v",
								r, c, simTT[r][c], refTT[r][c])
						}
					}
				}
			}
		})
	}
}

func muxNet() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	n.AddPO(n.AddOr(n.AddAnd(a, n.AddNot(s)), n.AddAnd(b, s)), "f")
	return n
}

func haNet() *network.Network {
	n := network.New("ha")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(a, b), "sum")
	n.AddPO(n.AddAnd(a, b), "carry")
	return n
}
