// Package clocking defines the clock-zone assignment schemes used by
// field-coupled nanocomputing layouts.
//
// An FCN clocking scheme partitions the tile grid into numbered clock
// zones. Information flows from a tile in zone c only into an adjacent
// tile in zone (c+1) mod n; this single rule, combined with a scheme's
// zone pattern, determines all legal signal directions. All schemes here
// use four zones, matching the QCA/SiDB literature and the layouts
// distributed by MNT Bench.
package clocking

import (
	"fmt"
	"sort"
	"strings"
)

// Scheme is a periodic clock-zone assignment over tile coordinates.
type Scheme struct {
	// Name is the canonical scheme name as it appears on MNT Bench
	// ("2DDWave", "USE", "RES", "ESR", "ROW", "CFE", "Columnar").
	Name string
	// NumZones is the number of clock phases (4 for every built-in).
	NumZones int
	// pattern holds the periodic zone tile: pattern[y%len][x%len(row)].
	pattern [][]int
	// InPlaneFeedback reports whether the scheme admits cycles of
	// zone-incrementing moves within the plane (needed for feedback paths;
	// 2DDWave, ROW, and Columnar do not have it).
	InPlaneFeedback bool
}

// Zone returns the clock zone of tile (x, y). Coordinates may be
// arbitrary non-negative integers; the pattern repeats periodically.
func (s *Scheme) Zone(x, y int) int {
	row := s.pattern[y%len(s.pattern)]
	return row[x%len(row)]
}

// PeriodX returns the horizontal period of the zone pattern: shifting
// all tiles east or west by a multiple of PeriodX preserves every tile's
// zone.
func (s *Scheme) PeriodX() int { return len(s.pattern[0]) }

// PeriodY returns the vertical period of the zone pattern.
func (s *Scheme) PeriodY() int { return len(s.pattern) }

// Pattern returns a copy of the periodic zone pattern (pattern[y][x]).
func (s *Scheme) Pattern() [][]int {
	out := make([][]int, len(s.pattern))
	for y, row := range s.pattern {
		out[y] = append([]int(nil), row...)
	}
	return out
}

// IsBuiltin reports whether the scheme is one of the package-level
// built-ins (resolvable by name alone).
func (s *Scheme) IsBuiltin() bool {
	for _, b := range All() {
		if b == s {
			return true
		}
	}
	return false
}

// String returns the scheme name.
func (s *Scheme) String() string { return s.Name }

// Built-in schemes. The periodic patterns follow the fiction framework's
// definitions of the published schemes: 2DDWave (Vankamamidi et al.),
// USE (Campos et al., TCAD 2016), RES (Goes et al., 2020), ESR
// (Pal et al., 2021), CFE (Frank et al.), plus the trivial ROW and
// Columnar assignments. ROW is the scheme used for hexagonal Bestagon
// layouts in MNT Bench.
var (
	// TwoDDWave assigns zone (x+y) mod 4: a diagonal wave from the origin.
	// Dataflow is strictly east/south; no in-plane feedback.
	TwoDDWave = &Scheme{
		Name:     "2DDWave",
		NumZones: 4,
		pattern: [][]int{
			{0, 1, 2, 3},
			{1, 2, 3, 0},
			{2, 3, 0, 1},
			{3, 0, 1, 2},
		},
	}

	// USE is the Universal, Scalable, Efficient scheme; its 4x4 pattern
	// admits in-plane feedback loops.
	USE = &Scheme{
		Name:     "USE",
		NumZones: 4,
		pattern: [][]int{
			{0, 1, 2, 3},
			{3, 2, 1, 0},
			{2, 3, 0, 1},
			{1, 0, 3, 2},
		},
		InPlaneFeedback: true,
	}

	// RES favors straight top-down columns with feedback-capable detours.
	RES = &Scheme{
		Name:     "RES",
		NumZones: 4,
		pattern: [][]int{
			{3, 0, 1, 2},
			{0, 1, 0, 3},
			{1, 2, 3, 0},
			{0, 3, 2, 1},
		},
		InPlaneFeedback: true,
	}

	// ESR is a RES-like scheme with an extended feedback structure.
	ESR = &Scheme{
		Name:     "ESR",
		NumZones: 4,
		pattern: [][]int{
			{3, 0, 1, 2},
			{0, 1, 2, 3},
			{1, 2, 3, 0},
			{0, 3, 2, 1},
		},
		InPlaneFeedback: true,
	}

	// CFE is a columnar flow scheme with embedded feedback cells.
	CFE = &Scheme{
		Name:     "CFE",
		NumZones: 4,
		pattern: [][]int{
			{0, 1, 0, 1},
			{3, 2, 3, 2},
			{0, 1, 0, 1},
			{3, 2, 3, 2},
		},
		InPlaneFeedback: true,
	}

	// Row assigns zone y mod 4; dataflow is strictly downward. This is the
	// scheme of hexagonal Bestagon layouts (each hex row is one zone).
	Row = &Scheme{
		Name:     "ROW",
		NumZones: 4,
		pattern: [][]int{
			{0},
			{1},
			{2},
			{3},
		},
	}

	// Columnar assigns zone x mod 4; dataflow is strictly eastward.
	Columnar = &Scheme{
		Name:     "Columnar",
		NumZones: 4,
		pattern: [][]int{
			{0, 1, 2, 3},
		},
	}
)

// Custom builds an ad-hoc periodic scheme from an explicit zone pattern
// (pattern[y][x], repeated in both directions). All rows must have equal
// length and zones must lie in [0, numZones). Used for irregular or
// experimental clockings and by tests that need full zone control.
func Custom(name string, numZones int, pattern [][]int, inPlaneFeedback bool) (*Scheme, error) {
	if len(pattern) == 0 || len(pattern[0]) == 0 {
		return nil, fmt.Errorf("clocking: empty pattern")
	}
	w := len(pattern[0])
	cp := make([][]int, len(pattern))
	for y, row := range pattern {
		if len(row) != w {
			return nil, fmt.Errorf("clocking: ragged pattern row %d", y)
		}
		for x, z := range row {
			if z < 0 || z >= numZones {
				return nil, fmt.Errorf("clocking: zone %d at (%d,%d) out of range [0,%d)", z, x, y, numZones)
			}
		}
		cp[y] = append([]int(nil), row...)
	}
	return &Scheme{Name: name, NumZones: numZones, pattern: cp, InPlaneFeedback: inPlaneFeedback}, nil
}

// All lists every built-in scheme in display order.
func All() []*Scheme {
	return []*Scheme{TwoDDWave, USE, RES, ESR, Row, CFE, Columnar}
}

// ByName resolves a scheme by case-insensitive name.
func ByName(name string) (*Scheme, error) {
	for _, s := range All() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	var names []string
	for _, s := range All() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("clocking: unknown scheme %q (available: %s)", name, strings.Join(names, ", "))
}
