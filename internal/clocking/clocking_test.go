package clocking

import "testing"

func TestCustomScheme(t *testing.T) {
	s, err := Custom("test", 4, [][]int{{0, 1}, {2, 3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Zone(0, 0) != 0 || s.Zone(1, 0) != 1 || s.Zone(0, 1) != 2 || s.Zone(1, 1) != 3 {
		t.Error("pattern not applied")
	}
	// Periodicity.
	if s.Zone(2, 2) != 0 || s.Zone(3, 3) != 3 {
		t.Error("pattern not periodic")
	}
	if s.PeriodX() != 2 || s.PeriodY() != 2 {
		t.Errorf("periods = %d,%d", s.PeriodX(), s.PeriodY())
	}
	if !s.InPlaneFeedback {
		t.Error("feedback flag lost")
	}
}

func TestCustomSchemeValidation(t *testing.T) {
	if _, err := Custom("x", 4, nil, false); err == nil {
		t.Error("accepted empty pattern")
	}
	if _, err := Custom("x", 4, [][]int{{0, 1}, {2}}, false); err == nil {
		t.Error("accepted ragged pattern")
	}
	if _, err := Custom("x", 4, [][]int{{0, 4}}, false); err == nil {
		t.Error("accepted out-of-range zone")
	}
	if _, err := Custom("x", 4, [][]int{{-1}}, false); err == nil {
		t.Error("accepted negative zone")
	}
}

func TestCustomSchemeIsACopy(t *testing.T) {
	pattern := [][]int{{0, 1, 2, 3}}
	s, err := Custom("x", 4, pattern, false)
	if err != nil {
		t.Fatal(err)
	}
	pattern[0][0] = 3
	if s.Zone(0, 0) != 0 {
		t.Error("scheme aliases the caller's pattern")
	}
}

func TestBuiltinPeriods(t *testing.T) {
	for _, s := range All() {
		if s.PeriodX() < 1 || s.PeriodY() < 1 {
			t.Errorf("%s: bad periods", s.Name)
		}
		// Shifting by the period must preserve every zone.
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if s.Zone(x, y) != s.Zone(x+s.PeriodX(), y) {
					t.Fatalf("%s: x period violated at (%d,%d)", s.Name, x, y)
				}
				if s.Zone(x, y) != s.Zone(x, y+s.PeriodY()) {
					t.Fatalf("%s: y period violated at (%d,%d)", s.Name, x, y)
				}
			}
		}
	}
}

func TestFeedbackFlags(t *testing.T) {
	wantFeedback := map[string]bool{
		"2DDWave": false, "ROW": false, "Columnar": false,
		"USE": true, "RES": true, "ESR": true, "CFE": true,
	}
	for _, s := range All() {
		if s.InPlaneFeedback != wantFeedback[s.Name] {
			t.Errorf("%s: feedback = %v", s.Name, s.InPlaneFeedback)
		}
	}
}

// TestSchemesReachAllZones checks every built-in scheme uses all four
// zones within one period (otherwise some phases would idle).
func TestSchemesReachAllZones(t *testing.T) {
	for _, s := range All() {
		seen := make(map[int]bool)
		for y := 0; y < s.PeriodY(); y++ {
			for x := 0; x < s.PeriodX(); x++ {
				seen[s.Zone(x, y)] = true
			}
		}
		if len(seen) != s.NumZones {
			t.Errorf("%s: only %d of %d zones used", s.Name, len(seen), s.NumZones)
		}
	}
}
