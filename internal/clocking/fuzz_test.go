package clocking

import (
	"testing"
)

// FuzzCustomScheme feeds arbitrary patterns to Custom and checks the
// scheme invariants on everything it accepts: Zone is total over the
// non-negative coordinate domain (always a value in [0, NumZones)), and
// the pattern repeats with the advertised periods.
func FuzzCustomScheme(f *testing.F) {
	f.Add(4, 2, 2, []byte{0, 1, 3, 2})         // 2DDWave-like tile
	f.Add(4, 4, 4, []byte("0123123023013012")) // arbitrary digits
	f.Add(1, 1, 1, []byte{0})
	f.Add(0, 1, 1, []byte{0}) // zero zones must be rejected
	f.Add(4, 2, 3, []byte{9}) // short data, out-of-range zones
	f.Fuzz(func(t *testing.T, numZones, rows, cols int, data []byte) {
		if rows < 0 || cols < 0 || rows*cols > 1024 || numZones > 64 {
			return
		}
		pattern := make([][]int, 0, rows)
		k := 0
		for y := 0; y < rows; y++ {
			row := make([]int, cols)
			for x := range row {
				if len(data) > 0 {
					// int8 so negative zone values are explored too.
					row[x] = int(int8(data[k%len(data)]))
					k++
				}
			}
			pattern = append(pattern, row)
		}
		s, err := Custom("fuzz", numZones, pattern, false)
		if err != nil {
			return
		}
		if s.NumZones != numZones || s.PeriodX() != cols || s.PeriodY() != rows {
			t.Fatalf("accepted scheme misreports shape: zones %d period %dx%d, want %d %dx%d",
				s.NumZones, s.PeriodX(), s.PeriodY(), numZones, cols, rows)
		}
		for y := 0; y < 3*rows; y++ {
			for x := 0; x < 3*cols; x++ {
				z := s.Zone(x, y)
				if z < 0 || z >= s.NumZones {
					t.Fatalf("Zone(%d,%d) = %d, outside [0,%d)", x, y, z, s.NumZones)
				}
				if z != s.Zone(x+s.PeriodX(), y) || z != s.Zone(x, y+s.PeriodY()) {
					t.Fatalf("Zone(%d,%d) not periodic", x, y)
				}
			}
		}
	})
}

// TestBuiltinSchemesDataflowReachable pins the structural property the
// layouts rely on: from every tile of every built-in scheme, at least
// one neighboring column/row position carries the next zone (zone+1 mod
// n), so signals can always advance through the clock phases.
func TestBuiltinSchemesDataflowReachable(t *testing.T) {
	for _, s := range All() {
		for y := 0; y < 2*s.PeriodY(); y++ {
			for x := 0; x < 2*s.PeriodX(); x++ {
				want := (s.Zone(x, y) + 1) % s.NumZones
				found := false
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || ny < 0 {
						continue
					}
					if s.Zone(nx, ny) == want {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: no zone-%d neighbor at (%d,%d) zone %d", s.Name, want, x, y, s.Zone(x, y))
				}
			}
		}
	}
}
