package registry

import (
	"errors"
	"net/url"
	"strings"
	"testing"
)

// FuzzCursorDecode pins that arbitrary cursor bytes either decode
// cleanly or fail with a typed *BadCursorError — never a panic, never
// a different error type the API layer would turn into a 500 — and
// that every successfully decoded cursor survives a re-encode.
func FuzzCursorDecode(f *testing.F) {
	filt := Filter{Library: "Bestagon"}
	f.Add("")
	f.Add(EncodeCursor(filt, "set__name__flow"))
	f.Add(EncodeCursor(Filter{}, ""))
	f.Add("bm90LWpzb24")                      // valid base64, junk payload
	f.Add("!!!not-base64!!!")                 // invalid alphabet
	f.Add("eyJ2Ijo5OSwiYSI6IngiLCJmIjoieCJ9") // version from the future
	f.Add(strings.Repeat("A", 5000))          // oversized
	f.Fuzz(func(t *testing.T, raw string) {
		after, err := DecodeCursor(filt, raw)
		if err != nil {
			var bc *BadCursorError
			if !errors.As(err, &bc) {
				t.Fatalf("DecodeCursor(%q) failed with untyped error %v", raw, err)
			}
			if bc.Reason == "" {
				t.Fatalf("BadCursorError for %q has no reason", raw)
			}
			return
		}
		if raw == "" {
			if after != "" {
				t.Fatalf("empty cursor decoded to %q", after)
			}
			return
		}
		// A decodable cursor must re-encode to something that decodes to
		// the same resume point under the same filter.
		again, err := DecodeCursor(filt, EncodeCursor(filt, after))
		if err != nil || again != after {
			t.Fatalf("re-encode of %q: %q, %v", after, again, err)
		}
		// ...and must be rejected under any other filter.
		if _, err := DecodeCursor(Filter{Library: "ToPoliNano"}, raw); err == nil {
			t.Fatalf("cursor %q accepted under a different filter", raw)
		}
	})
}

// FuzzFilterQuery pins that arbitrary query strings either parse into
// a usable filter or fail with a typed *BadFilterError, that parsing
// never panics, and that an accepted filter round-trips through
// Signature/Match without crashing on a probe record.
func FuzzFilterQuery(f *testing.F) {
	f.Add("library=Bestagon&area_max=100")
	f.Add("set=trindade16&name=mux21&verified=1")
	f.Add("clocking=2DDWave&algorithm=ortho&crossings_max=0")
	f.Add("libary=typo")
	f.Add("area_min=50&area_max=10")
	f.Add("inord=maybe")
	f.Add("gates_min=-3")
	f.Add("limit=10&cursor=abc&flow=qcaone_2ddwave_ortho")
	f.Add("%zz=bad-escape")
	f.Fuzz(func(t *testing.T, rawQuery string) {
		q, err := url.ParseQuery(rawQuery)
		if err != nil {
			return // the HTTP layer rejects these before the registry sees them
		}
		filt, err := ParseFilterQuery(q)
		if err != nil {
			var bf *BadFilterError
			if !errors.As(err, &bf) {
				t.Fatalf("ParseFilterQuery(%q) failed with untyped error %v", rawQuery, err)
			}
			if bf.Reason == "" {
				t.Fatalf("BadFilterError for %q has no reason", rawQuery)
			}
			return
		}
		sig := filt.Signature()
		// Signature must be deterministic — cursors depend on it.
		if filt.Signature() != sig {
			t.Fatalf("signature of %q not deterministic", rawQuery)
		}
		probe := Record{
			ID: "s__n__qcaone_2ddwave_ortho", Set: "s", Name: "n",
			FlowID: "qcaone_2ddwave_ortho", Library: "QCA ONE",
			Scheme: "2DDWave", Algorithm: "ortho",
			Width: 4, Height: 3, Area: 12, Gates: 5, Crossings: 1,
		}
		filt.Match(&probe) // must not panic for any accepted filter
		// An accepted filter must mint decodable cursors.
		if _, err := DecodeCursor(filt, EncodeCursor(filt, probe.ID)); err != nil {
			t.Fatalf("accepted filter %q mints undecodable cursor: %v", rawQuery, err)
		}
	})
}
