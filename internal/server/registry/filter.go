package registry

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Filter narrows a listing along the registry's selection dimensions.
// String dimensions match case-insensitively; "" means any. Range
// bounds are inclusive; nil means unbounded.
type Filter struct {
	Set       string
	Name      string
	Library   string
	Scheme    string
	Algorithm string
	Flow      string // exact FlowID match, e.g. "qcaone_2ddwave_ortho+inord"
	Campaign  string
	InOrd     *bool
	PLO       *bool
	Hex       *bool
	Verified  *bool

	AreaMin, AreaMax           *int
	GatesMin, GatesMax         *int
	CrossingsMin, CrossingsMax *int
	WidthMax, HeightMax        *int
}

// filterKeys is the closed set of query parameters ParseFilterQuery
// accepts, beyond the paging parameters handled by the API layer.
var filterKeys = map[string]bool{
	"set": true, "name": true, "library": true, "clocking": true,
	"algorithm": true, "flow": true, "campaign": true,
	"inord": true, "plo": true, "hex": true, "verified": true,
	"area_min": true, "area_max": true, "gates_min": true, "gates_max": true,
	"crossings_min": true, "crossings_max": true,
	"width_max": true, "height_max": true,
}

// pagingKeys are accepted alongside filters but parsed elsewhere.
var pagingKeys = map[string]bool{"limit": true, "cursor": true}

// BadFilterError reports an unusable filter query: an unknown
// parameter, a malformed boolean, or a non-integer range bound. The
// API layer maps it to HTTP 400.
type BadFilterError struct{ Reason string }

func (e *BadFilterError) Error() string { return "registry: bad filter: " + e.Reason }

// ParseFilterQuery builds a Filter from URL query parameters, the
// registry's filter grammar:
//
//	set, name, library, clocking, algorithm, flow, campaign — string match
//	inord, plo, hex, verified                               — booleans (1/0/true/false)
//	area_min, area_max, gates_min, gates_max,
//	crossings_min, crossings_max, width_max, height_max     — integer bounds
//
// Unknown parameters are rejected so that a typo ("libary=...") cannot
// silently return the unfiltered catalogue.
func ParseFilterQuery(q url.Values) (Filter, error) {
	var f Filter
	for key, vals := range q {
		if pagingKeys[key] {
			continue
		}
		if !filterKeys[key] {
			return Filter{}, &BadFilterError{Reason: fmt.Sprintf("unknown parameter %q", key)}
		}
		if len(vals) == 0 {
			continue
		}
		v := vals[0]
		if v == "" {
			continue
		}
		switch key {
		case "set":
			f.Set = v
		case "name":
			f.Name = v
		case "library":
			f.Library = v
		case "clocking":
			f.Scheme = v
		case "algorithm":
			f.Algorithm = v
		case "flow":
			f.Flow = v
		case "campaign":
			f.Campaign = v
		case "inord", "plo", "hex", "verified":
			b, err := parseBool(key, v)
			if err != nil {
				return Filter{}, err
			}
			switch key {
			case "inord":
				f.InOrd = b
			case "plo":
				f.PLO = b
			case "hex":
				f.Hex = b
			case "verified":
				f.Verified = b
			}
		default: // integer bounds
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Filter{}, &BadFilterError{Reason: fmt.Sprintf("%s=%q is not a non-negative integer", key, v)}
			}
			switch key {
			case "area_min":
				f.AreaMin = &n
			case "area_max":
				f.AreaMax = &n
			case "gates_min":
				f.GatesMin = &n
			case "gates_max":
				f.GatesMax = &n
			case "crossings_min":
				f.CrossingsMin = &n
			case "crossings_max":
				f.CrossingsMax = &n
			case "width_max":
				f.WidthMax = &n
			case "height_max":
				f.HeightMax = &n
			}
		}
	}
	if f.AreaMin != nil && f.AreaMax != nil && *f.AreaMin > *f.AreaMax {
		return Filter{}, &BadFilterError{Reason: "area_min exceeds area_max"}
	}
	return f, nil
}

// parseBool maps the accepted boolean spellings onto *bool.
func parseBool(key, v string) (*bool, error) {
	switch strings.ToLower(v) {
	case "1", "true", "yes":
		b := true
		return &b, nil
	case "0", "false", "no":
		b := false
		return &b, nil
	}
	return nil, &BadFilterError{Reason: fmt.Sprintf("%s=%q is not a boolean", key, v)}
}

// Match reports whether the record satisfies the filter.
func (f Filter) Match(r *Record) bool {
	eq := strings.EqualFold
	switch {
	case f.Set != "" && !eq(f.Set, r.Set),
		f.Name != "" && !eq(f.Name, r.Name),
		f.Library != "" && !eq(f.Library, r.Library),
		f.Scheme != "" && !eq(f.Scheme, r.Scheme),
		f.Algorithm != "" && !eq(f.Algorithm, r.Algorithm),
		f.Flow != "" && !eq(f.Flow, r.FlowID),
		f.Campaign != "" && !eq(f.Campaign, r.Campaign):
		return false
	case f.InOrd != nil && *f.InOrd != r.InOrd,
		f.PLO != nil && *f.PLO != r.PLO,
		f.Hex != nil && *f.Hex != r.Hex,
		f.Verified != nil && *f.Verified != r.Verified:
		return false
	case f.AreaMin != nil && r.Area < *f.AreaMin,
		f.AreaMax != nil && r.Area > *f.AreaMax,
		f.GatesMin != nil && r.Gates < *f.GatesMin,
		f.GatesMax != nil && r.Gates > *f.GatesMax,
		f.CrossingsMin != nil && r.Crossings < *f.CrossingsMin,
		f.CrossingsMax != nil && r.Crossings > *f.CrossingsMax,
		f.WidthMax != nil && r.Width > *f.WidthMax,
		f.HeightMax != nil && r.Height > *f.HeightMax:
		return false
	}
	return true
}

// Signature canonicalizes the filter for embedding in a cursor: a
// cursor minted under one filter must not resume a walk under another,
// or pages would skip and duplicate unpredictably. The encoding is a
// sorted key=value join of the non-zero dimensions.
func (f Filter) Signature() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+strings.ToLower(v))
		}
	}
	addB := func(k string, b *bool) {
		if b != nil {
			parts = append(parts, k+"="+strconv.FormatBool(*b))
		}
	}
	addI := func(k string, n *int) {
		if n != nil {
			parts = append(parts, k+"="+strconv.Itoa(*n))
		}
	}
	add("set", f.Set)
	add("name", f.Name)
	add("library", f.Library)
	add("clocking", f.Scheme)
	add("algorithm", f.Algorithm)
	add("flow", f.Flow)
	add("campaign", f.Campaign)
	addB("inord", f.InOrd)
	addB("plo", f.PLO)
	addB("hex", f.Hex)
	addB("verified", f.Verified)
	addI("area_min", f.AreaMin)
	addI("area_max", f.AreaMax)
	addI("gates_min", f.GatesMin)
	addI("gates_max", f.GatesMax)
	addI("crossings_min", f.CrossingsMin)
	addI("crossings_max", f.CrossingsMax)
	addI("width_max", f.WidthMax)
	addI("height_max", f.HeightMax)
	sort.Strings(parts)
	return strings.Join(parts, "&")
}
