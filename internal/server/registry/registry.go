// Package registry is the storage layer of the MNT Bench layout
// registry service: a catalogue of FCN gate-level layouts addressed two
// ways — by a stable identifier ({set}__{name}__{flowID}) for browsing
// and by the SHA-256 content hash of the .fgl body for caching. The
// package provides a pluggable Storage interface with an in-memory
// backend and an on-disk content-addressed backend, a filter grammar
// mirroring the MNT Bench website's selection panes, opaque key-based
// pagination cursors, and a bulk importer that idempotently ingests
// campaign databases produced by `mntbench generate`.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fgl"
)

// ErrNotFound marks lookups of unknown layout IDs or blob hashes;
// check with errors.Is.
var ErrNotFound = errors.New("registry: not found")

// IntegrityError reports a stored blob whose bytes no longer match the
// content hash it is addressed by — on-disk corruption, a truncated
// write, or manual tampering. It must surface as an error (HTTP 500),
// never as a successful download of damaged data.
type IntegrityError struct {
	Hash string // expected content hash (lowercase hex)
	Got  string // hash of the bytes actually read
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("registry: blob %s failed integrity check (content hashes to %s)", e.Hash, e.Got)
}

// ErrIntegrity is the sentinel matched by errors.Is for any
// *IntegrityError.
var ErrIntegrity = errors.New("registry: integrity check failed")

// Is makes errors.Is(err, ErrIntegrity) match.
func (e *IntegrityError) Is(target error) bool { return target == ErrIntegrity }

// Record is the registry's metadata for one stored layout. The blob
// itself lives behind the Hash; Record is what lists and filters
// operate on.
type Record struct {
	// ID is the stable catalogue identifier:
	// {set}__{name}__{flowID}, lowercased set and name, exactly the
	// file stem SaveDatabase writes. Re-importing a regenerated
	// campaign replaces records in place by ID.
	ID string `json:"id"`

	Set    string `json:"set"`  // benchmark suite, original capitalization
	Name   string `json:"name"` // function name, original capitalization
	FlowID string `json:"flow"` // compact flow identifier (core.Flow.ID())

	Library   string `json:"library"`   // gate library display name
	Scheme    string `json:"clocking"`  // clocking scheme display name
	Algorithm string `json:"algorithm"` // physical design algorithm
	InOrd     bool   `json:"input_ordering"`
	PLO       bool   `json:"post_layout_optimization"`
	Hex       bool   `json:"hexagonalization"`

	Width     int `json:"width"`
	Height    int `json:"height"`
	Area      int `json:"area"`
	Gates     int `json:"gates"`
	Wires     int `json:"wires"`
	Crossings int `json:"crossings"`

	Inputs  int `json:"inputs"`          // primary inputs
	Outputs int `json:"outputs"`         // primary outputs
	Nodes   int `json:"nodes,omitempty"` // published logic-node count, 0 when unknown

	// Hash is the lowercase hex SHA-256 of the .fgl body — the
	// layout's content address and its HTTP ETag.
	Hash string `json:"sha256"`
	// Size is the .fgl body length in bytes.
	Size int64 `json:"bytes"`

	// Campaign names the import batch the record arrived with
	// ("live" for layouts generated in-process).
	Campaign string `json:"campaign,omitempty"`

	// Verified is true when the layout passed full equivalence
	// checking at generation time (DRC always ran).
	Verified bool `json:"verified"`

	// RuntimeS is the physical-design wall time in seconds; zero for
	// imported layouts, whose generation effort is unknown.
	RuntimeS float64 `json:"runtime_seconds,omitempty"`
}

// Item pairs a record with its .fgl body for an atomic batch write.
type Item struct {
	Record Record
	Body   []byte
}

// Applied summarizes one atomic batch write.
type Applied struct {
	Added     int // new IDs
	Updated   int // existing IDs whose content hash changed
	Unchanged int // existing IDs re-imported with an identical hash
}

// Stats summarizes a store for the /v1/stats endpoint.
type Stats struct {
	Layouts   int
	Blobs     int // distinct content hashes
	Bytes     int64
	Campaigns []string // sorted distinct campaign names
}

// Storage is the pluggable persistence seam of the registry. All
// methods are safe for concurrent use; Apply is atomic with respect to
// Snapshot and Get — a reader either sees an entire batch or none of
// it, never a partially imported campaign.
type Storage interface {
	// Snapshot returns every record sorted by ID ascending. The
	// returned slice and its elements are immutable: implementations
	// hand out copy-on-write snapshots, so callers may hold one across
	// concurrent Applies.
	Snapshot() []Record
	// Get returns the record with the given ID, or ErrNotFound.
	Get(id string) (Record, error)
	// Blob returns the .fgl body with the given content hash after
	// verifying it, or ErrNotFound / an *IntegrityError.
	Blob(hash string) ([]byte, error)
	// Apply atomically inserts or replaces the batch.
	Apply(batch []Item) (Applied, error)
	// Stats summarizes the store.
	Stats() Stats
	// Close releases backend resources. Memory-backed stores no-op.
	Close() error
}

// hashOf content-addresses a blob body; shared by both backends.
func hashOf(body []byte) string { return core.HashBytes(body) }

// NewItem builds the Item for a record-less layout body: it parses
// nothing and trusts rec except for Hash and Size, which are always
// recomputed from body so a record can never disagree with its blob.
func NewItem(rec Record, body []byte) Item {
	rec.Hash = core.HashBytes(body)
	rec.Size = int64(len(body))
	return Item{Record: rec, Body: body}
}

// FromEntry renders a generated entry into an importable Item. The
// entry must retain its layout.
func FromEntry(e *core.Entry, campaign string) (Item, error) {
	if e.Layout == nil {
		return Item{}, fmt.Errorf("registry: entry %s has no layout (generated with DiscardLayouts?)", core.EntryFileName(e))
	}
	text, err := fgl.WriteString(e.Layout)
	if err != nil {
		return Item{}, err
	}
	rec := Record{
		ID:        core.EntryFileName(e),
		Set:       e.Benchmark.Set,
		Name:      e.Benchmark.Name,
		FlowID:    e.Flow.ID(),
		Library:   e.Flow.Library.Name,
		Scheme:    e.Flow.Scheme.Name,
		Algorithm: string(e.Flow.Algorithm),
		InOrd:     e.Flow.InputOrder,
		PLO:       e.Flow.PostLayout,
		Hex:       e.Flow.Hexagonalize,
		Width:     e.Width,
		Height:    e.Height,
		Area:      e.Area,
		Gates:     e.Gates,
		Wires:     e.Wires,
		Crossings: e.Crossings,
		Inputs:    e.Benchmark.PubIn,
		Outputs:   e.Benchmark.PubOut,
		Nodes:     e.Benchmark.PubNodes,
		Campaign:  campaign,
		Verified:  e.Verified,
		RuntimeS:  e.Runtime.Seconds(),
	}
	return NewItem(rec, []byte(text)), nil
}

// validateID rejects identifiers that could escape the catalogue
// namespace (path separators, empty segments). IDs come from file
// stems and URL segments alike.
func validateID(id string) error {
	if id == "" {
		return errors.New("registry: empty layout id")
	}
	if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return fmt.Errorf("registry: invalid layout id %q", id)
	}
	parts := strings.SplitN(id, "__", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return fmt.Errorf("registry: layout id %q is not set__name__flow", id)
	}
	return nil
}

// sortBatch orders a batch by ID so store snapshots rebuild in one
// merge pass and duplicate IDs within a batch resolve deterministically
// (the last occurrence wins — the sort is stable).
func sortBatch(batch []Item) []Item {
	out := make([]Item, len(batch))
	copy(out, batch)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Record.ID < out[j].Record.ID })
	return out
}

// mergeSnapshot merges a sorted batch into a sorted snapshot,
// replacing records whose ID already exists, and reports what changed.
// Both inputs must be sorted by ID; the result is a fresh slice.
func mergeSnapshot(cur []Record, batch []Item) ([]Record, Applied) {
	var ap Applied
	out := make([]Record, 0, len(cur)+len(batch))
	i, j := 0, 0
	for i < len(cur) || j < len(batch) {
		// Collapse duplicate IDs within the batch: last wins.
		for j+1 < len(batch) && batch[j].Record.ID == batch[j+1].Record.ID {
			j++
		}
		switch {
		case j >= len(batch) || (i < len(cur) && cur[i].ID < batch[j].Record.ID):
			out = append(out, cur[i])
			i++
		case i >= len(cur) || cur[i].ID > batch[j].Record.ID:
			out = append(out, batch[j].Record)
			ap.Added++
			j++
		default: // same ID: batch replaces
			if cur[i].Hash == batch[j].Record.Hash {
				ap.Unchanged++
			} else {
				ap.Updated++
			}
			out = append(out, batch[j].Record)
			i++
			j++
		}
	}
	return out, ap
}

// statsOf computes Stats over a snapshot.
func statsOf(recs []Record) Stats {
	s := Stats{Layouts: len(recs)}
	hashes := make(map[string]int64, len(recs))
	camps := make(map[string]bool)
	for _, r := range recs {
		hashes[r.Hash] = r.Size
		if r.Campaign != "" {
			camps[r.Campaign] = true
		}
	}
	s.Blobs = len(hashes)
	for _, sz := range hashes {
		s.Bytes += sz
	}
	for c := range camps {
		s.Campaigns = append(s.Campaigns, c)
	}
	sort.Strings(s.Campaigns)
	return s
}
