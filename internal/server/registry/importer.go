package registry

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fgl"
	"repro/internal/verify"
)

// ImportOptions tunes a bulk import.
type ImportOptions struct {
	// Campaign names the batch; defaults to the base name of the
	// directory being imported.
	Campaign string
	// SkipDRC trusts the layouts and skips design-rule checking.
	// Imports of freshly generated databases keep it off; it exists
	// for re-importing an already-validated store at scale.
	SkipDRC bool
}

// ImportReport summarizes one ImportDir call.
type ImportReport struct {
	Campaign string
	Files    int // .fgl files considered
	Applied
	// Skipped lists files that could not be imported, with reasons;
	// a skip is not fatal, the rest of the campaign still lands.
	Skipped []string
	// HashMismatches counts files whose bytes disagreed with the
	// campaign manifest — always also a skip: a half-written file
	// must not enter the registry under a stale hash.
	HashMismatches int
}

// ImportDir ingests a campaign database directory produced by
// `mntbench generate` (SaveDatabase layout: {set}__{name}__{flow}.fgl
// files, optionally with a manifest.json) into st as one atomic batch:
// concurrent readers see either none or all of the campaign.
//
// Import is idempotent by content hash — re-importing an unchanged
// directory reports every record Unchanged and rewrites nothing, while
// re-importing a regenerated campaign replaces only the records whose
// layouts actually differ. When a manifest is present, each file is
// verified against its recorded hash and the Verified flag carries
// over from generation time.
func ImportDir(ctx context.Context, st Storage, dir string, opts ImportOptions) (ImportReport, error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented fallback: a nil ctx means "no caller context"
		ctx = context.Background()
	}
	rep := ImportReport{Campaign: opts.Campaign}
	if rep.Campaign == "" {
		rep.Campaign = filepath.Base(filepath.Clean(dir))
	}
	manifest, err := core.ReadManifest(dir)
	if err != nil {
		return rep, err
	}
	byFile := make(map[string]core.ManifestLayout)
	if manifest != nil {
		for _, ml := range manifest.Layouts {
			byFile[ml.File] = ml
		}
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return rep, err
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".fgl") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	var batch []Item
	for _, name := range names {
		if cerr := ctx.Err(); cerr != nil {
			return rep, fmt.Errorf("registry: import canceled: %w", cerr)
		}
		rep.Files++
		item, reason, mismatch := importFile(dir, name, byFile, rep.Campaign, opts.SkipDRC)
		if reason != "" {
			rep.Skipped = append(rep.Skipped, fmt.Sprintf("%s: %s", name, reason))
			if mismatch {
				rep.HashMismatches++
			}
			continue
		}
		batch = append(batch, item)
	}
	ap, err := st.Apply(batch)
	if err != nil {
		return rep, err
	}
	rep.Applied = ap
	return rep, nil
}

// importFile reads and validates one layout file; reason is non-empty
// when the file must be skipped.
func importFile(dir, name string, byFile map[string]core.ManifestLayout, campaign string, skipDRC bool) (item Item, reason string, hashMismatch bool) {
	stem := strings.TrimSuffix(name, ".fgl")
	parts := strings.SplitN(stem, "__", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return Item{}, "not a generated layout file name", false
	}
	flow, err := core.ParseFlowID(parts[2])
	if err != nil {
		return Item{}, err.Error(), false
	}
	body, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return Item{}, err.Error(), false
	}
	hash := hashOf(body)
	ml, inManifest := byFile[name]
	if inManifest && ml.SHA256 != hash {
		return Item{}, fmt.Sprintf("content hash %s disagrees with manifest (%s)", hash, ml.SHA256), true
	}
	l, err := fgl.Read(strings.NewReader(string(body)))
	if err != nil {
		return Item{}, err.Error(), false
	}
	if !skipDRC {
		if derr := verify.CheckDesignRules(l).Error(); derr != nil {
			return Item{}, derr.Error(), false
		}
	}
	s := l.ComputeStats()
	rec := Record{
		ID:        stem,
		Set:       parts[0],
		Name:      parts[1],
		FlowID:    parts[2],
		Library:   flow.Library.Name,
		Scheme:    flow.Scheme.Name,
		Algorithm: string(flow.Algorithm),
		InOrd:     flow.InputOrder,
		PLO:       flow.PostLayout,
		Hex:       flow.Hexagonalize,
		Width:     s.Width,
		Height:    s.Height,
		Area:      s.Area,
		Gates:     s.Gates,
		Wires:     s.Wires,
		Crossings: s.Crossings,
		Inputs:    s.PIs,
		Outputs:   s.POs,
		Campaign:  campaign,
	}
	if inManifest {
		rec.Set, rec.Name = ml.Set, ml.Name
		rec.Verified = ml.Verified
	}
	// Registered benchmarks contribute their published metadata
	// (original capitalization, logic-node count); unregistered sets
	// import fine without it.
	if b, berr := bench.ByName(parts[0], parts[1]); berr == nil {
		rec.Set, rec.Name = b.Set, b.Name
		rec.Inputs, rec.Outputs, rec.Nodes = b.PubIn, b.PubOut, b.PubNodes
	}
	return NewItem(rec, body), "", false
}
