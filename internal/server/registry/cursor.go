package registry

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
)

// CursorVersion versions the cursor wire format; decoding rejects
// cursors minted by a newer build.
const CursorVersion = 1

// BadCursorError reports a pagination cursor that cannot resume this
// listing: garbage bytes, a newer version, or a cursor minted under a
// different filter. The API layer maps it to HTTP 400 — clients must
// restart the walk, never silently receive a wrong page.
type BadCursorError struct{ Reason string }

func (e *BadCursorError) Error() string { return "registry: bad cursor: " + e.Reason }

// cursor is the decoded pagination state. Cursors are key-based
// ("resume strictly after ID After"), not offset-based, so a walk
// stays correct while records are inserted or replaced concurrently:
// every record present for the whole walk is returned exactly once,
// with no skips or duplicates at page boundaries.
type cursor struct {
	V int `json:"v"`
	// After is the ID of the last record already returned.
	After string `json:"a"`
	// Filter fingerprints the filter the cursor was minted under.
	Filter string `json:"f"`
}

// filterFingerprint condenses a filter signature for cursor embedding.
func filterFingerprint(f Filter) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(f.Signature()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// EncodeCursor mints the opaque cursor that resumes a filtered walk
// strictly after the record with the given ID.
func EncodeCursor(f Filter, afterID string) string {
	data, err := json.Marshal(cursor{V: CursorVersion, After: afterID, Filter: filterFingerprint(f)})
	if err != nil {
		// cursor marshalling cannot fail (plain strings and ints); keep
		// the API total anyway.
		return ""
	}
	return base64.RawURLEncoding.EncodeToString(data)
}

// DecodeCursor validates an opaque cursor against the filter of the
// current request and returns the ID to resume after. An empty cursor
// is valid and starts from the beginning.
func DecodeCursor(f Filter, s string) (afterID string, err error) {
	if s == "" {
		return "", nil
	}
	if len(s) > 4096 {
		return "", &BadCursorError{Reason: "cursor too long"}
	}
	data, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return "", &BadCursorError{Reason: "not base64url"}
	}
	var c cursor
	if err := json.Unmarshal(data, &c); err != nil {
		return "", &BadCursorError{Reason: "not a cursor payload"}
	}
	if c.V != CursorVersion {
		return "", &BadCursorError{Reason: fmt.Sprintf("unsupported cursor version %d", c.V)}
	}
	if c.Filter != filterFingerprint(f) {
		return "", &BadCursorError{Reason: "cursor was minted under a different filter"}
	}
	return c.After, nil
}

// Page is one page of a filtered listing.
type Page struct {
	Records []Record
	// NextCursor resumes the walk; empty when this was the last page.
	NextCursor string
}

// DefaultPageLimit and MaxPageLimit bound the page size of a listing.
const (
	DefaultPageLimit = 50
	MaxPageLimit     = 500
)

// ListPage pages through a sorted snapshot: it seeks past the cursor
// position by binary search, scans forward collecting records matching
// the filter, and mints the next cursor only when at least one more
// matching record exists. recs must be sorted by ID ascending
// (Storage.Snapshot guarantees this).
func ListPage(recs []Record, f Filter, rawCursor string, limit int) (Page, error) {
	if limit <= 0 {
		limit = DefaultPageLimit
	}
	if limit > MaxPageLimit {
		limit = MaxPageLimit
	}
	after, err := DecodeCursor(f, rawCursor)
	if err != nil {
		return Page{}, err
	}
	start := 0
	if after != "" {
		start = sort.Search(len(recs), func(i int) bool { return recs[i].ID > after })
	}
	page := Page{Records: []Record{}}
	for i := start; i < len(recs); i++ {
		if !f.Match(&recs[i]) {
			continue
		}
		if len(page.Records) == limit {
			page.NextCursor = EncodeCursor(f, page.Records[limit-1].ID)
			return page, nil
		}
		page.Records = append(page.Records, recs[i])
	}
	return page, nil
}
