package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// IndexSchema versions the on-disk index format of a DiskStore.
const IndexSchema = 1

// indexFileName is the metadata index at the root of a store
// directory; blobs live under blobs/<aa>/<hash>.fgl where <aa> is the
// first hex byte of the content hash.
const indexFileName = "index.json"

// DiskStore is the on-disk Storage backend: a content-addressed blob
// tree plus a single JSON metadata index. Writes are crash-safe by
// construction — blobs are written under temporary names and renamed
// into their content address before the index that references them is
// swapped in (also via rename), so a torn import leaves at worst
// orphaned blobs, never an index pointing at missing or partial data.
// The full record index is kept in memory behind an atomic snapshot;
// only blob bodies are read from disk on demand.
type DiskStore struct {
	dir  string
	snap atomic.Pointer[[]Record]
	mu   sync.Mutex // serializes Apply
}

// diskIndex is the wire format of index.json.
type diskIndex struct {
	Schema  int      `json:"schema"`
	Records []Record `json:"records"`
}

// OpenDiskStore opens (creating if needed) a content-addressed layout
// store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, err
	}
	s := &DiskStore{dir: dir}
	recs := []Record{}
	data, err := os.ReadFile(filepath.Join(dir, indexFileName))
	switch {
	case os.IsNotExist(err):
		// fresh store
	case err != nil:
		return nil, err
	default:
		var idx diskIndex
		if err := json.Unmarshal(data, &idx); err != nil {
			return nil, fmt.Errorf("registry: %s: %w", indexFileName, err)
		}
		if idx.Schema > IndexSchema {
			return nil, fmt.Errorf("registry: %s has schema %d, this build reads up to %d", indexFileName, idx.Schema, IndexSchema)
		}
		recs = idx.Records
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	}
	s.snap.Store(&recs)
	return s, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Snapshot implements Storage.
func (s *DiskStore) Snapshot() []Record { return *s.snap.Load() }

// Get implements Storage.
func (s *DiskStore) Get(id string) (Record, error) {
	recs := s.Snapshot()
	i := sort.Search(len(recs), func(i int) bool { return recs[i].ID >= id })
	if i < len(recs) && recs[i].ID == id {
		return recs[i], nil
	}
	return Record{}, ErrNotFound
}

// blobPath maps a content hash to its file, fanning out on the first
// hex byte so no single directory grows unboundedly.
func (s *DiskStore) blobPath(hash string) (string, error) {
	if len(hash) < 3 || !isHexLower(hash) {
		return "", fmt.Errorf("registry: invalid blob hash %q", hash)
	}
	return filepath.Join(s.dir, "blobs", hash[:2], hash+".fgl"), nil
}

// isHexLower reports whether h is a plausible lowercase hex digest —
// the only characters a content address may contain (guards the hash
// against path traversal, since it becomes a file name).
func isHexLower(h string) bool {
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Blob implements Storage: the body is re-hashed on every read and a
// mismatch surfaces as an *IntegrityError, never as a valid download.
func (s *DiskStore) Blob(hash string) ([]byte, error) {
	path, err := s.blobPath(hash)
	if err != nil {
		return nil, ErrNotFound
	}
	body, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	if got := hashOf(body); got != hash {
		return nil, &IntegrityError{Hash: hash, Got: got}
	}
	return body, nil
}

// Apply implements Storage. Blob files land first (temp + rename, so a
// concurrent reader never sees a partial body), then the new index is
// swapped in atomically on disk and in memory. Content-addressing
// makes re-writes free: a blob that already exists is left untouched.
func (s *DiskStore) Apply(batch []Item) (Applied, error) {
	for _, it := range batch {
		if err := validateID(it.Record.ID); err != nil {
			return Applied{}, err
		}
	}
	sorted := sortBatch(batch)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range sorted {
		if err := s.writeBlob(it.Record.Hash, it.Body); err != nil {
			return Applied{}, err
		}
	}
	merged, ap := mergeSnapshot(*s.snap.Load(), sorted)
	if err := s.writeIndex(merged); err != nil {
		return Applied{}, err
	}
	s.snap.Store(&merged)
	return ap, nil
}

// writeBlob stores body at its content address unless already present.
func (s *DiskStore) writeBlob(hash string, body []byte) error {
	if got := hashOf(body); got != hash {
		return &IntegrityError{Hash: hash, Got: got}
	}
	path, err := s.blobPath(hash)
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: identical by definition
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-blob-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeIndex atomically replaces index.json with the given records.
// The marshalling is deterministic (records sorted by ID), so two
// stores holding the same catalogue are byte-identical on disk.
func (s *DiskStore) writeIndex(recs []Record) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diskIndex{Schema: IndexSchema, Records: recs}); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-index-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, indexFileName))
}

// Stats implements Storage.
func (s *DiskStore) Stats() Stats { return statsOf(s.Snapshot()) }

// Close implements Storage. The index is already durable after every
// Apply; nothing is buffered.
func (s *DiskStore) Close() error { return nil }
