package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fakeRecord builds a synthetic record+body pair; store and pagination
// tests do not need real layouts, only well-shaped IDs and hashed
// bodies.
func fakeRecord(set, name, flowID string, area int) Item {
	body := []byte(fmt.Sprintf("fgl-body %s %s %s %d\n", set, name, flowID, area))
	rec := Record{
		ID:        set + "__" + name + "__" + flowID,
		Set:       set,
		Name:      name,
		FlowID:    flowID,
		Library:   "QCA ONE",
		Scheme:    "2DDWave",
		Algorithm: "ortho",
		Area:      area,
		Width:     area,
		Height:    1,
		Gates:     area / 2,
		Crossings: area % 3,
		Campaign:  "test",
	}
	return NewItem(rec, body)
}

// storeFactories is the backend matrix every contract test runs over.
func storeFactories(t *testing.T) map[string]func() Storage {
	t.Helper()
	return map[string]func() Storage{
		"mem": func() Storage { return NewMemStore() },
		"disk": func() Storage {
			st, err := OpenDiskStore(filepath.Join(t.TempDir(), "store"))
			if err != nil {
				t.Fatalf("open disk store: %v", err)
			}
			return st
		},
	}
}

func TestStorageContract(t *testing.T) {
	for backend, mk := range storeFactories(t) {
		t.Run(backend, func(t *testing.T) {
			st := mk()
			defer st.Close()

			if got := len(st.Snapshot()); got != 0 {
				t.Fatalf("fresh store has %d records", got)
			}
			if _, err := st.Get("a__b__c"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
			}
			if _, err := st.Blob("0000"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Blob on empty store: %v, want ErrNotFound", err)
			}

			a := fakeRecord("s1", "f1", "qcaone_2ddwave_ortho", 10)
			b := fakeRecord("s1", "f2", "qcaone_2ddwave_ortho", 20)
			ap, err := st.Apply([]Item{b, a})
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			if ap.Added != 2 || ap.Updated != 0 || ap.Unchanged != 0 {
				t.Fatalf("apply = %+v, want 2 added", ap)
			}

			snap := st.Snapshot()
			if len(snap) != 2 || snap[0].ID != a.Record.ID || snap[1].ID != b.Record.ID {
				t.Fatalf("snapshot not sorted by ID: %+v", snap)
			}

			got, err := st.Get(a.Record.ID)
			if err != nil || got.Area != 10 {
				t.Fatalf("Get(%s) = %+v, %v", a.Record.ID, got, err)
			}
			body, err := st.Blob(a.Record.Hash)
			if err != nil || string(body) != string(a.Body) {
				t.Fatalf("Blob round trip: %q, %v", body, err)
			}

			// Idempotent re-apply: identical content → Unchanged.
			ap, err = st.Apply([]Item{a})
			if err != nil || ap.Unchanged != 1 || ap.Added != 0 || ap.Updated != 0 {
				t.Fatalf("re-apply = %+v, %v, want 1 unchanged", ap, err)
			}

			// Replacing a record with new content → Updated, new blob
			// reachable, old snapshot unaffected.
			before := st.Snapshot()
			a2 := fakeRecord("s1", "f1", "qcaone_2ddwave_ortho", 11)
			ap, err = st.Apply([]Item{a2})
			if err != nil || ap.Updated != 1 {
				t.Fatalf("update apply = %+v, %v, want 1 updated", ap, err)
			}
			if before[0].Area != 10 {
				t.Fatal("held snapshot mutated by a later Apply")
			}
			got, err = st.Get(a.Record.ID)
			if err != nil || got.Area != 11 || got.Hash != a2.Record.Hash {
				t.Fatalf("after update Get = %+v, %v", got, err)
			}

			stats := st.Stats()
			if stats.Layouts != 2 || stats.Blobs < 2 || stats.Bytes <= 0 {
				t.Fatalf("stats = %+v", stats)
			}
			if len(stats.Campaigns) != 1 || stats.Campaigns[0] != "test" {
				t.Fatalf("campaigns = %v", stats.Campaigns)
			}

			// Malformed IDs are rejected before anything lands.
			bad := fakeRecord("s1", "f9", "flow", 1)
			bad.Record.ID = "../../etc/passwd"
			if _, err := st.Apply([]Item{bad}); err == nil {
				t.Fatal("apply accepted a path-traversal ID")
			}
		})
	}
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := fakeRecord("s1", "f1", "qcaone_2ddwave_ortho", 10)
	if _, err := st.Apply([]Item{a}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec, err := st2.Get(a.Record.ID)
	if err != nil {
		t.Fatalf("record lost across reopen: %v", err)
	}
	if rec.Hash != a.Record.Hash {
		t.Fatalf("hash changed across reopen: %s vs %s", rec.Hash, a.Record.Hash)
	}
	body, err := st2.Blob(rec.Hash)
	if err != nil || string(body) != string(a.Body) {
		t.Fatalf("blob lost across reopen: %q, %v", body, err)
	}
}

func TestDiskStoreCorruptedBlobIsIntegrityError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := fakeRecord("s1", "f1", "qcaone_2ddwave_ortho", 10)
	if _, err := st.Apply([]Item{a}); err != nil {
		t.Fatal(err)
	}
	// Flip the stored bytes behind the store's back.
	path := filepath.Join(dir, "blobs", a.Record.Hash[:2], a.Record.Hash+".fgl")
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Blob(a.Record.Hash)
	if err == nil {
		t.Fatal("corrupted blob served without error")
	}
	var ie *IntegrityError
	if !errors.As(err, &ie) || !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted blob error %v is not an IntegrityError", err)
	}
	if ie.Hash != a.Record.Hash {
		t.Fatalf("IntegrityError names %s, want %s", ie.Hash, a.Record.Hash)
	}
}

func TestDiskStoreRejectsTraversalHashes(t *testing.T) {
	st, err := OpenDiskStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, h := range []string{"../index", "..", "ABCDEF", "ab/cd", ""} {
		if _, err := st.Blob(h); !errors.Is(err, ErrNotFound) {
			t.Errorf("Blob(%q) = %v, want ErrNotFound", h, err)
		}
	}
}

func TestMergeSnapshotDuplicateIDsInBatch(t *testing.T) {
	a1 := fakeRecord("s", "f", "flow1", 1)
	a1.Record.ID = "s__f__x"
	a2 := fakeRecord("s", "f", "flow2", 2)
	a2.Record.ID = "s__f__x"
	merged, ap := mergeSnapshot(nil, sortBatch([]Item{a1, a2}))
	if len(merged) != 1 || merged[0].Area != 2 {
		t.Fatalf("duplicate-ID batch merged to %+v, want the later item", merged)
	}
	if ap.Added != 1 {
		t.Fatalf("applied = %+v", ap)
	}
}
