package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// seedStore fills a memstore with n records whose IDs sort in a known
// order; odd indices carry the "Bestagon" library so filter+cursor
// interplay can be exercised.
func seedStore(t *testing.T, n int) *MemStore {
	t.Helper()
	st := NewMemStore()
	var batch []Item
	for i := 0; i < n; i++ {
		it := fakeRecord("set", fmt.Sprintf("f%03d", i), "qcaone_2ddwave_ortho", 10+i)
		if i%2 == 1 {
			it.Record.Library = "Bestagon"
		}
		batch = append(batch, it)
	}
	if _, err := st.Apply(batch); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPaginationEdgeCases(t *testing.T) {
	bestagon := "bestagon"
	tests := []struct {
		name    string
		records int
		limit   int
		filter  Filter
		cursor  func(st Storage) string // built per test; nil = empty
		wantIDs int                     // full-walk expectation
		wantErr bool                    // first page errors
	}{
		{name: "empty store", records: 0, limit: 10, wantIDs: 0},
		{name: "single page exact fit", records: 10, limit: 10, wantIDs: 10},
		{name: "exact page boundary", records: 20, limit: 10, wantIDs: 20},
		{name: "limit larger than store", records: 3, limit: 100, wantIDs: 3},
		{name: "limit one", records: 5, limit: 1, wantIDs: 5},
		{name: "zero limit uses default", records: 7, limit: 0, wantIDs: 7},
		{name: "filter plus cursor", records: 30, limit: 4,
			filter: Filter{Library: bestagon}, wantIDs: 15},
		{name: "filter matches nothing", records: 10, limit: 5,
			filter: Filter{Library: "ToPoliNano"}, wantIDs: 0},
		{name: "garbage cursor", records: 5, limit: 5, wantErr: true,
			cursor: func(Storage) string { return "!!!not-base64!!!" }},
		{name: "valid base64, junk payload", records: 5, limit: 5, wantErr: true,
			cursor: func(Storage) string { return "bm90LWpzb24" }}, // "not-json"
		{name: "cursor minted under different filter", records: 10, limit: 5, wantErr: true,
			cursor: func(Storage) string { return EncodeCursor(Filter{Library: bestagon}, "set__f001__x") }},
		{name: "cursor version from the future", records: 5, limit: 5, wantErr: true,
			cursor: func(Storage) string { return "eyJ2Ijo5OSwiYSI6IngiLCJmIjoieCJ9" }}, // {"v":99,...}
		{name: "expired cursor pointing at a deleted record resumes cleanly",
			records: 10, limit: 3,
			cursor: func(Storage) string {
				// "set__f004x" never existed; the walk resumes strictly
				// after it (f005 onward) rather than erroring.
				return EncodeCursor(Filter{}, "set__f004x__zz")
			}, wantIDs: 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			st := seedStore(t, tc.records)
			cur := ""
			if tc.cursor != nil {
				cur = tc.cursor(st)
			}
			page, err := ListPage(st.Snapshot(), tc.filter, cur, tc.limit)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ListPage succeeded (%d records), want a cursor error", len(page.Records))
				}
				var bc *BadCursorError
				if !errors.As(err, &bc) {
					t.Fatalf("error %v is not a BadCursorError", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			// Resume the full walk from the tested starting point.
			ids := page.recordIDs()
			for page.NextCursor != "" {
				page, err = ListPage(st.Snapshot(), tc.filter, page.NextCursor, tc.limit)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, page.recordIDs()...)
			}
			if len(ids) != tc.wantIDs {
				t.Fatalf("walk returned %d records, want %d: %v", len(ids), tc.wantIDs, ids)
			}
			seen := make(map[string]bool)
			prev := ""
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("id %s returned twice", id)
				}
				seen[id] = true
				if id <= prev {
					t.Fatalf("ids out of order: %s after %s", id, prev)
				}
				prev = id
			}
		})
	}
}

func (p Page) recordIDs() []string {
	ids := make([]string, 0, len(p.Records))
	for _, r := range p.Records {
		ids = append(ids, r.ID)
	}
	return ids
}

// TestPaginationExactBoundaryNoTrailingCursor pins that a store whose
// size is an exact multiple of the page size never mints a cursor for
// an empty final page.
func TestPaginationExactBoundaryNoTrailingCursor(t *testing.T) {
	st := seedStore(t, 20)
	pages := 0
	cur := ""
	for {
		page, err := ListPage(st.Snapshot(), Filter{}, cur, 10)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(page.Records) == 0 {
			t.Fatalf("page %d is empty", pages)
		}
		if page.NextCursor == "" {
			break
		}
		cur = page.NextCursor
	}
	if pages != 2 {
		t.Fatalf("20 records / limit 10 walked in %d pages, want 2", pages)
	}
}

// TestPaginationStableUnderConcurrentInserts pins the key-based cursor
// contract: records present before the walk begins are each returned
// exactly once even while an importer keeps inserting new records
// between page fetches.
func TestPaginationStableUnderConcurrentInserts(t *testing.T) {
	st := seedStore(t, 50)
	initial := make(map[string]bool)
	for _, r := range st.Snapshot() {
		initial[r.ID] = true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			it := fakeRecord("zset", fmt.Sprintf("new%04d", i), "qcaone_2ddwave_ortho", 1000+i)
			if _, err := st.Apply([]Item{it}); err != nil {
				return
			}
		}
	}()

	seen := make(map[string]int)
	cur := ""
	for {
		page, err := ListPage(st.Snapshot(), Filter{}, cur, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page.Records {
			seen[r.ID]++
		}
		if page.NextCursor == "" {
			break
		}
		cur = page.NextCursor
	}
	close(stop)
	wg.Wait()

	for id := range initial {
		if seen[id] != 1 {
			t.Errorf("initial record %s seen %d times, want exactly once", id, seen[id])
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("record %s duplicated across pages (%d times)", id, n)
		}
	}
}

func TestCursorRoundTrip(t *testing.T) {
	f := Filter{Library: "QCA ONE", AreaMax: intp(100)}
	cur := EncodeCursor(f, "a__b__c")
	after, err := DecodeCursor(f, cur)
	if err != nil || after != "a__b__c" {
		t.Fatalf("round trip = %q, %v", after, err)
	}
	// Same filter expressed as a different-but-equal value still matches.
	f2 := Filter{Library: "qca one", AreaMax: intp(100)}
	if _, err := DecodeCursor(f2, cur); err != nil {
		t.Fatalf("case-insensitive filter signature mismatch: %v", err)
	}
	// Empty cursor starts from the beginning.
	if after, err := DecodeCursor(f, ""); err != nil || after != "" {
		t.Fatalf("empty cursor = %q, %v", after, err)
	}
}

func intp(n int) *int { return &n }
