package registry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// MemStore is the in-memory Storage backend: records live in a
// copy-on-write snapshot behind an atomic pointer, so Snapshot and Get
// are lock-free reads and Apply swaps a freshly merged slice in one
// store. Blobs are kept in a map keyed by content hash.
type MemStore struct {
	snap atomic.Pointer[[]Record]

	mu    sync.Mutex // serializes Apply (writers only)
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	s := &MemStore{blobs: make(map[string][]byte)}
	empty := []Record{}
	s.snap.Store(&empty)
	return s
}

// Snapshot implements Storage. The returned slice is immutable.
func (s *MemStore) Snapshot() []Record { return *s.snap.Load() }

// Get implements Storage.
func (s *MemStore) Get(id string) (Record, error) {
	recs := s.Snapshot()
	i := sort.Search(len(recs), func(i int) bool { return recs[i].ID >= id })
	if i < len(recs) && recs[i].ID == id {
		return recs[i], nil
	}
	return Record{}, ErrNotFound
}

// Blob implements Storage. In-memory blobs cannot rot, but the
// integrity contract is verified anyway so both backends behave
// identically under test.
func (s *MemStore) Blob(hash string) ([]byte, error) {
	s.mu.Lock()
	body, ok := s.blobs[hash]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if got := hashOf(body); got != hash {
		return nil, &IntegrityError{Hash: hash, Got: got}
	}
	return body, nil
}

// Apply implements Storage: the whole batch becomes visible in one
// atomic snapshot swap, so a concurrent reader sees either none or all
// of an imported campaign.
func (s *MemStore) Apply(batch []Item) (Applied, error) {
	for _, it := range batch {
		if err := validateID(it.Record.ID); err != nil {
			return Applied{}, err
		}
	}
	sorted := sortBatch(batch)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range sorted {
		if _, ok := s.blobs[it.Record.Hash]; !ok {
			s.blobs[it.Record.Hash] = append([]byte(nil), it.Body...)
		}
	}
	merged, ap := mergeSnapshot(*s.snap.Load(), sorted)
	s.snap.Store(&merged)
	return ap, nil
}

// Stats implements Storage.
func (s *MemStore) Stats() Stats { return statsOf(s.Snapshot()) }

// Close implements Storage; a no-op for memory.
func (s *MemStore) Close() error { return nil }
