package registry

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/gatelib"
)

// generatedDir runs two real ortho flows, saves them exactly as
// `mntbench generate` would (SaveDatabase + manifest), and returns the
// directory plus the database for cross-checking.
func generatedDir(t *testing.T) (string, *core.Database) {
	t.Helper()
	db := &core.Database{}
	flow := core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: core.AlgoOrtho}
	for _, name := range []string{"mux21", "xor2"} {
		b, err := bench.ByName("trindade16", name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.RunFlow(nil, b, flow, core.Limits{})
		if err != nil {
			t.Fatalf("flow on %s: %v", name, err)
		}
		db.Entries = append(db.Entries, e)
	}
	dir := filepath.Join(t.TempDir(), "campaign")
	if _, err := core.SaveDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteManifest(db, dir); err != nil {
		t.Fatal(err)
	}
	return dir, db
}

func TestImportDirRoundTrip(t *testing.T) {
	dir, db := generatedDir(t)
	st := NewMemStore()
	defer st.Close()

	rep, err := ImportDir(context.Background(), st, dir, ImportOptions{Campaign: "pr10"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != len(db.Entries) || rep.Added != len(db.Entries) || len(rep.Skipped) != 0 {
		t.Fatalf("first import = %+v", rep)
	}

	// Content-addressed round trip: every imported blob must be
	// byte-identical to the .fgl file on disk, and the record hash must
	// match the manifest hash.
	manifest, err := core.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ml := range manifest.Layouts {
		id := strings.TrimSuffix(ml.File, ".fgl")
		rec, err := st.Get(id)
		if err != nil {
			t.Fatalf("imported record %s missing: %v", id, err)
		}
		if rec.Hash != ml.SHA256 {
			t.Fatalf("%s: record hash %s, manifest says %s", id, rec.Hash, ml.SHA256)
		}
		if !rec.Verified {
			t.Errorf("%s: Verified flag lost on import", id)
		}
		blob, err := st.Blob(rec.Hash)
		if err != nil {
			t.Fatal(err)
		}
		disk, err := os.ReadFile(filepath.Join(dir, ml.File))
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(disk) {
			t.Fatalf("%s: blob differs from on-disk .fgl", id)
		}
		// Published benchmark metadata is attached from the registry.
		if rec.Set != "Trindade16" {
			t.Errorf("%s: set = %q, want published capitalization", id, rec.Set)
		}
		if rec.Nodes == 0 || rec.Inputs == 0 {
			t.Errorf("%s: published metadata missing: %+v", id, rec)
		}
	}

	// Idempotent: re-importing the unchanged directory rewrites nothing.
	rep, err = ImportDir(context.Background(), st, dir, ImportOptions{Campaign: "pr10"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unchanged != len(db.Entries) || rep.Added != 0 || rep.Updated != 0 {
		t.Fatalf("re-import = %+v, want all unchanged", rep)
	}
}

func TestImportDirManifestMismatch(t *testing.T) {
	dir, db := generatedDir(t)
	// Corrupt one layout after the manifest was written — as if the
	// file were half-copied.
	var victim string
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".fgl") {
			victim = de.Name()
			break
		}
	}
	path := filepath.Join(dir, victim)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	st := NewMemStore()
	defer st.Close()
	rep, err := ImportDir(context.Background(), st, dir, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HashMismatches != 1 || len(rep.Skipped) != 1 {
		t.Fatalf("report = %+v, want exactly the tampered file skipped", rep)
	}
	if !strings.Contains(rep.Skipped[0], victim) {
		t.Fatalf("skip reason %q does not name %s", rep.Skipped[0], victim)
	}
	if rep.Added != len(db.Entries)-1 {
		t.Fatalf("added = %d, want the untampered remainder", rep.Added)
	}
	// The campaign name defaults to the directory base name.
	if rep.Campaign != "campaign" {
		t.Fatalf("campaign = %q", rep.Campaign)
	}
}

func TestImportDirWithoutManifest(t *testing.T) {
	dir, db := generatedDir(t)
	if err := os.Remove(filepath.Join(dir, core.ManifestFileName)); err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	defer st.Close()
	rep, err := ImportDir(context.Background(), st, dir, ImportOptions{Campaign: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != len(db.Entries) || len(rep.Skipped) != 0 {
		t.Fatalf("manifest-less import = %+v", rep)
	}
}

func TestImportDirIgnoresNonLayoutFiles(t *testing.T) {
	dir, db := generatedDir(t)
	// results.json, README, stray files — none of it is a layout.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "odd-name.fgl"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	defer st.Close()
	rep, err := ImportDir(context.Background(), st, dir, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != len(db.Entries) {
		t.Fatalf("added = %d, want %d", rep.Added, len(db.Entries))
	}
	if len(rep.Skipped) != 1 || !strings.Contains(rep.Skipped[0], "odd-name.fgl") {
		t.Fatalf("skipped = %v, want only the malformed .fgl name", rep.Skipped)
	}
}

func TestImportDirCanceled(t *testing.T) {
	dir, _ := generatedDir(t)
	st := NewMemStore()
	defer st.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ImportDir(ctx, st, dir, ImportOptions{}); err == nil {
		t.Fatal("canceled import succeeded")
	}
	if len(st.Snapshot()) != 0 {
		t.Fatal("canceled import left partial records behind")
	}
}

// TestImportChurnReadersSeeWholeCampaigns is the race-mode churn test:
// importers land whole campaigns while concurrent readers walk the
// store. Every campaign applies atomically, so a reader must count
// either 0 or exactly campaignSize records for any campaign it
// observes — a partial campaign is a snapshot-isolation bug.
func TestImportChurnReadersSeeWholeCampaigns(t *testing.T) {
	const (
		campaigns    = 8
		campaignSize = 25
		readers      = 4
	)
	for backend, mk := range storeFactories(t) {
		t.Run(backend, func(t *testing.T) {
			st := mk()
			defer st.Close()

			var wg sync.WaitGroup
			done := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				for c := 0; c < campaigns; c++ {
					var batch []Item
					for i := 0; i < campaignSize; i++ {
						it := fakeRecord("churn", fmt.Sprintf("c%02di%02d", c, i), "qcaone_2ddwave_ortho", c*100+i)
						it.Record.Campaign = fmt.Sprintf("wave-%02d", c)
						batch = append(batch, it)
					}
					if _, err := st.Apply(batch); err != nil {
						t.Errorf("apply wave %d: %v", c, err)
						return
					}
				}
			}()

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						counts := make(map[string]int)
						for _, rec := range st.Snapshot() {
							counts[rec.Campaign]++
						}
						for campaign, n := range counts {
							if n != campaignSize {
								t.Errorf("reader observed partial campaign %s: %d of %d records", campaign, n, campaignSize)
								return
							}
						}
					}
				}()
			}
			wg.Wait()

			if got := len(st.Snapshot()); got != campaigns*campaignSize {
				t.Fatalf("final store has %d records, want %d", got, campaigns*campaignSize)
			}
		})
	}
}
