// Package server provides the MNT Bench web interface (Figure 1 of the
// paper): a filterable catalogue of generated FCN layouts with downloads
// of gate-level .fgl files, Verilog network descriptions, and ZIP
// bundles.
package server

import (
	"archive/zip"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/fgl"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/render"
	"repro/internal/server/registry"
	"repro/internal/verify"
	"repro/internal/verilog"
)

// Server serves one generated layout database.
type Server struct {
	db      *core.Database
	mux     *http.ServeMux
	handler http.Handler           // mux wrapped in the obs middleware
	entries map[string]*core.Entry // id -> entry
	store   registry.Storage       // backs the /v1 registry API
	reg     *obs.Registry
	log     *obs.Logger
	traces  *obs.TraceStore
	journal *obs.Journal
	ready   *obs.Readiness
	pprof   bool
	perfDir string
}

// Option customizes a Server.
type Option func(*Server)

// WithRegistry records HTTP metrics into reg and serves it at /metrics
// (default: the process-wide obs registry).
func WithRegistry(reg *obs.Registry) Option { return func(s *Server) { s.reg = reg } }

// WithLogger routes request logging through l (default: the process-wide
// obs logger).
func WithLogger(l *obs.Logger) Option { return func(s *Server) { s.log = l } }

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/.
// Off by default: profiling endpoints are opt-in on public servers.
func WithPprof() Option { return func(s *Server) { s.pprof = true } }

// WithTraces retains request and flow traces in ts and serves them
// under /debug/traces (index, per-trace span trees, and a Chrome
// trace-event export at /debug/traces/chrome). Off by default, like
// pprof: the trace view is a diagnostic surface.
func WithTraces(ts *obs.TraceStore) Option { return func(s *Server) { s.traces = ts } }

// WithPerfDir points /debug/perf at the directory holding the
// BENCH_<n>.json performance snapshots (default: the working
// directory, where the committed trajectory lives).
func WithPerfDir(dir string) Option { return func(s *Server) { s.perfDir = dir } }

// WithStorage backs the /v1 registry API with st — typically an
// on-disk content-addressed store opened with registry.OpenDiskStore,
// so listings and ETags survive restarts. Without it the server seeds
// an in-memory store from the live database.
func WithStorage(st registry.Storage) Option { return func(s *Server) { s.store = st } }

// WithJournal streams j's live campaign events at /debug/events as
// Server-Sent Events. Without it the endpoint responds 503 (the nil
// journal's handler), so clients get a clear signal instead of a 404.
func WithJournal(j *obs.Journal) Option { return func(s *Server) { s.journal = j } }

// New builds the HTTP handler around a database.
func New(db *core.Database, opts ...Option) *Server {
	s := &Server{
		db:      db,
		mux:     http.NewServeMux(),
		entries: make(map[string]*core.Entry),
	}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	if s.log == nil {
		s.log = obs.DefaultLogger()
	}
	for _, e := range db.Entries {
		s.entries[entryID(e)] = e
	}
	if s.store == nil {
		s.store = registry.NewMemStore()
	}
	if err := seedStore(s.store, db); err != nil {
		// A layout that cannot render blocks only the registry view of
		// the database, not the whole UI.
		s.log.Warn("seeding registry store", "err", err)
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("/api/filters", s.handleFilters)
	s.mux.HandleFunc("/download/", s.handleDownload)
	s.mux.HandleFunc("/download/bundle.zip", s.handleBundle)
	s.mux.HandleFunc("/preview/", s.handlePreview)
	s.mux.HandleFunc("/api/submit", s.handleSubmit)
	s.mountV1()
	// Every scrape resamples the Go runtime so the mntbench_go_* gauges
	// are current without a background goroutine per Server.
	metricsHandler := s.reg.MetricsHandler()
	s.mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.UpdateRuntimeGauges(s.reg)
		metricsHandler.ServeHTTP(w, r)
	}))
	s.mux.HandleFunc("/healthz", obs.Healthz)
	// Readiness starts true: New returns a fully loaded server, so it can
	// serve the moment it is mounted; BeginShutdown flips it back for
	// load-balancer drain.
	s.ready = obs.NewReadiness("")
	s.ready.Ready()
	s.mux.Handle("/readyz", s.ready.Handler())
	s.mux.Handle("/debug/events", s.journal.EventsHandler())
	if s.perfDir == "" {
		s.perfDir = "."
	}
	s.mux.Handle("/debug/perf", perf.Handler(s.perfDir))
	if s.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if s.traces != nil {
		s.mux.Handle("/debug/traces", s.traces.Handler())
		s.mux.Handle("/debug/traces/", s.traces.Handler())
	}
	obs.RegisterBuildInfo(s.reg)
	inner := obs.Middleware(s.reg, routeLabel, s.mux)
	s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.traces != nil {
			// The middleware's root span finds the store through the
			// request context and opens one trace per request.
			r = r.WithContext(obs.WithTraces(r.Context(), s.traces))
		}
		inner.ServeHTTP(w, r)
		if s.log.Enabled(obs.LevelDebug) {
			s.log.Debug("http request", "method", r.Method, "path", r.URL.Path,
				"elapsed", time.Since(start).Round(time.Microsecond))
		}
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// BeginShutdown flips /readyz to 503 so load balancers stop routing new
// requests while in-flight ones drain; call it before http.Server.Shutdown.
func (s *Server) BeginShutdown() { s.ready.NotReady("shutting down") }

// routeLabel maps request paths onto the bounded route label set used by
// the HTTP metrics (entry IDs must not become label values).
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/", p == "/metrics", p == "/healthz", p == "/readyz",
		p == "/api/benchmarks", p == "/api/filters", p == "/api/submit",
		p == "/v1", p == "/v1/layouts", p == "/v1/filters", p == "/v1/stats":
		return p
	case strings.HasSuffix(p, "/layout.fgl") && strings.HasPrefix(p, "/v1/layouts/"):
		return "/v1/download"
	case strings.HasPrefix(p, "/v1/layouts/"):
		return "/v1/layout"
	case strings.HasPrefix(p, "/v1/blobs/"):
		return "/v1/blob"
	case strings.HasPrefix(p, "/download/"):
		return "/download"
	case strings.HasPrefix(p, "/preview/"):
		return "/preview"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	case strings.HasPrefix(p, "/debug/traces"):
		return "/debug/traces"
	case strings.HasPrefix(p, "/debug/events"):
		return "/debug/events"
	case strings.HasPrefix(p, "/debug/perf"):
		return "/debug/perf"
	}
	return "other"
}

func entryID(e *core.Entry) string {
	return fmt.Sprintf("%s__%s__%s",
		strings.ToLower(e.Benchmark.Set), strings.ToLower(e.Benchmark.Name), e.Flow.ID())
}

// entryJSON is the wire representation of one catalogue row.
type entryJSON struct {
	ID        string  `json:"id"`
	Set       string  `json:"set"`
	Name      string  `json:"name"`
	Inputs    int     `json:"inputs"`
	Outputs   int     `json:"outputs"`
	Nodes     int     `json:"nodes"`
	Library   string  `json:"library"`
	Scheme    string  `json:"clocking"`
	Algorithm string  `json:"algorithm"`
	InOrd     bool    `json:"input_ordering"`
	PLO       bool    `json:"post_layout_optimization"`
	Hex       bool    `json:"hexagonalization"`
	Width     int     `json:"width"`
	Height    int     `json:"height"`
	Area      int     `json:"area"`
	Crossings int     `json:"crossings"`
	RuntimeS  float64 `json:"runtime_seconds"`
	Verified  bool    `json:"verified"`
	FGL       string  `json:"fgl_url"`
	Verilog   string  `json:"verilog_url"`
	Preview   string  `json:"preview_url"`
}

func toJSON(e *core.Entry) entryJSON {
	id := entryID(e)
	return entryJSON{
		ID:        id,
		Set:       e.Benchmark.Set,
		Name:      e.Benchmark.Name,
		Inputs:    e.Benchmark.PubIn,
		Outputs:   e.Benchmark.PubOut,
		Nodes:     e.Benchmark.PubNodes,
		Library:   e.Flow.Library.Name,
		Scheme:    e.Flow.Scheme.Name,
		Algorithm: string(e.Flow.Algorithm),
		InOrd:     e.Flow.InputOrder,
		PLO:       e.Flow.PostLayout,
		Hex:       e.Flow.Hexagonalize,
		Width:     e.Width,
		Height:    e.Height,
		Area:      e.Area,
		Crossings: e.Crossings,
		RuntimeS:  e.Runtime.Seconds(),
		Verified:  e.Verified,
		FGL:       "/download/" + id + ".fgl",
		Verilog:   "/download/" + id + ".v",
		Preview:   "/preview/" + id + ".svg",
	}
}

// parseFilter maps the Figure 1 selection panes onto a core.Filter.
func parseFilter(r *http.Request) core.Filter {
	q := r.URL.Query()
	f := core.Filter{
		Set:       q.Get("set"),
		Name:      q.Get("name"),
		Library:   q.Get("library"),
		Scheme:    q.Get("clocking"),
		Algorithm: q.Get("algorithm"),
	}
	if v := q.Get("inord"); v != "" {
		b := v == "1" || strings.EqualFold(v, "true")
		f.InOrd = &b
	}
	if v := q.Get("plo"); v != "" {
		b := v == "1" || strings.EqualFold(v, "true")
		f.PLO = &b
	}
	return f
}

func (s *Server) selected(r *http.Request) []*core.Entry {
	sel := s.db.Select(parseFilter(r))
	if v := r.URL.Query().Get("best"); v == "1" || strings.EqualFold(v, "true") {
		sel = bestOnly(sel)
	}
	return sel
}

// bestOnly keeps the smallest-area entry per (set, name, library).
func bestOnly(entries []*core.Entry) []*core.Entry {
	type key struct{ set, name, lib string }
	best := make(map[key]*core.Entry)
	var order []key
	for _, e := range entries {
		k := key{e.Benchmark.Set, e.Benchmark.Name, e.Flow.Library.Name}
		if cur, ok := best[k]; !ok || e.Area < cur.Area {
			if !ok {
				order = append(order, k)
			}
			best[k] = e
		}
	}
	out := make([]*core.Entry, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Area < out[j].Area })
	return out
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	sel := s.selected(r)
	rows := make([]entryJSON, 0, len(sel))
	for _, e := range sel {
		rows = append(rows, toJSON(e))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(rows); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleFilters(w http.ResponseWriter, r *http.Request) {
	opts := struct {
		Sets       []string `json:"sets"`
		Libraries  []string `json:"libraries"`
		Clockings  []string `json:"clockings"`
		Algorithms []string `json:"algorithms"`
		Levels     []string `json:"abstraction_levels"`
		Optim      []string `json:"optimizations"`
	}{
		Sets:       bench.Suites(),
		Levels:     []string{"network (.v)", "gate-level (.fgl)"},
		Algorithms: []string{string(core.AlgoExact), string(core.AlgoOrtho), string(core.AlgoNanoPlaceR)},
		Optim:      []string{"Post-Layout Optimization", "Input Ordering"},
	}
	for _, l := range gatelib.All() {
		opts.Libraries = append(opts.Libraries, l.Name)
	}
	for _, c := range clocking.All() {
		opts.Clockings = append(opts.Clockings, c.Name)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(opts); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/download/")
	if path == "bundle.zip" {
		s.handleBundle(w, r)
		return
	}
	var id, format string
	switch {
	case strings.HasSuffix(path, ".fgl"):
		id, format = strings.TrimSuffix(path, ".fgl"), "fgl"
	case strings.HasSuffix(path, ".v"):
		id, format = strings.TrimSuffix(path, ".v"), "v"
	default:
		http.NotFound(w, r)
		return
	}
	e, ok := s.entries[id]
	if !ok {
		http.NotFound(w, r)
		return
	}
	body, err := renderEntry(e, format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", path))
	fmt.Fprint(w, body)
}

func renderEntry(e *core.Entry, format string) (string, error) {
	switch format {
	case "fgl":
		return fgl.WriteString(e.Layout)
	case "v":
		return verilog.WriteString(e.Benchmark.Build())
	}
	return "", fmt.Errorf("unknown format %q", format)
}

func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	sel := s.selected(r)
	if len(sel) == 0 {
		http.Error(w, "no benchmarks match the filter", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/zip")
	w.Header().Set("Content-Disposition", `attachment; filename="mntbench.zip"`)
	zw := zip.NewWriter(w)
	defer zw.Close()
	seenVerilog := make(map[string]bool)
	for _, e := range sel {
		id := entryID(e)
		f, err := zw.Create(id + ".fgl")
		if err != nil {
			return
		}
		body, err := renderEntry(e, "fgl")
		if err != nil {
			return
		}
		fmt.Fprint(f, body)
		vname := strings.ToLower(e.Benchmark.Set) + "__" + strings.ToLower(e.Benchmark.Name) + ".v"
		if !seenVerilog[vname] {
			seenVerilog[vname] = true
			vf, err := zw.Create(vname)
			if err != nil {
				return
			}
			vbody, err := renderEntry(e, "v")
			if err != nil {
				return
			}
			fmt.Fprint(vf, vbody)
		}
	}
}

// handleSubmit implements the paper's community-submission loop
// ("improved layouts can be sent ... for inclusion"): a POSTed .fgl
// layout is design-rule checked and equivalence-checked against the
// named benchmark function; valid submissions join the catalogue and the
// response reports whether they set a new area record.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a .fgl document", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	set, name := q.Get("set"), q.Get("name")
	bm, err := bench.ByName(set, name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	l, err := fgl.Read(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lib, err := gatelib.ByName(l.Library)
	if err != nil {
		http.Error(w, "layout must carry a library tag: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := lib.CheckLayout(l); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := verify.CheckDesignRules(l).Error(); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	eq, err := verify.Equivalent(l, bm.Build())
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if !eq {
		http.Error(w, "layout does not implement "+set+"/"+name, http.StatusUnprocessableEntity)
		return
	}
	prevBest := s.db.Best(bm.Set, bm.Name, lib)
	e := &core.Entry{
		Benchmark: bm,
		Flow: core.Flow{Library: lib, Scheme: l.Scheme,
			Algorithm: core.Algorithm("submission")},
		Layout:   l,
		Verified: true,
	}
	st := l.ComputeStats()
	e.Width, e.Height, e.Area = st.Width, st.Height, st.Area
	e.Gates, e.Wires, e.Crossings = st.Gates, st.Wires, st.Crossings
	s.db.Entries = append(s.db.Entries, e)
	s.entries[entryID(e)] = e
	if item, ierr := registry.FromEntry(e, "submitted"); ierr == nil {
		if _, aerr := s.store.Apply([]registry.Item{item}); aerr != nil {
			s.log.Warn("registering submitted layout", "err", aerr)
		}
	}
	s.log.Info("layout submitted", "set", bm.Set, "benchmark", bm.Name,
		"library", lib.Name, "area", e.Area)

	resp := struct {
		ID       string `json:"id"`
		Area     int    `json:"area"`
		NewBest  bool   `json:"new_best"`
		PrevBest int    `json:"previous_best_area,omitempty"`
	}{ID: entryID(e), Area: e.Area}
	if prevBest != nil {
		resp.PrevBest = prevBest.Area
		resp.NewBest = e.Area < prevBest.Area
	} else {
		resp.NewBest = true
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handlePreview renders a layout as an inline SVG preview.
func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/preview/")
	id := strings.TrimSuffix(path, ".svg")
	e, ok := s.entries[id]
	if !ok || e.Layout == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	if err := render.WriteSVG(w, e.Layout, render.SVGOptions{TileSize: 18, MaxTiles: 100000}); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	}
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html>
<head><title>MNT Bench</title>
<style>
body { font-family: sans-serif; margin: 2em; }
fieldset { display: inline-block; vertical-align: top; margin-right: 1em; }
table { border-collapse: collapse; margin-top: 1.5em; }
td, th { border: 1px solid #999; padding: 2px 8px; font-size: 90%; }
</style>
</head>
<body>
<h1>Munich Nanotech Benchmark Library (MNT Bench)</h1>
<p>Select the desired benchmark functions and apply filters — gate-level
layouts (.fgl) and network descriptions (.v) are available per row or as
a ZIP bundle.</p>
<form method="GET" action="/">
<fieldset><legend>Abstraction Level</legend>
  <label><input type="checkbox" name="level" value="network"> Network (.v)</label><br>
  <label><input type="checkbox" name="level" value="gate"> Gate-level (.fgl)</label>
</fieldset>
<fieldset><legend>Gate Library</legend>
  <select name="library"><option value="">any</option>
  {{range .Libraries}}<option{{if eq . $.Sel.Library}} selected{{end}}>{{.}}</option>{{end}}
  </select>
</fieldset>
<fieldset><legend>Clocking Scheme</legend>
  <select name="clocking"><option value="">any</option>
  {{range .Clockings}}<option{{if eq . $.Sel.Scheme}} selected{{end}}>{{.}}</option>{{end}}
  </select>
</fieldset>
<fieldset><legend>Physical Design Algorithm</legend>
  <select name="algorithm"><option value="">any</option>
  {{range .Algorithms}}<option{{if eq . $.Sel.Algorithm}} selected{{end}}>{{.}}</option>{{end}}
  </select>
</fieldset>
<fieldset><legend>Optimization Algorithm</legend>
  <label><input type="checkbox" name="inord" value="1"> Input Ordering</label><br>
  <label><input type="checkbox" name="plo" value="1"> Post-Layout Optimization</label><br>
  <label><input type="checkbox" name="best" value="1"> Most optimal only</label>
</fieldset>
<p><button type="submit">Apply filters</button>
<a href="/download/bundle.zip?{{.Query}}">Download ZIP</a></p>
</form>
<table>
<tr><th>Set</th><th>Name</th><th>I/O</th><th>Library</th><th>Clocking</th>
<th>Algorithm</th><th>w×h</th><th>A</th><th>Crossings</th><th>Files</th></tr>
{{range .Rows}}
<tr><td>{{.Set}}</td><td>{{.Name}}</td><td>{{.Inputs}}/{{.Outputs}}</td>
<td>{{.Library}}</td><td>{{.Scheme}}</td><td>{{.Algorithm}}{{if .InOrd}}, InOrd{{end}}{{if .Hex}}, 45°{{end}}{{if .PLO}}, PLO{{end}}</td>
<td>{{.Width}}×{{.Height}}</td><td>{{.Area}}</td><td>{{.Crossings}}</td>
<td><a href="{{.FGL}}">.fgl</a> <a href="{{.Verilog}}">.v</a> <a href="{{.Preview}}">svg</a></td></tr>
{{end}}
</table>
<p>{{len .Rows}} layouts.</p>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	sel := s.selected(r)
	rows := make([]entryJSON, 0, len(sel))
	for _, e := range sel {
		rows = append(rows, toJSON(e))
	}
	f := parseFilter(r)
	data := struct {
		Libraries, Clockings, Algorithms []string
		Rows                             []entryJSON
		Sel                              core.Filter
		Query                            template.URL
	}{
		Algorithms: []string{string(core.AlgoExact), string(core.AlgoOrtho), string(core.AlgoNanoPlaceR)},
		Rows:       rows,
		Sel:        f,
		Query:      template.URL(r.URL.RawQuery),
	}
	for _, l := range gatelib.All() {
		data.Libraries = append(data.Libraries, l.Name)
	}
	for _, c := range clocking.All() {
		data.Clockings = append(data.Clockings, c.Name)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
