package server

import (
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/server/registry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden API fixtures")

// goldenDB builds the deterministic database the contract fixtures pin:
// ortho flows are reproducible and runtimes are zeroed so the JSON is
// byte-stable across machines.
func goldenDB(t *testing.T) *core.Database {
	t.Helper()
	db := testDB(t)
	for _, e := range db.Entries {
		e.Runtime = 0
	}
	return db
}

// checkGolden compares got against testdata/golden/<name>; -update
// rewrites the fixture.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run go test ./internal/server -update): %v", path, err)
	}
	if string(want) != string(got) {
		t.Errorf("%s drifted from its golden fixture.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// indentJSON reformats a response body so fixtures diff readably.
func indentJSON(t *testing.T, data []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, data)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestV1GoldenContract(t *testing.T) {
	srv := New(goldenDB(t))
	mux21 := "trindade16__mux21__qcaone_2ddwave_ortho"
	cases := []struct {
		fixture string
		path    string
	}{
		{"v1_index.json", "/v1"},
		{"v1_layouts.json", "/v1/layouts"},
		{"v1_layouts_filtered.json", "/v1/layouts?library=Bestagon"},
		{"v1_layout_mux21.json", "/v1/layouts/" + mux21},
		{"v1_filters.json", "/v1/filters"},
		{"v1_stats.json", "/v1/stats"},
		{"v1_error_bad_filter.json", "/v1/layouts?libary=typo"},
		{"v1_error_bad_cursor.json", "/v1/layouts?cursor=!!!"},
		{"v1_error_not_found.json", "/v1/layouts/no__such__layout"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			rec := get(t, srv, tc.path)
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
			checkGolden(t, tc.fixture, indentJSON(t, rec.Body.Bytes()))
		})
	}
}

func TestV1ErrorStatusCodes(t *testing.T) {
	srv := New(goldenDB(t))
	cases := []struct {
		method string
		path   string
		status int
		code   string
	}{
		{http.MethodGet, "/v1/layouts?libary=typo", http.StatusBadRequest, "bad_filter"},
		{http.MethodGet, "/v1/layouts?limit=zap", http.StatusBadRequest, "bad_filter"},
		{http.MethodGet, "/v1/layouts?cursor=!!!", http.StatusBadRequest, "bad_cursor"},
		{http.MethodGet, "/v1/layouts/no__such__layout", http.StatusNotFound, "not_found"},
		{http.MethodGet, "/v1/layouts/no__such__layout/layout.fgl", http.StatusNotFound, "not_found"},
		{http.MethodGet, "/v1/blobs/feedfacefeedface", http.StatusNotFound, "not_found"},
		{http.MethodPost, "/v1/layouts", http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.MethodDelete, "/v1/stats", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.path, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body)
			}
			var body apiError
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("error body is not the typed shape: %v\n%s", err, rec.Body)
			}
			if body.Error.Code != tc.code || body.Error.Message == "" {
				t.Errorf("error body = %+v, want code %q with a message", body, tc.code)
			}
		})
	}
}

// TestV1PaginationWalkExactlyOnce drives the public API end to end:
// walking /v1/layouts with a small limit must return the full catalogue
// exactly once, in ID order, and the final page must not mint a cursor.
func TestV1PaginationWalkExactlyOnce(t *testing.T) {
	db := goldenDB(t)
	srv := New(db)
	var all v1ListResponse
	if err := json.Unmarshal(get(t, srv, "/v1/layouts").Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if all.Count != len(db.Entries) {
		t.Fatalf("unpaginated listing has %d layouts, want %d", all.Count, len(db.Entries))
	}

	seen := make(map[string]int)
	cursor := ""
	pages := 0
	for {
		url := "/v1/layouts?limit=1"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		rec := get(t, srv, url)
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: status %d: %s", pages, rec.Code, rec.Body)
		}
		var page v1ListResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		pages++
		for _, r := range page.Layouts {
			seen[r.ID]++
		}
		if page.NextCursor == "" {
			if len(page.Layouts) == 0 && pages > 1 {
				t.Error("final page was empty: a trailing cursor was minted at an exact boundary")
			}
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != len(db.Entries) {
		t.Fatalf("walk saw %d distinct layouts, want %d", len(seen), len(db.Entries))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("layout %s returned %d times", id, n)
		}
	}
}

// TestV1DownloadETagAndRoundTrip covers the content-addressed download
// path: bytes identical to the rendered layout, a strong ETag equal to
// the record hash, 304 on If-None-Match, and the immutable blob alias.
func TestV1DownloadETagAndRoundTrip(t *testing.T) {
	srv := New(goldenDB(t))
	id := "trindade16__mux21__qcaone_2ddwave_ortho"

	var single v1LayoutResponse
	if err := json.Unmarshal(get(t, srv, "/v1/layouts/"+id).Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	rec := get(t, srv, single.FGLURL)
	if rec.Code != http.StatusOK {
		t.Fatalf("download status %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if etag != `"`+single.Layout.Hash+`"` {
		t.Fatalf("ETag %q does not quote the content hash %q", etag, single.Layout.Hash)
	}
	if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "must-revalidate") {
		t.Errorf("download Cache-Control = %q, want must-revalidate", cc)
	}
	if registry.NewItem(registry.Record{ID: id}, rec.Body.Bytes()).Record.Hash != single.Layout.Hash {
		t.Fatal("downloaded bytes do not hash to the advertised content address")
	}
	// The classic /download endpoint serves the same rendered layout.
	legacy := get(t, srv, "/download/"+id+".fgl")
	if legacy.Body.String() != rec.Body.String() {
		t.Fatal("/v1 download differs from /download for the same layout")
	}

	// Conditional request → 304 with no body.
	req := httptest.NewRequest(http.MethodGet, single.FGLURL, nil)
	req.Header.Set("If-None-Match", etag)
	cond := httptest.NewRecorder()
	srv.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified || cond.Body.Len() != 0 {
		t.Fatalf("conditional GET = %d with %d body bytes, want bare 304", cond.Code, cond.Body.Len())
	}

	// Blob alias: same bytes, immutable caching.
	blob := get(t, srv, single.BlobURL)
	if blob.Code != http.StatusOK || blob.Body.String() != rec.Body.String() {
		t.Fatalf("blob alias status %d, bytes match %v", blob.Code, blob.Body.String() == rec.Body.String())
	}
	if cc := blob.Header().Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Errorf("blob Cache-Control = %q, want immutable", cc)
	}
}

// TestV1ETagStableAcrossRestarts boots two independent servers over the
// same on-disk store (an import happened once, then the process
// restarted) and pins that listings, ETags, and bodies are identical —
// the property that makes registry responses long-term cacheable.
func TestV1ETagStableAcrossRestarts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	db := goldenDB(t)
	if _, err := core.SaveDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteManifest(db, dir); err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(t.TempDir(), "store")

	fetch := func(srv *Server, path string) (string, string) {
		rec := get(t, srv, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		return rec.Body.String(), rec.Header().Get("ETag")
	}

	var firstList, firstBody, firstETag string
	for restart := 0; restart < 2; restart++ {
		st, err := registry.OpenDiskStore(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		if restart == 0 {
			if _, err := registry.ImportDir(context.Background(), st, dir, registry.ImportOptions{Campaign: "pinned"}); err != nil {
				t.Fatal(err)
			}
		}
		srv := New(&core.Database{}, WithStorage(st))
		list, _ := fetch(srv, "/v1/layouts?campaign=pinned")
		var page v1ListResponse
		if err := json.Unmarshal([]byte(list), &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Layouts) == 0 {
			t.Fatalf("restart %d: store is empty", restart)
		}
		body, etag := fetch(srv, "/v1/layouts/"+page.Layouts[0].ID+"/layout.fgl")
		if restart == 0 {
			firstList, firstBody, firstETag = list, body, etag
		} else {
			if list != firstList {
				t.Error("listing changed across restart")
			}
			if body != firstBody || etag != firstETag {
				t.Errorf("download changed across restart: etag %q vs %q", etag, firstETag)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestV1CorruptedBlobIsTypedError pins satellite 4's failure mode: a
// blob whose bytes no longer match their content address must yield the
// typed integrity error, never a 200 with wrong bytes.
func TestV1CorruptedBlobIsTypedError(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	st, err := registry.OpenDiskStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := New(goldenDB(t), WithStorage(st))

	var page v1ListResponse
	if err := json.Unmarshal(get(t, srv, "/v1/layouts").Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	r := page.Layouts[0]
	path := filepath.Join(storeDir, "blobs", r.Hash[:2], r.Hash+".fgl")
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := get(t, srv, "/v1/layouts/"+r.ID+"/layout.fgl")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("corrupted blob served with status %d: %s", rec.Code, rec.Body)
	}
	var body apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "integrity" {
		t.Fatalf("error code %q, want integrity", body.Error.Code)
	}
}

// TestV1SubmitJoinsRegistry pins that a community submission becomes
// visible through /v1 with a servable blob.
func TestV1SubmitJoinsRegistry(t *testing.T) {
	srv := New(goldenDB(t))
	layout := submittableLayout(t)
	req := httptest.NewRequest(http.MethodPost, "/api/submit?set=Trindade16&name=mux21", strings.NewReader(layout))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var single v1LayoutResponse
	if err := json.Unmarshal(get(t, srv, "/v1/layouts/"+resp.ID).Body.Bytes(), &single); err != nil {
		t.Fatalf("submitted layout not in /v1: %s", get(t, srv, "/v1/layouts/"+resp.ID).Body)
	}
	if single.Layout.Campaign != "submitted" {
		t.Errorf("campaign = %q, want submitted", single.Layout.Campaign)
	}
	if dl := get(t, srv, single.FGLURL); dl.Code != http.StatusOK {
		t.Errorf("submitted layout download status %d", dl.Code)
	}
}

// submittableLayout renders a valid mux21 layout to .fgl text.
func submittableLayout(t *testing.T) string {
	t.Helper()
	b, err := bench.ByName("Trindade16", "mux21")
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.RunFlow(context.Background(), b,
		core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: core.AlgoOrtho},
		core.Limits{ExactTimeout: time.Second, NanoTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	item, err := registry.FromEntry(e, "x")
	if err != nil {
		t.Fatal(err)
	}
	return string(item.Body)
}

// TestV1MetricsRoutesBounded pins that /v1 traffic lands on the bounded
// route labels, not per-ID label values.
func TestV1MetricsRoutesBounded(t *testing.T) {
	srv := New(goldenDB(t), WithRegistry(obs.NewRegistry()))
	id := "trindade16__mux21__qcaone_2ddwave_ortho"
	for _, p := range []string{"/v1/layouts", "/v1/layouts/" + id, "/v1/layouts/" + id + "/layout.fgl", "/v1/stats"} {
		get(t, srv, p)
	}
	metrics := get(t, srv, "/metrics").Body.String()
	for _, want := range []string{
		`mntbench_http_requests_total{code="200",route="/v1/layouts"} 1`,
		`mntbench_http_requests_total{code="200",route="/v1/layout"} 1`,
		`mntbench_http_requests_total{code="200",route="/v1/download"} 1`,
		`mntbench_http_requests_total{code="200",route="/v1/stats"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(metrics, `route="/v1/layouts/`+id) {
		t.Error("per-ID route label leaked into metrics")
	}
}
