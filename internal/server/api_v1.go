package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/server/registry"
)

// The /v1 API is the versioned, machine-first face of the layout
// registry: cursor-paginated listings with a closed filter grammar,
// per-layout metadata, and content-addressed .fgl downloads with
// strong ETags. Unlike the /api/* endpoints (which render the live
// database for the Figure 1 web UI), /v1 serves a registry.Storage —
// in-memory by default, or the on-disk content-addressed store when
// the server is started with one — so its responses are stable,
// cacheable, and survive restarts unchanged.

// apiError is the typed JSON error body every /v1 endpoint uses.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeAPIError(w http.ResponseWriter, status int, code, message string) {
	var body apiError
	body.Error.Code = code
	body.Error.Message = message
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeJSON writes v as JSON; encoding failures surface as a typed 500
// unless bytes already went out.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// requireGet admits GET and HEAD, answering anything else with the
// typed 405 body and an Allow header.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
		r.Method+" is not supported here; use GET")
	return false
}

// mountV1 registers the versioned registry API on the server mux.
func (s *Server) mountV1() {
	s.mux.HandleFunc("/v1", s.handleV1Index)
	s.mux.HandleFunc("/v1/layouts", s.handleV1List)
	s.mux.HandleFunc("/v1/layouts/{id}", s.handleV1Layout)
	s.mux.HandleFunc("/v1/layouts/{id}/layout.fgl", s.handleV1Download)
	s.mux.HandleFunc("/v1/blobs/{hash}", s.handleV1Blob)
	s.mux.HandleFunc("/v1/filters", s.handleV1Filters)
	s.mux.HandleFunc("/v1/stats", s.handleV1Stats)
}

func (s *Server) handleV1Index(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, map[string]any{
		"version": 1,
		"endpoints": []string{
			"/v1/layouts",
			"/v1/layouts/{id}",
			"/v1/layouts/{id}/layout.fgl",
			"/v1/blobs/{hash}",
			"/v1/filters",
			"/v1/stats",
		},
	})
}

// v1ListResponse is the wire shape of a /v1/layouts page.
type v1ListResponse struct {
	Layouts []registry.Record `json:"layouts"`
	Count   int               `json:"count"`
	// NextCursor resumes the walk; absent on the last page.
	NextCursor string `json:"next_cursor,omitempty"`
}

func (s *Server) handleV1List(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	q := r.URL.Query()
	f, err := registry.ParseFilterQuery(q)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "bad_filter", err.Error())
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 0 {
			writeAPIError(w, http.StatusBadRequest, "bad_filter",
				"limit="+v+" is not a non-negative integer")
			return
		}
	}
	page, err := registry.ListPage(s.store.Snapshot(), f, q.Get("cursor"), limit)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "bad_cursor", err.Error())
		return
	}
	writeJSON(w, v1ListResponse{Layouts: page.Records, Count: len(page.Records), NextCursor: page.NextCursor})
}

// v1LayoutResponse wraps one record with its download locations.
type v1LayoutResponse struct {
	Layout  registry.Record `json:"layout"`
	FGLURL  string          `json:"fgl_url"`
	BlobURL string          `json:"blob_url"`
}

func (s *Server) handleV1Layout(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	id := r.PathValue("id")
	rec, err := s.store.Get(id)
	if err != nil {
		writeAPIError(w, http.StatusNotFound, "not_found", "no layout "+id)
		return
	}
	writeJSON(w, v1LayoutResponse{
		Layout:  rec,
		FGLURL:  "/v1/layouts/" + rec.ID + "/layout.fgl",
		BlobURL: "/v1/blobs/" + rec.Hash,
	})
}

// etagMatches implements the If-None-Match comparison for the strong
// ETags the registry serves (a quoted content hash, or "*").
func etagMatches(header, etag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// serveBlob writes a content-addressed .fgl body with its ETag and
// handles conditional requests. The ETag is the quoted content hash,
// so it is identical across restarts and across storage backends.
func (s *Server) serveBlob(w http.ResponseWriter, r *http.Request, hash, filename, cacheControl string) {
	etag := `"` + hash + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", cacheControl)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := s.store.Blob(hash)
	if err != nil {
		var ie *registry.IntegrityError
		if errors.As(err, &ie) {
			// Never serve bytes that fail their own content address: a
			// corrupted blob is a loud 500, not a quiet wrong answer.
			writeAPIError(w, http.StatusInternalServerError, "integrity", ie.Error())
			return
		}
		writeAPIError(w, http.StatusNotFound, "not_found", "no blob "+hash)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if filename != "" {
		w.Header().Set("Content-Disposition", `attachment; filename="`+filename+`"`)
	}
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(body)
}

func (s *Server) handleV1Download(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	id := r.PathValue("id")
	rec, err := s.store.Get(id)
	if err != nil {
		writeAPIError(w, http.StatusNotFound, "not_found", "no layout "+id)
		return
	}
	// A layout ID is mutable (re-imports may replace its content), so
	// clients must revalidate — which the ETag makes a cheap 304.
	s.serveBlob(w, r, rec.Hash, rec.ID+".fgl", "public, must-revalidate")
}

func (s *Server) handleV1Blob(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	// A blob URL names immutable bytes: the hash IS the content, so
	// caches may keep it forever.
	s.serveBlob(w, r, r.PathValue("hash"), "", "public, max-age=31536000, immutable")
}

func (s *Server) handleV1Filters(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	grammar := struct {
		Strings    []string `json:"string_parameters"`
		Booleans   []string `json:"boolean_parameters"`
		Ranges     []string `json:"range_parameters"`
		Paging     []string `json:"paging_parameters"`
		Libraries  []string `json:"libraries"`
		Clockings  []string `json:"clockings"`
		Algorithms []string `json:"algorithms"`
		Sets       []string `json:"sets"`
	}{
		Strings:    []string{"set", "name", "library", "clocking", "algorithm", "flow", "campaign"},
		Booleans:   []string{"inord", "plo", "hex", "verified"},
		Ranges:     []string{"area_min", "area_max", "gates_min", "gates_max", "crossings_min", "crossings_max", "width_max", "height_max"},
		Paging:     []string{"limit", "cursor"},
		Algorithms: []string{string(core.AlgoExact), string(core.AlgoOrtho), string(core.AlgoNanoPlaceR)},
		Sets:       bench.Suites(),
	}
	for _, l := range gatelib.All() {
		grammar.Libraries = append(grammar.Libraries, l.Name)
	}
	for _, c := range clocking.All() {
		grammar.Clockings = append(grammar.Clockings, c.Name)
	}
	writeJSON(w, grammar)
}

func (s *Server) handleV1Stats(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	st := s.store.Stats()
	writeJSON(w, struct {
		Layouts   int      `json:"layouts"`
		Blobs     int      `json:"blobs"`
		Bytes     int64    `json:"bytes"`
		Campaigns []string `json:"campaigns"`
	}{st.Layouts, st.Blobs, st.Bytes, st.Campaigns})
}

// seedStore loads the live database's entries into the storage backend
// under the "live" campaign, so a server started from a generate run
// serves /v1 without a separate import step. Entries without layouts
// (DiscardLayouts runs) cannot be content-addressed and are skipped.
func seedStore(st registry.Storage, db *core.Database) error {
	var batch []registry.Item
	for _, e := range db.Entries {
		if e.Layout == nil {
			continue
		}
		item, err := registry.FromEntry(e, "live")
		if err != nil {
			return err
		}
		batch = append(batch, item)
	}
	if len(batch) == 0 {
		return nil
	}
	_, err := st.Apply(batch)
	return err
}
