package loadtest

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/server"
)

// registryServer builds a server over a small generated database with
// its own metrics registry, the setup every load test grades against.
func registryServer(t testing.TB) (*server.Server, *obs.Registry) {
	t.Helper()
	db := &core.Database{}
	flow := core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: core.AlgoOrtho}
	for _, name := range []string{"mux21", "xor2", "xnor2"} {
		b, err := bench.ByName("trindade16", name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.RunFlow(context.Background(), b, flow, core.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		db.Entries = append(db.Entries, e)
	}
	reg := obs.NewRegistry()
	return server.New(db, server.WithRegistry(reg)), reg
}

// TestSustainedConcurrentLoad is the acceptance gate: one thousand
// concurrent workers, thousands of requests, zero errors, and a p99
// asserted from the server's own latency histograms.
func TestSustainedConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	srv, reg := registryServer(t)
	rep, err := Run(context.Background(), srv, reg, Options{
		Concurrency: 1000,
		Requests:    6000,
		MaxP99:      500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("load test failed: %v\n%s", err, rep)
	}
	t.Logf("load test: %s", rep)
	if rep.Requests != 6000 {
		t.Errorf("issued %d requests, want 6000", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors: %v", rep.Errors, rep.Sample)
	}
	if rep.NotModified == 0 {
		t.Error("no 304 revalidation hits — the conditional mix did not run")
	}
	if rep.P99 <= 0 {
		t.Error("p99 not computed from the metrics registry")
	}
	if rep.Throughput <= 0 {
		t.Error("throughput not computed")
	}
}

// TestRunFailsOnErrorResponses pins that the harness does not bury
// failing responses in an averaged success metric.
func TestRunFailsOnErrorResponses(t *testing.T) {
	srv, reg := registryServer(t)
	// A wrapper that sabotages every blob request.
	broken := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.Path) > 9 && r.URL.Path[:9] == "/v1/blobs" {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		srv.ServeHTTP(w, r)
	})
	rep, err := Run(context.Background(), broken, reg, Options{Concurrency: 8, Requests: 200})
	if err == nil {
		t.Fatalf("run over a broken handler passed: %s", rep)
	}
	if rep.Errors == 0 || len(rep.Sample) == 0 {
		t.Fatalf("failures not reported: %s", rep)
	}
}

// TestRunFailsOnTightP99 pins that the p99 budget is a real assertion:
// an artificially slowed handler must fail a microsecond budget.
func TestRunFailsOnTightP99(t *testing.T) {
	srv, reg := registryServer(t)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		srv.ServeHTTP(w, r)
	})
	_, err := Run(context.Background(), slow, reg, Options{
		Concurrency: 4, Requests: 100, MaxP99: time.Microsecond,
	})
	if err == nil {
		t.Fatal("a 2ms-per-request handler passed a 1µs p99 budget")
	}
}

// TestRunRefusesEmptyStore pins the guard against vacuous green runs.
func TestRunRefusesEmptyStore(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(&core.Database{}, server.WithRegistry(reg))
	if _, err := Run(context.Background(), srv, reg, Options{Concurrency: 2, Requests: 10}); err == nil {
		t.Fatal("load test ran against an empty store")
	}
}

// TestRunCanceled pins prompt cancellation.
func TestRunCanceled(t *testing.T) {
	srv, reg := registryServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cancel() // first request cancels the run
		srv.ServeHTTP(w, r)
	})
	rep, err := Run(ctx, slow, reg, Options{Concurrency: 2, Requests: 100000})
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	if rep.Requests >= 100000 {
		t.Fatal("cancellation did not stop the workers")
	}
}

// TestBuildPlanMix pins the request-mix construction: every catalogue
// entry contributes its lookup, download, revalidation, and blob
// requests, and the shared endpoints recur.
func TestBuildPlanMix(t *testing.T) {
	srv, _ := registryServer(t)
	plan, err := buildPlan(srv)
	if err != nil {
		t.Fatal(err)
	}
	var lists, conds, blobs int
	for _, e := range plan {
		switch {
		case e.ifNoneMatch != "":
			conds++
		case e.path == "/v1/layouts?limit=10":
			lists++
		case len(e.path) > 9 && e.path[:9] == "/v1/blobs":
			blobs++
		}
	}
	if conds != 3 || blobs != 3 {
		t.Errorf("plan has %d conditional and %d blob requests, want 3 each", conds, blobs)
	}
	if lists == 0 {
		t.Error("plan has no paginated list requests")
	}
	// The recorder-based plan builder must not leak into the metrics
	// that a later Run grades (buildPlan runs against the bare handler
	// before Run's own probes) — just ensure it terminates repeatably.
	again, err := buildPlan(srv)
	if err != nil || len(again) != len(plan) {
		t.Errorf("plan not reproducible: %d vs %d entries, %v", len(again), len(plan), err)
	}
}
