// Package loadtest drives a registry server handler with a realistic
// concurrent request mix — paginated listings, filtered queries,
// metadata lookups, content-addressed downloads, and conditional
// revalidations — and grades the run against the latency histograms
// the server itself records. The harness is fully in-process: requests
// go straight into the http.Handler, so it measures the handler stack
// (routing, storage snapshots, JSON encoding, ETag handling) without
// socket noise, and the asserted p99 comes from the same
// mntbench_http_request_duration_seconds family that production
// scrapes, proving the observability path and the hot path at once.
package loadtest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options tunes a load-test run.
type Options struct {
	// Concurrency is the number of worker goroutines issuing requests
	// (default 32).
	Concurrency int
	// Requests is the total number of requests across all workers
	// (default 1000).
	Requests int
	// MaxP99 fails the run when the merged /v1 latency p99 exceeds it;
	// zero skips the assertion.
	MaxP99 time.Duration
}

// Report summarizes a completed run.
type Report struct {
	Requests    int           // requests issued
	Errors      int           // responses outside the expected status set
	NotModified int           // 304 revalidation hits
	Elapsed     time.Duration // wall clock for the whole run
	P99         time.Duration // merged /v1 latency p99 from the registry
	Mean        time.Duration // merged /v1 latency mean
	Throughput  float64       // requests per wall-clock second
	// Sample holds the first few unexpected responses for diagnosis.
	Sample []string
}

// String renders the report for logs and CLI output.
func (r Report) String() string {
	return fmt.Sprintf("%d requests in %v (%.0f req/s), %d errors, %d not-modified, p99 %v, mean %v",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.Errors, r.NotModified, r.P99.Round(time.Microsecond), r.Mean.Round(time.Microsecond))
}

// planEntry is one templated request in the round-robin mix.
type planEntry struct {
	path string
	// ifNoneMatch, when set, makes the request conditional; 304 is the
	// expected answer.
	ifNoneMatch string
}

// listedLayout is the slice of the /v1 record the planner needs.
type listedLayout struct {
	ID      string `json:"id"`
	Hash    string `json:"sha256"`
	Library string `json:"library"`
}

// buildPlan discovers the handler's catalogue through its own API and
// lays out a deterministic request mix over it. No randomness: workers
// walk the plan round-robin, so runs are reproducible and the mix
// ratio is fixed by construction (per catalogue entry: one metadata
// lookup, one download, one conditional revalidation, plus recurring
// list, filter, and stats probes).
func buildPlan(handler http.Handler) ([]planEntry, error) {
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/layouts?limit=500", nil))
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("loadtest: listing the catalogue: HTTP %d", rec.Code)
	}
	var page struct {
		Layouts []listedLayout `json:"layouts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		return nil, fmt.Errorf("loadtest: parsing the catalogue: %w", err)
	}
	if len(page.Layouts) == 0 {
		return nil, fmt.Errorf("loadtest: the store serves no layouts to exercise")
	}
	var plan []planEntry
	for i, l := range page.Layouts {
		// Interleave shared endpoints so they recur throughout the plan
		// instead of clustering.
		switch i % 4 {
		case 0:
			plan = append(plan, planEntry{path: "/v1/layouts?limit=10"})
		case 1:
			plan = append(plan, planEntry{path: "/v1/layouts?library=" + url.QueryEscape(l.Library) + "&limit=10"})
		case 2:
			plan = append(plan, planEntry{path: "/v1/stats"})
		case 3:
			plan = append(plan, planEntry{path: "/v1/filters"})
		}
		plan = append(plan,
			planEntry{path: "/v1/layouts/" + l.ID},
			planEntry{path: "/v1/layouts/" + l.ID + "/layout.fgl"},
			planEntry{path: "/v1/layouts/" + l.ID + "/layout.fgl", ifNoneMatch: `"` + l.Hash + `"`},
			planEntry{path: "/v1/blobs/" + l.Hash},
		)
	}
	return plan, nil
}

// Run executes the load test against handler and grades it using the
// latency histograms in reg — the registry the handler's middleware
// records into. The /v1 route families are merged bucket-by-bucket
// (every route shares obs.DefBuckets) so the asserted p99 covers the
// whole API surface, weighted by the actual request mix.
func Run(ctx context.Context, handler http.Handler, reg *obs.Registry, opts Options) (Report, error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented fallback: a nil ctx means "no caller context"
		ctx = context.Background()
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 32
	}
	if opts.Requests <= 0 {
		opts.Requests = 1000
	}
	plan, err := buildPlan(handler)
	if err != nil {
		return Report{}, err
	}

	var (
		issued      atomic.Int64
		errCount    atomic.Int64
		notModified atomic.Int64
		mu          sync.Mutex
		sample      []string
	)
	fail := func(e planEntry, code int) {
		errCount.Add(1)
		mu.Lock()
		if len(sample) < 8 {
			sample = append(sample, fmt.Sprintf("GET %s -> %d", e.path, code))
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Worker w issues requests w, w+C, w+2C, ... — the full plan
			// is covered with no coordination and no shared counters on
			// the hot path.
			for i := worker; i < opts.Requests; i += opts.Concurrency {
				if ctx.Err() != nil {
					return
				}
				e := plan[i%len(plan)]
				req := httptest.NewRequest(http.MethodGet, e.path, nil)
				if e.ifNoneMatch != "" {
					req.Header.Set("If-None-Match", e.ifNoneMatch)
				}
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req.WithContext(ctx))
				issued.Add(1)
				switch {
				case e.ifNoneMatch != "" && rec.Code == http.StatusNotModified:
					notModified.Add(1)
				case rec.Code == http.StatusOK:
				default:
					fail(e, rec.Code)
				}
			}
		}(w)
	}
	wg.Wait()

	rep := Report{
		Requests:    int(issued.Load()),
		Errors:      int(errCount.Load()),
		NotModified: int(notModified.Load()),
		Elapsed:     time.Since(start),
		Sample:      sample,
	}
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	if cerr := ctx.Err(); cerr != nil {
		return rep, fmt.Errorf("loadtest: run canceled after %d requests: %w", rep.Requests, cerr)
	}

	merged := mergeV1Latency(reg)
	rep.P99 = time.Duration(merged.Quantile(0.99) * float64(time.Second))
	rep.Mean = time.Duration(merged.Mean() * float64(time.Second))
	if merged.Count == 0 {
		return rep, fmt.Errorf("loadtest: no /v1 observations in %s — is the handler instrumented?", obs.MetricHTTPDuration)
	}
	if rep.Errors > 0 {
		return rep, fmt.Errorf("loadtest: %d of %d requests failed (first: %v)", rep.Errors, rep.Requests, rep.Sample)
	}
	if opts.MaxP99 > 0 && rep.P99 > opts.MaxP99 {
		return rep, fmt.Errorf("loadtest: p99 %v exceeds the %v budget", rep.P99, opts.MaxP99)
	}
	return rep, nil
}

// mergeV1Latency folds the per-route latency histograms of the /v1
// routes into one distribution. All series in the family share the
// same bucket bounds, so cumulative counts add bucket-wise.
func mergeV1Latency(reg *obs.Registry) obs.HistogramSnapshot {
	var merged obs.HistogramSnapshot
	for _, fam := range reg.Snapshot() {
		if fam.Name != obs.MetricHTTPDuration {
			continue
		}
		for _, s := range fam.Series {
			if s.Histogram == nil || !isV1Route(s.Labels) {
				continue
			}
			h := *s.Histogram
			if merged.Buckets == nil {
				merged.Buckets = make([]obs.Bucket, len(h.Buckets))
				copy(merged.Buckets, h.Buckets)
				merged.Count, merged.Sum = h.Count, h.Sum
				continue
			}
			for i := range merged.Buckets {
				if i < len(h.Buckets) {
					merged.Buckets[i].Count += h.Buckets[i].Count
				}
			}
			merged.Count += h.Count
			merged.Sum += h.Sum
		}
	}
	return merged
}

func isV1Route(labels []obs.Label) bool {
	for _, l := range labels {
		if l.Key == "route" && len(l.Value) >= 3 && l.Value[:3] == "/v1" {
			return true
		}
	}
	return false
}
