package server

import (
	"archive/zip"
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/fgl"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/verilog"
)

// testDB builds a tiny two-entry database (one per library).
func testDB(t *testing.T) *core.Database {
	t.Helper()
	limits := core.Limits{ExactTimeout: time.Second, NanoTimeout: time.Second}
	b, err := bench.ByName("Trindade16", "mux21")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	e1, err := core.RunFlow(ctx, b, core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: core.AlgoOrtho}, limits)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.RunFlow(ctx, b, core.Flow{Library: gatelib.Bestagon, Scheme: clocking.Row, Algorithm: core.AlgoOrtho, Hexagonalize: true}, limits)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := core.RunFlow(ctx, b, core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: core.AlgoOrtho, InputOrder: true, PostLayout: true}, limits)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Database{Entries: []*core.Entry{e1, e2, e3}}
}

func get(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestIndexPage(t *testing.T) {
	srv := New(testDB(t))
	rec := get(t, srv, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"MNT Bench", "Gate Library", "Clocking Scheme", "Physical Design Algorithm", "Optimization Algorithm", "mux21"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestBenchmarksAPIFilters(t *testing.T) {
	srv := New(testDB(t))

	var all []map[string]interface{}
	rec := get(t, srv, "/api/benchmarks")
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("unfiltered rows = %d", len(all))
	}

	rec = get(t, srv, "/api/benchmarks?library=Bestagon")
	var best []map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &best); err != nil {
		t.Fatal(err)
	}
	if len(best) != 1 || best[0]["library"] != "Bestagon" {
		t.Fatalf("library filter: %v", best)
	}

	rec = get(t, srv, "/api/benchmarks?plo=1")
	var plo []map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &plo); err != nil {
		t.Fatal(err)
	}
	if len(plo) != 1 || plo[0]["post_layout_optimization"] != true {
		t.Fatalf("plo filter: %v", plo)
	}

	rec = get(t, srv, "/api/benchmarks?library=QCA+ONE&best=1")
	var bst []map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &bst); err != nil {
		t.Fatal(err)
	}
	if len(bst) != 1 {
		t.Fatalf("best filter: %d rows", len(bst))
	}
}

func TestFiltersAPI(t *testing.T) {
	srv := New(testDB(t))
	rec := get(t, srv, "/api/filters")
	var opts map[string][]string
	if err := json.Unmarshal(rec.Body.Bytes(), &opts); err != nil {
		t.Fatal(err)
	}
	if len(opts["libraries"]) != 2 || len(opts["sets"]) != 4 {
		t.Fatalf("filters: %v", opts)
	}
}

func TestDownloadFGL(t *testing.T) {
	srv := New(testDB(t))
	var rows []struct {
		FGL     string `json:"fgl_url"`
		Verilog string `json:"verilog_url"`
	}
	rec := get(t, srv, "/api/benchmarks?library=QCA+ONE")
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	rec = get(t, srv, rows[0].FGL)
	if rec.Code != http.StatusOK {
		t.Fatalf("fgl download status %d", rec.Code)
	}
	if _, err := fgl.ReadString(rec.Body.String()); err != nil {
		t.Fatalf("served .fgl does not parse: %v", err)
	}
	rec = get(t, srv, rows[0].Verilog)
	if rec.Code != http.StatusOK {
		t.Fatalf("verilog download status %d", rec.Code)
	}
	if _, err := verilog.ParseString(rec.Body.String()); err != nil {
		t.Fatalf("served .v does not parse: %v", err)
	}
}

func TestDownloadNotFound(t *testing.T) {
	srv := New(testDB(t))
	if rec := get(t, srv, "/download/nope.fgl"); rec.Code != http.StatusNotFound {
		t.Errorf("status %d", rec.Code)
	}
	if rec := get(t, srv, "/download/nope.xyz"); rec.Code != http.StatusNotFound {
		t.Errorf("status %d", rec.Code)
	}
}

func TestBundleZip(t *testing.T) {
	srv := New(testDB(t))
	rec := get(t, srv, "/download/bundle.zip?library=QCA+ONE")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	zr, err := zip.NewReader(bytes.NewReader(rec.Body.Bytes()), int64(rec.Body.Len()))
	if err != nil {
		t.Fatal(err)
	}
	var fglCount, vCount int
	for _, f := range zr.File {
		switch {
		case strings.HasSuffix(f.Name, ".fgl"):
			fglCount++
			rc, err := f.Open()
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(rc)
			rc.Close()
			if _, err := fgl.ReadString(string(data)); err != nil {
				t.Errorf("bundled %s invalid: %v", f.Name, err)
			}
		case strings.HasSuffix(f.Name, ".v"):
			vCount++
		}
	}
	if fglCount != 2 || vCount != 1 {
		t.Errorf("bundle has %d fgl / %d v files, want 2/1", fglCount, vCount)
	}
}

func TestBundleEmptyFilter(t *testing.T) {
	srv := New(testDB(t))
	if rec := get(t, srv, "/download/bundle.zip?set=EPFL"); rec.Code != http.StatusNotFound {
		t.Errorf("status %d", rec.Code)
	}
}

func TestPreviewSVG(t *testing.T) {
	srv := New(testDB(t))
	var rows []struct {
		Preview string `json:"preview_url"`
	}
	rec := get(t, srv, "/api/benchmarks?library=QCA+ONE")
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || rows[0].Preview == "" {
		t.Fatal("no preview URL")
	}
	rec = get(t, srv, rows[0].Preview)
	if rec.Code != http.StatusOK {
		t.Fatalf("preview status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "<svg") {
		t.Error("not an SVG")
	}
	if rec := get(t, srv, "/preview/nope.svg"); rec.Code != http.StatusNotFound {
		t.Errorf("missing preview status %d", rec.Code)
	}
}

func TestSubmitLayout(t *testing.T) {
	srv := New(testDB(t))
	// Build a better mux21 layout (exact-style small one via PLO).
	b, err := bench.ByName("Trindade16", "mux21")
	if err != nil {
		t.Fatal(err)
	}
	limits := core.Limits{ExactTimeout: time.Second, NanoTimeout: time.Second, PLOTimeout: 5 * time.Second}
	e, err := core.RunFlow(context.Background(), b, core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave,
		Algorithm: core.AlgoOrtho, InputOrder: true, PostLayout: true}, limits)
	if err != nil {
		t.Fatal(err)
	}
	text, err := fgl.WriteString(e.Layout)
	if err != nil {
		t.Fatal(err)
	}

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	rec := post("/api/submit?set=Trindade16&name=mux21", text)
	if rec.Code != http.StatusOK {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		ID       string `json:"id"`
		Area     int    `json:"area"`
		NewBest  bool   `json:"new_best"`
		PrevBest int    `json:"previous_best_area"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Area != e.Area {
		t.Errorf("area %d, want %d", resp.Area, e.Area)
	}
	if resp.PrevBest == 0 {
		t.Error("previous best area missing")
	}
	if resp.NewBest != (resp.Area < resp.PrevBest) {
		t.Errorf("new_best=%v inconsistent with %d vs %d", resp.NewBest, resp.Area, resp.PrevBest)
	}
	// The submission must now be downloadable.
	if rec := get(t, srv, "/download/"+resp.ID+".fgl"); rec.Code != http.StatusOK {
		t.Errorf("submitted layout not downloadable: %d", rec.Code)
	}

	// Wrong-function submission is rejected.
	if rec := post("/api/submit?set=Trindade16&name=xor2", text); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("wrong-function submission status %d", rec.Code)
	}
	// Unknown benchmark.
	if rec := post("/api/submit?set=Nope&name=x", text); rec.Code != http.StatusNotFound {
		t.Errorf("unknown benchmark status %d", rec.Code)
	}
	// Junk body.
	if rec := post("/api/submit?set=Trindade16&name=mux21", "garbage"); rec.Code != http.StatusBadRequest {
		t.Errorf("junk submission status %d", rec.Code)
	}
	// GET is not allowed.
	if rec := get(t, srv, "/api/submit?set=Trindade16&name=mux21"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", rec.Code)
	}
}

func TestMetricsReflectRequests(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(testDB(t), WithRegistry(reg))

	if rec := get(t, srv, "/api/benchmarks"); rec.Code != http.StatusOK {
		t.Fatalf("api status %d", rec.Code)
	}
	if rec := get(t, srv, "/download/nope.fgl"); rec.Code != http.StatusNotFound {
		t.Fatalf("download status %d", rec.Code)
	}

	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`mntbench_http_requests_total{code="200",route="/api/benchmarks"} 1`,
		`mntbench_http_requests_total{code="404",route="/download"} 1`,
		`mntbench_http_request_duration_seconds_count{route="/api/benchmarks"} 1`,
		`mntbench_http_requests_in_flight 1`, // the /metrics request itself
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	// JSON dump variant.
	rec = get(t, srv, "/metrics?format=json")
	var dump map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("json dump: %v", err)
	}
	if _, ok := dump[obs.MetricHTTPRequests]; !ok {
		t.Errorf("json dump missing %s: %v", obs.MetricHTTPRequests, dump)
	}
}

func TestHealthz(t *testing.T) {
	srv := New(testDB(t), WithRegistry(obs.NewRegistry()))
	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := strings.TrimSpace(rec.Body.String()); !strings.Contains(got, "ok") {
		t.Errorf("body %q", got)
	}
}

func TestPprofOptIn(t *testing.T) {
	db := testDB(t)
	plain := New(db, WithRegistry(obs.NewRegistry()))
	if rec := get(t, plain, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status %d", rec.Code)
	}
	prof := New(db, WithRegistry(obs.NewRegistry()), WithPprof())
	if rec := get(t, prof, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof with opt-in: status %d", rec.Code)
	}
}

func TestTracesOptIn(t *testing.T) {
	db := testDB(t)
	plain := New(db, WithRegistry(obs.NewRegistry()))
	if rec := get(t, plain, "/debug/traces"); rec.Code != http.StatusNotFound {
		t.Errorf("traces without opt-in: status %d", rec.Code)
	}

	ts := obs.NewTraceStore(obs.TracePolicy{})
	srv := New(db, WithRegistry(obs.NewRegistry()), WithTraces(ts))
	if rec := get(t, srv, "/api/benchmarks"); rec.Code != http.StatusOK {
		t.Fatalf("api status %d", rec.Code)
	}
	if rec := get(t, srv, "/download/nope.fgl"); rec.Code != http.StatusNotFound {
		t.Fatalf("download status %d", rec.Code)
	}

	// Both requests were traced; the index lists them with their route
	// label and status code annotations.
	rec := get(t, srv, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", rec.Code)
	}
	var index struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			ID    string            `json:"id"`
			Root  string            `json:"root"`
			Attrs map[string]string `json:"attrs"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &index); err != nil {
		t.Fatalf("index: %v\n%s", err, rec.Body.String())
	}
	if !index.Enabled || len(index.Traces) < 2 {
		t.Fatalf("index = %+v", index)
	}
	paths := map[string]bool{}
	for _, tr := range index.Traces {
		if tr.Root != "http" {
			t.Errorf("trace root = %q", tr.Root)
		}
		paths[tr.Attrs["path"]] = true
	}
	if !paths["/api/benchmarks"] || !paths["/download/nope.fgl"] {
		t.Errorf("request paths not annotated: %v", paths)
	}

	// Detail view round-trips one trace.
	rec = get(t, srv, "/debug/traces/"+index.Traces[0].ID)
	var tr obs.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("detail: %v", err)
	}
	if tr.ID != index.Traces[0].ID || len(tr.Events) == 0 {
		t.Errorf("detail = %+v", tr)
	}

	// Chrome export of the retained request traces decodes.
	rec = get(t, srv, "/debug/traces/chrome")
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans < 2 {
		t.Errorf("chrome export has %d span events, want >= 2", spans)
	}
}

func TestBuildInfoOnMetrics(t *testing.T) {
	srv := New(testDB(t), WithRegistry(obs.NewRegistry()))
	rec := get(t, srv, "/metrics")
	if !strings.Contains(rec.Body.String(), "mntbench_build_info{") {
		t.Error("/metrics missing mntbench_build_info")
	}
}

func TestRuntimeGaugesOnMetrics(t *testing.T) {
	srv := New(testDB(t), WithRegistry(obs.NewRegistry()))
	rec := get(t, srv, "/metrics")
	body := rec.Body.String()
	for _, want := range []string{
		obs.MetricGoGoroutines, obs.MetricGoHeapLive, obs.MetricGoGCCycles,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing runtime gauge %s", want)
		}
	}
}

func TestDebugPerfServesLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv := New(testDB(t), WithRegistry(obs.NewRegistry()), WithPerfDir(dir))

	rec := get(t, srv, "/debug/perf")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/perf with no snapshots: status %d, want 404", rec.Code)
	}

	snap := &perf.Snapshot{
		Schema: perf.SchemaVersion,
		Env:    perf.Fingerprint(),
		Results: []perf.Result{{
			ID: "E1", Name: "TableIQCAOne", Iterations: 1, NsPerOp: 1e9,
		}},
	}
	data, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_1.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_2.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec = get(t, srv, "/debug/perf")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/perf status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Perf-Snapshot"); got != "2" {
		t.Errorf("served snapshot %q, want the latest (2)", got)
	}
	if _, err := perf.Unmarshal(rec.Body.Bytes()); err != nil {
		t.Errorf("served snapshot invalid: %v", err)
	}

	// The debug route is a bounded metric label.
	if got := routeLabel(httptest.NewRequest(http.MethodGet, "/debug/perf", nil)); got != "/debug/perf" {
		t.Errorf("routeLabel(/debug/perf) = %q", got)
	}
}

func TestReadyzLifecycle(t *testing.T) {
	srv := New(testDB(t), WithRegistry(obs.NewRegistry()))
	rec := get(t, srv, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz on a fresh server: status %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"ready"`) {
		t.Errorf("/readyz body %q", rec.Body.String())
	}
	srv.BeginShutdown()
	rec = get(t, srv, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after BeginShutdown: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "shutting down") {
		t.Errorf("/readyz drain body %q", rec.Body.String())
	}
	// Liveness is unaffected: the process still responds while draining.
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz during drain: status %d", rec.Code)
	}
	// The readiness route is a bounded metric label.
	if got := routeLabel(httptest.NewRequest(http.MethodGet, "/readyz", nil)); got != "/readyz" {
		t.Errorf("routeLabel(/readyz) = %q", got)
	}
}

func TestDebugEventsWithoutJournal(t *testing.T) {
	srv := New(testDB(t), WithRegistry(obs.NewRegistry()))
	if rec := get(t, srv, "/debug/events"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/debug/events without a journal: status %d, want 503", rec.Code)
	}
	if got := routeLabel(httptest.NewRequest(http.MethodGet, "/debug/events", nil)); got != "/debug/events" {
		t.Errorf("routeLabel(/debug/events) = %q", got)
	}
}

// TestDebugEventsStreams drives the SSE feed through the full server
// stack — obs middleware included, which must pass Flush through to the
// client — with a real HTTP connection.
func TestDebugEventsStreams(t *testing.T) {
	j := obs.NewJournal(nil, obs.NewRegistry())
	defer j.Close()
	srv := New(testDB(t), WithRegistry(obs.NewRegistry()), WithJournal(j))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	greeting, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(greeting, ":") {
		t.Fatalf("greeting %q is not an SSE comment", greeting)
	}

	j.Append(obs.Event{Type: obs.EventCampaignStart, Campaign: "c1", Schema: obs.JournalSchema})

	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		if strings.HasPrefix(line, "event: ") {
			if strings.TrimSpace(line) != "event: campaign_start" {
				t.Errorf("event line %q", line)
			}
			data, err := br.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(data, `"campaign":"c1"`) {
				t.Errorf("data line %q", data)
			}
			return
		}
	}
}
