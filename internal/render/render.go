// Package render draws FCN gate-level layouts as SVG images and ASCII
// art — the layout previews of the MNT Bench website and fiction's
// print_gate_level_layout, respectively. Tiles are colored by clock
// zone, gates are labelled with their function, and signal flow is drawn
// as arrows between tiles; hexagonal layouts render as a pointy-top hex
// grid with odd rows offset.
package render

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/layout"
	"repro/internal/network"
)

// zoneColors give each clock zone a pastel fill, zone number = index.
var zoneColors = []string{"#e8f1f8", "#d3e5f1", "#b3d2e8", "#8fbcdb"}

// gateColor highlights non-wire tiles.
const (
	gateFill  = "#ffd27f"
	pioFill   = "#a8e6a1"
	wireFill  = "none"
	crossFill = "#d9b3ff"
)

// SVGOptions tunes the rendering.
type SVGOptions struct {
	// TileSize is the edge length of one tile in pixels (default 28).
	TileSize int
	// ShowClockZones fills tiles with zone colors (default on; set
	// HideClockZones to disable).
	HideClockZones bool
	// MaxTiles refuses to render monster layouts (default 250000).
	MaxTiles int
}

func (o SVGOptions) tile() int {
	if o.TileSize <= 0 {
		return 28
	}
	return o.TileSize
}

func (o SVGOptions) maxTiles() int {
	if o.MaxTiles <= 0 {
		return 250000
	}
	return o.MaxTiles
}

// WriteSVG renders the layout as a standalone SVG document.
func WriteSVG(w io.Writer, l *layout.Layout, opts SVGOptions) error {
	lw, lh := l.BoundingBox()
	if lw*lh > opts.maxTiles() {
		return fmt.Errorf("render: layout %dx%d exceeds the size limit", lw, lh)
	}
	ts := float64(opts.tile())
	hex := l.Topo == layout.HexOddRow

	// Pixel position of a tile's top-left corner.
	pos := func(c layout.Coord) (float64, float64) {
		x := float64(c.X) * ts
		if hex && c.Y%2 == 1 {
			x += ts / 2
		}
		y := float64(c.Y) * ts
		if hex {
			y = float64(c.Y) * ts * 0.87
		}
		return x, y
	}
	center := func(c layout.Coord) (float64, float64) {
		x, y := pos(c)
		return x + ts/2, y + ts/2
	}

	widthPx := (float64(lw) + 1.5) * ts
	heightPx := (float64(lh) + 1.5) * ts
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		widthPx, heightPx, widthPx, heightPx)
	fmt.Fprintf(&b, `<title>%s (%s, %s)</title>`+"\n", xmlEscape(l.Name), l.Topo, xmlEscape(l.Scheme.Name))
	b.WriteString(`<defs><marker id="arr" viewBox="0 0 6 6" refX="5" refY="3" markerWidth="5" markerHeight="5" orient="auto"><path d="M0,0 L6,3 L0,6 z" fill="#555"/></marker></defs>` + "\n")

	// Background grid with clock zones.
	if !opts.HideClockZones {
		for y := 0; y < lh; y++ {
			for x := 0; x < lw; x++ {
				c := layout.C(x, y)
				px, py := pos(c)
				fill := zoneColors[l.Zone(c)%len(zoneColors)]
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#ccc" stroke-width="0.5"/>`+"\n",
					px, py, ts, ts, fill)
			}
		}
	}

	// Wires and connections first (under the gates).
	coords := l.Coords()
	for _, c := range coords {
		t := l.At(c)
		for _, src := range t.Incoming {
			x1, y1 := center(src)
			x2, y2 := center(c)
			dash := ""
			if src.Z == 1 || c.Z == 1 {
				dash = ` stroke-dasharray="3,2"`
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#555" stroke-width="1.6" marker-end="url(#arr)"%s/>`+"\n",
				x1, y1, x2, y2, dash)
		}
	}

	// Tiles.
	for _, c := range coords {
		t := l.At(c)
		cx, cy := center(c)
		switch {
		case t.Fn == network.PI || t.Fn == network.PO:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#333"/>`+"\n", cx, cy, ts*0.36, pioFill)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="%.0f" text-anchor="middle" dominant-baseline="middle" font-family="monospace">%s</text>`+"\n",
				cx, cy, ts*0.32, xmlEscape(short(t.Name, 4)))
		case t.IsWire():
			if c.Z == 1 {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#888"/>`+"\n", cx, cy, ts*0.14, crossFill)
			} else {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#666"/>`+"\n", cx, cy, ts*0.08)
			}
		default:
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" rx="3" fill="%s" stroke="#333"/>`+"\n",
				cx-ts*0.38, cy-ts*0.38, ts*0.76, ts*0.76, gateFill)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="%.0f" text-anchor="middle" dominant-baseline="middle" font-family="monospace">%s</text>`+"\n",
				cx, cy, ts*0.3, gateLabel(t.Fn))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func gateLabel(g network.Gate) string {
	switch g {
	case network.Fanout:
		return "F"
	case network.Not:
		return "INV"
	case network.Maj:
		return "MAJ"
	default:
		return g.String()
	}
}

func short(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ASCII renders the layout as fixed-width text, one 4-character cell per
// tile: gates by mnemonic, wires by direction glyphs, crossings in
// brackets. The output mirrors fiction's gate-level layout printer.
func ASCII(l *layout.Layout) string {
	w, h := l.BoundingBox()
	if w == 0 || h == 0 {
		return "(empty layout)\n"
	}
	cell := func(c layout.Coord) string {
		g := l.At(c)
		up := l.At(c.Above())
		switch {
		case g == nil && up == nil:
			return " .  "
		case g == nil:
			return " ?  " // floating crossing (illegal, shown loudly)
		}
		base := tileGlyph(l, c, g)
		if up != nil {
			return "[" + base + "]"
		}
		return " " + base + " "
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %dx%d, %s, %s\n", l.Name, w, h, l.Topo, l.Scheme.Name)
	for y := 0; y < h; y++ {
		if l.Topo == layout.HexOddRow && y%2 == 1 {
			b.WriteString("  ")
		}
		for x := 0; x < w; x++ {
			b.WriteString(cell(layout.C(x, y)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func tileGlyph(l *layout.Layout, c layout.Coord, t *layout.Tile) string {
	switch {
	case t.Fn == network.PI:
		return "I" + short(t.Name, 1)
	case t.Fn == network.PO:
		return "O" + short(t.Name, 1)
	case t.IsWire():
		return wireGlyph(l, c)
	case t.Fn == network.Fanout:
		return "F "
	case t.Fn == network.Not:
		return "N "
	case t.Fn == network.Maj:
		return "M3"
	case t.Fn == network.And:
		return "& "
	case t.Fn == network.Or:
		return "| "
	case t.Fn == network.Nand:
		return "&~"
	case t.Fn == network.Nor:
		return "|~"
	case t.Fn == network.Xor:
		return "^ "
	case t.Fn == network.Xnor:
		return "^~"
	case t.Fn == network.Const0:
		return "0 "
	case t.Fn == network.Const1:
		return "1 "
	}
	return "? "
}

// wireGlyph picks an arrow for a ground-layer wire based on where its
// output goes (falling back to its input side).
func wireGlyph(l *layout.Layout, c layout.Coord) string {
	outs := l.Outgoing(c)
	var d layout.Coord
	switch {
	case len(outs) > 0:
		d = layout.Coord{X: outs[0].X - c.X, Y: outs[0].Y - c.Y}
	case len(l.At(c).Incoming) > 0:
		in := l.At(c).Incoming[0]
		d = layout.Coord{X: c.X - in.X, Y: c.Y - in.Y}
	default:
		return "~ "
	}
	switch {
	case d.X > 0:
		return "> "
	case d.X < 0:
		return "< "
	case d.Y > 0:
		return "v "
	case d.Y < 0:
		return "^^"
	}
	return "~ "
}

// Legend describes the ASCII glyphs for CLI help output.
func Legend() string {
	rows := []string{
		" .    empty tile",
		" Ix   primary input (first letter of its name)",
		" Ox   primary output",
		" >  < v  ^^   wire segment and its direction",
		" &  |  ^  N  M3  F   AND OR XOR INV MAJ FANOUT",
		" [..] tile with a crossing wire above it",
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n") + "\n"
}
