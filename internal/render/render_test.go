package render

import (
	"strings"
	"testing"

	"repro/internal/clocking"
	"repro/internal/gatelib"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
)

func mux21Layout(t *testing.T) *layout.Layout {
	t.Helper()
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	n.AddPO(n.AddOr(n.AddAnd(a, n.AddNot(s)), n.AddAnd(b, s)), "f")
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestWriteSVGStructure(t *testing.T) {
	l := mux21Layout(t)
	var b strings.Builder
	if err := WriteSVG(&b, l, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	for _, want := range []string{"<svg", "</svg>", "<title>mux21", "marker-end", "<rect", "<circle", "AND"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One connection line per incoming edge.
	lines := strings.Count(svg, "<line ")
	wantLines := 0
	for _, c := range l.Coords() {
		wantLines += len(l.At(c).Incoming)
	}
	if lines != wantLines {
		t.Errorf("%d lines for %d connections", lines, wantLines)
	}
}

func TestWriteSVGHexagonal(t *testing.T) {
	cart := mux21Layout(t)
	hex, err := hexagonal.Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteSVG(&b, hex, SVGOptions{TileSize: 20}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hexagonal") {
		t.Error("hex title missing")
	}
}

func TestWriteSVGSizeLimit(t *testing.T) {
	l := layout.New("big", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(999, 999), layout.Tile{Fn: network.Buf, Wire: true})
	if err := WriteSVG(&strings.Builder{}, l, SVGOptions{MaxTiles: 1000}); err == nil {
		t.Error("size limit not enforced")
	}
}

func TestASCIIRendering(t *testing.T) {
	l := layout.New("t", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.Not, Incoming: []layout.Coord{layout.C(1, 0)}})
	l.MustPlace(layout.C(3, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(2, 0)}})
	art := ASCII(l)
	for _, want := range []string{"Ia", "> ", "N ", "Of", "4x1"} {
		if !strings.Contains(art, want) {
			t.Errorf("ASCII missing %q in:\n%s", want, art)
		}
	}
}

func TestASCIICrossingBrackets(t *testing.T) {
	l := layout.New("x", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.Buf, Wire: true})
	l.MustPlace(layout.C(0, 0).Above(), layout.Tile{Fn: network.Buf, Wire: true})
	art := ASCII(l)
	if !strings.Contains(art, "[") || !strings.Contains(art, "]") {
		t.Errorf("crossing not bracketed:\n%s", art)
	}
}

func TestASCIIEmptyLayout(t *testing.T) {
	l := layout.New("e", layout.Cartesian, clocking.TwoDDWave)
	if got := ASCII(l); !strings.Contains(got, "empty") {
		t.Errorf("got %q", got)
	}
}

func TestASCIIFullLayout(t *testing.T) {
	art := ASCII(mux21Layout(t))
	if strings.Contains(art, "? ") {
		t.Errorf("unknown glyph in real layout:\n%s", art)
	}
	// Every PI appears.
	for _, want := range []string{"Ia", "Ib", "Is", "Of"} {
		if !strings.Contains(art, want) {
			t.Errorf("missing %q:\n%s", want, art)
		}
	}
}

func TestLegend(t *testing.T) {
	if !strings.Contains(Legend(), "FANOUT") {
		t.Error("legend incomplete")
	}
}
