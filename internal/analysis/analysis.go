// Package analysis computes timing and energy figures of merit for FCN
// gate-level layouts, mirroring the analysis passes of the fiction
// framework that MNT Bench reports alongside its layouts.
//
// Timing in FCN is counted in clock cycles: a signal advances one tile
// per clock phase, so a path of k tiles takes k phases = k/n cycles for
// an n-phase clocking. Reconvergent paths of different lengths desynchronize
// the circuit; the throughput of a layout drops to 1/(1+s) where s is
// the maximum path-length skew (in full cycles) at any gate — the
// standard FCN throughput model.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/layout"
	"repro/internal/network"
)

// Timing summarizes the temporal behaviour of a layout.
type Timing struct {
	// CriticalPathTiles is the longest PI-to-PO path length in tiles
	// (phases), including the endpoint tiles.
	CriticalPathTiles int
	// CriticalPathCycles is the critical path in full clock cycles.
	CriticalPathCycles float64
	// MaxSkewPhases is the largest difference, over all multi-input
	// tiles, between the arrival phases of their fanins.
	MaxSkewPhases int
	// ThroughputDenominator is d in the throughput 1/d: the number of
	// clock cycles between accepted input patterns (1 = fully pipelined).
	ThroughputDenominator int
	// Balanced reports whether every reconvergent path pair is phase-
	// aligned (MaxSkewPhases == 0).
	Balanced bool
}

// String renders the timing summary in one line.
func (t Timing) String() string {
	return fmt.Sprintf("critical path %d tiles (%.2f cycles), max skew %d phases, throughput 1/%d",
		t.CriticalPathTiles, t.CriticalPathCycles, t.MaxSkewPhases, t.ThroughputDenominator)
}

// ComputeTiming derives the timing summary of a layout. The layout must
// be acyclic in its signal flow (feedback loops make arrival times
// undefined and return an error).
func ComputeTiming(l *layout.Layout) (Timing, error) {
	arrival, order, err := arrivalTimes(l)
	if err != nil {
		return Timing{}, err
	}
	var t Timing
	numZones := l.Scheme.NumZones
	for _, c := range order {
		tile := l.At(c)
		if tile.Fn == network.PO {
			if a := arrival[c]; a > t.CriticalPathTiles {
				t.CriticalPathTiles = a
			}
		}
		if len(tile.Incoming) >= 2 {
			min, max := math.MaxInt, 0
			for _, in := range tile.Incoming {
				a := arrival[in]
				if a < min {
					min = a
				}
				if a > max {
					max = a
				}
			}
			if skew := max - min; skew > t.MaxSkewPhases {
				t.MaxSkewPhases = skew
			}
		}
	}
	t.CriticalPathCycles = float64(t.CriticalPathTiles) / float64(numZones)
	// A skew of s phases delays acceptance of the next wave by
	// ceil(s/n) cycles.
	t.ThroughputDenominator = 1 + (t.MaxSkewPhases+numZones-1)/numZones
	t.Balanced = t.MaxSkewPhases == 0
	return t, nil
}

// arrivalTimes computes, for every occupied coordinate, the number of
// tiles on the longest path from any PI to (and including) that tile,
// along with a topological order of the tiles.
func arrivalTimes(l *layout.Layout) (map[layout.Coord]int, []layout.Coord, error) {
	coords := l.Coords()
	indeg := make(map[layout.Coord]int, len(coords))
	for _, c := range coords {
		indeg[c] = len(l.At(c).Incoming)
	}
	var queue []layout.Coord
	for _, c := range coords {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	arrival := make(map[layout.Coord]int, len(coords))
	var order []layout.Coord
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		order = append(order, c)
		a := 1
		for _, in := range l.At(c).Incoming {
			if v := arrival[in] + 1; v > a {
				a = v
			}
		}
		arrival[c] = a
		for _, out := range l.Outgoing(c) {
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	if len(order) != len(coords) {
		return nil, nil, fmt.Errorf("analysis: layout %q has a signal-flow cycle", l.Name)
	}
	return arrival, order, nil
}

// Energy estimates the dissipation of one computation wave using the
// per-element cost model popularized for QCA layout comparison
// (slow/“adiabatic” vs fast/abrupt switching regimes, meV per element).
type Energy struct {
	// SlowMEV is the estimated dissipation per wave in the quasi-
	// adiabatic regime, in meV.
	SlowMEV float64
	// FastMEV is the estimate in the abrupt-switching regime, in meV.
	FastMEV float64
}

// String renders the energy estimate.
func (e Energy) String() string {
	return fmt.Sprintf("%.2f meV (slow) / %.2f meV (fast) per wave", e.SlowMEV, e.FastMEV)
}

// Per-element dissipation constants (meV) following the fiction energy
// model's distinction between wires, fanouts, inverters, and two-input
// gates under slow (adiabatic) and fast clocking.
const (
	wireSlow, wireFast       = 0.09, 0.28
	fanoutSlow, fanoutFast   = 0.12, 0.32
	inverterSlow, invFast    = 9.77, 9.84
	twoInSlow, twoInFast     = 3.39, 9.45
	threeInSlow, threeInFast = 4.06, 10.2
	crossSlow, crossFast     = 0.28, 0.72
)

// ComputeEnergy estimates the layout's energy dissipation per clocked
// computation wave.
func ComputeEnergy(l *layout.Layout) Energy {
	var e Energy
	for _, c := range l.Coords() {
		t := l.At(c)
		switch {
		case t.Fn == network.PI || t.Fn == network.PO:
			// I/O pins are driven externally.
		case t.IsWire() && c.Z == 1:
			e.SlowMEV += crossSlow
			e.FastMEV += crossFast
		case t.IsWire():
			e.SlowMEV += wireSlow
			e.FastMEV += wireFast
		case t.Fn == network.Fanout:
			e.SlowMEV += fanoutSlow
			e.FastMEV += fanoutFast
		case t.Fn == network.Not:
			e.SlowMEV += inverterSlow
			e.FastMEV += invFast
		case t.Fn == network.Maj:
			e.SlowMEV += threeInSlow
			e.FastMEV += threeInFast
		case t.Fn.IsLogic():
			e.SlowMEV += twoInSlow
			e.FastMEV += twoInFast
		}
	}
	return e
}

// Report bundles every analysis of a layout.
type Report struct {
	Stats  layout.Stats
	Timing Timing
	Energy Energy
}

// Analyze runs all analyses.
func Analyze(l *layout.Layout) (Report, error) {
	t, err := ComputeTiming(l)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Stats:  l.ComputeStats(),
		Timing: t,
		Energy: ComputeEnergy(l),
	}, nil
}

// BalanceCheck lists the multi-input tiles whose fanin arrival phases
// differ, with their skews — the desynchronization diagnosis tool.
func BalanceCheck(l *layout.Layout) ([]string, error) {
	arrival, order, err := arrivalTimes(l)
	if err != nil {
		return nil, err
	}
	var issues []string
	for _, c := range order {
		t := l.At(c)
		if len(t.Incoming) < 2 {
			continue
		}
		min, max := math.MaxInt, 0
		for _, in := range t.Incoming {
			a := arrival[in]
			if a < min {
				min = a
			}
			if a > max {
				max = a
			}
		}
		if max != min {
			issues = append(issues, fmt.Sprintf("%s at %v: fanin arrival skew %d phases", t.Fn, c, max-min))
		}
	}
	return issues, nil
}
