package analysis

import (
	"strings"
	"testing"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
)

// chain builds PI -> wire^k -> PO in a row.
func chain(k int) *layout.Layout {
	l := layout.New("chain", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	prev := layout.C(0, 0)
	for i := 1; i <= k; i++ {
		c := layout.C(i, 0)
		l.MustPlace(c, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{prev}})
		prev = c
	}
	l.MustPlace(layout.C(k+1, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{prev}})
	return l
}

func TestTimingChain(t *testing.T) {
	l := chain(6)
	tm, err := ComputeTiming(l)
	if err != nil {
		t.Fatal(err)
	}
	if tm.CriticalPathTiles != 8 { // PI + 6 wires + PO
		t.Errorf("critical path = %d, want 8", tm.CriticalPathTiles)
	}
	if tm.CriticalPathCycles != 2.0 {
		t.Errorf("cycles = %v, want 2", tm.CriticalPathCycles)
	}
	if !tm.Balanced || tm.MaxSkewPhases != 0 || tm.ThroughputDenominator != 1 {
		t.Errorf("chain should be balanced with full throughput: %+v", tm)
	}
}

// skewed builds an AND whose two fanin paths differ by 4 tiles.
func skewed(t *testing.T) *layout.Layout {
	l := layout.New("skew", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 1), layout.Tile{Fn: network.PI, Name: "b"})
	// Path 1: direct east from (0,0): wires at (1,0)..(4,0).
	prev := layout.C(0, 0)
	for x := 1; x <= 4; x++ {
		c := layout.C(x, 0)
		l.MustPlace(c, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{prev}})
		prev = c
	}
	// Path 2: from (0,1) east along row 1 then north into the gate...
	// 2DDWave cannot go north; instead make the gate at (5,1) and bring
	// path 1 south at the end.
	l.MustPlace(layout.C(5, 0), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{prev}})
	prevB := layout.C(0, 1)
	for x := 1; x <= 4; x++ {
		c := layout.C(x, 1)
		l.MustPlace(c, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{prevB}})
		prevB = c
	}
	// Wait: both paths are now length-equal; extend path 2 by a detour.
	l.MustPlace(layout.C(4, 2), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(4, 1)}})
	l.MustPlace(layout.C(5, 2), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(4, 2)}})
	// Disconnect straight continuation by routing gate input from detour.
	l.MustPlace(layout.C(5, 1), layout.Tile{Fn: network.And, Incoming: []layout.Coord{layout.C(5, 0), layout.C(4, 1)}})
	l.MustPlace(layout.C(6, 1), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(5, 1)}})
	return l
}

func TestTimingSkew(t *testing.T) {
	l := skewed(t)
	tm, err := ComputeTiming(l)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Balanced {
		t.Fatal("skewed layout reported balanced")
	}
	if tm.MaxSkewPhases != 1 { // path a: PI+4w+1w = 6; path b: PI+4w = 5
		t.Errorf("skew = %d, want 1", tm.MaxSkewPhases)
	}
	if tm.ThroughputDenominator != 2 {
		t.Errorf("throughput = 1/%d, want 1/2", tm.ThroughputDenominator)
	}
	issues, err := BalanceCheck(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0], "skew 1") {
		t.Errorf("balance check: %v", issues)
	}
}

func TestTimingCycleDetection(t *testing.T) {
	l := layout.New("loop", layout.Cartesian, clocking.USE)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.Buf, Wire: true})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(0, 0)}})
	if err := l.Connect(layout.C(1, 0), layout.C(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeTiming(l); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestTimingOnOrthoLayout(t *testing.T) {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	n.AddPO(n.AddOr(n.AddAnd(a, n.AddNot(s)), n.AddAnd(b, s)), "f")
	l, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := ComputeTiming(l)
	if err != nil {
		t.Fatal(err)
	}
	if tm.CriticalPathTiles < n.Depth() {
		t.Errorf("critical path %d shorter than logic depth %d", tm.CriticalPathTiles, n.Depth())
	}
	hex, err := hexagonal.Map(l)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := ComputeTiming(hex)
	if err != nil {
		t.Fatal(err)
	}
	// The 45° mapping preserves connectivity exactly, so path lengths and
	// skews are identical.
	if hm.CriticalPathTiles != tm.CriticalPathTiles || hm.MaxSkewPhases != tm.MaxSkewPhases {
		t.Errorf("hexagonalization changed timing: %+v vs %+v", tm, hm)
	}
}

func TestEnergyModel(t *testing.T) {
	l := chain(3)
	e := ComputeEnergy(l)
	want := 3 * wireSlow
	if diff := e.SlowMEV - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("slow energy = %v, want %v", e.SlowMEV, want)
	}
	if e.FastMEV <= e.SlowMEV {
		t.Error("fast switching must dissipate more than slow")
	}
}

func TestEnergyGateMix(t *testing.T) {
	l := layout.New("mix", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Not, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})
	e := ComputeEnergy(l)
	if e.SlowMEV != inverterSlow {
		t.Errorf("slow = %v, want inverter-only %v", e.SlowMEV, inverterSlow)
	}
}

func TestAnalyzeReport(t *testing.T) {
	l := chain(2)
	r, err := Analyze(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Wires != 2 || r.Timing.CriticalPathTiles != 4 || r.Energy.SlowMEV <= 0 {
		t.Errorf("report: %+v", r)
	}
	if !strings.Contains(r.Timing.String(), "throughput") {
		t.Error("timing String() incomplete")
	}
	if !strings.Contains(r.Energy.String(), "meV") {
		t.Error("energy String() incomplete")
	}
}
