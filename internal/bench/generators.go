// Package bench provides the benchmark function suites distributed by
// MNT Bench: Trindade16, Fontes18, ISCAS85, and EPFL.
//
// Small functions (Trindade16, Fontes18, ISCAS85 c17) are reconstructed
// exactly from their published definitions. Regular EPFL circuits
// (adder, bar, dec, parity trees) are generated structurally. The
// remaining ISCAS85/EPFL circuits are distributed as external netlist
// files the paper does not reproduce; this package substitutes
// deterministic synthetic networks matching the published I/O and node
// counts (see DESIGN.md, substitution 3).
package bench

import (
	"fmt"

	"repro/internal/network"
)

// Mux21 builds the 2:1 multiplexer f = a if s=0 else b.
func Mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	n.AddPO(n.AddOr(n.AddAnd(a, n.AddNot(s)), n.AddAnd(b, s)), "f")
	return n
}

// Xor2 builds f = a ^ b in AOIG form.
func Xor2() *network.Network {
	n := network.New("xor2")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddAnd(n.AddOr(a, b), n.AddNot(n.AddAnd(a, b))), "f")
	return n
}

// Xnor2 builds f = ~(a ^ b) in AOIG form.
func Xnor2() *network.Network {
	n := network.New("xnor2")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddOr(n.AddAnd(a, b), n.AddAnd(n.AddNot(a), n.AddNot(b))), "f")
	return n
}

// HalfAdder builds sum = a^b, carry = a&b.
func HalfAdder() *network.Network {
	n := network.New("ha")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(a, b), "sum")
	n.AddPO(n.AddAnd(a, b), "carry")
	return n
}

// FullAdder builds the majority-based full adder.
func FullAdder() *network.Network {
	n := network.New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("cin")
	n.AddPO(n.AddXor(n.AddXor(a, b), c), "sum")
	n.AddPO(n.AddMaj(a, b, c), "cout")
	return n
}

// ParGen builds the 3-bit even-parity generator p = a^b^c.
func ParGen() *network.Network {
	n := network.New("par_gen")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	n.AddPO(n.AddXor(n.AddXor(a, b), c), "p")
	return n
}

// ParCheck builds the 4-bit parity checker err = a^b^c^p.
func ParCheck() *network.Network {
	n := network.New("par_check")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	p := n.AddPI("p")
	n.AddPO(n.AddXor(n.AddXor(a, b), n.AddXor(c, p)), "err")
	return n
}

// ParityTree builds the k-input XOR parity function as a balanced tree.
func ParityTree(name string, k int) *network.Network {
	n := network.New(name)
	var lvl []network.ID
	for i := 0; i < k; i++ {
		lvl = append(lvl, n.AddPI(fmt.Sprintf("x%d", i)))
	}
	for len(lvl) > 1 {
		var next []network.ID
		for i := 0; i+1 < len(lvl); i += 2 {
			next = append(next, n.AddXor(lvl[i], lvl[i+1]))
		}
		if len(lvl)%2 == 1 {
			next = append(next, lvl[len(lvl)-1])
		}
		lvl = next
	}
	n.AddPO(lvl[0], "p")
	return n
}

// Majority5 builds the 5-input majority function out of 3-input
// majorities: <abcde> = <ab<cd<abe>>> ... realized here by the standard
// expansion M5(a..e) = M3(M3(a,b,c), M3(a,d,e)... using the exact
// formula M5 = M3(e, M3(a,b,c), M3(d, M3(a,b,c)... For robustness the
// function is synthesized directly as a threshold count.
func Majority5() *network.Network {
	n := network.New("majority")
	var xs []network.ID
	for i := 0; i < 5; i++ {
		xs = append(xs, n.AddPI(fmt.Sprintf("x%d", i)))
	}
	// Median decomposition, verified exhaustively by TestMajority5:
	// M5(a,b,c,d,e) = M3( a, M3(b,c,d), M3(b, e, M3(a,c,d)) ).
	m3 := func(a, b, c network.ID) network.ID { return n.AddMaj(a, b, c) }
	t1 := m3(xs[1], xs[2], xs[3])
	t2 := m3(xs[1], xs[4], m3(xs[0], xs[2], xs[3]))
	n.AddPO(m3(xs[0], t1, t2), "maj")
	return n
}

// RippleCarryAdder builds a bits-wide ripple-carry adder: inputs a[i],
// b[i], outputs s[i] and the final carry. bits=128 reproduces the EPFL
// "adder" interface (256 inputs, 129 outputs).
func RippleCarryAdder(name string, bits int) *network.Network {
	n := network.New(name)
	as := make([]network.ID, bits)
	bs := make([]network.ID, bits)
	for i := 0; i < bits; i++ {
		as[i] = n.AddPI(fmt.Sprintf("a[%d]", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = n.AddPI(fmt.Sprintf("b[%d]", i))
	}
	var carry network.ID = network.Invalid
	for i := 0; i < bits; i++ {
		var sum network.ID
		if carry == network.Invalid {
			sum = n.AddXor(as[i], bs[i])
			carry = n.AddAnd(as[i], bs[i])
		} else {
			x := n.AddXor(as[i], bs[i])
			sum = n.AddXor(x, carry)
			carry = n.AddMaj(as[i], bs[i], carry)
		}
		n.AddPO(sum, fmt.Sprintf("s[%d]", i))
	}
	n.AddPO(carry, "cout")
	return n
}

// BarrelShifter builds a logical left barrel shifter over 2^stages data
// bits with `stages` shift-select inputs. stages=7 gives the EPFL "bar"
// interface (128 data + 7 select = 135 inputs, 128 outputs).
func BarrelShifter(name string, stages int) *network.Network {
	n := network.New(name)
	width := 1 << stages
	data := make([]network.ID, width)
	for i := 0; i < width; i++ {
		data[i] = n.AddPI(fmt.Sprintf("d[%d]", i))
	}
	sel := make([]network.ID, stages)
	for i := 0; i < stages; i++ {
		sel[i] = n.AddPI(fmt.Sprintf("s[%d]", i))
	}
	zero := n.AddConst(false)
	cur := data
	for st := 0; st < stages; st++ {
		shift := 1 << st
		next := make([]network.ID, width)
		notS := n.AddNot(sel[st])
		for i := 0; i < width; i++ {
			from := i - shift
			shifted := zero
			if from >= 0 {
				shifted = cur[from]
			}
			// next[i] = sel ? shifted : cur[i]
			next[i] = n.AddOr(n.AddAnd(cur[i], notS), n.AddAnd(shifted, sel[st]))
		}
		cur = next
	}
	for i := 0; i < width; i++ {
		n.AddPO(cur[i], fmt.Sprintf("q[%d]", i))
	}
	return n
}

// Decoder builds a k-to-2^k one-hot decoder. k=8 gives the EPFL "dec"
// interface (8 inputs, 256 outputs).
func Decoder(name string, k int) *network.Network {
	n := network.New(name)
	ins := make([]network.ID, k)
	for i := 0; i < k; i++ {
		ins[i] = n.AddPI(fmt.Sprintf("a[%d]", i))
	}
	negs := make([]network.ID, k)
	for i := 0; i < k; i++ {
		negs[i] = n.AddNot(ins[i])
	}
	// Tree of partial products per output.
	var build func(lits []network.ID) network.ID
	build = func(lits []network.ID) network.ID {
		if len(lits) == 1 {
			return lits[0]
		}
		mid := len(lits) / 2
		return n.AddAnd(build(lits[:mid]), build(lits[mid:]))
	}
	for v := 0; v < 1<<k; v++ {
		lits := make([]network.ID, k)
		for i := 0; i < k; i++ {
			if v&(1<<i) != 0 {
				lits[i] = ins[i]
			} else {
				lits[i] = negs[i]
			}
		}
		n.AddPO(build(lits), fmt.Sprintf("y[%d]", v))
	}
	return n
}

// PriorityEncoder builds a priority circuit over k request lines with
// ceil(log2(k))+1 outputs (index of the highest active line + valid).
func PriorityEncoder(name string, k int) *network.Network {
	n := network.New(name)
	req := make([]network.ID, k)
	for i := 0; i < k; i++ {
		req[i] = n.AddPI(fmt.Sprintf("r[%d]", i))
	}
	// grant[i] = req[i] & ~(req[i+1] | ... | req[k-1]) — highest index wins.
	any := req[k-1]
	grants := make([]network.ID, k)
	grants[k-1] = req[k-1]
	for i := k - 2; i >= 0; i-- {
		grants[i] = n.AddAnd(req[i], n.AddNot(any))
		any = n.AddOr(any, req[i])
	}
	bits := 0
	for 1<<bits < k {
		bits++
	}
	for b := 0; b < bits; b++ {
		var acc network.ID = network.Invalid
		for i := 0; i < k; i++ {
			if i&(1<<b) == 0 {
				continue
			}
			if acc == network.Invalid {
				acc = grants[i]
			} else {
				acc = n.AddOr(acc, grants[i])
			}
		}
		if acc == network.Invalid {
			acc = n.AddConst(false)
		}
		n.AddPO(acc, fmt.Sprintf("idx[%d]", b))
	}
	n.AddPO(any, "valid")
	return n
}

// C17 builds the ISCAS85 c17 benchmark exactly (six NAND gates).
func C17() *network.Network {
	n := network.New("c17")
	in1 := n.AddPI("1")
	in2 := n.AddPI("2")
	in3 := n.AddPI("3")
	in6 := n.AddPI("6")
	in7 := n.AddPI("7")
	g10 := n.AddNand(in1, in3)
	g11 := n.AddNand(in3, in6)
	g16 := n.AddNand(in2, g11)
	g19 := n.AddNand(g11, in7)
	n.AddPO(n.AddNand(g10, g16), "22")
	n.AddPO(n.AddNand(g16, g19), "23")
	return n
}
