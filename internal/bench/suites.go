package bench

import (
	"fmt"
	"strings"

	"repro/internal/network"
)

// Origin describes how a benchmark function was obtained in this
// reproduction.
type Origin uint8

const (
	// Reconstructed functions are built exactly from their published
	// definition (truth table / structure known from the literature).
	Reconstructed Origin = iota
	// Structural functions are regular circuits generated from their
	// specification (adders, shifters, decoders, parity trees).
	Structural
	// SyntheticOrigin functions are deterministic random DAGs matching
	// the published I/O and node counts of netlists that are distributed
	// as external files (see DESIGN.md, substitution 3).
	SyntheticOrigin
)

// String names the origin for reports.
func (o Origin) String() string {
	switch o {
	case Reconstructed:
		return "reconstructed"
	case Structural:
		return "structural"
	case SyntheticOrigin:
		return "synthetic"
	}
	return "unknown"
}

// Benchmark is one function of a benchmark suite.
type Benchmark struct {
	// Set is the suite name: "Trindade16", "Fontes18", "ISCAS85", "EPFL".
	Set string
	// Name is the function name as listed in MNT Bench.
	Name string
	// PubIn, PubOut, PubNodes are the I/O and node counts published in
	// the MNT Bench table (0 when not applicable).
	PubIn, PubOut, PubNodes int
	// Origin records the reproduction provenance.
	Origin Origin
	// Build constructs a fresh copy of the logic network.
	Build func() *network.Network
}

// Suites lists the four benchmark sets in paper order.
func Suites() []string {
	return []string{"Trindade16", "Fontes18", "ISCAS85", "EPFL"}
}

// All returns every benchmark in deterministic (paper) order.
func All() []Benchmark {
	return []Benchmark{
		// Trindade16 [11]: reconstructed from their published functions.
		{Set: "Trindade16", Name: "mux21", PubIn: 3, PubOut: 1, PubNodes: 4, Origin: Reconstructed, Build: Mux21},
		{Set: "Trindade16", Name: "xor2", PubIn: 2, PubOut: 1, PubNodes: 4, Origin: Reconstructed, Build: Xor2},
		{Set: "Trindade16", Name: "xnor2", PubIn: 2, PubOut: 1, PubNodes: 4, Origin: Reconstructed, Build: Xnor2},
		{Set: "Trindade16", Name: "ha", PubIn: 2, PubOut: 2, PubNodes: 6, Origin: Reconstructed, Build: HalfAdder},
		{Set: "Trindade16", Name: "fa", PubIn: 3, PubOut: 2, PubNodes: 5, Origin: Reconstructed, Build: FullAdder},
		{Set: "Trindade16", Name: "par_gen", PubIn: 3, PubOut: 1, PubNodes: 10, Origin: Reconstructed, Build: ParGen},
		{Set: "Trindade16", Name: "par_check", PubIn: 4, PubOut: 1, PubNodes: 15, Origin: Reconstructed, Build: ParCheck},

		// Fontes18 [12]: functions with fully specified structure are
		// reconstructed; the rest are synthetic stand-ins.
		{Set: "Fontes18", Name: "t", PubIn: 5, PubOut: 2, PubNodes: 11, Origin: SyntheticOrigin,
			Build: func() *network.Network { return Synthetic("t", 5, 2, 11, 0xF018_0001) }},
		{Set: "Fontes18", Name: "b1_r2", PubIn: 3, PubOut: 4, PubNodes: 12, Origin: SyntheticOrigin,
			Build: func() *network.Network { return Synthetic("b1_r2", 3, 4, 12, 0xF018_0002) }},
		{Set: "Fontes18", Name: "majority", PubIn: 5, PubOut: 1, PubNodes: 17, Origin: Reconstructed, Build: Majority5},
		{Set: "Fontes18", Name: "newtag", PubIn: 8, PubOut: 1, PubNodes: 17, Origin: SyntheticOrigin,
			Build: func() *network.Network { return Synthetic("newtag", 8, 1, 17, 0xF018_0003) }},
		{Set: "Fontes18", Name: "clpl", PubIn: 11, PubOut: 5, PubNodes: 10, Origin: SyntheticOrigin,
			Build: func() *network.Network { return Synthetic("clpl", 11, 5, 10, 0xF018_0004) }},
		{Set: "Fontes18", Name: "1bitAdderAOIG", PubIn: 3, PubOut: 2, PubNodes: 15, Origin: Reconstructed, Build: oneBitAdderAOIG},
		{Set: "Fontes18", Name: "1bitAdderMaj", PubIn: 3, PubOut: 2, PubNodes: 29, Origin: Reconstructed, Build: oneBitAdderMaj},
		{Set: "Fontes18", Name: "2bitAdderMaj", PubIn: 5, PubOut: 3, PubNodes: 54, Origin: Structural,
			Build: func() *network.Network { return twoBitAdderMaj() }},
		{Set: "Fontes18", Name: "xor5Maj", PubIn: 5, PubOut: 1, PubNodes: 70, Origin: Structural,
			Build: func() *network.Network { return ParityTree("xor5Maj", 5) }},
		{Set: "Fontes18", Name: "cm82a_5", PubIn: 5, PubOut: 3, PubNodes: 42, Origin: SyntheticOrigin,
			Build: func() *network.Network { return Synthetic("cm82a_5", 5, 3, 42, 0xF018_0005) }},
		{Set: "Fontes18", Name: "parity", PubIn: 16, PubOut: 1, PubNodes: 103, Origin: Structural,
			Build: func() *network.Network { return ParityTree("parity", 16) }},

		// ISCAS85 [13]: c17 is reconstructed exactly; the larger circuits
		// are synthetic stand-ins matching the published statistics.
		{Set: "ISCAS85", Name: "c17", PubIn: 5, PubOut: 2, PubNodes: 8, Origin: Reconstructed, Build: C17},
		iscas("c432", 36, 7, 414),
		iscas("c499", 41, 32, 816),
		iscas("c880", 60, 26, 639),
		iscas("c1355", 41, 32, 1064),
		iscas("c1908", 33, 25, 813),
		iscas("c2670", 233, 140, 1463),
		iscas("c3540", 50, 22, 1987),
		iscas("c5315", 178, 123, 3628),
		iscas("c6288", 32, 32, 6467),
		iscas("c7552", 207, 108, 4501),

		// EPFL [14]: regular circuits are generated structurally, the
		// control/arithmetic ones synthetically.
		epfl("ctrl", 7, 26, 409),
		epfl("router", 60, 30, 490),
		epfl("int2float", 11, 7, 545),
		epfl("cavlc", 10, 11, 1600),
		{Set: "EPFL", Name: "priority", PubIn: 128, PubOut: 8, PubNodes: 2349, Origin: Structural,
			Build: func() *network.Network { return PriorityEncoder("priority", 128) }},
		{Set: "EPFL", Name: "dec", PubIn: 8, PubOut: 256, PubNodes: 320, Origin: Structural,
			Build: func() *network.Network { return Decoder("dec", 8) }},
		epfl("i2c", 147, 142, 2728),
		{Set: "EPFL", Name: "adder", PubIn: 256, PubOut: 129, PubNodes: 2541, Origin: Structural,
			Build: func() *network.Network { return RippleCarryAdder("adder", 128) }},
		{Set: "EPFL", Name: "bar", PubIn: 135, PubOut: 128, PubNodes: 6672, Origin: Structural,
			Build: func() *network.Network { return BarrelShifter("bar", 7) }},
		epfl("max", 512, 130, 6110),
		epfl("sin", 24, 25, 11437),
	}
}

func iscas(name string, in, out, nodes int) Benchmark {
	return Benchmark{
		Set: "ISCAS85", Name: name, PubIn: in, PubOut: out, PubNodes: nodes,
		Origin: SyntheticOrigin,
		Build: func() *network.Network {
			return Synthetic(name, in, out, nodes, 0x15CA5_0000+hashName(name))
		},
	}
}

func epfl(name string, in, out, nodes int) Benchmark {
	return Benchmark{
		Set: "EPFL", Name: name, PubIn: in, PubOut: out, PubNodes: nodes,
		Origin: SyntheticOrigin,
		Build: func() *network.Network {
			return Synthetic(name, in, out, nodes, epflSeedBase+hashName(name))
		},
	}
}

const epflSeedBase = 0xE9F1_0000

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// BySet returns the benchmarks of one suite.
func BySet(set string) []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if strings.EqualFold(b.Set, set) {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds one benchmark by suite and function name.
func ByName(set, name string) (Benchmark, error) {
	for _, b := range All() {
		if strings.EqualFold(b.Set, set) && strings.EqualFold(b.Name, name) {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: no benchmark %s/%s", set, name)
}

// oneBitAdderAOIG is the full adder expressed with AND/OR/NOT only.
func oneBitAdderAOIG() *network.Network {
	n := FullAdder()
	n.Name = "1bitAdderAOIG"
	return mustDecompose(n, network.GateSet{network.And: true, network.Or: true, network.Not: true})
}

// mustDecompose rewrites a fixed seed network over a gate set known to
// be complete for it; failure is programmer error in the suite tables.
func mustDecompose(n *network.Network, set network.GateSet) *network.Network {
	if err := n.Decompose(set); err != nil {
		panic(err)
	}
	return n
}

// oneBitAdderMaj is the majority-based full adder.
func oneBitAdderMaj() *network.Network {
	n := FullAdder()
	n.Name = "1bitAdderMaj"
	return n
}

// twoBitAdderMaj is a two-bit ripple adder with majority carries.
func twoBitAdderMaj() *network.Network {
	n := network.New("2bitAdderMaj")
	a0 := n.AddPI("a0")
	b0 := n.AddPI("b0")
	a1 := n.AddPI("a1")
	b1 := n.AddPI("b1")
	cin := n.AddPI("cin")
	s0 := n.AddXor(n.AddXor(a0, b0), cin)
	c0 := n.AddMaj(a0, b0, cin)
	s1 := n.AddXor(n.AddXor(a1, b1), c0)
	c1 := n.AddMaj(a1, b1, c0)
	n.AddPO(s0, "s0")
	n.AddPO(s1, "s1")
	n.AddPO(c1, "cout")
	return n
}
