package bench

import (
	"fmt"

	"repro/internal/network"
)

// synthRNG is a deterministic xorshift64* generator so synthetic
// benchmarks are bit-identical across runs and platforms.
type synthRNG uint64

// mustSyntheticSpec validates the generator parameters; the suite
// definitions are static tables, so a bad spec is programmer error.
func mustSyntheticSpec(name string, pis, pos int) {
	if pis < 1 || pos < 1 {
		panic(fmt.Sprintf("bench: synthetic %q needs at least one PI and PO", name))
	}
}

func newSynthRNG(seed uint64) *synthRNG {
	r := synthRNG(seed*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D)
	return &r
}

func (r *synthRNG) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = synthRNG(x)
	return x * 0x2545F4914F6CDD1D
}

func (r *synthRNG) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Synthetic builds a deterministic pseudo-random combinational network
// with exactly the requested numbers of primary inputs, primary outputs,
// and logic nodes. Fanin selection is biased toward recently created
// signals (a locality window), mimicking the wirelength locality of real
// technology-mapped netlists; every PI is consumed, and POs are drawn
// from the most recently created gates.
//
// These networks substitute for the ISCAS85/EPFL netlist files that MNT
// Bench distributes but the paper does not contain; physical design
// algorithms only observe the DAG shape, so matching the published
// size statistics preserves the area/runtime scaling behaviour the
// benchmark tables report.
func Synthetic(name string, pis, pos, nodes int, seed uint64) *network.Network {
	mustSyntheticSpec(name, pis, pos)
	if nodes < pos {
		nodes = pos // enough distinct gate outputs to feed every PO
	}
	rng := newSynthRNG(seed)
	n := network.New(name)

	signals := make([]network.ID, 0, pis+nodes)
	for i := 0; i < pis; i++ {
		signals = append(signals, n.AddPI(fmt.Sprintf("in%d", i)))
	}

	const window = 48
	pick := func(created int) network.ID {
		// created = number of gates built so far; prefer recent signals.
		hi := len(signals)
		lo := hi - window
		if lo < 0 {
			lo = 0
		}
		// 1-in-8 long-range edge keeps the DAG connected across regions.
		if rng.intn(8) == 0 {
			return signals[rng.intn(hi)]
		}
		return signals[lo+rng.intn(hi-lo)]
	}

	gates2 := []network.Gate{network.And, network.Or, network.Xor, network.Nand, network.Nor, network.Xnor}
	for g := 0; g < nodes; g++ {
		var id network.ID
		switch {
		case g < pis:
			// The first gates consume each PI once so none is dangling.
			other := pick(g)
			id = n.AddGate(gates2[rng.intn(len(gates2))], signals[g], other)
		case rng.intn(6) == 0:
			id = n.AddNot(pick(g))
		default:
			a := pick(g)
			b := pick(g)
			id = n.AddGate(gates2[rng.intn(len(gates2))], a, b)
		}
		signals = append(signals, id)
	}

	// POs: the last `pos` gate outputs, newest last to keep indices stable.
	for i := 0; i < pos; i++ {
		idx := len(signals) - pos + i
		n.AddPO(signals[idx], fmt.Sprintf("out%d", i))
	}
	return n
}
