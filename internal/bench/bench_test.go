package bench

import (
	"testing"

	"repro/internal/network"
)

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Set+"/"+b.Name, func(t *testing.T) {
			n := b.Build()
			if err := n.Validate(); err != nil {
				t.Fatal(err)
			}
			if n.NumPIs() != b.PubIn {
				t.Errorf("PIs = %d, published %d", n.NumPIs(), b.PubIn)
			}
			if n.NumPOs() != b.PubOut {
				t.Errorf("POs = %d, published %d", n.NumPOs(), b.PubOut)
			}
			if b.Origin == SyntheticOrigin && n.NumLogicGates() != b.PubNodes {
				t.Errorf("synthetic node count = %d, want published %d", n.NumLogicGates(), b.PubNodes)
			}
		})
	}
}

func TestSuitesCoverPaperTable(t *testing.T) {
	counts := map[string]int{}
	for _, b := range All() {
		counts[b.Set]++
	}
	want := map[string]int{"Trindade16": 7, "Fontes18": 11, "ISCAS85": 11, "EPFL": 11}
	for set, w := range want {
		if counts[set] != w {
			t.Errorf("%s has %d functions, want %d", set, counts[set], w)
		}
	}
}

func TestMux21Function(t *testing.T) {
	n := Mux21()
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		a, b, s := r&1 != 0, r&2 != 0, r&4 != 0
		want := a
		if s {
			want = b
		}
		if tt[r][0] != want {
			t.Errorf("row %d", r)
		}
	}
}

func TestXorXnorComplement(t *testing.T) {
	x := Xor2()
	xn := Xnor2()
	tx, _ := x.TruthTable()
	txn, _ := xn.TruthTable()
	for r := range tx {
		if tx[r][0] == txn[r][0] {
			t.Errorf("xor and xnor agree on row %d", r)
		}
	}
}

func TestFullAdderFunction(t *testing.T) {
	n := FullAdder()
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		sum := (r & 1) + (r >> 1 & 1) + (r >> 2 & 1)
		if tt[r][0] != (sum%2 == 1) {
			t.Errorf("sum wrong at %d", r)
		}
		if tt[r][1] != (sum >= 2) {
			t.Errorf("carry wrong at %d", r)
		}
	}
}

func TestAdderVariantsEquivalent(t *testing.T) {
	a := oneBitAdderAOIG()
	m := oneBitAdderMaj()
	eq, err := network.Equivalent(a, m)
	if err != nil || !eq {
		t.Fatalf("AOIG and Maj adders differ: %v %v", eq, err)
	}
}

func TestMajority5Function(t *testing.T) {
	n := Majority5()
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 32; r++ {
		ones := 0
		for i := 0; i < 5; i++ {
			if r&(1<<i) != 0 {
				ones++
			}
		}
		if tt[r][0] != (ones >= 3) {
			t.Fatalf("majority wrong for %05b", r)
		}
	}
}

func TestParityTreeFunction(t *testing.T) {
	n := ParityTree("p8", 8)
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 256; r++ {
		ones := 0
		for i := 0; i < 8; i++ {
			if r&(1<<i) != 0 {
				ones++
			}
		}
		if tt[r][0] != (ones%2 == 1) {
			t.Fatalf("parity wrong for %08b", r)
		}
	}
}

func TestRippleCarryAdderFunction(t *testing.T) {
	n := RippleCarryAdder("add4", 4)
	if n.NumPIs() != 8 || n.NumPOs() != 5 {
		t.Fatalf("I/O = %d/%d", n.NumPIs(), n.NumPOs())
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a&(1<<i) != 0
				in[4+i] = b&(1<<i) != 0
			}
			out, err := n.Simulate(in)
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for i := 0; i < 5; i++ {
				if out[i] {
					got |= 1 << i
				}
			}
			if got != a+b {
				t.Fatalf("%d+%d = %d", a, b, got)
			}
		}
	}
}

func TestBarrelShifterFunction(t *testing.T) {
	n := BarrelShifter("bar3", 3) // 8 data bits, 3 select
	if n.NumPIs() != 11 || n.NumPOs() != 8 {
		t.Fatalf("I/O = %d/%d", n.NumPIs(), n.NumPOs())
	}
	for shift := 0; shift < 8; shift++ {
		data := 0b10110001
		in := make([]bool, 11)
		for i := 0; i < 8; i++ {
			in[i] = data&(1<<i) != 0
		}
		for i := 0; i < 3; i++ {
			in[8+i] = shift&(1<<i) != 0
		}
		out, err := n.Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := 0; i < 8; i++ {
			if out[i] {
				got |= 1 << i
			}
		}
		want := (data << shift) & 0xFF
		if got != want {
			t.Fatalf("shift %d: got %08b want %08b", shift, got, want)
		}
	}
}

func TestDecoderFunction(t *testing.T) {
	n := Decoder("dec3", 3)
	for v := 0; v < 8; v++ {
		in := make([]bool, 3)
		for i := 0; i < 3; i++ {
			in[i] = v&(1<<i) != 0
		}
		out, err := n.Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o < 8; o++ {
			if out[o] != (o == v) {
				t.Fatalf("dec(%d): output %d = %v", v, o, out[o])
			}
		}
	}
}

func TestPriorityEncoderFunction(t *testing.T) {
	n := PriorityEncoder("prio8", 8)
	if n.NumPIs() != 8 || n.NumPOs() != 4 {
		t.Fatalf("I/O = %d/%d", n.NumPIs(), n.NumPOs())
	}
	for v := 0; v < 256; v++ {
		in := make([]bool, 8)
		for i := 0; i < 8; i++ {
			in[i] = v&(1<<i) != 0
		}
		out, err := n.Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		if v == 0 {
			if out[3] {
				t.Fatal("valid asserted with no requests")
			}
			continue
		}
		hi := 7
		for v&(1<<hi) == 0 {
			hi--
		}
		got := 0
		for b := 0; b < 3; b++ {
			if out[b] {
				got |= 1 << b
			}
		}
		if got != hi || !out[3] {
			t.Fatalf("prio(%08b): got %d valid=%v, want %d", v, got, out[3], hi)
		}
	}
}

func TestC17Function(t *testing.T) {
	n := C17()
	// Reference: out22 = NAND(NAND(1,3), NAND(2, NAND(3,6)));
	//            out23 = NAND(NAND(2,NAND(3,6)), NAND(NAND(3,6),7)).
	tt, err := n.TruthTable()
	if err != nil {
		t.Fatal(err)
	}
	nand := func(a, b bool) bool { return !(a && b) }
	for r := 0; r < 32; r++ {
		i1, i2, i3, i6, i7 := r&1 != 0, r&2 != 0, r&4 != 0, r&8 != 0, r&16 != 0
		g11 := nand(i3, i6)
		g16 := nand(i2, g11)
		want22 := nand(nand(i1, i3), g16)
		want23 := nand(g16, nand(g11, i7))
		if tt[r][0] != want22 || tt[r][1] != want23 {
			t.Fatalf("c17 mismatch at row %d", r)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic("x", 5, 3, 40, 7)
	b := Synthetic("x", 5, 3, 40, 7)
	eq, err := network.Equivalent(a, b)
	if err != nil || !eq {
		t.Fatal("synthetic generation not deterministic")
	}
	c := Synthetic("x", 5, 3, 40, 8)
	eq, err = network.Equivalent(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Log("warning: different seeds produced equivalent networks (possible but unlikely)")
	}
}

func TestSyntheticNoDanglingPIs(t *testing.T) {
	n := Synthetic("x", 12, 4, 30, 3)
	counts := n.FanoutCounts()
	for _, pi := range n.PIs() {
		if counts[pi] == 0 {
			t.Errorf("PI %d dangling", pi)
		}
	}
}

func TestByNameAndBySet(t *testing.T) {
	b, err := ByName("iscas85", "C17")
	if err != nil || b.Name != "c17" {
		t.Fatalf("ByName case-insensitive lookup failed: %v", err)
	}
	if _, err := ByName("ISCAS85", "c99999"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
	if got := len(BySet("EPFL")); got != 11 {
		t.Errorf("BySet(EPFL) = %d", got)
	}
}
