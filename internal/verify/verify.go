// Package verify checks FCN gate-level layouts: design rules (clocking
// consistency, connectivity, port usage) and functional equivalence
// against a reference logic network via netlist extraction.
package verify

import (
	"errors"
	"fmt"

	"repro/internal/layout"
	"repro/internal/network"
)

// ErrDRC is the sentinel matched by errors.Is for any design-rule
// failure, regardless of which check produced it or how it was wrapped.
var ErrDRC = errors.New("design rule check failed")

// DRCReport lists the violations found in a layout.
type DRCReport struct {
	Violations []string
}

// OK reports whether the layout passed all design-rule checks.
func (r *DRCReport) OK() bool { return len(r.Violations) == 0 }

// Error converts the report into a *DRCError, or returns nil when clean.
// The result matches errors.Is(err, ErrDRC), and errors.As recovers the
// full report.
func (r *DRCReport) Error() error {
	if r.OK() {
		return nil
	}
	return &DRCError{Report: r}
}

// DRCError is the typed error carrying a failed DRCReport through error
// chains.
type DRCError struct {
	Report *DRCReport
}

// Error summarizes the report: the violation count and the first entry.
func (e *DRCError) Error() string {
	v := e.Report.Violations
	return fmt.Sprintf("verify: %d DRC violations, first: %s", len(v), v[0])
}

// Unwrap ties every DRCError to the ErrDRC sentinel.
func (e *DRCError) Unwrap() error { return ErrDRC }

func (r *DRCReport) addf(format string, args ...interface{}) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// CheckDesignRules validates the structural legality of a layout:
//
//   - every connection joins adjacent tiles whose clock zones increase by
//     exactly one (mod n) in dataflow direction,
//   - tile fanin counts match their function's arity (wires and fanouts
//     carry one input),
//   - fanout limits hold (wires drive at most one successor, fanout tiles
//     at most two, gates one),
//   - crossing-layer tiles sit above wires,
//   - PIs have no incoming and POs no outgoing connections.
func CheckDesignRules(l *layout.Layout) *DRCReport {
	r := &DRCReport{}
	for _, c := range l.Coords() {
		t := l.At(c)

		// Layer rules.
		if c.Z == 1 {
			if !t.IsWire() {
				r.addf("%v: non-wire %s on crossing layer", c, t.Fn)
			}
			ground := l.At(c.Ground())
			if ground == nil || !ground.IsWire() {
				r.addf("%v: crossing-layer wire not above a ground wire", c)
			}
		}

		// Arity rules.
		wantIn := t.Fn.Arity()
		switch t.Fn {
		case network.PI:
			wantIn = 0
		case network.PO:
			wantIn = 1
		}
		if t.IsWire() {
			wantIn = 1
		}
		if len(t.Incoming) != wantIn {
			r.addf("%v: %s has %d incoming signals, want %d", c, t.Fn, len(t.Incoming), wantIn)
		}

		// Fanout rules.
		outs := l.Outgoing(c)
		maxOut := 1
		switch {
		case t.Fn == network.PO:
			maxOut = 0
		case t.Fn == network.Fanout:
			maxOut = 2
		}
		if len(outs) > maxOut {
			r.addf("%v: %s drives %d successors, max %d", c, t.Fn, len(outs), maxOut)
		}

		// Adjacency and clocking rules for incoming connections.
		for _, src := range t.Incoming {
			st := l.At(src)
			if st == nil {
				r.addf("%v: incoming from empty tile %v", c, src)
				continue
			}
			if !layout.AdjacentXY(l.Topo, src, c) {
				r.addf("%v: incoming from non-adjacent tile %v", c, src)
			}
			want := (l.Zone(src) + 1) % l.Scheme.NumZones
			if l.Zone(c) != want {
				r.addf("%v (zone %d): incoming from %v (zone %d) violates clocking",
					c, l.Zone(c), src, l.Zone(src))
			}
		}
	}
	return r
}

// ExtractNetwork rebuilds the logic network a layout implements by
// following signal flow from PI tiles to PO tiles. Wire and fanout tiles
// are transparent; gate tiles become logic nodes. The resulting network's
// PI/PO order matches the deterministic tile order of the layout (name
// lookups should therefore go through signal names).
func ExtractNetwork(l *layout.Layout) (*network.Network, error) {
	n := network.New(l.Name)

	// value of a coordinate = the network node whose signal leaves that
	// tile. Computed lazily with cycle detection.
	value := make(map[layout.Coord]network.ID)
	visiting := make(map[layout.Coord]bool)

	var eval func(c layout.Coord) (network.ID, error)
	eval = func(c layout.Coord) (network.ID, error) {
		if id, ok := value[c]; ok {
			return id, nil
		}
		if visiting[c] {
			return network.Invalid, fmt.Errorf("verify: combinational cycle through %v", c)
		}
		visiting[c] = true
		defer delete(visiting, c)

		t := l.At(c)
		if t == nil {
			return network.Invalid, fmt.Errorf("verify: dangling reference to empty tile %v", c)
		}
		var id network.ID
		switch {
		case t.Fn == network.PI:
			return network.Invalid, fmt.Errorf("verify: PI %v reached during evaluation (must be pre-seeded)", c)
		case t.Fn == network.PO:
			return network.Invalid, fmt.Errorf("verify: PO %v used as a signal source", c)
		case t.IsWire() || t.Fn == network.Fanout || t.Fn == network.Buf:
			if len(t.Incoming) != 1 {
				return network.Invalid, fmt.Errorf("verify: wire %v has %d inputs", c, len(t.Incoming))
			}
			src, err := eval(t.Incoming[0])
			if err != nil {
				return network.Invalid, err
			}
			id = src // transparent
		case t.Fn == network.Const0 || t.Fn == network.Const1:
			id = n.AddConst(t.Fn == network.Const1)
		default:
			fanins := make([]network.ID, 0, len(t.Incoming))
			for _, in := range t.Incoming {
				src, err := eval(in)
				if err != nil {
					return network.Invalid, err
				}
				fanins = append(fanins, src)
			}
			if len(fanins) != t.Fn.Arity() {
				return network.Invalid, fmt.Errorf("verify: %s at %v has %d inputs, want %d",
					t.Fn, c, len(fanins), t.Fn.Arity())
			}
			id = n.AddGate(t.Fn, fanins...)
		}
		value[c] = id
		return id, nil
	}

	for _, c := range l.PITiles() {
		value[c] = n.AddPI(l.At(c).Name)
	}
	pos := l.POTiles()
	if len(pos) == 0 {
		return nil, fmt.Errorf("verify: layout %q has no PO tiles", l.Name)
	}
	for _, c := range pos {
		t := l.At(c)
		if len(t.Incoming) != 1 {
			return nil, fmt.Errorf("verify: PO %v has %d inputs", c, len(t.Incoming))
		}
		id, err := eval(t.Incoming[0])
		if err != nil {
			return nil, err
		}
		n.AddPO(id, t.Name)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Equivalent checks that the layout implements the reference network:
// the extracted netlist must match the reference function under the PI/PO
// correspondence given by signal names (all reference PIs and POs must
// appear as named tiles).
func Equivalent(l *layout.Layout, ref *network.Network) (bool, error) {
	ext, err := ExtractNetwork(l)
	if err != nil {
		return false, err
	}
	aligned, err := alignTo(ext, ref)
	if err != nil {
		return false, err
	}
	return network.Equivalent(ref, aligned)
}

// alignTo reorders the PIs and POs of n (by signal name) to match ref's
// order, returning a rebuilt network.
func alignTo(n, ref *network.Network) (*network.Network, error) {
	piByName := make(map[string]int)
	for i, pi := range n.PIs() {
		piByName[n.NameOf(pi)] = i
	}
	poByName := make(map[string]int)
	for i, po := range n.POs() {
		poByName[n.NameOf(po)] = i
	}
	if len(piByName) != n.NumPIs() {
		return nil, fmt.Errorf("verify: duplicate PI names in extracted network")
	}
	if len(poByName) != n.NumPOs() {
		return nil, fmt.Errorf("verify: duplicate PO names in extracted network")
	}

	out := network.New(n.Name)
	oldToNew := make(map[network.ID]network.ID)

	// PIs in reference order.
	for _, rpi := range ref.PIs() {
		name := ref.NameOf(rpi)
		idx, ok := piByName[name]
		if !ok {
			return nil, fmt.Errorf("verify: extracted network lacks PI %q", name)
		}
		oldToNew[n.PIs()[idx]] = out.AddPI(name)
	}
	if len(ref.PIs()) != n.NumPIs() {
		return nil, fmt.Errorf("verify: PI count mismatch: extracted %d, reference %d", n.NumPIs(), ref.NumPIs())
	}

	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		nd := n.Node(id)
		if !nd.Fn.IsLogic() {
			continue
		}
		fanins := make([]network.ID, len(nd.Fanins))
		for i, f := range nd.Fanins {
			nf, ok := oldToNew[f]
			if !ok {
				return nil, fmt.Errorf("verify: internal error: unmapped fanin %d", f)
			}
			fanins[i] = nf
		}
		oldToNew[id] = out.AddGate(nd.Fn, fanins...)
	}
	for _, rpo := range ref.POs() {
		name := ref.NameOf(rpo)
		idx, ok := poByName[name]
		if !ok {
			return nil, fmt.Errorf("verify: extracted network lacks PO %q", name)
		}
		po := n.POs()[idx]
		drv, ok := oldToNew[n.Fanins(po)[0]]
		if !ok {
			return nil, fmt.Errorf("verify: internal error: unmapped PO driver")
		}
		out.AddPO(drv, name)
	}
	if len(ref.POs()) != n.NumPOs() {
		return nil, fmt.Errorf("verify: PO count mismatch: extracted %d, reference %d", n.NumPOs(), ref.NumPOs())
	}
	return out, nil
}

// Check runs both design-rule checking and equivalence checking and
// returns a single error describing the first problem found.
func Check(l *layout.Layout, ref *network.Network) error {
	if err := CheckDesignRules(l).Error(); err != nil {
		return err
	}
	eq, err := Equivalent(l, ref)
	if err != nil {
		return err
	}
	if !eq {
		return fmt.Errorf("verify: layout %q is not equivalent to its reference network", l.Name)
	}
	return nil
}

// CheckBorderIO reports violations of the fabrication-oriented rule that
// every primary input and output tile must lie on the layout's bounding
// box border, where external wiring can reach it. MNT Bench's
// exact-generated layouts follow this rule; heuristic flows may not, so
// it is a separate check rather than part of CheckDesignRules.
func CheckBorderIO(l *layout.Layout) *DRCReport {
	r := &DRCReport{}
	w, h := l.BoundingBox()
	border := func(c layout.Coord) bool {
		return c.X == 0 || c.Y == 0 || c.X == w-1 || c.Y == h-1
	}
	for _, c := range l.PITiles() {
		if !border(c) {
			r.addf("%v: PI %q not on the layout border", c, l.At(c).Name)
		}
	}
	for _, c := range l.POTiles() {
		if !border(c) {
			r.addf("%v: PO %q not on the layout border", c, l.At(c).Name)
		}
	}
	return r
}

// CheckStraightCrossings verifies the technology constraint that the two
// wires of a crossing pass straight through each other: at every
// position occupied on both layers, each layer's incoming and outgoing
// tiles must lie on opposite sides (collinear through the crossing).
// Bends above another wire are electrically ambiguous in both QCA and
// SiDB implementations.
func CheckStraightCrossings(l *layout.Layout) *DRCReport {
	r := &DRCReport{}
	for _, c := range l.Coords() {
		if c.Z != 1 {
			continue
		}
		ground := l.At(c.Ground())
		if ground == nil || !ground.IsWire() {
			continue // caught by CheckDesignRules
		}
		for _, pos := range []layout.Coord{c, c.Ground()} {
			t := l.At(pos)
			if t == nil || !t.IsWire() {
				continue
			}
			outs := l.Outgoing(pos)
			if len(t.Incoming) != 1 || len(outs) != 1 {
				continue
			}
			in, out := t.Incoming[0], outs[0]
			// Straight means the X and Y displacements cancel.
			if in.X+out.X != 2*pos.X || in.Y+out.Y != 2*pos.Y {
				r.addf("%v: crossing wire bends (in %v, out %v)", pos, in, out)
			}
		}
	}
	return r
}

// WireLengthStats summarizes the routed wire lengths of a layout: the
// number of logical connections, their total wire-tile count, and the
// longest single connection.
type WireLengthStats struct {
	Connections int
	TotalWires  int
	Longest     int
}

// ComputeWireLengths traces every gate-to-gate connection through its
// wire chain.
func ComputeWireLengths(l *layout.Layout) (WireLengthStats, error) {
	var s WireLengthStats
	for _, c := range l.Coords() {
		t := l.At(c)
		if t.IsWire() {
			continue
		}
		for _, in := range t.Incoming {
			n := 0
			cur := in
			for {
				ct := l.At(cur)
				if ct == nil {
					return s, fmt.Errorf("verify: dangling wire chain into %v", c)
				}
				if !ct.IsWire() {
					break
				}
				n++
				if len(ct.Incoming) != 1 {
					return s, fmt.Errorf("verify: wire %v has %d inputs", cur, len(ct.Incoming))
				}
				cur = ct.Incoming[0]
			}
			s.Connections++
			s.TotalWires += n
			if n > s.Longest {
				s.Longest = n
			}
		}
	}
	return s, nil
}
