package verify

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
)

// buildNotChain lays out f = ~a by hand: PI -> NOT -> PO in a row.
func buildNotChain() (*layout.Layout, *network.Network) {
	l := layout.New("inv", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Not, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})

	n := network.New("inv")
	a := n.AddPI("a")
	n.AddPO(n.AddNot(a), "f")
	return l, n
}

func TestCheckDesignRulesClean(t *testing.T) {
	l, _ := buildNotChain()
	r := CheckDesignRules(l)
	if !r.OK() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if r.Error() != nil {
		t.Fatal("Error() non-nil on clean report")
	}
}

func TestDRCErrorTyped(t *testing.T) {
	l := layout.New("bad", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})
	report := CheckDesignRules(l)
	err := report.Error()
	if err == nil {
		t.Fatal("Error() nil on a failing report")
	}
	// The sentinel survives wrapping.
	wrapped := fmt.Errorf("flow xyz: %w", err)
	if !errors.Is(wrapped, ErrDRC) {
		t.Error("errors.Is(wrapped, ErrDRC) = false")
	}
	// errors.As recovers the full report.
	var de *DRCError
	if !errors.As(wrapped, &de) {
		t.Fatal("errors.As(wrapped, *DRCError) = false")
	}
	if de.Report != report {
		t.Error("DRCError does not carry the originating report")
	}
	if !strings.Contains(err.Error(), "DRC violations") {
		t.Errorf("unexpected message: %s", err.Error())
	}
}

func TestCheckDesignRulesClockingViolation(t *testing.T) {
	l := layout.New("bad", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PI, Name: "a"})
	// Westward connection: zone decreases — illegal.
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})
	r := CheckDesignRules(l)
	if r.OK() {
		t.Fatal("accepted clocking violation")
	}
	found := false
	for _, v := range r.Violations {
		if strings.Contains(v, "violates clocking") {
			found = true
		}
	}
	if !found {
		t.Errorf("wrong violations: %v", r.Violations)
	}
}

func TestCheckDesignRulesNonAdjacent(t *testing.T) {
	l := layout.New("bad", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(2, 2), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(0, 0)}})
	r := CheckDesignRules(l)
	ok := false
	for _, v := range r.Violations {
		if strings.Contains(v, "non-adjacent") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("missing non-adjacency violation: %v", r.Violations)
	}
}

func TestCheckDesignRulesArity(t *testing.T) {
	l := layout.New("bad", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	// AND with a single input.
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.And, Incoming: []layout.Coord{layout.C(0, 0)}})
	r := CheckDesignRules(l)
	ok := false
	for _, v := range r.Violations {
		if strings.Contains(v, "incoming signals") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("missing arity violation: %v", r.Violations)
	}
}

func TestCheckDesignRulesFanoutLimit(t *testing.T) {
	l := layout.New("bad", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.PI, Name: "a"})
	// A PI driving two successors directly (no fanout tile).
	l.MustPlace(layout.C(2, 1), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 1)}})
	l.MustPlace(layout.C(1, 2), layout.Tile{Fn: network.PO, Name: "g", Incoming: []layout.Coord{layout.C(1, 1)}})
	r := CheckDesignRules(l)
	ok := false
	for _, v := range r.Violations {
		if strings.Contains(v, "drives") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("missing fanout violation: %v", r.Violations)
	}
}

func TestCheckDesignRulesCrossingAboveNothing(t *testing.T) {
	l := layout.New("bad", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(3, 3).Above(), layout.Tile{Fn: network.Buf, Wire: true, Incoming: nil})
	r := CheckDesignRules(l)
	ok := false
	for _, v := range r.Violations {
		if strings.Contains(v, "not above a ground wire") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("missing crossing violation: %v", r.Violations)
	}
}

func TestExtractNetwork(t *testing.T) {
	l, ref := buildNotChain()
	ext, err := ExtractNetwork(l)
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumPIs() != 1 || ext.NumPOs() != 1 {
		t.Fatalf("I/O = %d/%d", ext.NumPIs(), ext.NumPOs())
	}
	eq, err := network.Equivalent(ref, ext)
	if err != nil || !eq {
		t.Fatalf("extracted network differs: %v %v", eq, err)
	}
}

func TestExtractNetworkFanoutTransparent(t *testing.T) {
	l := layout.New("fan", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Fanout, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.PO, Name: "g", Incoming: []layout.Coord{layout.C(1, 0)}})
	ext, err := ExtractNetwork(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := ext.NumLogicGates(); got != 0 {
		t.Errorf("fanout not transparent: %d gates", got)
	}
}

func TestEquivalentDetectsWrongFunction(t *testing.T) {
	l, _ := buildNotChain()
	wrong := network.New("buf")
	a := wrong.AddPI("a")
	wrong.AddPO(wrong.AddBuf(a), "f") // buffer instead of inverter
	eq, err := Equivalent(l, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("NOT layout reported equivalent to BUF network")
	}
}

func TestEquivalentMatchesByName(t *testing.T) {
	// Layout PO order differs from network PO order; names must align them.
	l := layout.New("two", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(2, 1), layout.Tile{Fn: network.PI, Name: "b"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Not, Incoming: []layout.Coord{layout.C(0, 0)}})
	// PO "g" (= ~a) appears at a smaller coordinate than PO "f" (= b).
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PO, Name: "g", Incoming: []layout.Coord{layout.C(1, 0)}})
	l.MustPlace(layout.C(3, 1), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(2, 1)}})

	n := network.New("two")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(b, "f")
	n.AddPO(n.AddNot(a), "g")

	eq, err := Equivalent(l, n)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("name-aligned equivalence failed")
	}
}

func TestEquivalentMissingPO(t *testing.T) {
	l, _ := buildNotChain()
	n := network.New("inv")
	a := n.AddPI("a")
	n.AddPO(n.AddNot(a), "different_name")
	if _, err := Equivalent(l, n); err == nil {
		t.Fatal("accepted mismatched PO names")
	}
}

func TestCheckCombined(t *testing.T) {
	l, ref := buildNotChain()
	if err := Check(l, ref); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBorderIO(t *testing.T) {
	l := layout.New("b", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.Not, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 2), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 1)}})
	if r := CheckBorderIO(l); !r.OK() {
		t.Errorf("corner I/O flagged: %v", r.Violations)
	}
	// Grow the box so the PO is interior.
	l.MustPlace(layout.C(4, 4), layout.Tile{Fn: network.Buf, Wire: true})
	r := CheckBorderIO(l)
	if r.OK() {
		t.Fatal("interior PO not flagged")
	}
	if !strings.Contains(r.Violations[0], "PO") {
		t.Errorf("violations: %v", r.Violations)
	}
}

func TestCheckStraightCrossings(t *testing.T) {
	l := layout.New("x", layout.Cartesian, clocking.TwoDDWave)
	// Ground wire west->east through (1,1); upper wire north->south.
	l.MustPlace(layout.C(0, 1), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 1), layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(0, 1)}})
	l.MustPlace(layout.C(2, 1), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 1)}})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PI, Name: "b"})
	up := layout.Coord{X: 1, Y: 1, Z: 1}
	l.MustPlace(up, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{layout.C(1, 0)}})
	l.MustPlace(layout.C(1, 2), layout.Tile{Fn: network.PO, Name: "g", Incoming: []layout.Coord{up}})
	if r := CheckStraightCrossings(l); !r.OK() {
		t.Fatalf("straight crossing flagged: %v", r.Violations)
	}
	// Bend the upper wire: incoming north, outgoing east.
	if err := l.Disconnect(up, layout.C(1, 2)); err != nil {
		t.Fatal(err)
	}
	l.MustPlace(layout.C(2, 2), layout.Tile{Fn: network.PO, Name: "h"})
	// Upper wire feeding (2,1)? occupied; connect bend to a fresh tile.
	l.MustPlace(layout.Coord{X: 2, Y: 1, Z: 1}, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{up}})
	r := CheckStraightCrossings(l)
	if r.OK() {
		t.Fatal("bending crossing not flagged")
	}
}

func TestComputeWireLengths(t *testing.T) {
	l := layout.New("w", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	prev := layout.C(0, 0)
	for x := 1; x <= 3; x++ {
		c := layout.C(x, 0)
		l.MustPlace(c, layout.Tile{Fn: network.Buf, Wire: true, Incoming: []layout.Coord{prev}})
		prev = c
	}
	l.MustPlace(layout.C(4, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{prev}})
	s, err := ComputeWireLengths(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.Connections != 1 || s.TotalWires != 3 || s.Longest != 3 {
		t.Errorf("stats: %+v", s)
	}
}
