package verify

import (
	"testing"

	"repro/internal/fgl"
	"repro/internal/verilog"
)

// The realistic seed inputs (a mux21 layout produced by the ortho flow,
// paired with matching and mismatching Verilog) live as static corpus
// files under testdata/fuzz/ — computing them here with ortho.Place
// would stall the fuzz workers, which re-run the seed setup on every
// process restart.

// FuzzExtractNetwork checks that netlist extraction never panics on any
// parseable layout, and that on DRC-clean layouts the extracted network
// is equivalent to the layout it came from (the extraction/simulation
// agreement property the conformance oracle relies on).
func FuzzExtractNetwork(f *testing.F) {
	f.Add(`<fgl><version>1.0</version><layout><name>x</name><topology>cartesian</topology><size><x>1</x><y>1</y><z>1</z></size><clocking><name>2DDWave</name></clocking></layout></fgl>`)
	f.Add("<fgl>")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		l, err := fgl.ReadString(src)
		if err != nil {
			return
		}
		if l.NumTiles() > 512 || l.Area() > 16384 {
			return // keep per-input work bounded
		}
		n, err := ExtractNetwork(l)
		if err != nil {
			return
		}
		if n.NumPIs() > 10 {
			return // truth-table equivalence is exponential in PIs
		}
		if !CheckDesignRules(l).OK() {
			return
		}
		eq, err := Equivalent(l, n)
		if err != nil {
			t.Fatalf("layout not equivalent to its own extraction: %v", err)
		}
		if !eq {
			t.Fatal("DRC-clean layout disagrees with its own extracted network")
		}
	})
}

// FuzzEquivalent checks the differential entry point never panics when
// fed arbitrary parseable layout/network pairs — the exact situation
// `mntbench verify` is in with user-supplied files.
func FuzzEquivalent(f *testing.F) {
	f.Add("", "")
	f.Add("<fgl>", "module m(a, f); input a; output f; assign f = ~a; endmodule")
	f.Fuzz(func(t *testing.T, fglSrc, vSrc string) {
		l, err := fgl.ReadString(fglSrc)
		if err != nil {
			return
		}
		if l.NumTiles() > 512 || l.Area() > 16384 {
			return
		}
		ref, err := verilog.ParseString(vSrc)
		if err != nil {
			return
		}
		if ref.NumPIs() > 10 {
			return
		}
		// Neither outcome is wrong for arbitrary pairs — the property is
		// "no panic, typed errors only".
		_, _ = Equivalent(l, ref)
		_ = Check(l, ref)
	})
}
