package obs

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalAppendRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	j := NewJournal(&buf, reg)
	env := Environment()
	j.Append(Event{Type: EventCampaignStart, Campaign: "c1", Schema: JournalSchema,
		Library: "qcaone", Benchmarks: 2, Total: 4, Workers: 2, Env: &env})
	j.Append(Event{Type: EventJobStart, Campaign: "c1", Job: 1,
		Set: "Trindade16", Benchmark: "mux21", Flow: "ortho-2ddwave", Worker: "w00"})
	j.Append(Event{Type: EventJobDone, Campaign: "c1", Job: 1,
		Set: "Trindade16", Benchmark: "mux21", Flow: "ortho-2ddwave", Worker: "w00",
		Outcome: "ok", ElapsedUS: 1500, Width: 4, Height: 5, Area: 20, Verified: true,
		StagesUS: map[string]int64{"place": 1200}})
	j.Append(Event{Type: EventCampaignDone, Campaign: "c1", Done: 1, Entries: 1,
		Outcomes: map[string]int{"ok": 1}})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	events, truncated, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if truncated {
		t.Error("clean journal reported as truncated")
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Time == 0 {
			t.Errorf("event %d: no timestamp", i)
		}
	}
	if events[0].Type != EventCampaignStart || events[0].Env == nil || events[0].Env.GoVersion == "" {
		t.Errorf("campaign_start malformed: %+v", events[0])
	}
	if events[2].Area != 20 || !events[2].Verified || events[2].StagesUS["place"] != 1200 {
		t.Errorf("job_done round-trip lost fields: %+v", events[2])
	}
	if got := reg.Counter(MetricJournalEvents, L("type", "job_done")).Value(); got != 1 {
		t.Errorf("job_done counter = %d, want 1", got)
	}
	if got := reg.Counter(MetricJournalEvents, L("type", "campaign_start")).Value(); got != 1 {
		t.Errorf("campaign_start counter = %d, want 1", got)
	}
}

func TestJournalAppendAfterCloseIsNoop(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, NewRegistry())
	j.Append(Event{Type: EventCampaignStart, Campaign: "c1"})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	before := buf.Len()
	j.Append(Event{Type: EventCampaignDone, Campaign: "c1"})
	if buf.Len() != before {
		t.Error("Append after Close wrote bytes")
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	e := j.Append(Event{Type: EventJobStart})
	if e.Type != EventJobStart {
		t.Error("nil Append mangled the event")
	}
	if err := j.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if j.Recovered() {
		t.Error("nil Recovered() = true")
	}
	ch, cancel := j.Subscribe(4)
	cancel()
	if _, ok := <-ch; ok {
		t.Error("nil journal subscription delivered an event")
	}
}

// TestOpenJournalRecoversTruncatedTail simulates a crash mid-write: the
// final line is cut in half. OpenJournal must drop the damaged tail,
// keep every complete event, and continue the sequence numbering.
func TestOpenJournalRecoversTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: EventCampaignStart, Campaign: "c1", Schema: JournalSchema, Total: 2})
	j.Append(Event{Type: EventJobStart, Campaign: "c1", Job: 1, Set: "s", Benchmark: "b", Flow: "f"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the final line mid-JSON, as a crash between flushes would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, NewRegistry())
	if err != nil {
		t.Fatalf("OpenJournal on damaged file: %v", err)
	}
	if !j2.Recovered() {
		t.Error("Recovered() = false after tail truncation")
	}
	j2.Append(Event{Type: EventJobStart, Campaign: "c1", Job: 2, Set: "s", Benchmark: "b", Flow: "g"})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	events, truncated, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("ReadJournalFile after recovery: %v", err)
	}
	if truncated {
		t.Error("recovered journal still reads as truncated")
	}
	if len(events) != 2 {
		t.Fatalf("got %d events after recovery, want 2 (damaged line dropped)", len(events))
	}
	// Sequence numbering continues from the last surviving event.
	if events[1].Seq != 2 || events[1].Job != 2 {
		t.Errorf("appended event after recovery: seq=%d job=%d, want seq=2 job=2", events[1].Seq, events[1].Job)
	}
}

func TestReadJournalTruncatedFinalLine(t *testing.T) {
	clean := `{"seq":1,"type":"campaign_start","campaign":"c1","schema":1}` + "\n"
	damaged := clean + `{"seq":2,"type":"job_st`
	events, truncated, err := ReadJournal(strings.NewReader(damaged))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if !truncated {
		t.Error("cut-short final line not reported as truncated")
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}

	// A complete but unparseable final line is the same crash signature
	// (the torn bytes happened to include the newline).
	damaged2 := clean + `{"seq":2,"type":` + "\n"
	_, truncated2, err := ReadJournal(strings.NewReader(damaged2))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if !truncated2 {
		t.Error("unparseable final line not reported as truncated")
	}
}

func TestReadJournalMidFileCorruptionIsError(t *testing.T) {
	body := `{"seq":1,"type":"campaign_start","campaign":"c1","schema":1}` + "\n" +
		`garbage not json` + "\n" +
		`{"seq":3,"type":"campaign_done","campaign":"c1"}` + "\n"
	if _, _, err := ReadJournal(strings.NewReader(body)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestReadJournalRejectsNewerSchema(t *testing.T) {
	body := fmt.Sprintf(`{"seq":1,"type":"campaign_start","campaign":"c1","schema":%d}`+"\n", JournalSchema+1)
	if _, _, err := ReadJournal(strings.NewReader(body)); err == nil {
		t.Fatal("newer-schema journal accepted")
	}
}

func TestJournalSubscribeBroadcastAndDrop(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(nil, reg) // broadcast-only
	ch, cancel := j.Subscribe(2)
	defer cancel()

	j.Append(Event{Type: EventJobStart, Job: 1})
	j.Append(Event{Type: EventJobStart, Job: 2})
	// Buffer is full: this one is dropped for the slow subscriber.
	j.Append(Event{Type: EventJobStart, Job: 3})

	if got := reg.Counter(MetricJournalDropped).Value(); got != 1 {
		t.Errorf("dropped counter = %d, want 1", got)
	}
	if e := <-ch; e.Job != 1 {
		t.Errorf("first delivered job = %d, want 1", e.Job)
	}
	if e := <-ch; e.Job != 2 {
		t.Errorf("second delivered job = %d, want 2", e.Job)
	}

	// Close ends the subscription.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch; ok {
		t.Error("channel still open after journal Close")
	}
	cancel() // idempotent after Close
}

func TestJournalConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, NewRegistry())
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Append(Event{Type: EventJobStart, Job: w*per + i + 1})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, truncated, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil || truncated {
		t.Fatalf("ReadJournal: err=%v truncated=%v", err, truncated)
	}
	if len(events) != writers*per {
		t.Fatalf("got %d events, want %d", len(events), writers*per)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: appends interleaved mid-line", i, e.Seq)
		}
	}
}

func TestEventsHandlerStreamsSSE(t *testing.T) {
	j := NewJournal(nil, NewRegistry())
	defer j.Close()
	srv := httptest.NewServer(j.EventsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	// The handler greets with a comment line; reading it proves the
	// subscription is live before we append.
	greeting, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(greeting, ":") {
		t.Fatalf("greeting %q is not an SSE comment", greeting)
	}

	j.Append(Event{Type: EventJobDone, Campaign: "c1", Job: 7, Outcome: "ok"})

	readLine := func() string {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		return strings.TrimRight(line, "\n")
	}
	var eventLine, dataLine string
	for {
		l := readLine()
		if strings.HasPrefix(l, "event: ") {
			eventLine = l
			dataLine = readLine()
			break
		}
	}
	if eventLine != "event: job_done" {
		t.Errorf("event line %q", eventLine)
	}
	if !strings.HasPrefix(dataLine, "data: ") || !strings.Contains(dataLine, `"campaign":"c1"`) {
		t.Errorf("data line %q", dataLine)
	}
}

func TestEventsHandlerNilJournal(t *testing.T) {
	var j *Journal
	rec := httptest.NewRecorder()
	j.EventsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/events", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

func TestJournalPeriodicFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.jsonl")
	j, err := OpenJournal(path, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Job-level events buffer; campaign-level events flush immediately.
	j.Append(Event{Type: EventCampaignStart, Campaign: "c1", Schema: JournalSchema})
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("campaign_start not flushed to disk")
	}
	j.Append(Event{Type: EventJobStart, Campaign: "c1", Job: 1})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Size() <= st.Size() {
		t.Error("explicit Flush did not write the buffered job event")
	}
}

func TestEnvironmentStamp(t *testing.T) {
	e := Environment()
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" || e.NumCPU <= 0 {
		t.Fatalf("incomplete environment stamp: %+v", e)
	}
	if e != Environment() {
		t.Error("Environment() is not deterministic within a process")
	}
}

func TestCorrelationContext(t *testing.T) {
	if got := CorrelationFrom(nil); got != (Correlation{}) {
		t.Errorf("nil ctx correlation = %+v", got)
	}
	ctx := WithCorrelation(context.Background(), Correlation{Campaign: "c9", Job: 3})
	if got := CorrelationFrom(ctx); got.Campaign != "c9" || got.Job != 3 {
		t.Errorf("correlation round-trip = %+v", got)
	}
	if JournalFrom(context.Background()) != nil {
		t.Error("JournalFrom without a journal is non-nil")
	}
	j := NewJournal(nil, NewRegistry())
	defer j.Close()
	if JournalFrom(WithJournal(context.Background(), j)) != j {
		t.Error("JournalFrom lost the journal")
	}
}

// TestJournalSubscribeConcurrentWithClose exercises the subscription
// lifecycle under the race detector: appends, subscribes, cancels, and
// Close racing freely must neither deadlock nor double-close channels.
func TestJournalSubscribeConcurrentWithClose(t *testing.T) {
	j := NewJournal(nil, NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ch, cancel := j.Subscribe(1)
				j.Append(Event{Type: EventJobStart, Job: i})
				// Drain whatever arrived before unsubscribing.
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("subscription churn deadlocked")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
