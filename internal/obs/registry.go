// Package obs is the stdlib-only instrumentation layer of the MNT Bench
// engine: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms), a leveled structured logger (key=value or
// JSON), lightweight spans that time pipeline stages, and exporters for
// the Prometheus text format and a JSON dump. Every generation campaign,
// physical design stage, and HTTP request is recorded here so that
// performance work has a measured baseline.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {Key: "stage", Value: "place.ortho"}.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes the three metric types of a family.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond HTTP handlers to multi-minute exact placement runs.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Registry holds metric families keyed by name. All methods are safe for
// concurrent use; the returned Counter/Gauge/Histogram handles are
// likewise safe and may be cached by callers.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	help     map[string]string
}

// family is one named metric with a fixed kind and a set of label series.
type family struct {
	name    string
	kind    Kind
	buckets []float64 // histogram upper bounds, ascending (histograms only)

	mu     sync.RWMutex
	series map[string]*metric
}

// metric is one (family, label set) time series.
type metric struct {
	labels []Label
	bits   atomic.Uint64 // counter count, or gauge float64 bits
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		help:     make(map[string]string),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used whenever a context
// carries no explicit registry.
func Default() *Registry { return defaultRegistry }

// Help sets the HELP text exported for a metric name.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// family returns the named family, creating it with the given kind on
// first use. Requesting an existing family under a different kind is a
// programming error and panics.
func (r *Registry) family(name string, kind Kind, buckets []float64) *family {
	mustMetricName(name)
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]*metric)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	f.mustKind(kind)
	return f
}

// mustMetricName rejects empty family names, which would merge distinct
// metrics into one unnamed series.
func mustMetricName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
}

// mustKind asserts a family is requested under the kind it was
// registered with; mixing kinds is a programming error.
func (f *family) mustKind(kind Kind) {
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", f.name, f.kind, kind))
	}
}

// signature canonicalizes a label set: sorted by key, joined with
// unprintable separators so values cannot collide.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(0x1f)
		sb.WriteString(l.Value)
		sb.WriteByte(0x1e)
	}
	return sb.String()
}

// sortLabels returns a copy of labels sorted by key.
func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (f *family) metric(labels []Label) *metric {
	labels = sortLabels(labels)
	sig := signature(labels)
	f.mu.RLock()
	m := f.series[sig]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m = f.series[sig]; m == nil {
		m = &metric{labels: labels}
		if f.kind == KindHistogram {
			m.hist = newHistogram(f.buckets)
		}
		f.series[sig] = m
	}
	return m
}

// Reset drops every series of the named family (the family itself and
// its kind survive). Used for info-style gauges whose label set changes,
// e.g. the campaign's current benchmark.
func (r *Registry) Reset(name string) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	f.series = make(map[string]*metric)
	f.mu.Unlock()
}

// Counter returns the counter series for the given name and labels,
// creating it at zero on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return &Counter{m: r.family(name, KindCounter, nil).metric(labels)}
}

// Gauge returns the gauge series for the given name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return &Gauge{m: r.family(name, KindGauge, nil).metric(labels)}
}

// Histogram returns the histogram series for the given name and labels.
// buckets are ascending upper bounds in the observed unit (seconds for
// latencies); they are fixed on first use of the name, later calls may
// pass nil. A nil bucket slice on first use selects DefBuckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	m := r.family(name, KindHistogram, buckets).metric(labels)
	return m.hist
}

// Counter is a monotonically increasing count.
type Counter struct{ m *metric }

// Inc adds one.
func (c *Counter) Inc() { c.m.bits.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.m.bits.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.m.bits.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ m *metric }

// Set stores v.
func (g *Gauge) Set(v float64) { g.m.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one, atomically; the counterpart Dec subtracts one. They are
// the idiomatic pair for in-flight style gauges.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one, atomically.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.m.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, non-cumulative
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot returns a consistent copy of the histogram state with
// cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.bounds)),
		Count:   h.count,
		Sum:     h.sum,
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Buckets[i] = Bucket{UpperBound: b, Count: cum}
	}
	return s
}

// Bucket is one cumulative histogram bucket: Count observations were
// less than or equal to UpperBound.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets []Bucket // cumulative, ascending; excludes the implicit +Inf bucket
	Count   uint64
	Sum     float64
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket. Values beyond the last
// finite bound are clamped to it.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var prevCum uint64
	lower := 0.0
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			span := float64(b.Count - prevCum)
			if span == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(prevCum)) / span
			return lower + frac*(b.UpperBound-lower)
		}
		prevCum = b.Count
		lower = b.UpperBound
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// SeriesSnapshot is one labeled series within a family snapshot.
type SeriesSnapshot struct {
	Labels    []Label
	Value     float64            // counters and gauges
	Histogram *HistogramSnapshot // histograms only
}

// FamilySnapshot is a point-in-time copy of one metric family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnapshot
}

// Snapshot copies the whole registry, families sorted by name and series
// sorted by label signature, ready for export or reporting.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(names))
	for _, name := range names {
		fams[name] = r.families[name]
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()
	sort.Strings(names)

	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		f := fams[name]
		fs := FamilySnapshot{Name: name, Help: help[name], Kind: f.kind}
		f.mu.RLock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			m := f.series[sig]
			ss := SeriesSnapshot{Labels: m.labels}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(m.bits.Load())
			case KindGauge:
				ss.Value = math.Float64frombits(m.bits.Load())
			case KindHistogram:
				h := m.hist.Snapshot()
				ss.Histogram = &h
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}
