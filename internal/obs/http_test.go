package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRecordsRequests(t *testing.T) {
	reg := NewRegistry()
	h := Middleware(reg, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok"))
	}))

	for _, path := range []string{"/api/benchmarks?set=EPFL", "/api/filters", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}

	if got := reg.Counter(MetricHTTPRequests, L("route", "/api"), L("code", "200")).Value(); got != 2 {
		t.Errorf("/api 200 count = %d, want 2", got)
	}
	if got := reg.Counter(MetricHTTPRequests, L("route", "/missing"), L("code", "404")).Value(); got != 1 {
		t.Errorf("/missing 404 count = %d, want 1", got)
	}
	if s := reg.Histogram(MetricHTTPDuration, nil, L("route", "/api")).Snapshot(); s.Count != 2 {
		t.Errorf("latency histogram count = %d, want 2", s.Count)
	}
	if v := reg.Gauge(MetricHTTPInFlight).Value(); v != 0 {
		t.Errorf("in-flight gauge = %v after requests drained", v)
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	h := reg.MetricsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("prometheus body: %s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"x_total"`) {
		t.Errorf("json body: %s", rec.Body.String())
	}
}

// Streaming handlers behind Middleware need Flush to pass through;
// http.ResponseController relies on Unwrap.
var _ http.Flusher = (*statusWriter)(nil)

func TestStatusWriterFlushAndUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	sw.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if sw.code != http.StatusOK {
		t.Errorf("Flush before WriteHeader left code %d, want 200", sw.code)
	}
	if sw.Unwrap() != rec {
		t.Error("Unwrap does not expose the underlying writer")
	}

	// Through the middleware, handlers still see a flushable writer.
	flushed := false
	h := Middleware(NewRegistry(), nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		w.Write([]byte("chunk"))
		f.Flush()
		flushed = true
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !flushed || !rec.Flushed {
		t.Errorf("flush through middleware: handler %v recorder %v", flushed, rec.Flushed)
	}
}

// Middleware runs each request under an "http" root span, so an enabled
// trace store on the request context retains request traces — failed
// (5xx) ones always.
func TestMiddlewareTracing(t *testing.T) {
	ts := NewTraceStore(TracePolicy{})
	reg := NewRegistry()
	h := Middleware(reg, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		_, sp := StartSpan(r.Context(), "render")
		sp.End()
		w.Write([]byte("ok"))
	}))
	for _, path := range []string{"/api/benchmarks", "/boom"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req = req.WithContext(WithTraces(context.Background(), ts))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}

	snap := ts.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("retained %d traces, want 2", len(snap))
	}
	var okTrace, failTrace *Trace
	for _, tr := range snap {
		if tr.Root != "http" {
			t.Fatalf("root = %q, want http", tr.Root)
		}
		if tr.Failed {
			failTrace = tr
		} else {
			okTrace = tr
		}
	}
	if failTrace == nil || okTrace == nil {
		t.Fatal("expected one ok and one failed request trace")
	}
	attrs := failTrace.RootAttrs()
	if attrs["method"] != "GET" || attrs["path"] != "/boom" || attrs["code"] != "500" {
		t.Errorf("failed request attrs = %v", attrs)
	}
	if okTrace.findEvent("render") == nil {
		t.Error("handler span missing from request trace")
	}
}

func TestMetricsHandlerJSONIsValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", L("name", "he said \"hi\"\\\n")).Inc()
	reg.Histogram("h_seconds", nil).Observe(0.5)
	rec := httptest.NewRecorder()
	reg.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	body := rec.Body.Bytes()
	if !json.Valid(body) {
		t.Fatalf("?format=json body is not valid JSON: %s", body)
	}
	var out map[string]struct {
		Type   string `json:"type"`
		Series []struct {
			Labels map[string]string `json:"labels"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out["x_total"].Type != "counter" || len(out["x_total"].Series) != 1 {
		t.Errorf("x_total = %+v", out["x_total"])
	}
	// Awkward label values survive the JSON path byte-for-byte.
	if got := out["x_total"].Series[0].Labels["name"]; got != "he said \"hi\"\\\n" {
		t.Errorf("label round-trip = %q", got)
	}
}

func TestHealthz(t *testing.T) {
	rec := httptest.NewRecorder()
	Healthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestDefaultRoute(t *testing.T) {
	for path, want := range map[string]string{
		"/":                    "/",
		"":                     "/",
		"/metrics":             "/metrics",
		"/download/a__b.fgl":   "/download",
		"/api/benchmarks":      "/api",
		"/debug/pprof/profile": "/debug",
	} {
		r := httptest.NewRequest(http.MethodGet, "http://x"+path, nil)
		r.URL.Path = path
		if got := DefaultRoute(r); got != want {
			t.Errorf("DefaultRoute(%q) = %q, want %q", path, got, want)
		}
	}
}
