package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRecordsRequests(t *testing.T) {
	reg := NewRegistry()
	h := Middleware(reg, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok"))
	}))

	for _, path := range []string{"/api/benchmarks?set=EPFL", "/api/filters", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}

	if got := reg.Counter(MetricHTTPRequests, L("route", "/api"), L("code", "200")).Value(); got != 2 {
		t.Errorf("/api 200 count = %d, want 2", got)
	}
	if got := reg.Counter(MetricHTTPRequests, L("route", "/missing"), L("code", "404")).Value(); got != 1 {
		t.Errorf("/missing 404 count = %d, want 1", got)
	}
	if s := reg.Histogram(MetricHTTPDuration, nil, L("route", "/api")).Snapshot(); s.Count != 2 {
		t.Errorf("latency histogram count = %d, want 2", s.Count)
	}
	if v := reg.Gauge(MetricHTTPInFlight).Value(); v != 0 {
		t.Errorf("in-flight gauge = %v after requests drained", v)
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	h := reg.MetricsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("prometheus body: %s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"x_total"`) {
		t.Errorf("json body: %s", rec.Body.String())
	}
}

func TestHealthz(t *testing.T) {
	rec := httptest.NewRecorder()
	Healthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestDefaultRoute(t *testing.T) {
	for path, want := range map[string]string{
		"/":                    "/",
		"":                     "/",
		"/metrics":             "/metrics",
		"/download/a__b.fgl":   "/download",
		"/api/benchmarks":      "/api",
		"/debug/pprof/profile": "/debug",
	} {
		r := httptest.NewRequest(http.MethodGet, "http://x"+path, nil)
		r.URL.Path = path
		if got := DefaultRoute(r); got != want {
			t.Errorf("DefaultRoute(%q) = %q, want %q", path, got, want)
		}
	}
}
