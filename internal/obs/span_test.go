package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpanRecordsHistogram(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	_, sp := StartSpan(ctx, "place.ortho")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("End returned %v", d)
	}
	s := reg.Histogram(SpanMetric, nil, L("stage", "place.ortho")).Snapshot()
	if s.Count != 1 {
		t.Errorf("stage histogram count = %d, want 1", s.Count)
	}
	if s.Sum < 0.001 {
		t.Errorf("recorded duration %v too small", s.Sum)
	}
	// End is idempotent: a second call records nothing.
	if again := sp.End(); again != 0 {
		t.Errorf("second End returned %v", again)
	}
	if s2 := reg.Histogram(SpanMetric, nil, L("stage", "place.ortho")).Snapshot(); s2.Count != 1 {
		t.Errorf("double End double-counted: %d", s2.Count)
	}
}

func TestSpanNestingPath(t *testing.T) {
	var buf syncBuffer
	log := NewLogger(&buf, LevelDebug, false)
	reg := NewRegistry()
	ctx := WithLogger(WithRegistry(context.Background(), reg), log)

	ctx, flow := StartSpan(ctx, "flow")
	ctx2, place := StartSpan(ctx, "place")
	_, inner := StartSpan(ctx2, "route")
	if got := inner.Path(); got != "flow.place.route" {
		t.Errorf("nested path = %q", got)
	}
	inner.End()
	place.End()
	flow.End()
	out := buf.String()
	if !strings.Contains(out, "span=flow.place.route") {
		t.Errorf("log missing dotted path: %s", out)
	}
	// The histogram is labeled by leaf stage name only.
	if s := reg.Histogram(SpanMetric, nil, L("stage", "route")).Snapshot(); s.Count != 1 {
		t.Errorf("leaf stage not recorded: %d", s.Count)
	}
}

func TestSpanErrorLogsWarn(t *testing.T) {
	var buf syncBuffer
	log := NewLogger(&buf, LevelWarn, false) // debug suppressed, warn visible
	ctx := WithLogger(WithRegistry(context.Background(), NewRegistry()), log)
	_, sp := StartSpan(ctx, "drc")
	sp.SetError(errors.New("3 violations"))
	sp.End()
	out := buf.String()
	if !strings.Contains(out, "WARN") || !strings.Contains(out, "3 violations") {
		t.Errorf("failed span not logged at warn: %q", out)
	}
}

// TestSpanEndConcurrent races End from several goroutines per span:
// exactly one call must record the duration (and return it); run with
// -race to check the flag.
func TestSpanEndConcurrent(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	const spans = 50
	const enders = 4
	var nonzero atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < spans; i++ {
		_, sp := StartSpan(ctx, "timeout.race")
		for e := 0; e < enders; e++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if sp.End() > 0 {
					nonzero.Add(1)
				}
			}()
		}
	}
	wg.Wait()
	if got := nonzero.Load(); got != spans {
		t.Errorf("%d End calls returned a duration, want %d", got, spans)
	}
	if s := reg.Histogram(SpanMetric, nil, L("stage", "timeout.race")).Snapshot(); s.Count != spans {
		t.Errorf("histogram count = %d, want %d", s.Count, spans)
	}
}

func TestContextFallbacks(t *testing.T) {
	if RegistryFrom(nil) != Default() {
		t.Error("nil ctx must fall back to the default registry")
	}
	if RegistryFrom(context.Background()) != Default() {
		t.Error("plain ctx must fall back to the default registry")
	}
	if LoggerFrom(nil) != DefaultLogger() {
		t.Error("nil ctx must fall back to the default logger")
	}
	reg := NewRegistry()
	if RegistryFrom(WithRegistry(context.Background(), reg)) != reg {
		t.Error("WithRegistry not honored")
	}
	// Nil-span helpers must not crash.
	var s *Span
	s.SetError(errors.New("x"))
	if s.End() != 0 || s.Name() != "" || s.Path() != "" || s.Duration() != 0 {
		t.Error("nil span helpers misbehave")
	}
	// StartSpan tolerates a nil context.
	_, sp := StartSpan(nil, "x") //nolint:staticcheck
	sp.End()
}
