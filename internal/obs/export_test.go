package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition output for a
// small registry covering all three kinds.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Help("flows_total", "Flows run, by outcome.")
	reg.Counter("flows_total", L("outcome", "ok")).Add(3)
	reg.Counter("flows_total", L("outcome", "timeout")).Inc()
	reg.Gauge("done").Set(4)
	h := reg.Histogram("dur_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE done gauge
done 4
# TYPE dur_seconds histogram
dur_seconds_bucket{le="0.1"} 1
dur_seconds_bucket{le="1"} 2
dur_seconds_bucket{le="+Inf"} 3
dur_seconds_sum 2.55
dur_seconds_count 3
# HELP flows_total Flows run, by outcome.
# TYPE flows_total counter
flows_total{outcome="ok"} 3
flows_total{outcome="timeout"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", L("name", `he said "hi"\`+"\n")).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `{name="he said \"hi\"\\\n"}`) {
		t.Errorf("label not escaped: %s", sb.String())
	}
}

// unescapeLabel inverts escapeLabel for the round-trip test below.
func unescapeLabel(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				sb.WriteByte('\\')
				sb.WriteByte(s[i])
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// TestEscapeLabelRoundTrip checks that every mix of quote, backslash,
// and newline survives escape+unescape unchanged — i.e. the exposition
// escaping is lossless and unambiguous.
func TestEscapeLabelRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`he said "hi"`,
		`back\slash`,
		"line1\nline2",
		`trailing\`,
		"\n",
		`\n`, // literal backslash-n must stay distinct from a newline
		`"`, `\"`, `\\`,
		"mix\\\"\nof\\nall",
		"",
	}
	for _, v := range values {
		esc := escapeLabel(v)
		if strings.ContainsRune(esc, '\n') {
			t.Errorf("escapeLabel(%q) leaves a raw newline: %q", v, esc)
		}
		if got := unescapeLabel(esc); got != v {
			t.Errorf("round trip %q -> %q -> %q", v, esc, got)
		}
	}
	// Distinct inputs must escape to distinct outputs.
	seen := map[string]string{}
	for _, v := range values {
		esc := escapeLabel(v)
		if prev, dup := seen[esc]; dup {
			t.Errorf("escape collision: %q and %q both -> %q", prev, v, esc)
		}
		seen[esc] = v
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("flows_total", L("outcome", "ok")).Add(2)
	reg.Histogram("dur_seconds", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type   string `json:"type"`
		Series []struct {
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Count   *uint64           `json:"count"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("JSON dump does not parse: %v\n%s", err, sb.String())
	}
	ft := out["flows_total"]
	if ft.Type != "counter" || len(ft.Series) != 1 || ft.Series[0].Value == nil || *ft.Series[0].Value != 2 {
		t.Errorf("flows_total dump: %+v", ft)
	}
	if ft.Series[0].Labels["outcome"] != "ok" {
		t.Errorf("labels: %v", ft.Series[0].Labels)
	}
	ds := out["dur_seconds"]
	if ds.Type != "histogram" || len(ds.Series) != 1 || ds.Series[0].Count == nil || *ds.Series[0].Count != 1 {
		t.Errorf("dur_seconds dump: %+v", ds)
	}
	if ds.Series[0].Buckets["1"] != 1 || ds.Series[0].Buckets["+Inf"] != 1 {
		t.Errorf("buckets: %v", ds.Series[0].Buckets)
	}
}
