package obs

import (
	"context"
	"time"
)

// SpanMetric is the histogram family into which every span records its
// duration, labeled by stage (the span name).
const SpanMetric = "mntbench_stage_duration_seconds"

type ctxKey int

const (
	ctxSpanKey ctxKey = iota
	ctxRegistryKey
	ctxLoggerKey
)

// WithRegistry returns a context whose spans and instrumented callees
// record into reg instead of the default registry.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, ctxRegistryKey, reg)
}

// RegistryFrom returns the context's registry, falling back to Default.
// A nil context is allowed.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx != nil {
		if reg, ok := ctx.Value(ctxRegistryKey).(*Registry); ok && reg != nil {
			return reg
		}
	}
	return Default()
}

// WithLogger returns a context whose spans and instrumented callees log
// through l instead of the default logger.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, ctxLoggerKey, l)
}

// LoggerFrom returns the context's logger, falling back to the default
// logger. A nil context is allowed.
func LoggerFrom(ctx context.Context) *Logger {
	if ctx != nil {
		if l, ok := ctx.Value(ctxLoggerKey).(*Logger); ok && l != nil {
			return l
		}
	}
	return DefaultLogger()
}

// Span times one pipeline stage. Spans nest through the context: a span
// started under another span carries the dotted path of its ancestors in
// log records, while the duration histogram is labeled with the leaf
// name only (bounded cardinality).
type Span struct {
	name   string
	path   string // dotted ancestry, e.g. "flow.place.ortho"
	labels []Label
	start  time.Time
	reg    *Registry
	log    *Logger
	err    error
	ended  bool
}

// StartSpan begins a span named name (the stage label) and returns a
// derived context under which child spans nest. Extra labels are added
// to the duration histogram series; keep their cardinality small. A nil
// ctx is treated as context.Background().
func StartSpan(ctx context.Context, name string, labels ...Label) (context.Context, *Span) {
	if ctx == nil {
		//lint:ignore ctxfirst documented fallback: a nil ctx means "no caller context", per the doc comment
		ctx = context.Background()
	}
	s := &Span{
		name:   name,
		path:   name,
		labels: labels,
		start:  time.Now(),
		reg:    RegistryFrom(ctx),
		log:    LoggerFrom(ctx),
	}
	if parent, ok := ctx.Value(ctxSpanKey).(*Span); ok && parent != nil {
		s.path = parent.path + "." + name
	}
	return context.WithValue(ctx, ctxSpanKey, s), s
}

// SetError attaches an error to the span; End logs it at warn level.
func (s *Span) SetError(err error) {
	if s != nil {
		s.err = err
	}
}

// End stops the span, records its duration into the stage histogram, and
// emits a debug (or warn, on error) log record. End is idempotent; the
// first call's duration is returned.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return 0
	}
	s.ended = true
	labels := append([]Label{L("stage", s.name)}, s.labels...)
	s.reg.Histogram(SpanMetric, nil, labels...).ObserveDuration(d)
	if s.err != nil {
		if s.log.Enabled(LevelWarn) {
			s.log.Warn("span", "span", s.path, "duration", d.Round(time.Microsecond), "err", s.err)
		}
	} else if s.log.Enabled(LevelDebug) {
		s.log.Debug("span", "span", s.path, "duration", d.Round(time.Microsecond))
	}
	return d
}

// Duration returns the elapsed time since the span started; for an
// ended span, prefer the value returned by End.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// Name returns the span's leaf name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the dotted ancestry path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}
