package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// SpanMetric is the histogram family into which every span records its
// duration, labeled by stage (the span name).
const SpanMetric = "mntbench_stage_duration_seconds"

type ctxKey int

const (
	ctxSpanKey ctxKey = iota
	ctxRegistryKey
	ctxLoggerKey
	ctxTracesKey
	ctxJournalKey
	ctxCorrelationKey
)

// WithRegistry returns a context whose spans and instrumented callees
// record into reg instead of the default registry.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, ctxRegistryKey, reg)
}

// RegistryFrom returns the context's registry, falling back to Default.
// A nil context is allowed.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx != nil {
		if reg, ok := ctx.Value(ctxRegistryKey).(*Registry); ok && reg != nil {
			return reg
		}
	}
	return Default()
}

// WithLogger returns a context whose spans and instrumented callees log
// through l instead of the default logger.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, ctxLoggerKey, l)
}

// LoggerFrom returns the context's logger, falling back to the default
// logger. A nil context is allowed.
func LoggerFrom(ctx context.Context) *Logger {
	if ctx != nil {
		if l, ok := ctx.Value(ctxLoggerKey).(*Logger); ok && l != nil {
			return l
		}
	}
	return DefaultLogger()
}

// Span times one pipeline stage. Spans nest through the context: a span
// started under another span carries the dotted path of its ancestors in
// log records, while the duration histogram is labeled with the leaf
// name only (bounded cardinality). When the context's TraceStore is
// enabled, a span with no parent opens a trace and its descendants
// record themselves as events of that trace.
type Span struct {
	name   string
	path   string // dotted ancestry, e.g. "flow.place.ortho"
	labels []Label
	annots []Label // trace-only attributes; see Annotate
	start  time.Time
	reg    *Registry
	log    *Logger
	err    error
	ended  atomic.Bool
	trace  *traceRec
	event  int // event ID within trace; meaningless when trace is nil
	root   bool
}

// StartSpan begins a span named name (the stage label) and returns a
// derived context under which child spans nest. Extra labels are added
// to the duration histogram series; keep their cardinality small. A nil
// ctx is treated as context.Background().
func StartSpan(ctx context.Context, name string, labels ...Label) (context.Context, *Span) {
	if ctx == nil {
		//lint:ignore ctxfirst documented fallback: a nil ctx means "no caller context", per the doc comment
		ctx = context.Background()
	}
	s := &Span{
		name:   name,
		path:   name,
		labels: labels,
		start:  time.Now(),
		reg:    RegistryFrom(ctx),
		log:    LoggerFrom(ctx),
		event:  -1,
	}
	if parent, ok := ctx.Value(ctxSpanKey).(*Span); ok && parent != nil {
		s.path = parent.path + "." + name
		if parent.trace != nil && parent.event >= 0 {
			if id := parent.trace.startEvent(parent.event, name, s.path, s.start); id >= 0 {
				s.trace, s.event = parent.trace, id
			}
		}
	} else if ts := TracesFrom(ctx); ts.Enabled() {
		s.trace = ts.newTrace()
		s.root = true
		s.event = s.trace.startEvent(-1, name, s.path, s.start)
	}
	return context.WithValue(ctx, ctxSpanKey, s), s
}

// SetError attaches an error to the span; End logs it at warn level and
// marks the span's trace as failed.
func (s *Span) SetError(err error) {
	if s != nil {
		s.err = err
	}
}

// Annotate attaches a trace-only attribute to the span. Unlike metric
// labels, annotation values may be unbounded (benchmark names, flow
// IDs, request paths): they appear in the span's trace event and in
// trace exports, but never create metric series. A no-op on nil and on
// untraced spans.
func (s *Span) Annotate(key, value string) {
	if s == nil || s.trace == nil {
		return
	}
	s.annots = append(s.annots, Label{Key: key, Value: value})
}

// attrs merges the span's metric labels and annotations for its trace
// event; nil when there are none.
func (s *Span) attrs() map[string]string {
	if len(s.labels)+len(s.annots) == 0 {
		return nil
	}
	m := make(map[string]string, len(s.labels)+len(s.annots))
	for _, l := range s.labels {
		m[l.Key] = l.Value
	}
	for _, l := range s.annots {
		m[l.Key] = l.Value
	}
	return m
}

// End stops the span, records its duration into the stage histogram,
// emits a debug (or warn, on error) log record, and — for traced spans
// — records the trace event, sealing the trace when the span is a
// root. End is idempotent and safe to race from multiple goroutines
// (e.g. a timeout-cancel path and its worker): exactly one caller
// records the duration and that call returns it; every other call
// returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if !s.ended.CompareAndSwap(false, true) {
		return 0
	}
	d := time.Since(s.start)
	labels := append([]Label{L("stage", s.name)}, s.labels...)
	s.reg.Histogram(SpanMetric, nil, labels...).ObserveDuration(d)
	if s.err != nil {
		if s.log.Enabled(LevelWarn) {
			s.log.Warn("span", "span", s.path, "duration", d.Round(time.Microsecond), "err", s.err)
		}
	} else if s.log.Enabled(LevelDebug) {
		s.log.Debug("span", "span", s.path, "duration", d.Round(time.Microsecond))
	}
	if s.trace != nil {
		s.trace.endEvent(s.event, d, s.attrs(), s.err)
		if s.root {
			s.trace.complete(s.name, s.start, d)
		}
	}
	return d
}

// Duration returns the elapsed time since the span started; for an
// ended span, prefer the value returned by End.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// Name returns the span's leaf name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the dotted ancestry path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}
