package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log records by severity.
type Level int32

// The log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("Level(%d)", int32(l))
}

// ParseLevel parses a level name as accepted by the -log-level flag.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Logger writes leveled, structured records either as key=value text or
// as one JSON object per line. A nil *Logger discards everything, so
// optional wiring never needs nil checks. Safe for concurrent use.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	json  bool
	base  []any // bound key-value pairs, prepended to every record
}

// NewLogger returns a logger writing records at or above level to w.
// jsonFormat selects JSON lines instead of key=value text.
func NewLogger(w io.Writer, level Level, jsonFormat bool) *Logger {
	l := &Logger{w: w, json: jsonFormat}
	l.level.Store(int32(level))
	return l
}

var defaultLogger atomic.Pointer[Logger]

func init() { defaultLogger.Store(NewLogger(os.Stderr, LevelInfo, false)) }

// DefaultLogger returns the process-wide logger.
func DefaultLogger() *Logger { return defaultLogger.Load() }

// SetDefaultLogger replaces the process-wide logger (nil resets to a
// discard-free stderr info logger).
func SetDefaultLogger(l *Logger) {
	if l == nil {
		l = NewLogger(os.Stderr, LevelInfo, false)
	}
	defaultLogger.Store(l)
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// With returns a logger that prepends the given key-value pairs to every
// record, sharing the writer and level with the receiver.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	nl := &Logger{w: l.w, json: l.json, base: append(append([]any{}, l.base...), kv...)}
	nl.level.Store(l.level.Load())
	return nl
}

// Debug emits a debug record with alternating key-value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info record.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error emits an error record.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	pairs := make([]any, 0, len(l.base)+len(kv))
	pairs = append(pairs, l.base...)
	pairs = append(pairs, kv...)

	var line []byte
	if l.json {
		line = appendJSONRecord(ts, level, msg, pairs)
	} else {
		line = appendTextRecord(ts, level, msg, pairs)
	}
	l.mu.Lock()
	l.w.Write(line) //nolint:errcheck // logging is best-effort
	l.mu.Unlock()
}

func appendTextRecord(ts string, level Level, msg string, pairs []any) []byte {
	var sb strings.Builder
	sb.WriteString(ts)
	sb.WriteByte(' ')
	sb.WriteString(strings.ToUpper(level.String()))
	sb.WriteByte(' ')
	sb.WriteString(msg)
	for i := 0; i < len(pairs); i += 2 {
		sb.WriteByte(' ')
		sb.WriteString(pairKey(pairs, i))
		sb.WriteByte('=')
		sb.WriteString(textValue(pairValue(pairs, i)))
	}
	sb.WriteByte('\n')
	return []byte(sb.String())
}

func appendJSONRecord(ts string, level Level, msg string, pairs []any) []byte {
	var sb strings.Builder
	sb.WriteString(`{"ts":`)
	sb.WriteString(jsonString(ts))
	sb.WriteString(`,"level":`)
	sb.WriteString(jsonString(level.String()))
	sb.WriteString(`,"msg":`)
	sb.WriteString(jsonString(msg))
	for i := 0; i < len(pairs); i += 2 {
		sb.WriteByte(',')
		sb.WriteString(jsonString(pairKey(pairs, i)))
		sb.WriteByte(':')
		sb.WriteString(jsonValue(pairValue(pairs, i)))
	}
	sb.WriteString("}\n")
	return []byte(sb.String())
}

// pairKey returns the key at index i, tolerating non-string keys and a
// trailing value-less key.
func pairKey(pairs []any, i int) string {
	if s, ok := pairs[i].(string); ok {
		return s
	}
	return fmt.Sprint(pairs[i])
}

func pairValue(pairs []any, i int) any {
	if i+1 >= len(pairs) {
		return "(MISSING)"
	}
	return pairs[i+1]
}

// textValue renders a value for key=value output, quoting only when the
// text contains spaces, quotes, or '='.
func textValue(v any) string {
	s := plainValue(v)
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

// jsonValue renders a value as a JSON token, keeping numbers and
// booleans bare.
func jsonValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(x)
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64:
		return fmt.Sprint(x)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
	return jsonString(plainValue(v))
}

func plainValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return x
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprint(v)
}

func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}
