package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Metric families recorded by Middleware.
const (
	MetricHTTPRequests  = "mntbench_http_requests_total"
	MetricHTTPDuration  = "mntbench_http_request_duration_seconds"
	MetricHTTPInFlight  = "mntbench_http_requests_in_flight"
	MetricHTTPRespBytes = "mntbench_http_response_size_bytes"
)

// RespSizeBuckets are the response-size histogram bounds in bytes,
// spanning a JSON error body through a multi-megabyte ZIP bundle.
var RespSizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// MetricsHandler serves the registry: Prometheus text format by default,
// the JSON dump with ?format=json.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Healthz is a liveness handler: always 200 {"status":"ok"}.
func Healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// DefaultRoute normalizes a request path to a bounded-cardinality route
// label: the first path segment ("/download/x.fgl" -> "/download").
func DefaultRoute(r *http.Request) string {
	p := r.URL.Path
	if p == "" || p == "/" {
		return "/"
	}
	rest := strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return "/" + rest
}

// statusLabel renders a response code as a metric label value; HTTP
// status codes form a small closed set.
//
//lint:bounded
func statusLabel(code int) string { return strconv.Itoa(code) }

// routeLabel applies the route mapper, which must produce a
// bounded-cardinality label by contract (DefaultRoute, the default,
// collapses any path to its first segment).
//
//lint:bounded
func routeLabel(route func(*http.Request) string, r *http.Request) string {
	return route(r)
}

// statusWriter captures the response code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush passes through http.Flusher so that streaming handlers behind
// Middleware (SSE, long downloads) can still push partial responses; a
// no-op when the underlying writer cannot flush.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.code == 0 {
			w.code = http.StatusOK
		}
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// deadlines, hijacking, and flushing keep working through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Middleware instruments an HTTP handler: a request counter labeled by
// route and status code, a per-route latency histogram, and an in-flight
// gauge. route maps a request to its label; nil selects DefaultRoute.
// Each request also runs under an "http" root span, so handlers that
// call StartSpan nest below it and — when the request context's
// TraceStore is enabled — every request yields a retainable trace
// annotated with its method, path, and status code.
func Middleware(reg *Registry, route func(*http.Request) string, next http.Handler) http.Handler {
	if reg == nil {
		reg = Default()
	}
	if route == nil {
		route = DefaultRoute
	}
	reg.Help(MetricHTTPRequests, "HTTP requests served, by route and status code.")
	reg.Help(MetricHTTPDuration, "HTTP request latency in seconds, by route.")
	reg.Help(MetricHTTPInFlight, "HTTP requests currently being served.")
	reg.Help(MetricHTTPRespBytes, "HTTP response body size in bytes, by route.")
	inFlight := reg.Gauge(MetricHTTPInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		defer inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		rt := routeLabel(route, r)
		ctx, sp := StartSpan(WithRegistry(r.Context(), reg), "http", L("route", rt))
		sp.Annotate("method", r.Method)
		sp.Annotate("path", r.URL.Path)
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		sp.Annotate("code", statusLabel(sw.code))
		if sw.code >= http.StatusInternalServerError {
			sp.SetError(fmt.Errorf("HTTP %d", sw.code))
		}
		sp.End()
		reg.Counter(MetricHTTPRequests, L("route", rt), L("code", statusLabel(sw.code))).Inc()
		reg.Histogram(MetricHTTPDuration, nil, L("route", rt)).ObserveDuration(time.Since(start))
		reg.Histogram(MetricHTTPRespBytes, RespSizeBuckets, L("route", rt)).Observe(float64(sw.bytes))
	})
}
