package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a strings.Builder safe for concurrent writers.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestLoggerTextFormat(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelInfo, false)
	l.Debug("hidden")
	l.Info("flow ok", "benchmark", "mux21", "area", 12, "elapsed", 150*time.Millisecond, "note", "two words")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug record emitted at info level")
	}
	for _, want := range []string{"INFO flow ok", "benchmark=mux21", "area=12", "elapsed=150ms", `note="two words"`} {
		if !strings.Contains(out, want) {
			t.Errorf("text record missing %q: %s", want, out)
		}
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelDebug, true)
	l.Warn("span", "span", "flow.place.ortho", "duration", 3*time.Millisecond, "err", errors.New("boom"), "n", 7, "ok", true)
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("JSON record does not parse: %v\n%s", err, buf.String())
	}
	if rec["level"] != "warn" || rec["msg"] != "span" || rec["span"] != "flow.place.ortho" {
		t.Errorf("record: %v", rec)
	}
	if rec["err"] != "boom" || rec["duration"] != "3ms" {
		t.Errorf("values: %v", rec)
	}
	if rec["n"] != float64(7) || rec["ok"] != true {
		t.Errorf("numeric/bool values not bare: %v", rec)
	}
	if _, ok := rec["ts"].(string); !ok {
		t.Errorf("ts missing: %v", rec)
	}
}

func TestLoggerWithAndLevels(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelWarn, false).With("component", "server")
	l.Info("nope")
	l.Error("bad thing", "code", 500)
	out := buf.String()
	if strings.Contains(out, "nope") {
		t.Error("info emitted at warn level")
	}
	if !strings.Contains(out, "component=server") || !strings.Contains(out, "ERROR bad thing") {
		t.Errorf("bound pairs missing: %s", out)
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Error("SetLevel(debug) not effective")
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
	if l.With("a", 1) != nil {
		t.Error("nil logger With must stay nil")
	}
}

func TestLoggerOddPairs(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelInfo, false)
	l.Info("odd", "key")
	if !strings.Contains(buf.String(), "key=(MISSING)") {
		t.Errorf("odd pair not flagged: %s", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
}
