package obs

import (
	"runtime/metrics"
	"time"
)

// The mntbench_go_* gauge families exported by UpdateRuntimeGauges and
// the RuntimeCollector. The set is fixed and none of the gauges carry
// labels, so runtime telemetry can never explode series cardinality.
const (
	MetricGoGoroutines   = "mntbench_go_goroutines"
	MetricGoGomaxprocs   = "mntbench_go_gomaxprocs"
	MetricGoHeapLive     = "mntbench_go_heap_live_bytes"
	MetricGoHeapAllocs   = "mntbench_go_heap_allocs_bytes_total"
	MetricGoGCCycles     = "mntbench_go_gc_cycles_total"
	MetricGoGCPause      = "mntbench_go_gc_pause_seconds_total"
	MetricGoSchedLatP50  = "mntbench_go_sched_latency_p50_seconds"
	MetricGoSchedLatP99  = "mntbench_go_sched_latency_p99_seconds"
	MetricGoRuntimeReads = "mntbench_go_runtime_reads_total"
)

// runtimeSampleNames are the runtime/metrics samples behind
// RuntimeStats. Names missing from the running toolchain simply read as
// KindBad and leave their stat at zero, so the collector keeps working
// across Go releases.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/sched/gomaxprocs:threads",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeStats is one point-in-time reading of the Go runtime health
// signals mntbench exports: live heap, GC pressure, and scheduler
// latency. Histogram-backed fields (GC pause total, sched latency
// quantiles) are approximated from the runtime's bucketed histograms
// using bucket midpoints.
type RuntimeStats struct {
	Goroutines      int64   `json:"goroutines"`
	Gomaxprocs      int64   `json:"gomaxprocs"`
	HeapLiveBytes   uint64  `json:"heap_live_bytes"`
	HeapAllocsBytes uint64  `json:"heap_allocs_bytes_total"`
	GCCycles        uint64  `json:"gc_cycles_total"`
	GCPauseSeconds  float64 `json:"gc_pause_seconds_total"`
	SchedLatencyP50 float64 `json:"sched_latency_p50_seconds"`
	SchedLatencyP99 float64 `json:"sched_latency_p99_seconds"`
}

// ReadRuntimeStats samples runtime/metrics once.
func ReadRuntimeStats() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var st RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			st.Goroutines = asInt64(s.Value)
		case "/sched/gomaxprocs:threads":
			st.Gomaxprocs = asInt64(s.Value)
		case "/memory/classes/heap/objects:bytes":
			st.HeapLiveBytes = asUint64(s.Value)
		case "/gc/heap/allocs:bytes":
			st.HeapAllocsBytes = asUint64(s.Value)
		case "/gc/cycles/total:gc-cycles":
			st.GCCycles = asUint64(s.Value)
		case "/gc/pauses:seconds":
			if h := asHistogram(s.Value); h != nil {
				st.GCPauseSeconds = histogramSum(h)
			}
		case "/sched/latencies:seconds":
			if h := asHistogram(s.Value); h != nil {
				st.SchedLatencyP50 = histogramQuantile(h, 0.50)
				st.SchedLatencyP99 = histogramQuantile(h, 0.99)
			}
		}
	}
	return st
}

func asUint64(v metrics.Value) uint64 {
	if v.Kind() == metrics.KindUint64 {
		return v.Uint64()
	}
	return 0
}

func asInt64(v metrics.Value) int64 {
	if v.Kind() == metrics.KindUint64 {
		return int64(v.Uint64())
	}
	return 0
}

func asHistogram(v metrics.Value) *metrics.Float64Histogram {
	if v.Kind() == metrics.KindFloat64Histogram {
		return v.Float64Histogram()
	}
	return nil
}

// histogramSum approximates the total of all observations in a
// runtime/metrics histogram: count × bucket midpoint, with the open
// tails clamped to their finite edge.
func histogramSum(h *metrics.Float64Histogram) float64 {
	var sum float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		sum += float64(count) * bucketMid(h.Buckets, i)
	}
	return sum
}

// histogramQuantile estimates the q-quantile as the midpoint of the
// bucket containing the q-th observation.
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			return bucketMid(h.Buckets, i)
		}
	}
	return bucketMid(h.Buckets, len(h.Counts)-1)
}

// bucketMid returns the midpoint of counts-bucket i, whose edges are
// Buckets[i] and Buckets[i+1]; -Inf/+Inf tails clamp to the finite edge.
func bucketMid(buckets []float64, i int) float64 {
	lo, hi := buckets[i], buckets[i+1]
	switch {
	case lo < -1e308 && hi > 1e308:
		return 0
	case lo < -1e308:
		return hi
	case hi > 1e308:
		return lo
	}
	return (lo + hi) / 2
}

// UpdateRuntimeGauges samples the Go runtime once and stores the
// readings in the mntbench_go_* gauges on reg (nil selects the default
// registry). Safe for concurrent use; the metrics sidecar and the web
// server call it on every /metrics scrape so exported values are always
// current.
func UpdateRuntimeGauges(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	registerRuntimeHelp(reg)
	st := ReadRuntimeStats()
	reg.Gauge(MetricGoGoroutines).Set(float64(st.Goroutines))
	reg.Gauge(MetricGoGomaxprocs).Set(float64(st.Gomaxprocs))
	reg.Gauge(MetricGoHeapLive).Set(float64(st.HeapLiveBytes))
	reg.Gauge(MetricGoHeapAllocs).Set(float64(st.HeapAllocsBytes))
	reg.Gauge(MetricGoGCCycles).Set(float64(st.GCCycles))
	reg.Gauge(MetricGoGCPause).Set(st.GCPauseSeconds)
	reg.Gauge(MetricGoSchedLatP50).Set(st.SchedLatencyP50)
	reg.Gauge(MetricGoSchedLatP99).Set(st.SchedLatencyP99)
	reg.Counter(MetricGoRuntimeReads).Inc()
}

func registerRuntimeHelp(reg *Registry) {
	reg.Help(MetricGoGoroutines, "Live goroutines (from runtime/metrics).")
	reg.Help(MetricGoGomaxprocs, "GOMAXPROCS of the running process.")
	reg.Help(MetricGoHeapLive, "Bytes of live heap objects.")
	reg.Help(MetricGoHeapAllocs, "Cumulative bytes allocated on the heap.")
	reg.Help(MetricGoGCCycles, "Completed GC cycles.")
	reg.Help(MetricGoGCPause, "Approximate cumulative GC stop-the-world pause seconds (histogram midpoints).")
	reg.Help(MetricGoSchedLatP50, "Median goroutine scheduling latency in seconds (approximate).")
	reg.Help(MetricGoSchedLatP99, "p99 goroutine scheduling latency in seconds (approximate).")
	reg.Help(MetricGoRuntimeReads, "Runtime telemetry sampling passes performed.")
}

// RuntimeCollector periodically refreshes the mntbench_go_* gauges so
// long campaigns expose live runtime telemetry even between scrapes.
type RuntimeCollector struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntimeCollector samples the runtime into reg every interval
// (nil reg selects the default registry; non-positive intervals default
// to 10s). One sample is taken synchronously before returning so the
// gauges exist immediately. Stop the collector to release its
// goroutine.
func StartRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if reg == nil {
		reg = Default()
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	UpdateRuntimeGauges(reg)
	c := &RuntimeCollector{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				UpdateRuntimeGauges(reg)
			}
		}
	}()
	return c
}

// Stop terminates the collector's sampling goroutine and waits for it
// to exit. Safe to call once.
func (c *RuntimeCollector) Stop() {
	close(c.stop)
	<-c.done
}
