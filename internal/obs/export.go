package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series,
// histograms with cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Snapshot() {
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
			return err
		}
		for _, s := range fam.Series {
			var err error
			switch fam.Kind {
			case KindHistogram:
				err = writeHistogramSeries(w, fam.Name, s)
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", fam.Name, labelString(s.Labels, ""), uint64(s.Value))
			default:
				_, err = fmt.Fprintf(w, "%s%s %s\n", fam.Name, labelString(s.Labels, ""), formatFloat(s.Value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogramSeries(w io.Writer, name string, s SeriesSnapshot) error {
	h := s.Histogram
	for _, b := range h.Buckets {
		le := formatFloat(b.UpperBound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(s.Labels, le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(s.Labels, "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.Labels, ""), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.Labels, ""), h.Count)
	return err
}

// labelString renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label. Returns "" for no labels.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`le="`)
		sb.WriteString(le)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonSeries is the JSON dump shape of one series.
type jsonSeries struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

type jsonFamily struct {
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as an expvar-style JSON object mapping
// metric names to their series, for programmatic scraping without a
// Prometheus parser.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]jsonFamily)
	for _, fam := range r.Snapshot() {
		jf := jsonFamily{Type: fam.Kind.String(), Help: fam.Help}
		for _, s := range fam.Series {
			js := jsonSeries{}
			if len(s.Labels) > 0 {
				js.Labels = make(map[string]string, len(s.Labels))
				for _, l := range s.Labels {
					js.Labels[l.Key] = l.Value
				}
			}
			if fam.Kind == KindHistogram {
				count, sum := s.Histogram.Count, s.Histogram.Sum
				js.Count, js.Sum = &count, &sum
				js.Buckets = make(map[string]uint64, len(s.Histogram.Buckets)+1)
				for _, b := range s.Histogram.Buckets {
					js.Buckets[formatFloat(b.UpperBound)] = b.Count
				}
				js.Buckets["+Inf"] = count
			} else {
				v := s.Value
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		out[fam.Name] = jf
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
