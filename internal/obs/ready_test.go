package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func readyStatus(t *testing.T, r *Readiness) (int, map[string]string) {
	t.Helper()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/readyz body is not JSON: %v (%q)", err, rec.Body.String())
	}
	return rec.Code, body
}

func TestReadinessLifecycle(t *testing.T) {
	r := NewReadiness("database loading")
	if code, body := readyStatus(t, r); code != http.StatusServiceUnavailable ||
		body["status"] != "unavailable" || body["reason"] != "database loading" {
		t.Fatalf("initial state: code=%d body=%v", code, body)
	}
	r.Ready()
	if code, body := readyStatus(t, r); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("after Ready: code=%d body=%v", code, body)
	}
	r.NotReady("shutting down")
	if code, body := readyStatus(t, r); code != http.StatusServiceUnavailable ||
		body["reason"] != "shutting down" {
		t.Fatalf("after NotReady: code=%d body=%v", code, body)
	}
	if ready, reason := r.State(); ready || reason != "shutting down" {
		t.Errorf("State() = %v, %q", ready, reason)
	}
}

func TestReadinessNilIsAlwaysReady(t *testing.T) {
	var r *Readiness
	r.Ready()             // no-op, no panic
	r.NotReady("ignored") // no-op, no panic
	if ready, reason := r.State(); !ready || reason != "" {
		t.Errorf("nil State() = %v, %q", ready, reason)
	}
	if code, body := readyStatus(t, r); code != http.StatusOK || body["status"] != "ready" {
		t.Errorf("nil handler: code=%d body=%v", code, body)
	}
}

func TestReadinessReasonEscaping(t *testing.T) {
	r := NewReadiness(`loading "catalogue"`)
	code, body := readyStatus(t, r)
	if code != http.StatusServiceUnavailable || body["reason"] != `loading "catalogue"` {
		t.Fatalf("quoted reason mangled: code=%d body=%v", code, body)
	}
}
