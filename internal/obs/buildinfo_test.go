package obs

import (
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	RegisterBuildInfo(reg) // idempotent: still exactly one series

	var fam *FamilySnapshot
	snap := reg.Snapshot()
	for i := range snap {
		if snap[i].Name == BuildInfoMetric {
			fam = &snap[i]
		}
	}
	if fam == nil {
		t.Fatal("build info gauge not registered")
	}
	if len(fam.Series) != 1 {
		t.Fatalf("build info has %d series, want 1", len(fam.Series))
	}
	s := fam.Series[0]
	if s.Value != 1 {
		t.Errorf("info gauge value = %v, want 1", s.Value)
	}
	labels := map[string]string{}
	for _, l := range s.Labels {
		labels[l.Key] = l.Value
	}
	if !strings.HasPrefix(labels["go"], "go") {
		t.Errorf("go label = %q", labels["go"])
	}
	if labels["module"] == "" {
		t.Error("module label empty")
	}

	// The family appears on the text exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), BuildInfoMetric+"{") {
		t.Errorf("build info missing from /metrics:\n%s", sb.String())
	}

	// Tests can clear it like any family.
	reg.Reset(BuildInfoMetric)
	for _, f := range reg.Snapshot() {
		if f.Name == BuildInfoMetric && len(f.Series) != 0 {
			t.Errorf("Reset left %d series", len(f.Series))
		}
	}
}
