package obs

import (
	"context"
	"io"
	"testing"
)

// BenchmarkSpanOverhead measures the per-span cost of the untraced hot
// path against full trace recording, so regressions in either show up
// in make bench.
func BenchmarkSpanOverhead(b *testing.B) {
	quiet := NewLogger(io.Discard, LevelError, false)

	b.Run("untraced", func(b *testing.B) {
		ctx := WithLogger(WithRegistry(context.Background(), NewRegistry()), quiet)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, root := StartSpan(ctx, "flow")
			_, sp := StartSpan(c, "place")
			sp.End()
			root.End()
		}
	})

	b.Run("traced", func(b *testing.B) {
		ts := NewTraceStore(TracePolicy{})
		ctx := WithTraces(WithLogger(WithRegistry(context.Background(), NewRegistry()), quiet), ts)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, root := StartSpan(ctx, "flow")
			_, sp := StartSpan(c, "place")
			sp.Annotate("benchmark", "mux21")
			sp.End()
			root.End()
		}
	})
}
