package obs

import (
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines; run
// with -race to check the synchronization.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("ops_total", L("worker", string(rune('a'+id%4)))).Inc()
				reg.Counter("shared_total").Inc()
				reg.Gauge("level").Add(1)
				reg.Gauge("level").Add(-1)
				reg.Histogram("latency_seconds", nil, L("stage", "x")).Observe(float64(i) / perWorker)
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("shared_total = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("level").Value(); got != 0 {
		t.Errorf("level gauge = %v, want 0", got)
	}
	h := reg.Histogram("latency_seconds", nil, L("stage", "x")).Snapshot()
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var perWorkerSum uint64
	for _, r := range []rune{'a', 'b', 'c', 'd'} {
		perWorkerSum += reg.Counter("ops_total", L("worker", string(r))).Value()
	}
	if perWorkerSum != workers*perWorker {
		t.Errorf("ops_total sum = %d, want %d", perWorkerSum, workers*perWorker)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	// Cumulative: le=1 holds {0.5, 1}, le=2 adds {1.5, 2}, le=5 adds {3};
	// 6 lands in the implicit +Inf bucket.
	want := []struct {
		bound float64
		count uint64
	}{{1, 2}, {2, 4}, {5, 5}}
	for i, w := range want {
		if s.Buckets[i].UpperBound != w.bound || s.Buckets[i].Count != w.count {
			t.Errorf("bucket %d = {%v %d}, want {%v %d}",
				i, s.Buckets[i].UpperBound, s.Buckets[i].Count, w.bound, w.count)
		}
	}
	if s.Sum != 0.5+1+1.5+2+3+6 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	s := h.Snapshot()
	if got := s.Mean(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	// All observations are <= 1, so every quantile interpolates inside
	// [0, 1].
	if q := s.Quantile(0.5); q < 0 || q > 1 {
		t.Errorf("p50 = %v outside first bucket", q)
	}
	if q := s.Quantile(0.99); q < 0 || q > 1 {
		t.Errorf("p99 = %v outside first bucket", q)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot must report zeros")
	}
}

// TestQuantileExtremes pins q=0 and q=1 on a known distribution:
// buckets [1 2 4] holding {0.5, 0.5, 1.5, 1.5}.
func TestQuantileExtremes(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("qe", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// q=0 interpolates to the very bottom of the first occupied bucket.
	if got := s.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	// q=1 reaches the top of the last occupied bucket (le=2), never +Inf.
	if got := s.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
	if math.IsInf(s.Quantile(1), +1) {
		t.Error("Quantile(1) must stay finite")
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", L("a", "1"), L("b", "2")).Inc()
	reg.Counter("c", L("b", "2"), L("a", "1")).Inc()
	if got := reg.Counter("c", L("a", "1"), L("b", "2")).Value(); got != 2 {
		t.Errorf("label order created distinct series: %d", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m").Inc()
	defer func() {
		if recover() == nil {
			t.Error("gauge request for a counter family did not panic")
		}
	}()
	reg.Gauge("m")
}

func TestReset(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("current", L("benchmark", "mux21")).Set(1)
	reg.Reset("current")
	reg.Gauge("current", L("benchmark", "xor2")).Set(1)
	snap := reg.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("snapshot after reset: %+v", snap)
	}
	if got := snap[0].Series[0].Labels[0].Value; got != "xor2" {
		t.Errorf("surviving series = %q, want xor2", got)
	}
	reg.Reset("does-not-exist") // must not panic
}
