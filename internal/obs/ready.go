package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Readiness is the state behind a /readyz endpoint. Where /healthz is
// liveness ("the process responds"), readiness is "the process can do
// useful work": it starts not-ready while the database or journal
// loads, flips ready once serving can begin, and flips back during
// graceful shutdown so load balancers drain connections before the
// listener closes. All methods are safe for concurrent use and on a nil
// receiver (nil reads as always ready, so optional wiring needs no
// guards).
type Readiness struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewReadiness returns a not-ready state with the given reason (e.g.
// "database loading").
func NewReadiness(reason string) *Readiness {
	return &Readiness{reason: reason}
}

// Ready marks the state ready.
func (r *Readiness) Ready() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ready, r.reason = true, ""
	r.mu.Unlock()
}

// NotReady marks the state not ready with an explanatory reason
// (e.g. "shutting down").
func (r *Readiness) NotReady(reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ready, r.reason = false, reason
	r.mu.Unlock()
}

// State returns the current readiness and, when not ready, the reason.
func (r *Readiness) State() (ready bool, reason string) {
	if r == nil {
		return true, ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ready, r.reason
}

// Handler serves the readiness state: 200 {"status":"ready"} when
// ready, 503 {"status":"unavailable","reason":...} when not.
func (r *Readiness) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ready, reason := r.State()
		w.Header().Set("Content-Type", "application/json")
		if ready {
			fmt.Fprintln(w, `{"status":"ready"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		reasonJSON, _ := json.Marshal(reason) // a plain string always marshals
		fmt.Fprintf(w, "{\"status\":\"unavailable\",\"reason\":%s}\n", reasonJSON)
	})
}
