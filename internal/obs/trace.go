package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flow-level tracing. Every root span (a span started under a context
// that carries no parent span) opens a trace; child spans started
// through the usual StartSpan context chain record themselves as events
// with parent/child links. When the root span ends, the completed trace
// is offered to the context's TraceStore, which retains it — or not —
// under a bounded, policy-driven budget: failed traces are always kept
// (in their own ring), the K slowest per root span name are kept, and a
// sample of the rest is kept. Memory therefore stays bounded no matter
// how many flows a campaign runs.
//
// Unlike metric labels, trace attributes (Span.Annotate) may carry
// unbounded values such as benchmark names or flow IDs: they live only
// inside retained traces, never as metric series.

// SpanEvent is one recorded span within a trace.
type SpanEvent struct {
	// ID is the event's index within the trace; the root span is 0.
	ID int `json:"id"`
	// Parent is the parent event's ID, or -1 for the root.
	Parent int       `json:"parent"`
	Name   string    `json:"name"`
	Path   string    `json:"path"`
	Start  time.Time `json:"start"`
	// Duration is zero until the span ends (it stays zero for spans that
	// were started but never ended, e.g. across a panic).
	Duration time.Duration `json:"duration_ns"`
	// Attrs merges the span's metric labels and its trace-only
	// annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Err is the error attached via SetError, rendered as text.
	Err string `json:"error,omitempty"`
}

// Trace is one completed root span together with every child span
// recorded under it.
type Trace struct {
	// ID is assigned by the store on retention, e.g. "t000007".
	ID string `json:"id"`
	// Root is the root span's name ("flow", "worker", "http", ...).
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Failed is true when any event of the trace carries an error.
	Failed bool `json:"failed"`
	// Dropped counts span events discarded because the trace hit
	// MaxEventsPerTrace.
	Dropped int         `json:"dropped_events,omitempty"`
	Events  []SpanEvent `json:"events"`
}

// RootAttrs returns the attributes of the root event (nil if none).
func (t *Trace) RootAttrs() map[string]string {
	if len(t.Events) == 0 {
		return nil
	}
	return t.Events[0].Attrs
}

// findEvent returns the first event with the given name, or nil.
func (t *Trace) findEvent(name string) *SpanEvent {
	for i := range t.Events {
		if t.Events[i].Name == name {
			return &t.Events[i]
		}
	}
	return nil
}

// FlowEvent returns the trace's "flow" span event — the root itself for
// one-shot flows, a child for campaign worker traces — or nil when the
// trace did not run a flow.
func (t *Trace) FlowEvent() *SpanEvent { return t.findEvent("flow") }

// Children returns the events whose parent is the given event ID, in
// start order.
func (t *Trace) Children(parent int) []SpanEvent {
	var out []SpanEvent
	for _, e := range t.Events {
		if e.Parent == parent && e.ID != parent {
			out = append(out, e)
		}
	}
	return out
}

// TracePolicy bounds what a TraceStore retains. The zero value selects
// the defaults noted per field.
type TracePolicy struct {
	// MaxFailed is the capacity of the failed-trace ring: the most
	// recent MaxFailed failed traces are always retained (default 64).
	MaxFailed int
	// SlowestPerRoot keeps the K slowest traces per root span name
	// (default 8).
	SlowestPerRoot int
	// SampleEvery retains every Nth trace that is neither failed nor
	// among the slowest (default 16).
	SampleEvery int
	// MaxSampled is the capacity of the sampled-trace ring (default 64).
	MaxSampled int
	// MaxEventsPerTrace caps the span events recorded per trace; spans
	// beyond the cap are counted in Trace.Dropped (default 512).
	MaxEventsPerTrace int
	// KeepAll retains every completed trace, unbounded: campaign
	// timeline export (-trace) wants the whole run, not a sample. Leave
	// false for long-lived processes.
	KeepAll bool
}

func (p TracePolicy) withDefaults() TracePolicy {
	if p.MaxFailed <= 0 {
		p.MaxFailed = 64
	}
	if p.SlowestPerRoot <= 0 {
		p.SlowestPerRoot = 8
	}
	if p.SampleEvery <= 0 {
		p.SampleEvery = 16
	}
	if p.MaxSampled <= 0 {
		p.MaxSampled = 64
	}
	if p.MaxEventsPerTrace <= 0 {
		p.MaxEventsPerTrace = 512
	}
	return p
}

// TraceStats summarizes a store's activity.
type TraceStats struct {
	// Seen counts every completed trace offered to the store.
	Seen uint64 `json:"seen"`
	// Retained counts the traces currently held.
	Retained int `json:"retained"`
	// Failed counts the retained failed traces.
	Failed int `json:"failed"`
	// DroppedEvents sums Trace.Dropped over every offered trace.
	DroppedEvents uint64 `json:"dropped_events"`
}

// TraceStore retains completed traces under a TracePolicy. All methods
// are safe for concurrent use. A disabled store (see SetEnabled) makes
// span tracing a no-op, which keeps the StartSpan/End hot path cheap.
type TraceStore struct {
	enabled atomic.Bool

	mu            sync.Mutex
	policy        TracePolicy
	seq           uint64
	seen          uint64
	droppedEvents uint64
	sampleTick    uint64
	failed        []*Trace            // FIFO, most recent MaxFailed
	slow          map[string][]*Trace // root name -> ascending by duration, len <= K
	sampled       []*Trace            // FIFO, most recent MaxSampled
	all           []*Trace            // KeepAll mode only
}

// NewTraceStore returns an enabled store retaining under the given
// policy (zero value: defaults).
func NewTraceStore(policy TracePolicy) *TraceStore {
	s := &TraceStore{policy: policy.withDefaults(), slow: make(map[string][]*Trace)}
	s.enabled.Store(true)
	return s
}

var defaultTraces = func() *TraceStore {
	s := NewTraceStore(TracePolicy{})
	s.enabled.Store(false) // tracing is opt-in; see SetEnabled
	return s
}()

// DefaultTraces returns the process-wide trace store, used whenever a
// context carries no explicit store. It starts disabled; enable it with
// SetEnabled(true) (the CLI does this for -trace / serve -traces).
func DefaultTraces() *TraceStore { return defaultTraces }

// WithTraces returns a context whose root spans open traces in ts
// instead of the default store.
func WithTraces(ctx context.Context, ts *TraceStore) context.Context {
	return context.WithValue(ctx, ctxTracesKey, ts)
}

// TracesFrom returns the context's trace store, falling back to
// DefaultTraces. A nil context is allowed.
func TracesFrom(ctx context.Context) *TraceStore {
	if ctx != nil {
		if ts, ok := ctx.Value(ctxTracesKey).(*TraceStore); ok && ts != nil {
			return ts
		}
	}
	return DefaultTraces()
}

// SetEnabled turns span recording on or off. Traces already retained
// are kept either way.
func (s *TraceStore) SetEnabled(on bool) { s.enabled.Store(on) }

// Enabled reports whether root spans currently open traces.
func (s *TraceStore) Enabled() bool { return s.enabled.Load() }

// SetPolicy replaces the retention policy for traces completed from now
// on (zero fields select defaults). Already-retained traces are kept.
func (s *TraceStore) SetPolicy(p TracePolicy) {
	s.mu.Lock()
	s.policy = p.withDefaults()
	s.mu.Unlock()
}

// newTrace begins recording one trace.
func (s *TraceStore) newTrace() *traceRec {
	s.mu.Lock()
	max := s.policy.MaxEventsPerTrace
	s.mu.Unlock()
	return &traceRec{store: s, maxEvents: max}
}

// offer hands a completed trace to the retention policy.
func (s *TraceStore) offer(t *Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	s.droppedEvents += uint64(t.Dropped)
	s.seq++
	t.ID = fmt.Sprintf("t%06d", s.seq)
	if s.policy.KeepAll {
		s.all = append(s.all, t)
		return
	}
	if t.Failed {
		s.failed = append(s.failed, t)
		if len(s.failed) > s.policy.MaxFailed {
			s.failed = append(s.failed[:0], s.failed[1:]...)
		}
		return
	}
	// K slowest per root span name: an ascending slice whose head is the
	// fastest retained trace of that root.
	slow := s.slow[t.Root]
	if len(slow) < s.policy.SlowestPerRoot || t.Duration > slow[0].Duration {
		if len(slow) == s.policy.SlowestPerRoot {
			slow = append(slow[:0], slow[1:]...)
		}
		i := sort.Search(len(slow), func(i int) bool { return slow[i].Duration >= t.Duration })
		slow = append(slow, nil)
		copy(slow[i+1:], slow[i:])
		slow[i] = t
		s.slow[t.Root] = slow
		return
	}
	// Sample the rest.
	s.sampleTick++
	if s.sampleTick%uint64(s.policy.SampleEvery) == 0 {
		s.sampled = append(s.sampled, t)
		if len(s.sampled) > s.policy.MaxSampled {
			s.sampled = append(s.sampled[:0], s.sampled[1:]...)
		}
	}
}

// Snapshot returns every retained trace, sorted by start time (ties by
// ID). The traces are shared, not copied: treat them as immutable.
func (s *TraceStore) Snapshot() []*Trace {
	s.mu.Lock()
	out := make([]*Trace, 0, len(s.all)+len(s.failed)+len(s.sampled)+8)
	out = append(out, s.all...)
	out = append(out, s.failed...)
	for _, slow := range s.slow {
		out = append(out, slow...)
	}
	out = append(out, s.sampled...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Get returns the retained trace with the given ID.
func (s *TraceStore) Get(id string) (*Trace, bool) {
	for _, t := range s.Snapshot() {
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}

// Stats returns the store's counters.
func (s *TraceStore) Stats() TraceStats {
	retained := s.Snapshot()
	failed := 0
	for _, t := range retained {
		if t.Failed {
			failed++
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return TraceStats{Seen: s.seen, Retained: len(retained), Failed: failed, DroppedEvents: s.droppedEvents}
}

// Reset drops every retained trace and zeroes the counters; the policy
// and enablement survive. For tests.
func (s *TraceStore) Reset() {
	s.mu.Lock()
	s.seen, s.droppedEvents, s.sampleTick, s.seq = 0, 0, 0, 0
	s.failed, s.sampled, s.all = nil, nil, nil
	s.slow = make(map[string][]*Trace)
	s.mu.Unlock()
}

// WriteChrome renders every retained trace in the Chrome trace-event
// format (see WriteChromeTrace).
func (s *TraceStore) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, s.Snapshot())
}

// traceRec accumulates the events of one in-flight trace.
type traceRec struct {
	store     *TraceStore
	maxEvents int

	mu      sync.Mutex
	events  []SpanEvent
	dropped int
}

// startEvent registers a span start and returns its event ID, or -1
// when the trace is at its event cap.
func (t *traceRec) startEvent(parent int, name, path string, start time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.maxEvents {
		t.dropped++
		return -1
	}
	id := len(t.events)
	t.events = append(t.events, SpanEvent{ID: id, Parent: parent, Name: name, Path: path, Start: start})
	return id
}

// endEvent records a span end.
func (t *traceRec) endEvent(id int, d time.Duration, attrs map[string]string, err error) {
	if id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := &t.events[id]
	ev.Duration = d
	ev.Attrs = attrs
	if err != nil {
		ev.Err = err.Error()
	}
}

// complete seals the trace when its root span ends and offers it to the
// store.
func (t *traceRec) complete(root string, start time.Time, d time.Duration) {
	t.mu.Lock()
	events := make([]SpanEvent, len(t.events))
	copy(events, t.events)
	dropped := t.dropped
	t.mu.Unlock()
	tr := &Trace{Root: root, Start: start, Duration: d, Dropped: dropped, Events: events}
	for _, e := range events {
		if e.Err != "" {
			tr.Failed = true
			break
		}
	}
	t.store.offer(tr)
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). Field names are fixed by that format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the trace-event file.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders traces as a Chrome trace-event file loadable
// in Perfetto or chrome://tracing. Campaign worker traces (root attr
// "worker_id") map onto one timeline row per worker, named after the
// bounded worker label (w00, w01, ...), with flow and stage spans
// nested inside by time containment; traces without a worker identity
// each get their own row so concurrent traces never overlap.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	var base time.Time
	for _, t := range traces {
		if base.IsZero() || t.Start.Before(base) {
			base = t.Start
		}
	}
	micros := func(ts time.Time) float64 { return float64(ts.Sub(base)) / float64(time.Microsecond) }

	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]string{"name": "mntbench"}},
	}}
	rowNames := make(map[int]string)
	nextRow := 1000 // rows for traces without a worker identity
	for _, t := range traces {
		tid := 0
		attrs := t.RootAttrs()
		if id, err := strconv.Atoi(attrs["worker_id"]); err == nil && id >= 0 {
			tid = id + 1
			if name := attrs["worker"]; name != "" {
				rowNames[tid] = name
			} else {
				rowNames[tid] = fmt.Sprintf("w%02d", id)
			}
		} else {
			tid = nextRow
			nextRow++
			rowNames[tid] = t.Root + " " + t.ID
		}
		for _, e := range t.Events {
			args := make(map[string]string, len(e.Attrs)+3)
			for k, v := range e.Attrs {
				args[k] = v
			}
			args["path"] = e.Path
			args["trace"] = t.ID
			if e.Err != "" {
				args["error"] = e.Err
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: e.Name,
				Cat:  t.Root,
				Ph:   "X",
				TS:   micros(e.Start),
				Dur:  float64(e.Duration) / float64(time.Microsecond),
				PID:  1,
				TID:  tid,
				Args: args,
			})
		}
	}
	tids := make([]int, 0, len(rowNames))
	for tid := range rowNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": rowNames[tid]},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// traceIndexEntry is one row of the /debug/traces index.
type traceIndexEntry struct {
	ID         string            `json:"id"`
	Root       string            `json:"root"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Failed     bool              `json:"failed"`
	Events     int               `json:"events"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Handler serves the store over HTTP. It expects to be mounted at
// /debug/traces: the bare path returns a JSON index of retained traces,
// /debug/traces/<id> the full span tree of one trace, and
// /debug/traces/chrome (or ?format=chrome) the Chrome trace-event
// export of everything retained.
func (s *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		switch {
		case rest == "chrome" || rest == "chrome.json" ||
			(rest == "" && r.URL.Query().Get("format") == "chrome"):
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="mntbench-trace.json"`)
			if err := s.WriteChrome(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case rest == "":
			traces := s.Snapshot()
			index := struct {
				Enabled bool              `json:"enabled"`
				Policy  TracePolicy       `json:"policy"`
				Stats   TraceStats        `json:"stats"`
				Traces  []traceIndexEntry `json:"traces"`
			}{Enabled: s.Enabled(), Stats: s.Stats(), Traces: make([]traceIndexEntry, 0, len(traces))}
			s.mu.Lock()
			index.Policy = s.policy
			s.mu.Unlock()
			for _, t := range traces {
				index.Traces = append(index.Traces, traceIndexEntry{
					ID: t.ID, Root: t.Root, Start: t.Start,
					DurationMS: float64(t.Duration) / float64(time.Millisecond),
					Failed:     t.Failed, Events: len(t.Events), Attrs: t.RootAttrs(),
				})
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(index); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			t, ok := s.Get(rest)
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(t); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
}
