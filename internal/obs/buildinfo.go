package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfoMetric is the info-style gauge (constant value 1) whose
// labels identify the running binary.
const BuildInfoMetric = "mntbench_build_info"

// goVersionLabel is a single fixed value for the lifetime of the
// process: the toolchain that built it.
//
//lint:bounded
func goVersionLabel() string { return runtime.Version() }

// moduleVersionLabel is likewise one value per binary: the main
// module's version from the embedded build info ("(devel)" for
// non-released builds, "unknown" when the binary carries none).
//
//lint:bounded
func moduleVersionLabel() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// RegisterBuildInfo registers the mntbench_build_info gauge on reg (nil
// selects the default registry): value 1 with the Go toolchain and
// module version as labels. Safe to call repeatedly — the family is
// reset first, so the gauge always exposes exactly one series; tests
// can likewise clear it with reg.Reset(obs.BuildInfoMetric).
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	reg.Help(BuildInfoMetric, "Build information of the running binary (info gauge, value 1).")
	reg.Reset(BuildInfoMetric)
	reg.Gauge(BuildInfoMetric, L("go", goVersionLabel()), L("module", moduleVersionLabel())).Set(1)
}
