package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfoMetric is the info-style gauge (constant value 1) whose
// labels identify the running binary.
const BuildInfoMetric = "mntbench_build_info"

// goVersionLabel is a single fixed value for the lifetime of the
// process: the toolchain that built it.
//
//lint:bounded
func goVersionLabel() string { return runtime.Version() }

// moduleVersionLabel is likewise one value per binary: the main
// module's version from the embedded build info ("(devel)" for
// non-released builds, "unknown" when the binary carries none).
//
//lint:bounded
func moduleVersionLabel() string { return ModuleVersion() }

// ModuleVersion returns the main module's version from the embedded
// build info ("(devel)" for non-released builds, "unknown" when the
// binary carries none).
func ModuleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// VCSInfo is the version-control stamp the Go toolchain embeds into
// binaries built inside a checkout: the commit hash, its author time
// (RFC 3339), and whether the working tree was dirty. Zero-valued when
// the binary was built outside version control (go run of a file, test
// binaries in module cache, ...).
type VCSInfo struct {
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// VCS extracts the version-control stamp from the running binary's
// build info.
func VCS() VCSInfo {
	var v VCSInfo
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.Time = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

// commitLabel is one fixed value per binary: the (possibly absent) VCS
// revision it was built from.
//
//lint:bounded
func commitLabel() string {
	if rev := VCS().Revision; rev != "" {
		return rev
	}
	return "unknown"
}

// RegisterBuildInfo registers the mntbench_build_info gauge on reg (nil
// selects the default registry): value 1 with the Go toolchain, module
// version, and VCS commit as labels. Safe to call repeatedly — the
// family is reset first, so the gauge always exposes exactly one
// series; tests can likewise clear it with
// reg.Reset(obs.BuildInfoMetric).
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	reg.Help(BuildInfoMetric, "Build information of the running binary (info gauge, value 1).")
	reg.Reset(BuildInfoMetric)
	reg.Gauge(BuildInfoMetric,
		L("go", goVersionLabel()),
		L("module", moduleVersionLabel()),
		L("commit", commitLabel())).Set(1)
}
