package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func runtimeGaugeValue(t *testing.T, reg *Registry, name string) float64 {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
		if len(fam.Series) != 1 {
			t.Fatalf("%s has %d series, want 1", name, len(fam.Series))
		}
		if len(fam.Series[0].Labels) != 0 {
			t.Fatalf("%s carries labels %v; runtime gauges must be label-free", name, fam.Series[0].Labels)
		}
		return fam.Series[0].Value
	}
	t.Fatalf("gauge %s not registered", name)
	return 0
}

func TestReadRuntimeStats(t *testing.T) {
	st := ReadRuntimeStats()
	if st.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", st.Goroutines)
	}
	if st.Gomaxprocs != int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("gomaxprocs = %d, want %d", st.Gomaxprocs, runtime.GOMAXPROCS(0))
	}
	if st.HeapLiveBytes == 0 {
		t.Error("heap live bytes = 0")
	}
	if st.HeapAllocsBytes == 0 {
		t.Error("cumulative heap alloc bytes = 0")
	}
	if st.GCPauseSeconds < 0 || st.SchedLatencyP50 < 0 || st.SchedLatencyP99 < 0 {
		t.Errorf("negative histogram aggregate: %+v", st)
	}
	if st.SchedLatencyP99 < st.SchedLatencyP50 {
		t.Errorf("p99 %v < p50 %v", st.SchedLatencyP99, st.SchedLatencyP50)
	}
}

func TestUpdateRuntimeGauges(t *testing.T) {
	reg := NewRegistry()
	UpdateRuntimeGauges(reg)
	if v := runtimeGaugeValue(t, reg, MetricGoGoroutines); v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricGoGoroutines, v)
	}
	if v := runtimeGaugeValue(t, reg, MetricGoHeapLive); v <= 0 {
		t.Errorf("%s = %v, want > 0", MetricGoHeapLive, v)
	}

	// Every mntbench_go_* family appears on the Prometheus exposition
	// with help text.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		MetricGoGoroutines, MetricGoGomaxprocs, MetricGoHeapLive, MetricGoHeapAllocs,
		MetricGoGCCycles, MetricGoGCPause, MetricGoSchedLatP50, MetricGoSchedLatP99,
		MetricGoRuntimeReads,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from exposition", name)
		}
		if !strings.Contains(text, "# HELP "+name) {
			t.Errorf("metric %s has no help text", name)
		}
	}

	// The sampling counter advances per pass.
	UpdateRuntimeGauges(reg)
	if got := reg.Counter(MetricGoRuntimeReads).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricGoRuntimeReads, got)
	}
}

// TestRuntimeCollectorConcurrent drives the periodic collector while
// scrape-style readers snapshot the registry; run under -race this
// proves the collector is safe next to concurrent exports.
func TestRuntimeCollectorConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				UpdateRuntimeGauges(reg)
			}
		}()
	}
	wg.Wait()
	c.Stop()
	after := reg.Counter(MetricGoRuntimeReads).Value()
	if after < 200 { // 4 goroutines × 50 manual passes + initial + ticks
		t.Errorf("sampling passes = %d, want >= 200", after)
	}
	// Stopped: no further passes.
	time.Sleep(5 * time.Millisecond)
	if again := reg.Counter(MetricGoRuntimeReads).Value(); again != after {
		t.Errorf("collector still sampling after Stop: %d -> %d", after, again)
	}
}
