package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// JournalSchema is the schema version stamped into every campaign_start
// event. Readers must reject journals written under a newer schema
// instead of silently misinterpreting them.
const JournalSchema = 1

// Metric families recorded by the journal.
const (
	// MetricJournalEvents counts events appended to the journal, by type.
	MetricJournalEvents = "mntbench_journal_events_total"
	// MetricJournalDropped counts events a slow live subscriber missed
	// (the durable file never drops; only the SSE fan-out is lossy).
	MetricJournalDropped = "mntbench_journal_dropped_total"
)

// EventType names one kind of campaign lifecycle event.
type EventType string

// The campaign lifecycle event types, in the order a healthy campaign
// emits them: one campaign_start, then a job_start/job_done pair per
// (benchmark, flow) job, then one campaign_done.
const (
	EventCampaignStart EventType = "campaign_start"
	EventJobStart      EventType = "job_start"
	EventJobDone       EventType = "job_done"
	EventCampaignDone  EventType = "campaign_done"
)

// eventTypeLabel renders an event type as a metric label value; the
// EventType constants form a closed set and anything else collapses to
// "other".
//
//lint:bounded
func eventTypeLabel(t EventType) string {
	switch t {
	case EventCampaignStart, EventJobStart, EventJobDone, EventCampaignDone:
		return string(t)
	}
	return "other"
}

// EnvStamp is the environment fingerprint written into campaign_start
// events, mirroring the perfsnap snapshot fingerprint so a journal and a
// BENCH_<n>.json from the same machine are directly comparable.
type EnvStamp struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Module    string  `json:"module_version"`
	VCS       VCSInfo `json:"vcs"`
}

// Environment captures the current environment. Deterministic: two
// calls in the same process return identical values.
func Environment() EnvStamp {
	return EnvStamp{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Module:    ModuleVersion(),
		VCS:       VCS(),
	}
}

// Event is one schema-versioned journal record. The journal is a flat
// JSONL stream: every line is one Event, fields irrelevant to the event
// type are omitted. Campaign-level events carry the campaign identity
// and counters; job-level events carry the (benchmark, flow) identity,
// the worker that ran the job, and its outcome.
type Event struct {
	// Seq numbers events 1..N within one journal file, strictly
	// increasing across campaigns; Time is the wall clock in Unix
	// nanoseconds at append time.
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	Time int64     `json:"t,omitempty"`
	// Campaign correlates every event of one campaign run.
	Campaign string `json:"campaign,omitempty"`

	// campaign_start only.
	Schema     int       `json:"schema,omitempty"`
	Library    string    `json:"library,omitempty"`
	Benchmarks int       `json:"benchmarks,omitempty"`
	Total      int       `json:"total,omitempty"`
	Workers    int       `json:"workers,omitempty"`
	Env        *EnvStamp `json:"env,omitempty"`

	// job_start and job_done. Job is the 1-based position in the
	// benchmark-major/flow-minor enumeration (1-based so omitempty never
	// swallows it).
	Job       int    `json:"job,omitempty"`
	Set       string `json:"set,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Flow      string `json:"flow,omitempty"`
	Worker    string `json:"worker,omitempty"`

	// job_done only.
	Outcome   string           `json:"outcome,omitempty"`
	ElapsedUS int64            `json:"elapsed_us,omitempty"`
	StagesUS  map[string]int64 `json:"stages_us,omitempty"`
	Width     int              `json:"width,omitempty"`
	Height    int              `json:"height,omitempty"`
	Area      int              `json:"area,omitempty"`
	Crossings int              `json:"crossings,omitempty"`
	Verified  bool             `json:"verified,omitempty"`
	Error     string           `json:"error,omitempty"`

	// campaign_done only. Done counts finished jobs, Entries successful
	// layouts, Failures recorded failures; Outcomes tallies every
	// outcome including "ok". Canceled marks a campaign stopped by
	// context cancellation (Ctrl-C) — its journal is complete as a file
	// but the campaign did not cover all Total jobs.
	Done     int            `json:"done,omitempty"`
	Entries  int            `json:"entries,omitempty"`
	Failures int            `json:"failures,omitempty"`
	Outcomes map[string]int `json:"outcomes,omitempty"`
	Canceled bool           `json:"canceled,omitempty"`
}

// journalFlushEvery bounds how stale the buffered tail of the journal
// file may get: job-level appends flush at most this often, so a crash
// loses at most a quarter second of events. Campaign-level events flush
// (and fsync) immediately.
const journalFlushEvery = 250 * time.Millisecond

// Journal is an append-only campaign flight recorder: events are
// serialized one JSON object per line (line-atomic under an internal
// mutex), buffered writes are flushed periodically and fsynced on
// campaign boundaries and Close, and every append is broadcast to live
// subscribers (the /debug/events SSE feed). All methods are safe for
// concurrent use and on a nil *Journal, so call sites need no guards.
type Journal struct {
	reg *Registry

	mu        sync.Mutex
	bw        *bufio.Writer // nil for a broadcast-only journal
	file      *os.File      // non-nil only for file-backed journals (fsync target)
	seq       uint64
	lastFlush time.Time
	werr      error // first write error; subsequent appends still broadcast
	closed    bool
	subs      map[uint64]chan Event
	nextSub   uint64
	recovered bool
}

// NewJournal returns a journal writing to w (nil w = broadcast-only:
// events reach subscribers and metrics but no file). reg receives the
// journal metrics; nil selects the default registry.
func NewJournal(w io.Writer, reg *Registry) *Journal {
	if reg == nil {
		reg = Default()
	}
	reg.Help(MetricJournalEvents, "Campaign journal events appended, by type.")
	reg.Help(MetricJournalDropped, "Journal events dropped by slow live subscribers.")
	j := &Journal{reg: reg, subs: make(map[uint64]chan Event)}
	if w != nil {
		j.bw = bufio.NewWriterSize(w, 32<<10)
	}
	return j
}

// OpenJournal opens (or creates) a file-backed journal at path and
// positions it for appending; missing parent directories are created. An existing journal is scanned first: the
// sequence numbering continues from its last event, and a damaged tail
// — a final line cut short by a crash — is truncated away so the next
// append starts on a clean line boundary (Recovered reports when that
// happened). Corruption anywhere before the final line is an error:
// that is not crash damage but a broken file.
func OpenJournal(path string, reg *Registry) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	events, clean, truncated, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: journal %s: %w", path, err)
	}
	if truncated {
		if err := f.Truncate(clean); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: journal %s: truncating damaged tail: %w", path, err)
		}
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j := NewJournal(f, reg)
	j.file = f
	j.recovered = truncated
	if len(events) > 0 {
		j.seq = events[len(events)-1].Seq
	}
	return j, nil
}

// Recovered reports whether OpenJournal truncated a damaged tail left
// by a crash. False on nil.
func (j *Journal) Recovered() bool { return j != nil && j.recovered }

// Append assigns the event its sequence number and timestamp, writes it
// as one line, and broadcasts it to subscribers. It returns the
// completed event. Write errors are sticky but non-fatal: the journal
// keeps numbering and broadcasting so the live view outlives a full
// disk; Close reports the first error. A no-op (returning e unchanged)
// on nil and closed journals.
func (j *Journal) Append(e Event) Event {
	if j == nil {
		return e
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return e
	}
	j.seq++
	e.Seq = j.seq
	if e.Time == 0 {
		e.Time = time.Now().UnixNano()
	}
	j.reg.Counter(MetricJournalEvents, L("type", eventTypeLabel(e.Type))).Inc()
	campaignLevel := e.Type == EventCampaignStart || e.Type == EventCampaignDone
	if j.bw != nil && j.werr == nil {
		line, err := json.Marshal(e)
		if err != nil {
			j.werr = err
		} else {
			line = append(line, '\n')
			if _, err := j.bw.Write(line); err != nil {
				j.werr = err
			} else if campaignLevel || time.Since(j.lastFlush) >= journalFlushEvery {
				j.flushLocked(campaignLevel)
			}
		}
	}
	for _, ch := range j.subs {
		select {
		//lint:ignore lockbalance non-blocking fan-out: the default case below means this send can never stall the lock
		case ch <- e:
		default:
			j.reg.Counter(MetricJournalDropped).Inc()
		}
	}
	return e
}

// flushLocked drains the write buffer and, when sync is set and the
// journal is file-backed, fsyncs. Caller holds j.mu.
func (j *Journal) flushLocked(sync bool) {
	if j.bw == nil {
		return
	}
	if err := j.bw.Flush(); err != nil && j.werr == nil {
		j.werr = err
	}
	j.lastFlush = time.Now()
	if sync && j.file != nil {
		if err := j.file.Sync(); err != nil && j.werr == nil {
			j.werr = err
		}
	}
}

// Flush forces buffered events to the underlying writer. Nil-safe.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.flushLocked(false)
	return j.werr
}

// Close flushes and fsyncs the journal, closes the backing file, and
// closes every subscriber channel (ending SSE streams). It returns the
// first write error encountered over the journal's lifetime. Append
// after Close is a no-op; Close is idempotent and nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.werr
	}
	j.closed = true
	j.flushLocked(true)
	if j.file != nil {
		if err := j.file.Close(); err != nil && j.werr == nil {
			j.werr = err
		}
	}
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	return j.werr
}

// Subscribe registers a live event feed with the given channel buffer
// (minimum 1). Events appended after the call are delivered in order;
// a subscriber that falls more than buf events behind misses the
// overflow (counted in MetricJournalDropped) — the durable file is the
// lossless record. The cancel function unsubscribes and closes the
// channel; it is idempotent, and Close cancels every subscriber. On a
// nil or closed journal the returned channel is already closed.
func (j *Journal) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 1
	}
	if j == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	ch := make(chan Event, buf)
	j.subs[id] = ch
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

// EventsHandler serves the live event feed as Server-Sent Events
// (text/event-stream): one "event: <type>" / "data: <json>" block per
// journal event, flushed immediately. The stream ends when the client
// disconnects or the journal closes. On a nil journal it responds 503,
// so surfaces can mount it unconditionally.
func (j *Journal) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if j == nil {
			http.Error(w, "event journal not enabled", http.StatusServiceUnavailable)
			return
		}
		ctx := r.Context()
		ch, cancel := j.Subscribe(256)
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		rc := http.NewResponseController(w)
		fmt.Fprint(w, ": mntbench campaign event stream\n\n")
		if err := rc.Flush(); err != nil {
			return
		}
		for {
			select {
			case <-ctx.Done():
				return
			case e, ok := <-ch:
				if !ok {
					return
				}
				data, err := json.Marshal(e)
				if err != nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
					return
				}
				if err := rc.Flush(); err != nil {
					return
				}
			}
		}
	})
}

// scanJournal reads a journal stream, returning the parsed events, the
// byte length of the clean prefix (every complete, valid line), and
// whether a damaged tail follows that prefix. A final line that is
// missing its newline or fails to parse is crash damage (truncated=true,
// its bytes excluded from clean); a bad line with more data after it is
// corruption and returns an error.
func scanJournal(r io.Reader) (events []Event, clean int64, truncated bool, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	lineNo := 0
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) > 0 {
			lineNo++
			complete := line[len(line)-1] == '\n'
			if !complete {
				// A crash mid-write: the bytes after clean are dropped.
				return events, clean, true, nil
			}
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) > 0 {
				var e Event
				if jerr := json.Unmarshal(trimmed, &e); jerr != nil {
					if _, perr := br.Peek(1); errors.Is(perr, io.EOF) {
						return events, clean, true, nil
					}
					return nil, clean, false, fmt.Errorf("line %d: %w", lineNo, jerr)
				}
				if e.Type == EventCampaignStart && e.Schema > JournalSchema {
					return nil, clean, false, fmt.Errorf("line %d: schema %d is newer than supported %d", lineNo, e.Schema, JournalSchema)
				}
				events = append(events, e)
			}
			clean += int64(len(line))
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return events, clean, truncated, nil
			}
			return nil, clean, false, rerr
		}
	}
}

// ReadJournal parses a journal stream. truncated reports a damaged
// final line (dropped from events) — the signature a crashed writer
// leaves behind. Corruption before the final line is an error.
func ReadJournal(r io.Reader) (events []Event, truncated bool, err error) {
	events, _, truncated, err = scanJournal(r)
	return events, truncated, err
}

// ReadJournalFile reads a journal file from disk via ReadJournal.
func ReadJournalFile(path string) (events []Event, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	events, truncated, err = ReadJournal(f)
	if err != nil {
		return nil, truncated, fmt.Errorf("obs: journal %s: %w", path, err)
	}
	return events, truncated, nil
}

// WithJournal returns a context carrying the journal, so instrumented
// callees (the campaign scheduler) can record lifecycle events. A nil
// journal is fine: JournalFrom will return nil and every Journal method
// no-ops on nil.
func WithJournal(ctx context.Context, j *Journal) context.Context {
	return context.WithValue(ctx, ctxJournalKey, j)
}

// JournalFrom returns the context's journal, or nil when none is
// attached (unlike the registry/logger accessors there is no default
// journal: recording is strictly opt-in). A nil context is allowed.
func JournalFrom(ctx context.Context) *Journal {
	if ctx != nil {
		if j, ok := ctx.Value(ctxJournalKey).(*Journal); ok {
			return j
		}
	}
	return nil
}

// Correlation identifies the campaign and 1-based job a piece of work
// belongs to; the scheduler threads it through the context so flow
// spans and journal events of one job can be joined.
type Correlation struct {
	Campaign string
	Job      int
}

// WithCorrelation returns a context carrying the campaign → job
// correlation identity.
func WithCorrelation(ctx context.Context, c Correlation) context.Context {
	return context.WithValue(ctx, ctxCorrelationKey, c)
}

// CorrelationFrom returns the context's correlation identity; the zero
// value when none is attached. A nil context is allowed.
func CorrelationFrom(ctx context.Context) Correlation {
	if ctx != nil {
		if c, ok := ctx.Value(ctxCorrelationKey).(Correlation); ok {
			return c
		}
	}
	return Correlation{}
}
