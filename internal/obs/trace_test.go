package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tracedCtx returns a context carrying a fresh registry and the given
// trace store, the way instrumented code receives one.
func tracedCtx(ts *TraceStore) context.Context {
	return WithTraces(WithRegistry(context.Background(), NewRegistry()), ts)
}

func TestSpanTraceCapture(t *testing.T) {
	ts := NewTraceStore(TracePolicy{})
	ctx := tracedCtx(ts)

	ctx, root := StartSpan(ctx, "flow", L("algorithm", "ortho"))
	root.Annotate("benchmark", "mux21")
	ctx2, place := StartSpan(ctx, "place")
	_, route := StartSpan(ctx2, "route")
	route.SetError(errors.New("no path"))
	route.End()
	place.End()
	root.End()

	snap := ts.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("retained %d traces, want 1", len(snap))
	}
	tr := snap[0]
	if tr.Root != "flow" || !tr.Failed || len(tr.Events) != 3 {
		t.Fatalf("trace = root %q failed %v events %d", tr.Root, tr.Failed, len(tr.Events))
	}
	if tr.Events[0].Parent != -1 {
		t.Errorf("root event parent = %d", tr.Events[0].Parent)
	}
	attrs := tr.RootAttrs()
	if attrs["algorithm"] != "ortho" || attrs["benchmark"] != "mux21" {
		t.Errorf("root attrs = %v", attrs)
	}
	re := tr.findEvent("route")
	if re == nil {
		t.Fatal("route event missing")
	}
	if re.Path != "flow.place.route" || re.Err != "no path" {
		t.Errorf("route event = path %q err %q", re.Path, re.Err)
	}
	pe := tr.findEvent("place")
	if pe == nil || re.Parent != pe.ID || pe.Parent != tr.Events[0].ID {
		t.Errorf("parent links broken: place %+v route %+v", pe, re)
	}
	if kids := tr.Children(pe.ID); len(kids) != 1 || kids[0].Name != "route" {
		t.Errorf("Children(place) = %+v", kids)
	}
	st := ts.Stats()
	if st.Seen != 1 || st.Retained != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	if DefaultTraces().Enabled() {
		t.Fatal("default trace store must start disabled")
	}
	before := DefaultTraces().Stats().Seen
	_, sp := StartSpan(context.Background(), "flow")
	if sp.trace != nil {
		t.Error("span opened a trace while the store is disabled")
	}
	sp.End()
	if after := DefaultTraces().Stats().Seen; after != before {
		t.Errorf("disabled store saw %d new traces", after-before)
	}
}

// mkTrace builds a synthetic completed trace for retention tests.
func mkTrace(root string, start time.Time, d time.Duration, failed bool) *Trace {
	tr := &Trace{Root: root, Start: start, Duration: d, Failed: failed,
		Events: []SpanEvent{{ID: 0, Parent: -1, Name: root, Path: root, Start: start, Duration: d}}}
	if failed {
		tr.Events[0].Err = "boom"
	}
	return tr
}

func TestTraceRetentionPolicy(t *testing.T) {
	ts := NewTraceStore(TracePolicy{MaxFailed: 2, SlowestPerRoot: 2, SampleEvery: 2, MaxSampled: 2})
	base := time.Now()
	at := func(i int) time.Time { return base.Add(time.Duration(i) * time.Second) }

	// Failed traces always retained, ring bounded to the most recent 2.
	for i := 0; i < 3; i++ {
		ts.offer(mkTrace("flow", at(i), time.Millisecond, true))
	}
	// Rising durations: the slowest-2 slice ends at {30ms, 40ms}.
	for i, d := range []time.Duration{10, 20, 30, 40} {
		ts.offer(mkTrace("flow", at(10+i), d*time.Millisecond, false))
	}
	// Fast traces that beat nothing land in the every-2nd sample ring.
	for i := 0; i < 5; i++ {
		ts.offer(mkTrace("flow", at(20+i), time.Millisecond, false))
	}

	snap := ts.Snapshot()
	var failed, slow, sampled int
	for _, tr := range snap {
		switch {
		case tr.Failed:
			failed++
		case tr.Duration >= 30*time.Millisecond:
			slow++
		default:
			sampled++
		}
	}
	if failed != 2 {
		t.Errorf("failed retained = %d, want 2 (ring bound)", failed)
	}
	if slow != 2 {
		t.Errorf("slowest retained = %d, want 2", slow)
	}
	if sampled > 2 {
		t.Errorf("sampled retained = %d, want <= 2", sampled)
	}
	for _, tr := range snap {
		if tr.Duration == 10*time.Millisecond || tr.Duration == 20*time.Millisecond {
			t.Errorf("evicted trace %s (%v) still retained", tr.ID, tr.Duration)
		}
	}
	st := ts.Stats()
	if st.Seen != 12 {
		t.Errorf("seen = %d, want 12", st.Seen)
	}
	if st.Retained != len(snap) || st.Failed != 2 {
		t.Errorf("stats = %+v vs snapshot %d", st, len(snap))
	}

	// Snapshot is sorted by start time.
	for i := 1; i < len(snap); i++ {
		if snap[i].Start.Before(snap[i-1].Start) {
			t.Fatalf("snapshot unsorted at %d", i)
		}
	}
}

func TestTraceKeepAllAndReset(t *testing.T) {
	ts := NewTraceStore(TracePolicy{KeepAll: true})
	base := time.Now()
	for i := 0; i < 5; i++ {
		ts.offer(mkTrace("flow", base.Add(time.Duration(i)*time.Second), time.Millisecond, false))
	}
	if got := ts.Stats(); got.Retained != 5 || got.Seen != 5 {
		t.Fatalf("keep-all stats = %+v", got)
	}
	// IDs are assigned in offer order and unique.
	seen := map[string]bool{}
	for _, tr := range ts.Snapshot() {
		if tr.ID == "" || seen[tr.ID] {
			t.Errorf("bad trace ID %q", tr.ID)
		}
		seen[tr.ID] = true
	}
	ts.Reset()
	if got := ts.Stats(); got.Retained != 0 || got.Seen != 0 {
		t.Errorf("stats after reset = %+v", got)
	}
	if !ts.Enabled() {
		t.Error("Reset must not disable the store")
	}
}

func TestTraceEventCap(t *testing.T) {
	ts := NewTraceStore(TracePolicy{MaxEventsPerTrace: 2, KeepAll: true})
	ctx := tracedCtx(ts)
	ctx, root := StartSpan(ctx, "flow")
	for i := 0; i < 3; i++ {
		cctx, sp := StartSpan(ctx, "stage")
		// Children of a dropped span must not record either.
		_, sub := StartSpan(cctx, "sub")
		sub.End()
		sp.End()
	}
	root.End()

	snap := ts.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("retained %d traces", len(snap))
	}
	tr := snap[0]
	if len(tr.Events) != 2 {
		t.Errorf("events = %d, want 2 (cap)", len(tr.Events))
	}
	// Drops: the first "sub" (its parent was recorded) plus the second
	// and third "stage". The later "sub" spans have dropped parents, so
	// they never reach the trace and never count.
	if tr.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped)
	}
	if st := ts.Stats(); st.DroppedEvents != 3 {
		t.Errorf("stats dropped = %d", st.DroppedEvents)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	base := time.Unix(1700000000, 0)
	worker := &Trace{Root: "worker", Start: base, Duration: 10 * time.Millisecond, ID: "t000001",
		Events: []SpanEvent{
			{ID: 0, Parent: -1, Name: "worker", Path: "worker", Start: base,
				Duration: 10 * time.Millisecond,
				Attrs:    map[string]string{"worker_id": "3", "worker": "w03"}},
			{ID: 1, Parent: 0, Name: "flow", Path: "worker.flow", Start: base.Add(time.Millisecond),
				Duration: 8 * time.Millisecond,
				Attrs:    map[string]string{"benchmark": "mux21"}},
			{ID: 2, Parent: 1, Name: "place.ortho", Path: "worker.flow.place.ortho",
				Start: base.Add(2 * time.Millisecond), Duration: 5 * time.Millisecond},
		}}
	lone := &Trace{Root: "http", Start: base.Add(time.Second), Duration: time.Millisecond, ID: "t000002",
		Events: []SpanEvent{{ID: 0, Parent: -1, Name: "http", Path: "http",
			Start: base.Add(time.Second), Duration: time.Millisecond, Err: "HTTP 500"}}}

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, []*Trace{worker, lone}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome export does not parse: %v\n%s", err, sb.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	byName := map[string]int{} // span name -> index
	rowNames := map[int]string{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			byName[e.Name] = i
		case "M":
			if e.Name == "thread_name" {
				rowNames[e.TID] = e.Args["name"]
			}
		}
	}
	// The worker trace maps onto tid worker_id+1, named after the bounded
	// worker label; flow and stage nest inside the worker event's window.
	we := doc.TraceEvents[byName["worker"]]
	fe := doc.TraceEvents[byName["flow"]]
	se := doc.TraceEvents[byName["place.ortho"]]
	if we.TID != 4 || rowNames[4] != "w03" {
		t.Errorf("worker row: tid %d name %q", we.TID, rowNames[4])
	}
	if fe.TID != we.TID || se.TID != we.TID {
		t.Errorf("flow/stage not on the worker row: %d %d vs %d", fe.TID, se.TID, we.TID)
	}
	if fe.TS < we.TS || fe.TS+fe.Dur > we.TS+we.Dur {
		t.Errorf("flow [%v +%v] not inside worker [%v +%v]", fe.TS, fe.Dur, we.TS, we.Dur)
	}
	if se.TS < fe.TS || se.TS+se.Dur > fe.TS+fe.Dur {
		t.Errorf("stage [%v +%v] not inside flow [%v +%v]", se.TS, se.Dur, fe.TS, fe.Dur)
	}
	if fe.Args["benchmark"] != "mux21" || fe.Args["trace"] != "t000001" {
		t.Errorf("flow args = %v", fe.Args)
	}
	// The workerless trace gets its own high-numbered row, error in args.
	he := doc.TraceEvents[byName["http"]]
	if he.TID < 1000 || he.Args["error"] != "HTTP 500" {
		t.Errorf("http event: tid %d args %v", he.TID, he.Args)
	}
	if name := rowNames[he.TID]; !strings.Contains(name, "http") {
		t.Errorf("http row name = %q", name)
	}
	// Timestamps are relative to the earliest trace: the worker root is 0.
	if we.TS != 0 {
		t.Errorf("base ts = %v, want 0", we.TS)
	}
}

func TestTraceHandler(t *testing.T) {
	ts := NewTraceStore(TracePolicy{})
	ctx := tracedCtx(ts)
	ctx, root := StartSpan(ctx, "flow")
	_, sp := StartSpan(ctx, "place")
	sp.End()
	root.End()
	h := ts.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("index status %d", rec.Code)
	}
	var index struct {
		Enabled bool `json:"enabled"`
		Policy  struct {
			MaxFailed int `json:"MaxFailed"`
		} `json:"policy"`
		Stats  TraceStats `json:"stats"`
		Traces []struct {
			ID     string `json:"id"`
			Root   string `json:"root"`
			Events int    `json:"events"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &index); err != nil {
		t.Fatalf("index does not parse: %v\n%s", err, rec.Body.String())
	}
	if !index.Enabled || index.Stats.Retained != 1 || len(index.Traces) != 1 {
		t.Fatalf("index = %+v", index)
	}
	if index.Policy.MaxFailed != 64 {
		t.Errorf("policy defaults not exposed: %+v", index.Policy)
	}
	if index.Traces[0].Root != "flow" || index.Traces[0].Events != 2 {
		t.Errorf("index row = %+v", index.Traces[0])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+index.Traces[0].ID, nil))
	var tr Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("detail does not parse: %v", err)
	}
	if tr.ID != index.Traces[0].ID || len(tr.Events) != 2 {
		t.Errorf("detail = %+v", tr)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/chrome", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Header().Get("Content-Disposition"), "attachment") {
		t.Errorf("chrome export: %d %q", rec.Code, rec.Header().Get("Content-Disposition"))
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Errorf("chrome export invalid: %v, %d events", err, len(doc.TraceEvents))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing trace: %d", rec.Code)
	}
}

// TestTraceStoreConcurrency runs many traced span trees at once; run
// with -race to check the store and recorder synchronization.
func TestTraceStoreConcurrency(t *testing.T) {
	ts := NewTraceStore(TracePolicy{})
	ctx := tracedCtx(ts)
	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c, root := StartSpan(ctx, "flow")
				root.Annotate("i", fmt.Sprintf("%d-%d", id, i))
				_, sp := StartSpan(c, "place")
				if i%5 == 0 {
					sp.SetError(errors.New("synthetic"))
				}
				sp.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	st := ts.Stats()
	if st.Seen != workers*perWorker {
		t.Errorf("seen = %d, want %d", st.Seen, workers*perWorker)
	}
	if st.Failed == 0 {
		t.Error("no failed traces retained")
	}
	if st.Retained > 64+8+64 {
		t.Errorf("retained %d exceeds policy bound", st.Retained)
	}
}
