package gatelib

import (
	"fmt"
	"sort"

	"repro/internal/layout"
	"repro/internal/network"
)

// CellType classifies technology cells in an expanded layout.
type CellType uint8

const (
	// CellNormal is a regular QCA cell or SiDB pair.
	CellNormal CellType = iota
	// CellInput marks a primary-input cell.
	CellInput
	// CellOutput marks a primary-output cell.
	CellOutput
	// CellFixedMinus is a fixed cell polarized to -1 (turns a majority
	// gate into an AND).
	CellFixedMinus
	// CellFixedPlus is a fixed cell polarized to +1 (majority into OR).
	CellFixedPlus
)

// String returns a short cell-type code.
func (t CellType) String() string {
	switch t {
	case CellNormal:
		return "normal"
	case CellInput:
		return "input"
	case CellOutput:
		return "output"
	case CellFixedMinus:
		return "fixed-1"
	case CellFixedPlus:
		return "fixed+1"
	}
	return fmt.Sprintf("cell(%d)", uint8(t))
}

// CellCoord addresses a technology cell; Z distinguishes crossing layers.
type CellCoord struct{ X, Y, Z int }

// Cell is one technology cell of an expanded layout.
type Cell struct {
	Type  CellType
	Clock int
	// Rank orders cells along the intended signal flow: cells of earlier
	// tiles (in topological arrival order) and earlier positions within a
	// tile (input arm before center before output arm) get lower ranks.
	// Simulators use it to sweep and gate updates directionally.
	Rank int
}

// CellLayout is the technology-cell expansion of a gate-level layout.
type CellLayout struct {
	Name    string
	Library *Library
	cells   map[CellCoord]Cell
	// vias records pairs of cells on different layers that belong to the
	// same signal chain (an inter-layer wire transition). Simulators use
	// this: inter-layer coupling exists only through declared vias.
	vias map[[2]CellCoord]bool
}

// viaKey normalizes the unordered cell pair.
func viaKey(a, b CellCoord) [2]CellCoord {
	if b.Y < a.Y || (b.Y == a.Y && b.X < a.X) || (b.Y == a.Y && b.X == a.X && b.Z < a.Z) {
		a, b = b, a
	}
	return [2]CellCoord{a, b}
}

// AddVia declares an inter-layer signal transition between two cells.
func (cl *CellLayout) AddVia(a, b CellCoord) {
	if cl.vias == nil {
		cl.vias = make(map[[2]CellCoord]bool)
	}
	cl.vias[viaKey(a, b)] = true
}

// IsVia reports whether the two cells form a declared via pair.
func (cl *CellLayout) IsVia(a, b CellCoord) bool {
	return cl.vias[viaKey(a, b)]
}

// NumVias returns the number of declared via pairs.
func (cl *CellLayout) NumVias() int { return len(cl.vias) }

// NumCells returns the number of placed cells.
func (cl *CellLayout) NumCells() int { return len(cl.cells) }

// At returns the cell at c and whether one exists.
func (cl *CellLayout) At(c CellCoord) (Cell, bool) {
	cell, ok := cl.cells[c]
	return cell, ok
}

// Coords lists all cell coordinates in deterministic (Y, X, Z) order.
func (cl *CellLayout) Coords() []CellCoord {
	out := make([]CellCoord, 0, len(cl.cells))
	for c := range cl.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Z < b.Z
	})
	return out
}

// BoundingBox returns the cell-level width and height.
func (cl *CellLayout) BoundingBox() (w, h int) {
	maxX, maxY := -1, -1
	for c := range cl.cells {
		if c.X > maxX {
			maxX = c.X
		}
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	return maxX + 1, maxY + 1
}

// AreaNM2 returns the physical bounding-box area in square nanometres.
func (cl *CellLayout) AreaNM2() float64 {
	w, h := cl.BoundingBox()
	p := cl.Library.CellPitchNM
	return float64(w) * p * float64(h) * p
}

func (cl *CellLayout) put(c CellCoord, cell Cell) error {
	if old, ok := cl.cells[c]; ok {
		if old.Type != cell.Type {
			return fmt.Errorf("cell conflict at (%d,%d,%d): %s vs %s", c.X, c.Y, c.Z, old.Type, cell.Type)
		}
		return nil
	}
	cl.cells[c] = cell
	return nil
}

// tileArrival computes a topological arrival index for every occupied
// tile coordinate (longest distance from the signal sources), so that
// cell ranks increase along the dataflow.
func tileArrival(lay *layout.Layout) (map[layout.Coord]int, error) {
	coords := lay.Coords()
	indeg := make(map[layout.Coord]int, len(coords))
	for _, c := range coords {
		indeg[c] = len(lay.At(c).Incoming)
	}
	var queue []layout.Coord
	for _, c := range coords {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	arrival := make(map[layout.Coord]int, len(coords))
	done := 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		done++
		a := 0
		for _, in := range lay.At(c).Incoming {
			if v := arrival[in] + 1; v > a {
				a = v
			}
		}
		arrival[c] = a
		for _, out := range lay.Outgoing(c) {
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	if done != len(coords) {
		return nil, fmt.Errorf("gatelib: layout %q has a signal-flow cycle", lay.Name)
	}
	return arrival, nil
}

// direction of dataflow between two adjacent Cartesian tiles.
type direction uint8

const (
	dirNorth direction = iota
	dirEast
	dirSouth
	dirWest
)

func dirBetween(from, to layout.Coord) (direction, error) {
	dx, dy := to.X-from.X, to.Y-from.Y
	switch {
	case dx == 1 && dy == 0:
		return dirEast, nil
	case dx == -1 && dy == 0:
		return dirWest, nil
	case dx == 0 && dy == 1:
		return dirSouth, nil
	case dx == 0 && dy == -1:
		return dirNorth, nil
	}
	return dirNorth, fmt.Errorf("tiles %v and %v are not Cartesian neighbors", from, to)
}

func opposite(d direction) direction { return (d + 2) % 4 }

// armCells returns the two arm cells reaching from the tile center
// toward border side d, in 5x5 local coordinates (excluding the center).
func armCells(d direction) [][2]int {
	switch d {
	case dirNorth:
		return [][2]int{{2, 1}, {2, 0}}
	case dirEast:
		return [][2]int{{3, 2}, {4, 2}}
	case dirSouth:
		return [][2]int{{2, 3}, {2, 4}}
	case dirWest:
		return [][2]int{{1, 2}, {0, 2}}
	}
	//lint:ignore panicban unreachable backstop: the switch is exhaustive over the four directions
	panic("bad direction")
}

// ExpandQCAOne expands a Cartesian gate-level layout into QCA cells
// following the QCA ONE standard-cell shapes: every tile is a 5x5 cell
// block, gates are majority-style plus shapes with fixed polarization
// cells for AND/OR, inverters use the diagonal split shape, and
// crossings stack the vertical wire on the crossing layer.
func ExpandQCAOne(lay *layout.Layout) (*CellLayout, error) {
	if lay.Topo != layout.Cartesian {
		return nil, fmt.Errorf("gatelib: QCA ONE expansion needs a Cartesian layout, got %s", lay.Topo)
	}
	cl := &CellLayout{Name: lay.Name, Library: QCAOne, cells: make(map[CellCoord]Cell)}
	const n = 5

	arrival, err := tileArrival(lay)
	if err != nil {
		return nil, err
	}
	for _, c := range lay.Coords() {
		t := lay.At(c)
		baseX, baseY := c.X*n, c.Y*n
		clock := lay.Zone(c)
		rankBase := arrival[c] * 8
		put := func(lx, ly int, ct CellType, rank int) error {
			return cl.put(CellCoord{X: baseX + lx, Y: baseY + ly, Z: c.Z}, Cell{Type: ct, Clock: clock, Rank: rankBase + rank})
		}
		// Gather local dataflow directions.
		var inDirs, outDirs []direction
		for _, src := range t.Incoming {
			d, err := dirBetween(c, src)
			if err != nil {
				return nil, fmt.Errorf("gatelib: %s: %w", lay.Name, err)
			}
			inDirs = append(inDirs, d)
		}
		for _, dst := range lay.Outgoing(c) {
			d, err := dirBetween(c, dst)
			if err != nil {
				return nil, fmt.Errorf("gatelib: %s: %w", lay.Name, err)
			}
			outDirs = append(outDirs, d)
		}

		// armCells lists [inner, outer]; input arms carry the signal from
		// the outer (border) cell inward, output arms the other way.
		emitInArms := func(dirs []direction, ct CellType) error {
			for _, d := range dirs {
				a := armCells(d)
				if err := put(a[0][0], a[0][1], ct, 1); err != nil { // inner
					return err
				}
				if err := put(a[1][0], a[1][1], ct, 0); err != nil { // outer
					return err
				}
			}
			return nil
		}
		emitOutArms := func(dirs []direction, ct CellType) error {
			for _, d := range dirs {
				a := armCells(d)
				if err := put(a[0][0], a[0][1], ct, 3); err != nil {
					return err
				}
				if err := put(a[1][0], a[1][1], ct, 4); err != nil {
					return err
				}
			}
			return nil
		}

		switch {
		case t.Fn == network.PI:
			if err := put(2, 2, CellInput, 2); err != nil {
				return nil, err
			}
			if err := emitOutArms(outDirs, CellNormal); err != nil {
				return nil, err
			}
		case t.Fn == network.PO:
			if err := put(2, 2, CellOutput, 2); err != nil {
				return nil, err
			}
			if err := emitInArms(inDirs, CellNormal); err != nil {
				return nil, err
			}
		case t.IsWire():
			if err := put(2, 2, CellNormal, 2); err != nil {
				return nil, err
			}
			if err := emitInArms(inDirs, CellNormal); err != nil {
				return nil, err
			}
			if err := emitOutArms(outDirs, CellNormal); err != nil {
				return nil, err
			}
		case t.Fn == network.Not:
			cells, ranks, ok := inverterCells(inDirs, outDirs)
			if !ok {
				return nil, fmt.Errorf("gatelib: %s: inverter at %v lacks in/out directions", lay.Name, c)
			}
			for i, p := range cells {
				if err := put(p[0], p[1], CellNormal, ranks[i]); err != nil {
					return nil, err
				}
			}
		case t.Fn == network.And || t.Fn == network.Or || t.Fn == network.Maj:
			if err := put(2, 2, CellNormal, 2); err != nil {
				return nil, err
			}
			if err := emitInArms(inDirs, CellNormal); err != nil {
				return nil, err
			}
			if err := emitOutArms(outDirs, CellNormal); err != nil {
				return nil, err
			}
			if t.Fn != network.Maj {
				// Fixed cell on a free arm's inner position.
				used := make(map[direction]bool)
				for _, d := range inDirs {
					used[d] = true
				}
				for _, d := range outDirs {
					used[d] = true
				}
				placed := false
				for d := dirNorth; d <= dirWest; d++ {
					if !used[d] {
						a := armCells(d)[0]
						ct := CellFixedMinus
						if t.Fn == network.Or {
							ct = CellFixedPlus
						}
						if err := put(a[0], a[1], ct, 2); err != nil {
							return nil, err
						}
						placed = true
						break
					}
				}
				if !placed {
					return nil, fmt.Errorf("gatelib: %s: no free arm for fixed cell of %s at %v", lay.Name, t.Fn, c)
				}
			}
		case t.Fn == network.Fanout:
			if err := put(2, 2, CellNormal, 2); err != nil {
				return nil, err
			}
			if err := emitInArms(inDirs, CellNormal); err != nil {
				return nil, err
			}
			if err := emitOutArms(outDirs, CellNormal); err != nil {
				return nil, err
			}
		case t.Fn == network.Const0 || t.Fn == network.Const1:
			ct := CellFixedMinus
			if t.Fn == network.Const1 {
				ct = CellFixedPlus
			}
			if err := put(2, 2, ct, 2); err != nil {
				return nil, err
			}
			if err := emitOutArms(outDirs, CellNormal); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("gatelib: QCA ONE cannot expand %s at %v", t.Fn, c)
		}
	}
	// Declare vias for connections that change layers: the boundary arm
	// cells of the two tiles form the inter-layer transition.
	for _, c := range lay.Coords() {
		t := lay.At(c)
		for _, src := range t.Incoming {
			if src.Z == c.Z {
				continue
			}
			dIn, err := dirBetween(c, src)
			if err != nil {
				return nil, err
			}
			dOut, err := dirBetween(src, c)
			if err != nil {
				return nil, err
			}
			aArm := armCells(dIn)[1]  // this tile's outer cell toward src
			bArm := armCells(dOut)[1] // src tile's outer cell toward us
			cl.AddVia(
				CellCoord{X: c.X*n + aArm[0], Y: c.Y*n + aArm[1], Z: c.Z},
				CellCoord{X: src.X*n + bArm[0], Y: src.Y*n + bArm[1], Z: src.Z},
			)
		}
	}
	return cl, nil
}

// inverterCells returns the local 5x5 cell positions of a QCA ONE
// inverter tile. Straight configurations use the canonical fork shape —
// the signal splits into two parallel branches that recombine diagonally
// onto the output cell, flipping the polarization — which simulates
// correctly under the bistable model (see internal/qcasim). Corner
// configurations fall back to a schematic diagonal-split shape.
func inverterCells(inDirs, outDirs []direction) (cells [][2]int, ranks []int, ok bool) {
	if len(inDirs) != 1 || len(outDirs) < 1 {
		return nil, nil, false
	}
	in := inDirs[0]
	out := outDirs[0]
	type pair struct{ in, out direction }
	// Cell order: input outer, input inner, four branch cells, inversion
	// cell, output cell — ranks follow the same progression.
	straight := map[pair][][2]int{
		{dirWest, dirEast}:   {{0, 2}, {1, 2}, {1, 1}, {2, 1}, {1, 3}, {2, 3}, {3, 2}, {4, 2}},
		{dirEast, dirWest}:   {{4, 2}, {3, 2}, {3, 1}, {2, 1}, {3, 3}, {2, 3}, {1, 2}, {0, 2}},
		{dirNorth, dirSouth}: {{2, 0}, {2, 1}, {1, 1}, {1, 2}, {3, 1}, {3, 2}, {2, 3}, {2, 4}},
		{dirSouth, dirNorth}: {{2, 4}, {2, 3}, {1, 3}, {1, 2}, {3, 3}, {3, 2}, {2, 1}, {2, 0}},
	}
	straightRanks := []int{0, 1, 2, 3, 2, 3, 4, 5}
	if cs, found := straight[pair{in, out}]; found {
		return cs, straightRanks, true
	}
	// Corner inverter: the in-arm's inner cell and the out-arm's inner
	// cell are diagonal neighbors (perpendicular directions), so leaving
	// out the center cell makes the corner hop anti-aligning — a single
	// diagonal step inverts the signal.
	for _, a := range armCells(in) {
		cells = append(cells, a)
	}
	ranks = append(ranks, 1, 0)
	for _, a := range armCells(out) {
		cells = append(cells, a)
	}
	ranks = append(ranks, 3, 4)
	return cells, ranks, true
}

// ExpandBestagon expands a hexagonal gate-level layout into a schematic
// silicon-dangling-bond dot pattern: each hexagonal tile becomes a
// Y-shaped dot arrangement with input branches at its upper corners and
// the output at its lower corner, mirroring the Bestagon tile geometry
// at reduced dot density.
func ExpandBestagon(lay *layout.Layout) (*CellLayout, error) {
	if lay.Topo != layout.HexOddRow {
		return nil, fmt.Errorf("gatelib: Bestagon expansion needs a hexagonal layout, got %s", lay.Topo)
	}
	cl := &CellLayout{Name: lay.Name, Library: Bestagon, cells: make(map[CellCoord]Cell)}
	bestagonArrival, err := tileArrival(lay)
	if err != nil {
		return nil, err
	}
	const (
		tileW = 16 // lattice columns per hex tile
		tileH = 12 // lattice rows per hex row (3/4 vertical pitch)
	)
	for _, c := range lay.Coords() {
		t := lay.At(c)
		baseX := c.X * tileW
		if c.Y%2 == 1 {
			baseX += tileW / 2
		}
		baseY := c.Y * tileH
		clock := lay.Zone(c)
		arrivalRank := bestagonArrival[c] * 8
		put := func(lx, ly int, ct CellType, rank int) error {
			return cl.put(CellCoord{X: baseX + lx, Y: baseY + ly, Z: c.Z}, Cell{Type: ct, Clock: clock, Rank: arrivalRank + rank})
		}
		// Branch dot chains: NW input, NE input, S output.
		branch := func(points [][2]int, ct CellType, rank0 int) error {
			for i, p := range points {
				if err := put(p[0], p[1], ct, rank0+i); err != nil {
					return err
				}
			}
			return nil
		}
		nw := [][2]int{{2, 0}, {4, 2}, {6, 4}}
		ne := [][2]int{{14, 0}, {12, 2}, {10, 4}}
		south := [][2]int{{8, 8}, {8, 10}}
		center := [][2]int{{8, 6}}

		switch {
		case t.Fn == network.PI:
			if err := branch(center, CellInput, 3); err != nil {
				return nil, err
			}
			if err := branch(south, CellNormal, 4); err != nil {
				return nil, err
			}
		case t.Fn == network.PO:
			if err := branch(nw, CellNormal, 0); err != nil {
				return nil, err
			}
			if err := branch(center, CellOutput, 3); err != nil {
				return nil, err
			}
		default:
			// Wires, gates and fanouts share the Y skeleton; two-input
			// gates use both upper branches, single-input tiles only NW.
			if err := branch(nw, CellNormal, 0); err != nil {
				return nil, err
			}
			if len(t.Incoming) > 1 || t.Fn == network.Fanout {
				if err := branch(ne, CellNormal, 0); err != nil {
					return nil, err
				}
			}
			if err := branch(center, CellNormal, 3); err != nil {
				return nil, err
			}
			if err := branch(south, CellNormal, 4); err != nil {
				return nil, err
			}
		}
	}
	return cl, nil
}

// Expand dispatches to the library-specific cell expansion.
func (l *Library) Expand(lay *layout.Layout) (*CellLayout, error) {
	switch l {
	case QCAOne:
		return ExpandQCAOne(lay)
	case Bestagon:
		return ExpandBestagon(lay)
	}
	return nil, fmt.Errorf("gatelib: no cell expansion for %s", l.Name)
}
