// Package gatelib models FCN gate libraries: which logic functions can be
// placed on a tile, on which grid topology, under which clocking schemes,
// and how a gate tile expands into technology cells (QCA cells for QCA
// ONE, silicon dangling bonds for Bestagon).
package gatelib

import (
	"fmt"
	"strings"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
)

// Library describes one FCN gate library.
type Library struct {
	// Name as displayed by MNT Bench ("QCA ONE", "Bestagon").
	Name string
	// Topology the library's tiles are drawn on.
	Topology layout.Topology
	// Gates is the set of logic functions with native single-tile
	// implementations. Buf (wire) and Fanout are always included.
	Gates network.GateSet
	// Schemes lists the clocking schemes MNT Bench pairs with the library.
	Schemes []*clocking.Scheme
	// MaxFanout is the number of successors a fanout tile can feed.
	MaxFanout int
	// CellsPerTile is the edge length of one tile in technology cells.
	CellsPerTile int
	// CellPitchNM is the center-to-center cell distance in nanometres,
	// used to report physical areas.
	CellPitchNM float64
}

// QCAOne is the QCA ONE standard-cell library (Reis et al., ISCAS 2016):
// Cartesian tiles of 5x5 QCA cells providing AND, OR, NOT, MAJ, wires,
// fanouts and coplanar crossings. XOR has no native tile and must be
// decomposed.
var QCAOne = &Library{
	Name:     "QCA ONE",
	Topology: layout.Cartesian,
	Gates: network.GateSet{
		network.And: true, network.Or: true, network.Not: true,
		network.Maj: true, network.Buf: true, network.Fanout: true,
		network.Const0: true, network.Const1: true,
	},
	Schemes:      []*clocking.Scheme{clocking.TwoDDWave, clocking.USE, clocking.RES, clocking.ESR, clocking.Columnar, clocking.CFE},
	MaxFanout:    2,
	CellsPerTile: 5,
	CellPitchNM:  20,
}

// Bestagon is the hexagonal SiDB library (Walter et al., DAC 2022):
// pointy-top hexagonal tiles of silicon dangling bonds with native
// two-input AND, OR, NAND, NOR, XOR, XNOR, inverters, wires, fanouts and
// crossings, operated under row-based clocking.
var Bestagon = &Library{
	Name:     "Bestagon",
	Topology: layout.HexOddRow,
	Gates: network.GateSet{
		network.And: true, network.Or: true, network.Nand: true,
		network.Nor: true, network.Xor: true, network.Xnor: true,
		network.Not: true, network.Buf: true, network.Fanout: true,
		network.Const0: true, network.Const1: true,
	},
	Schemes:      []*clocking.Scheme{clocking.Row},
	MaxFanout:    2,
	CellsPerTile: 16, // one Bestagon tile spans ~60 SiDB lattice sites; 16 is the hex pitch in dimer rows
	CellPitchNM:  0.768,
}

// All lists the built-in libraries.
func All() []*Library { return []*Library{QCAOne, Bestagon} }

// ByName resolves a library by case-insensitive name, accepting the
// compact aliases "qcaone" and "bestagon".
func ByName(name string) (*Library, error) {
	squash := func(s string) string {
		return strings.ToLower(strings.NewReplacer(" ", "", "_", "", "-", "").Replace(s))
	}
	for _, l := range All() {
		if squash(l.Name) == squash(name) {
			return l, nil
		}
	}
	return nil, fmt.Errorf("gatelib: unknown library %q (available: QCA ONE, Bestagon)", name)
}

// SupportsScheme reports whether the library is distributed with layouts
// under the given clocking scheme.
func (l *Library) SupportsScheme(s *clocking.Scheme) bool {
	for _, ok := range l.Schemes {
		if ok == s {
			return true
		}
	}
	return false
}

// Prepare returns a copy of the logic network rewritten for this
// library: unsupported gate functions are decomposed into supported
// ones and multi-fanout signals are split through explicit fanout nodes
// of the library's maximum degree.
func (l *Library) Prepare(n *network.Network) (*network.Network, error) {
	c := n.Clone()
	if err := c.Decompose(l.Gates); err != nil {
		return nil, fmt.Errorf("gatelib %s: %w", l.Name, err)
	}
	c.SubstituteFanouts(l.MaxFanout)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gatelib %s: prepared network invalid: %w", l.Name, err)
	}
	return c, nil
}

// CanPlace reports whether the library has a tile implementation for the
// given node function (I/O pins and wires always have one).
func (l *Library) CanPlace(g network.Gate) bool {
	switch g {
	case network.PI, network.PO, network.Buf, network.Fanout:
		return true
	}
	return l.Gates.Supports(g)
}

// CheckLayout verifies that every tile of the layout can be realized by
// this library: matching topology, supported clocking scheme, and native
// tile implementations for all placed functions.
func (l *Library) CheckLayout(lay *layout.Layout) error {
	if lay.Topo != l.Topology {
		return fmt.Errorf("gatelib %s: layout topology %s, library needs %s", l.Name, lay.Topo, l.Topology)
	}
	if !l.SupportsScheme(lay.Scheme) {
		return fmt.Errorf("gatelib %s: clocking scheme %s not supported", l.Name, lay.Scheme)
	}
	for _, c := range lay.Coords() {
		t := lay.At(c)
		if t.IsWire() {
			continue
		}
		if !l.CanPlace(t.Fn) {
			return fmt.Errorf("gatelib %s: no tile for %s at %v", l.Name, t.Fn, c)
		}
	}
	return nil
}

// TileAreaNM2 returns the physical area of one tile in square nanometres.
func (l *Library) TileAreaNM2() float64 {
	edge := float64(l.CellsPerTile) * l.CellPitchNM
	return edge * edge
}

// LayoutAreaNM2 returns the physical bounding-box area of a layout in
// square nanometres.
func (l *Library) LayoutAreaNM2(lay *layout.Layout) float64 {
	return float64(lay.Area()) * l.TileAreaNM2()
}
