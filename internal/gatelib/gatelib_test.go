package gatelib

import (
	"testing"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
)

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	n.AddPO(n.AddOr(n.AddAnd(a, ns), n.AddAnd(b, s)), "f")
	return n
}

func xorNet() *network.Network {
	n := network.New("x")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(a, b), "f")
	return n
}

func TestByName(t *testing.T) {
	for _, alias := range []string{"QCA ONE", "qcaone", "qca_one", "QCA-ONE"} {
		l, err := ByName(alias)
		if err != nil || l != QCAOne {
			t.Errorf("ByName(%q) = %v, %v", alias, l, err)
		}
	}
	if l, err := ByName("Bestagon"); err != nil || l != Bestagon {
		t.Errorf("ByName(Bestagon) = %v, %v", l, err)
	}
	if _, err := ByName("sidb9000"); err == nil {
		t.Error("ByName accepted junk")
	}
}

func TestPrepareQCAOneDecomposesXor(t *testing.T) {
	n := xorNet()
	prep, err := QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < prep.Size(); id++ {
		g := prep.Gate(network.ID(id))
		if g == network.Xor || g == network.Xnor || g == network.Nand || g == network.Nor {
			t.Fatalf("%s survived QCA ONE preparation", g)
		}
	}
	eq, err := network.Equivalent(n, prep)
	if err != nil || !eq {
		t.Fatal("preparation changed function")
	}
	if prep.MaxFanout() > QCAOne.MaxFanout {
		t.Error("fanout limit violated")
	}
}

func TestPrepareBestagonKeepsXor(t *testing.T) {
	n := xorNet()
	prep, err := Bestagon.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for id := 0; id < prep.Size(); id++ {
		if prep.Gate(network.ID(id)) == network.Xor {
			found = true
		}
	}
	if !found {
		t.Error("Bestagon preparation lost the native XOR")
	}
}

func TestSchemeSupport(t *testing.T) {
	if !QCAOne.SupportsScheme(clocking.TwoDDWave) || !QCAOne.SupportsScheme(clocking.USE) {
		t.Error("QCA ONE must support 2DDWave and USE")
	}
	if QCAOne.SupportsScheme(clocking.Row) {
		t.Error("QCA ONE must not support ROW")
	}
	if !Bestagon.SupportsScheme(clocking.Row) || Bestagon.SupportsScheme(clocking.TwoDDWave) {
		t.Error("Bestagon supports exactly ROW")
	}
}

func TestCheckLayout(t *testing.T) {
	n := mux21()
	prep, err := QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := QCAOne.CheckLayout(l); err != nil {
		t.Fatal(err)
	}
	if err := Bestagon.CheckLayout(l); err == nil {
		t.Error("Bestagon accepted a Cartesian layout")
	}
}

func TestCheckLayoutRejectsUnsupportedGate(t *testing.T) {
	l := layout.New("x", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.Xor})
	if err := QCAOne.CheckLayout(l); err == nil {
		t.Error("QCA ONE accepted a XOR tile")
	}
}

func TestExpandQCAOne(t *testing.T) {
	n := mux21()
	prep, err := QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := ExpandQCAOne(l)
	if err != nil {
		t.Fatal(err)
	}
	if cells.NumCells() == 0 {
		t.Fatal("no cells")
	}
	// Cell bounding box is at most 5x the tile bounding box.
	tw, th := l.BoundingBox()
	cw, ch := cells.BoundingBox()
	if cw > 5*tw || ch > 5*th {
		t.Errorf("cell box %dx%d exceeds 5x tile box %dx%d", cw, ch, tw, th)
	}
	// AND/OR tiles must carry fixed polarization cells.
	fixed := 0
	inputs, outputs := 0, 0
	for _, c := range cells.Coords() {
		cell, _ := cells.At(c)
		switch cell.Type {
		case CellFixedMinus, CellFixedPlus:
			fixed++
		case CellInput:
			inputs++
		case CellOutput:
			outputs++
		}
	}
	if fixed == 0 {
		t.Error("no fixed cells for AND/OR gates")
	}
	if inputs != 3 || outputs != 1 {
		t.Errorf("I/O cells = %d/%d, want 3/1", inputs, outputs)
	}
	if cells.AreaNM2() <= 0 {
		t.Error("non-positive physical area")
	}
}

func TestExpandBestagon(t *testing.T) {
	n := mux21()
	prep, err := Bestagon.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := hexagonal.Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Bestagon.Expand(hex)
	if err != nil {
		t.Fatal(err)
	}
	if cells.NumCells() == 0 {
		t.Fatal("no SiDB dots")
	}
}

func TestExpandRejectsWrongTopology(t *testing.T) {
	l := layout.New("x", layout.HexOddRow, clocking.Row)
	if _, err := ExpandQCAOne(l); err == nil {
		t.Error("QCA ONE expansion accepted a hexagonal layout")
	}
	l2 := layout.New("x", layout.Cartesian, clocking.TwoDDWave)
	if _, err := ExpandBestagon(l2); err == nil {
		t.Error("Bestagon expansion accepted a Cartesian layout")
	}
}

func TestTileAreaNM2(t *testing.T) {
	// QCA ONE: 5 cells x 20nm = 100nm edge -> 10000 nm^2 per tile.
	if got := QCAOne.TileAreaNM2(); got != 10000 {
		t.Errorf("QCA ONE tile area = %v", got)
	}
	if Bestagon.TileAreaNM2() <= 0 {
		t.Error("Bestagon tile area must be positive")
	}
}
