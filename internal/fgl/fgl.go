// Package fgl reads and writes the .fgl gate-level layout format
// introduced by MNT Bench (contribution 4 of the paper): a standardized,
// human-readable XML representation of FCN gate-level layouts, covering
// grid topology, clocking scheme, gate placements, and signal routing
// across both layers.
package fgl

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
)

// FormatVersion identifies the schema written by this package.
const FormatVersion = "1.0"

// XML document model.

type xmlFGL struct {
	XMLName xml.Name  `xml:"fgl"`
	Version string    `xml:"version"`
	Layout  xmlLayout `xml:"layout"`
	Gates   []xmlGate `xml:"gates>gate"`
}

type xmlLayout struct {
	Name     string      `xml:"name"`
	Topology string      `xml:"topology"`
	Size     xmlCoord    `xml:"size"`
	Clocking xmlClocking `xml:"clocking"`
	Library  string      `xml:"library,omitempty"`
}

type xmlClocking struct {
	Name string `xml:"name"`
	// Zones serializes the periodic pattern of non-built-in schemes, one
	// row per entry, zones space-separated.
	Zones []string `xml:"zones>row,omitempty"`
	// NumZones is the phase count for non-built-in schemes.
	NumZones int `xml:"num_zones,omitempty"`
	// Feedback records whether a custom scheme admits in-plane feedback.
	Feedback bool `xml:"feedback,omitempty"`
}

type xmlCoord struct {
	X int `xml:"x"`
	Y int `xml:"y"`
	Z int `xml:"z"`
}

type xmlGate struct {
	ID       int        `xml:"id"`
	Type     string     `xml:"type"`
	Name     string     `xml:"name,omitempty"`
	Wire     bool       `xml:"wire,omitempty"`
	Loc      xmlCoord   `xml:"loc"`
	Incoming []xmlCoord `xml:"incoming>signal"`
}

// Write serializes the layout as .fgl XML.
func Write(w io.Writer, l *layout.Layout) error {
	width, height := l.BoundingBox()
	clk := xmlClocking{Name: l.Scheme.Name}
	if !l.Scheme.IsBuiltin() {
		clk.NumZones = l.Scheme.NumZones
		clk.Feedback = l.Scheme.InPlaneFeedback
		for _, row := range l.Scheme.Pattern() {
			parts := make([]string, len(row))
			for i, z := range row {
				parts[i] = strconv.Itoa(z)
			}
			clk.Zones = append(clk.Zones, strings.Join(parts, " "))
		}
	}
	doc := xmlFGL{
		Version: FormatVersion,
		Layout: xmlLayout{
			Name:     l.Name,
			Topology: l.Topo.String(),
			Size:     xmlCoord{X: width, Y: height, Z: 2},
			Clocking: clk,
			Library:  l.Library,
		},
	}
	coords := l.Coords()
	// Gates first (stable IDs for readers that index), wires after.
	sort.SliceStable(coords, func(i, j int) bool {
		wi, wj := l.At(coords[i]).IsWire(), l.At(coords[j]).IsWire()
		if wi != wj {
			return !wi
		}
		return false
	})
	for id, c := range coords {
		t := l.At(c)
		g := xmlGate{
			ID:   id,
			Type: t.Fn.String(),
			Name: t.Name,
			Wire: t.IsWire(),
			Loc:  xmlCoord{X: c.X, Y: c.Y, Z: c.Z},
		}
		for _, in := range t.Incoming {
			g.Incoming = append(g.Incoming, xmlCoord{X: in.X, Y: in.Y, Z: in.Z})
		}
		doc.Gates = append(doc.Gates, g)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("fgl: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteString renders the layout to a string.
func WriteString(l *layout.Layout) (string, error) {
	var b strings.Builder
	if err := Write(&b, l); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Read parses a .fgl document into a layout.
func Read(r io.Reader) (*layout.Layout, error) {
	var doc xmlFGL
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("fgl: %w", err)
	}
	topo, err := layout.TopologyFromString(doc.Layout.Topology)
	if err != nil {
		return nil, fmt.Errorf("fgl: %w", err)
	}
	scheme, err := clocking.ByName(doc.Layout.Clocking.Name)
	if err != nil {
		// Not a built-in: reconstruct from the embedded pattern.
		if len(doc.Layout.Clocking.Zones) == 0 {
			return nil, fmt.Errorf("fgl: %w", err)
		}
		var pattern [][]int
		for _, rowText := range doc.Layout.Clocking.Zones {
			var row []int
			for _, field := range strings.Fields(rowText) {
				z, perr := strconv.Atoi(field)
				if perr != nil {
					return nil, fmt.Errorf("fgl: bad zone %q in clocking pattern", field)
				}
				row = append(row, z)
			}
			pattern = append(pattern, row)
		}
		numZones := doc.Layout.Clocking.NumZones
		if numZones == 0 {
			numZones = 4
		}
		scheme, err = clocking.Custom(doc.Layout.Clocking.Name, numZones, pattern, doc.Layout.Clocking.Feedback)
		if err != nil {
			return nil, fmt.Errorf("fgl: %w", err)
		}
	}
	l := layout.New(doc.Layout.Name, topo, scheme)
	l.Library = doc.Layout.Library

	// Two passes: place every tile, then connect.
	for _, g := range doc.Gates {
		fn, err := network.GateFromString(g.Type)
		if err != nil {
			return nil, fmt.Errorf("fgl: gate %d: %w", g.ID, err)
		}
		c := layout.Coord{X: g.Loc.X, Y: g.Loc.Y, Z: g.Loc.Z}
		if err := l.Place(c, layout.Tile{
			Fn:   fn,
			Wire: g.Wire,
			Node: network.Invalid,
			Name: g.Name,
		}); err != nil {
			return nil, fmt.Errorf("fgl: gate %d: %w", g.ID, err)
		}
	}
	for _, g := range doc.Gates {
		dst := layout.Coord{X: g.Loc.X, Y: g.Loc.Y, Z: g.Loc.Z}
		for _, in := range g.Incoming {
			src := layout.Coord{X: in.X, Y: in.Y, Z: in.Z}
			if err := l.Connect(src, dst); err != nil {
				return nil, fmt.Errorf("fgl: gate %d: %w", g.ID, err)
			}
		}
	}
	if w, h := l.BoundingBox(); w > doc.Layout.Size.X || h > doc.Layout.Size.Y {
		return nil, fmt.Errorf("fgl: tiles exceed the declared %dx%d size", doc.Layout.Size.X, doc.Layout.Size.Y)
	}
	return l, nil
}

// ReadString parses a .fgl document from a string.
func ReadString(s string) (*layout.Layout, error) {
	return Read(strings.NewReader(s))
}
