package fgl

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/physical/ortho"
)

func BenchmarkWriteReadParity(b *testing.B) {
	bm, err := bench.ByName("Fontes18", "parity")
	if err != nil {
		b.Fatal(err)
	}
	l, err := ortho.Place(bm.Build(), ortho.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, err := WriteString(l)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReadString(text); err != nil {
			b.Fatal(err)
		}
	}
}
