package fgl

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/ortho"
)

func placeMux(n *network.Network) (*layout.Layout, error) {
	return ortho.Place(n, ortho.Options{})
}

// FuzzReadString checks the .fgl reader never panics and that accepted
// documents survive a write/re-read round trip.
func FuzzReadString(f *testing.F) {
	n := mux21()
	if l, err := placeMux(n); err == nil {
		if text, err := WriteString(l); err == nil {
			f.Add(text)
		}
	}
	f.Add(`<fgl><version>1.0</version><layout><name>x</name><topology>cartesian</topology><size><x>1</x><y>1</y><z>1</z></size><clocking><name>2DDWave</name></clocking></layout></fgl>`)
	f.Add("<fgl>")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		l, err := ReadString(src)
		if err != nil {
			return
		}
		text, werr := WriteString(l)
		if werr != nil {
			t.Fatalf("accepted layout cannot be written: %v", werr)
		}
		back, rerr := ReadString(text)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if back.NumTiles() != l.NumTiles() {
			t.Fatalf("round trip lost tiles: %d -> %d", l.NumTiles(), back.NumTiles())
		}
	})
}
