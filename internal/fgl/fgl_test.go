package fgl

import (
	"strings"
	"testing"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
	"repro/internal/verify"
)

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	n.AddPO(n.AddOr(n.AddAnd(a, ns), n.AddAnd(b, s)), "f")
	return n
}

func TestRoundTripCartesian(t *testing.T) {
	n := mux21()
	l, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadString(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.Name != l.Name || back.Topo != l.Topo || back.Scheme != l.Scheme {
		t.Error("metadata lost in round trip")
	}
	if back.NumTiles() != l.NumTiles() {
		t.Errorf("tiles: %d -> %d", l.NumTiles(), back.NumTiles())
	}
	if back.Area() != l.Area() {
		t.Errorf("area: %d -> %d", l.Area(), back.Area())
	}
	// The reloaded layout must still implement the function.
	if err := verify.Check(back, n); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripHexagonal(t *testing.T) {
	n := mux21()
	cart, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := hexagonal.Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	hex.Library = "Bestagon"
	text, err := WriteString(hex)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Library != "Bestagon" {
		t.Errorf("library lost: %q", back.Library)
	}
	if err := verify.Check(back, n); err != nil {
		t.Fatal(err)
	}
}

func TestWriteContainsHumanReadableStructure(t *testing.T) {
	n := mux21()
	l, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<fgl>", "<topology>cartesian</topology>", "<name>2DDWave</name>", "<type>PI</type>", "<type>PO</type>"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":       "junk",
		"bad topology":  `<fgl><version>1.0</version><layout><name>x</name><topology>weird</topology><size><x>1</x><y>1</y><z>1</z></size><clocking><name>2DDWave</name></clocking></layout></fgl>`,
		"bad clocking":  `<fgl><version>1.0</version><layout><name>x</name><topology>cartesian</topology><size><x>1</x><y>1</y><z>1</z></size><clocking><name>nope</name></clocking></layout></fgl>`,
		"bad gate type": `<fgl><version>1.0</version><layout><name>x</name><topology>cartesian</topology><size><x>1</x><y>1</y><z>1</z></size><clocking><name>2DDWave</name></clocking></layout><gates><gate><id>0</id><type>FROB</type><loc><x>0</x><y>0</y><z>0</z></loc></gate></gates></fgl>`,
		"oversize":      `<fgl><version>1.0</version><layout><name>x</name><topology>cartesian</topology><size><x>1</x><y>1</y><z>1</z></size><clocking><name>2DDWave</name></clocking></layout><gates><gate><id>0</id><type>PI</type><loc><x>5</x><y>0</y><z>0</z></loc></gate></gates></fgl>`,
		"dangling in":   `<fgl><version>1.0</version><layout><name>x</name><topology>cartesian</topology><size><x>2</x><y>1</y><z>1</z></size><clocking><name>2DDWave</name></clocking></layout><gates><gate><id>0</id><type>PO</type><loc><x>1</x><y>0</y><z>0</z></loc><incoming><signal><x>0</x><y>0</y><z>0</z></signal></incoming></gate></gates></fgl>`,
	}
	for name, src := range cases {
		if _, err := ReadString(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGatesListedBeforeWires(t *testing.T) {
	n := mux21()
	l, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	firstWire := strings.Index(text, "<wire>true</wire>")
	lastGate := strings.LastIndex(text, "<type>AND</type>")
	if firstWire >= 0 && lastGate >= 0 && firstWire < lastGate {
		t.Error("wires interleaved before gates")
	}
}

func TestRoundTripCustomScheme(t *testing.T) {
	scheme, err := clocking.Custom("lab-grid", 4, [][]int{
		{0, 1, 2},
		{3, 0, 1},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	l := layout.New("custom", layout.Cartesian, scheme)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(0, 0)}})
	text, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "<row>") {
		t.Fatalf("custom pattern not serialized:\n%s", text)
	}
	back, err := ReadString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scheme.Name != "lab-grid" || !back.Scheme.InPlaneFeedback {
		t.Errorf("scheme metadata lost: %+v", back.Scheme)
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 6; x++ {
			if back.Scheme.Zone(x, y) != scheme.Zone(x, y) {
				t.Fatalf("zone mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestBuiltinSchemesWriteNoPattern(t *testing.T) {
	l := layout.New("b", layout.Cartesian, clocking.USE)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	text, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "<row>") {
		t.Error("built-in scheme serialized a pattern")
	}
}

// TestFormatFreeze locks the exact serialization of a canonical tiny
// layout: any change to the emitted .fgl schema must be deliberate (and
// bump FormatVersion).
func TestFormatFreeze(t *testing.T) {
	l := layout.New("freeze", layout.Cartesian, clocking.TwoDDWave)
	l.Library = "QCA ONE"
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(1, 0), layout.Tile{Fn: network.Not, Incoming: []layout.Coord{layout.C(0, 0)}})
	l.MustPlace(layout.C(2, 0), layout.Tile{Fn: network.PO, Name: "f", Incoming: []layout.Coord{layout.C(1, 0)}})
	got, err := WriteString(l)
	if err != nil {
		t.Fatal(err)
	}
	const want = `<?xml version="1.0" encoding="UTF-8"?>
<fgl>
  <version>1.0</version>
  <layout>
    <name>freeze</name>
    <topology>cartesian</topology>
    <size>
      <x>3</x>
      <y>1</y>
      <z>2</z>
    </size>
    <clocking>
      <name>2DDWave</name>
      <zones></zones>
    </clocking>
    <library>QCA ONE</library>
  </layout>
  <gates>
    <gate>
      <id>0</id>
      <type>PI</type>
      <name>a</name>
      <loc>
        <x>0</x>
        <y>0</y>
        <z>0</z>
      </loc>
      <incoming></incoming>
    </gate>
    <gate>
      <id>1</id>
      <type>NOT</type>
      <loc>
        <x>1</x>
        <y>0</y>
        <z>0</z>
      </loc>
      <incoming>
        <signal>
          <x>0</x>
          <y>0</y>
          <z>0</z>
        </signal>
      </incoming>
    </gate>
    <gate>
      <id>2</id>
      <type>PO</type>
      <name>f</name>
      <loc>
        <x>2</x>
        <y>0</y>
        <z>0</z>
      </loc>
      <incoming>
        <signal>
          <x>1</x>
          <y>0</y>
          <z>0</z>
        </signal>
      </incoming>
    </gate>
  </gates>
</fgl>
`
	if got != want {
		t.Errorf("serialized format changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
