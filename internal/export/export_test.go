package export

import (
	"strings"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
)

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	n.AddPO(n.AddOr(n.AddAnd(a, n.AddNot(s)), n.AddAnd(b, s)), "f")
	return n
}

func qcaCells(t *testing.T) *gatelib.CellLayout {
	t.Helper()
	n := mux21()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := gatelib.ExpandQCAOne(l)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func bestagonCells(t *testing.T) *gatelib.CellLayout {
	t.Helper()
	n := mux21()
	prep, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := hexagonal.Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := gatelib.ExpandBestagon(hex)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestWriteQCAStructure(t *testing.T) {
	cells := qcaCells(t)
	var sb strings.Builder
	if err := WriteQCA(&sb, cells); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"[VERSION]", "qcadesigner_version=2.000000", "[TYPE:DESIGN]",
		"Main Cell Layer", "[TYPE:QCADCell]", "cell_function=QCAD_CELL_INPUT",
		"cell_function=QCAD_CELL_OUTPUT", "cell_function=QCAD_CELL_FIXED",
		"[#TYPE:DESIGN]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestWriteQCACellCountsMatch(t *testing.T) {
	cells := qcaCells(t)
	var sb strings.Builder
	if err := WriteQCA(&sb, cells); err != nil {
		t.Fatal(err)
	}
	counts, err := QCACellCount(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != cells.NumCells() {
		t.Errorf("exported %d cells, layout has %d", total, cells.NumCells())
	}
	if counts["QCAD_CELL_INPUT"] != 3 || counts["QCAD_CELL_OUTPUT"] != 1 {
		t.Errorf("I/O counts: %v", counts)
	}
}

func TestWriteQCAClocksValid(t *testing.T) {
	cells := qcaCells(t)
	var sb strings.Builder
	if err := WriteQCA(&sb, cells); err != nil {
		t.Fatal(err)
	}
	clocks, err := ParseQCAClocks(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(clocks) != cells.NumCells() {
		t.Fatalf("%d clock entries for %d cells", len(clocks), cells.NumCells())
	}
	for _, c := range clocks {
		if c < 0 || c > 3 {
			t.Fatalf("clock %d out of range", c)
		}
	}
}

func TestWriteQCARejectsBestagon(t *testing.T) {
	cells := bestagonCells(t)
	var sb strings.Builder
	if err := WriteQCA(&sb, cells); err == nil {
		t.Fatal("accepted a Bestagon layout")
	}
}

func TestWriteSQDRoundTrip(t *testing.T) {
	cells := bestagonCells(t)
	var sb strings.Builder
	if err := WriteSQD(&sb, cells); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"<siqad>", `<layer type="DB">`, "<dbdot>", "latcoord"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text[:200])
		}
	}
	dots, err := ReadSQDDots(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(dots) != cells.NumCells() {
		t.Errorf("round trip: %d dots, want %d", len(dots), cells.NumCells())
	}
	// Lattice invariants: l in {0, 1}, coordinates non-negative.
	for _, d := range dots {
		if d[2] != 0 && d[2] != 1 {
			t.Fatalf("bad dimer position %v", d)
		}
		if d[0] < 0 || d[1] < 0 {
			t.Fatalf("negative lattice coordinate %v", d)
		}
	}
}

func TestWriteSQDRejectsQCA(t *testing.T) {
	cells := qcaCells(t)
	var sb strings.Builder
	if err := WriteSQD(&sb, cells); err == nil {
		t.Fatal("accepted a QCA layout")
	}
}

func TestReadSQDDotsErrors(t *testing.T) {
	if _, err := ReadSQDDots(strings.NewReader("junk")); err == nil {
		t.Error("accepted junk")
	}
	if _, err := ReadSQDDots(strings.NewReader("<siqad></siqad>")); err == nil {
		t.Error("accepted empty design")
	}
}

func TestQCACellCountRejectsJunk(t *testing.T) {
	if _, err := QCACellCount(strings.NewReader("hello world")); err == nil {
		t.Error("accepted junk")
	}
}
