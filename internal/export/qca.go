// Package export writes cell-level FCN layouts in the interchange
// formats used downstream of MNT Bench: QCADesigner files (.qca) for
// quantum-dot cellular automata simulation and SiQAD files (.sqd) for
// silicon-dangling-bond simulation and fabrication.
package export

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/gatelib"
)

// QCA cell geometry used by QCADesigner's default technology.
const (
	qcaCellSize    = 18.0 // nm center-to-center
	qcaDotDiameter = 5.0  // nm
)

// WriteQCA serializes a QCA ONE cell layout in the QCADesigner 2.0
// design-file dialect: a VERSION block followed by TYPE:DESIGN with one
// main cell layer holding a QCADCell object per cell. Cell functions map
// to QCAD_CELL_{NORMAL, INPUT, OUTPUT, FIXED}; fixed cells carry their
// polarization as a label, matching how AND/OR bias cells are stored.
func WriteQCA(w io.Writer, cl *gatelib.CellLayout) error {
	if cl.Library != gatelib.QCAOne {
		return fmt.Errorf("export: .qca requires a QCA ONE cell layout, got %s", cl.Library.Name)
	}
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "[VERSION]\n")
	fmt.Fprintf(bw, "qcadesigner_version=2.000000\n")
	fmt.Fprintf(bw, "[#VERSION]\n")
	fmt.Fprintf(bw, "[TYPE:DESIGN]\n")

	// Two fixed substrate/drawing layers precede the cell layers in
	// QCADesigner files; simulators skip them, readers expect them.
	fmt.Fprintf(bw, "[TYPE:QCADLayer]\ntype=3\nstatus=1\npszDescription=Substrate\n[#TYPE:QCADLayer]\n")

	// One cell layer per Z level (ground and crossing).
	for z := 0; z <= 1; z++ {
		cells := cellsOnLayer(cl, z)
		if z == 1 && len(cells) == 0 {
			continue
		}
		fmt.Fprintf(bw, "[TYPE:QCADLayer]\ntype=1\nstatus=0\npszDescription=%s\n", layerName(z))
		for _, cc := range cells {
			cell, _ := cl.At(cc)
			writeQCACell(bw, cc.X, cc.Y, cell)
		}
		fmt.Fprintf(bw, "[#TYPE:QCADLayer]\n")
	}
	fmt.Fprintf(bw, "[#TYPE:DESIGN]\n")
	return bw.Flush()
}

func layerName(z int) string {
	if z == 0 {
		return "Main Cell Layer"
	}
	return "Crossing Cell Layer"
}

func cellsOnLayer(cl *gatelib.CellLayout, z int) []gatelib.CellCoord {
	var out []gatelib.CellCoord
	for _, c := range cl.Coords() {
		if c.Z == z {
			out = append(out, c)
		}
	}
	return out
}

func writeQCACell(w io.Writer, x, y int, cell gatelib.Cell) {
	wx := float64(x) * qcaCellSize
	wy := float64(y) * qcaCellSize
	fn, pol := qcaFunction(cell.Type)
	fmt.Fprintf(w, "[TYPE:QCADCell]\n")
	fmt.Fprintf(w, "[TYPE:QCADDesignObject]\n")
	fmt.Fprintf(w, "x=%f\n", wx)
	fmt.Fprintf(w, "y=%f\n", wy)
	fmt.Fprintf(w, "bSelected=FALSE\n")
	fmt.Fprintf(w, "[#TYPE:QCADDesignObject]\n")
	fmt.Fprintf(w, "cell_options.cxCell=%f\n", qcaCellSize)
	fmt.Fprintf(w, "cell_options.cyCell=%f\n", qcaCellSize)
	fmt.Fprintf(w, "cell_options.dot_diameter=%f\n", qcaDotDiameter)
	fmt.Fprintf(w, "cell_options.clock=%d\n", cell.Clock)
	fmt.Fprintf(w, "cell_options.mode=QCAD_CELL_MODE_NORMAL\n")
	fmt.Fprintf(w, "cell_function=%s\n", fn)
	if pol != 0 {
		fmt.Fprintf(w, "label=%+.2f\n", pol)
	}
	fmt.Fprintf(w, "[#TYPE:QCADCell]\n")
}

func qcaFunction(t gatelib.CellType) (name string, polarization float64) {
	switch t {
	case gatelib.CellInput:
		return "QCAD_CELL_INPUT", 0
	case gatelib.CellOutput:
		return "QCAD_CELL_OUTPUT", 0
	case gatelib.CellFixedMinus:
		return "QCAD_CELL_FIXED", -1
	case gatelib.CellFixedPlus:
		return "QCAD_CELL_FIXED", 1
	default:
		return "QCAD_CELL_NORMAL", 0
	}
}

// QCACellCount parses a QCADesigner-dialect document written by WriteQCA
// and returns the number of cells per function, a cheap structural check
// used by tests and by the CLI's stats command.
func QCACellCount(r io.Reader) (map[string]int, error) {
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	sawVersion := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "[VERSION]" {
			sawVersion = true
		}
		if strings.HasPrefix(line, "cell_function=") {
			counts[strings.TrimPrefix(line, "cell_function=")]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawVersion {
		return nil, fmt.Errorf("export: not a QCADesigner file (missing [VERSION])")
	}
	return counts, nil
}

// ParseQCAClocks extracts the clock index of every cell, for validating
// that exported layouts keep their clocking scheme.
func ParseQCAClocks(r io.Reader) ([]int, error) {
	var clocks []int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "cell_options.clock=") {
			v, err := strconv.Atoi(strings.TrimPrefix(line, "cell_options.clock="))
			if err != nil {
				return nil, fmt.Errorf("export: bad clock line %q", line)
			}
			clocks = append(clocks, v)
		}
	}
	return clocks, sc.Err()
}
