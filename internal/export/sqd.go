package export

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/gatelib"
)

// SiQAD lattice conventions: dangling bonds live on the Si(100)-2x1
// hydrogen-passivated surface, addressed by (n, m, l) — dimer column,
// dimer row, and the 0/1 position within the dimer.
type sqdDocument struct {
	XMLName xml.Name   `xml:"siqad"`
	Program sqdProgram `xml:"program"`
	Layers  []sqdLayer `xml:"design>layer"`
}

type sqdProgram struct {
	Filepurpose string `xml:"file_purpose"`
	Version     string `xml:"version"`
}

type sqdLayer struct {
	Type   string      `xml:"type,attr"`
	DBDots []sqdDBDot  `xml:"dbdot,omitempty"`
	Defect []sqdDefect `xml:"defect,omitempty"`
}

type sqdDBDot struct {
	LayerID  int         `xml:"layer_id"`
	LatCoord sqdLatCoord `xml:"latcoord"`
	Color    string      `xml:"color"`
}

type sqdLatCoord struct {
	N int `xml:"n,attr"`
	M int `xml:"m,attr"`
	L int `xml:"l,attr"`
}

type sqdDefect struct {
	LatCoord sqdLatCoord `xml:"latcoord"`
}

// WriteSQD serializes a Bestagon cell layout as a SiQAD .sqd design
// file: one DB layer whose dbdot entries carry H-Si(100)-2x1 lattice
// coordinates. Our schematic expansion places one dangling bond per
// lattice site; (x, y) map to dimer column n = x and row pair
// m = y/2, l = y%2.
func WriteSQD(w io.Writer, cl *gatelib.CellLayout) error {
	if cl.Library != gatelib.Bestagon {
		return fmt.Errorf("export: .sqd requires a Bestagon cell layout, got %s", cl.Library.Name)
	}
	doc := sqdDocument{
		Program: sqdProgram{
			Filepurpose: FilePurpose(),
			Version:     "0.3.3",
		},
	}
	layer := sqdLayer{Type: "DB"}
	for _, c := range cl.Coords() {
		cell, _ := cl.At(c)
		layer.DBDots = append(layer.DBDots, sqdDBDot{
			LayerID: 2,
			LatCoord: sqdLatCoord{
				N: c.X,
				M: c.Y / 2,
				L: c.Y % 2,
			},
			Color: dotColor(cell.Type),
		})
	}
	doc.Layers = []sqdLayer{{Type: "Lattice"}, layer}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// FilePurpose returns the purpose string recorded in exported .sqd
// files.
func FilePurpose() string { return "save" }

func dotColor(t gatelib.CellType) string {
	switch t {
	case gatelib.CellInput:
		return "#ff00ff00" // green: inputs
	case gatelib.CellOutput:
		return "#ffff0000" // red: outputs
	default:
		return "#ffc8c8c8"
	}
}

// ReadSQDDots parses an .sqd document and returns the lattice
// coordinates of all dangling bonds (used for round-trip checks and by
// the sidbsim package to load designs).
func ReadSQDDots(r io.Reader) ([][3]int, error) {
	var doc sqdDocument
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	var dots [][3]int
	for _, layer := range doc.Layers {
		if !strings.EqualFold(layer.Type, "DB") {
			continue
		}
		for _, d := range layer.DBDots {
			dots = append(dots, [3]int{d.LatCoord.N, d.LatCoord.M, d.LatCoord.L})
		}
	}
	if len(dots) == 0 {
		return nil, fmt.Errorf("export: no DB layer with dbdots found")
	}
	return dots, nil
}
