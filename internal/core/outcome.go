package core

import (
	"context"
	"errors"

	"repro/internal/physical/exact"
	"repro/internal/physical/nanoplacer"
	"repro/internal/verify"
)

// Outcome classifies how a flow ended; it is the label of the
// mntbench_flow_total counter and the key of Database.Skipped.
type Outcome string

// The flow outcomes.
const (
	// OutcomeOK: the flow produced a (at least DRC-) verified layout.
	OutcomeOK Outcome = "ok"
	// OutcomeInfeasible: the combination cannot work or exceeds a
	// feasibility bound (size caps, scheme restrictions, no layout within
	// the area bound).
	OutcomeInfeasible Outcome = "infeasible"
	// OutcomeTimeout: a placement search exhausted its time budget.
	OutcomeTimeout Outcome = "timeout"
	// OutcomeVerifyFailed: a layout was produced but failed library
	// conformance, DRC, or equivalence checking.
	OutcomeVerifyFailed Outcome = "verify_failed"
	// OutcomeCanceled: the context was canceled mid-flow.
	OutcomeCanceled Outcome = "canceled"
	// OutcomeError: any other failure.
	OutcomeError Outcome = "error"
)

// ErrInfeasible marks flows skipped because the input exceeds a
// feasibility bound, as opposed to genuine failures; check with
// errors.Is.
var ErrInfeasible = errors.New("flow infeasible")

// ErrVerifyFailed marks layouts that failed library conformance, design
// rule checking, or equivalence checking; check with errors.Is.
var ErrVerifyFailed = errors.New("verification failed")

// ClassifyOutcome maps a RunFlow error to its outcome; nil maps to
// OutcomeOK. The campaign scheduler calls it once per flow result on
// the merge path, so it must stay allocation-free.
//
//perf:hot
func ClassifyOutcome(err error) Outcome {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return OutcomeCanceled
	case errors.Is(err, exact.ErrTimeout):
		return OutcomeTimeout
	case errors.Is(err, ErrVerifyFailed), errors.Is(err, verify.ErrDRC):
		return OutcomeVerifyFailed
	case errors.Is(err, ErrInfeasible),
		errors.Is(err, exact.ErrNoLayout),
		errors.Is(err, nanoplacer.ErrNoLayout),
		errors.Is(err, nanoplacer.ErrTooLarge):
		return OutcomeInfeasible
	}
	return OutcomeError
}

// outcomeLabel renders ClassifyOutcome's result as a metric label value;
// the Outcome constants form a closed set.
//
//lint:bounded
func outcomeLabel(err error) string { return string(ClassifyOutcome(err)) }
