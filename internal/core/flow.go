// Package core is the MNT Bench engine: it runs every feasible
// combination of gate library, clocking scheme, physical design
// algorithm, and optimization over the benchmark suites, stores the
// resulting layouts with their metrics, selects the best layout per
// function, and renders the paper's Table I.
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/gatelib"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/exact"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/inord"
	"repro/internal/physical/nanoplacer"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/verify"
)

// Algorithm identifies a physical design method.
type Algorithm string

// The physical design algorithms MNT Bench runs.
const (
	AlgoExact      Algorithm = "exact"
	AlgoOrtho      Algorithm = "ortho"
	AlgoNanoPlaceR Algorithm = "NanoPlaceR"
)

// Flow is one tool combination: a gate library, a clocking scheme, a
// physical design algorithm, and optional optimizations.
type Flow struct {
	Library   *gatelib.Library
	Scheme    *clocking.Scheme
	Algorithm Algorithm
	// InputOrder applies the InOrd (SDN) input-ordering optimization
	// (ortho-based flows only).
	InputOrder bool
	// PostLayout applies post-layout optimization.
	PostLayout bool
	// Hexagonalize applies the 45-degree Cartesian-to-hexagonal mapping
	// (mandatory leg of every ortho-based Bestagon flow).
	Hexagonalize bool
}

// String renders the flow like the paper's Algorithm column, e.g.
// "ortho, InOrd (SDN), 45°, PLO".
func (f Flow) String() string {
	parts := []string{string(f.Algorithm)}
	if f.InputOrder {
		parts = append(parts, "InOrd (SDN)")
	}
	if f.Hexagonalize {
		parts = append(parts, "45°")
	}
	if f.PostLayout {
		parts = append(parts, "PLO")
	}
	return strings.Join(parts, ", ")
}

// ID is a compact, filesystem-safe flow identifier.
func (f Flow) ID() string {
	id := string(f.Algorithm)
	if f.InputOrder {
		id += "+inord"
	}
	if f.Hexagonalize {
		id += "+hex"
	}
	if f.PostLayout {
		id += "+plo"
	}
	return fmt.Sprintf("%s_%s_%s", libID(f.Library), strings.ToLower(f.Scheme.Name), id)
}

// libID is the flow-naming and metric identifier of a gate library; the
// catalogue of libraries (QCA ONE, ToPoliNano, Bestagon) is a fixed set.
//
//lint:bounded
func libID(l *gatelib.Library) string {
	return strings.ToLower(strings.ReplaceAll(l.Name, " ", ""))
}

// algoLabel renders a placement algorithm as a metric label value; the
// Algorithm constants form a closed set.
//
//lint:bounded
func algoLabel(a Algorithm) string { return string(a) }

// Limits bounds the per-flow effort so full-suite generation stays
// tractable; the zero value picks the defaults used for Table I.
type Limits struct {
	// Workers is the number of concurrent campaign workers used by
	// Generate and by the InOrd candidate search (default: all CPU
	// cores). Results are deterministic regardless of the value: output
	// order, random seeds, and tie-breaks never depend on scheduling.
	// The one caveat is the wall-clock budgets below — an anytime
	// search (exact) running within a sliver of its deadline can flip
	// between success and timeout when workers oversubscribe the CPUs,
	// exactly as it can between two serial runs on different machines.
	Workers int
	// ExactTimeout is the search budget per function (default 3s).
	ExactTimeout time.Duration
	// ExactSteps, when positive, additionally bounds the exact search by
	// a deterministic backtracking-step budget. Unlike ExactTimeout, the
	// same network always explores the same search prefix regardless of
	// machine load, making success-vs-timeout reproducible; the
	// conformance selftest relies on this for worker-count-invariant
	// reports (0 = wall clock only).
	ExactSteps int
	// ExactMaxNodes skips exact for larger prepared networks (default 12).
	ExactMaxNodes int
	// NanoMaxNodes skips NanoPlaceR for larger networks (default 120).
	NanoMaxNodes int
	// NanoTimeout is the stochastic search budget (default 5s).
	NanoTimeout time.Duration
	// PLOMaxTiles skips post-layout optimization for larger layouts
	// (default 60000).
	PLOMaxTiles int
	// PLOTimeout bounds one optimization run (default 20s).
	PLOTimeout time.Duration
	// InOrdMaxNodes: above this, InOrd uses only the barycenter order
	// instead of the full candidate search (default 1200).
	InOrdMaxNodes int
	// VerifyMaxTiles skips equivalence checking for larger layouts
	// (default 300000); DRC always runs.
	VerifyMaxTiles int
	// DiscardLayouts drops each entry's layout after metrics and
	// verification, keeping table generation over the large suites within
	// memory bounds. Downloads (the web server) need layouts kept.
	DiscardLayouts bool
}

func (l Limits) withDefaults() Limits {
	if l.Workers <= 0 {
		l.Workers = runtime.NumCPU()
	}
	if l.ExactTimeout <= 0 {
		l.ExactTimeout = 3 * time.Second
	}
	if l.ExactMaxNodes <= 0 {
		l.ExactMaxNodes = 12
	}
	if l.NanoMaxNodes <= 0 {
		l.NanoMaxNodes = 120
	}
	if l.NanoTimeout <= 0 {
		l.NanoTimeout = 5 * time.Second
	}
	if l.PLOMaxTiles <= 0 {
		l.PLOMaxTiles = 60000
	}
	if l.PLOTimeout <= 0 {
		l.PLOTimeout = 20 * time.Second
	}
	if l.InOrdMaxNodes <= 0 {
		l.InOrdMaxNodes = 1200
	}
	if l.VerifyMaxTiles <= 0 {
		l.VerifyMaxTiles = 300000
	}
	return l
}

// Entry is one generated layout with its metrics.
type Entry struct {
	Benchmark bench.Benchmark
	Flow      Flow
	Layout    *layout.Layout
	Width     int
	Height    int
	Area      int
	Gates     int
	Wires     int
	Crossings int
	// Runtime is the physical design wall time: placement plus the
	// optional hexagonalization and post-layout optimization stages. It
	// excludes library preparation and verification (DRC, equivalence) —
	// the paper's t column reports tool effort, not checking effort.
	Runtime time.Duration
	// Stages records the wall time of every pipeline stage that ran,
	// keyed by span name: prepare, place.<algorithm>, hexagonalize,
	// postlayout, drc, equivalence.
	Stages map[string]time.Duration
	// Verified is true when the layout passed DRC and equivalence
	// checking; VerifyNote explains partial verification.
	Verified   bool
	VerifyNote string
}

// Metric families recorded by the core engine.
const (
	// MetricFlowTotal counts finished flows, labeled by outcome.
	MetricFlowTotal = "mntbench_flow_total"
	// MetricCampaignTotal / MetricCampaignDone gauge a Generate
	// campaign's progress.
	MetricCampaignTotal = "mntbench_campaign_flows_total"
	MetricCampaignDone  = "mntbench_campaign_flows_done"
	// MetricCampaignCurrent is an info gauge (value 1) labeled with the
	// benchmark currently being generated.
	MetricCampaignCurrent = "mntbench_campaign_current"
	// MetricCampaignWorkers gauges the worker count of the current
	// campaign; MetricCampaignInflight gauges the flows executing right
	// now (0 <= inflight <= workers).
	MetricCampaignWorkers  = "mntbench_campaign_workers"
	MetricCampaignInflight = "mntbench_campaign_inflight"
)

// Pipeline stage span names (see Entry.Stages and obs.SpanMetric).
const (
	StagePrepare      = "prepare"
	StageHexagonalize = "hexagonalize"
	StagePostLayout   = "postlayout"
	StageDRC          = "drc"
	StageEquivalence  = "equivalence"
	// StageWorker wraps every flow a campaign worker executes; its span
	// carries a per-worker label from the bounded workerLabel set.
	StageWorker = "worker"
)

// workerLabel names a campaign worker for metric labels. The set is
// bounded: workers beyond 31 share the "w32+" value.
//
//lint:bounded
func workerLabel(i int) string {
	if i < 0 || i > 31 {
		return "w32+"
	}
	return fmt.Sprintf("w%02d", i)
}

// StagePlace returns the placement stage name for an algorithm, e.g.
// "place.ortho".
func StagePlace(a Algorithm) string { return "place." + strings.ToLower(string(a)) }

// netSource supplies the networks a flow runs on. The campaign
// scheduler backs it with the shared per-campaign cache; the one-shot
// entry points build and prepare locally.
type netSource interface {
	// Base returns the logic network the flow lays out. The flow owns
	// the returned network exclusively (it is never shared with another
	// running flow) but must not mutate it: equivalence checking reads
	// it after placement.
	Base() (*network.Network, error)
	// Prepared returns the library-prepared rewrite of the base
	// network, likewise owned exclusively by the flow.
	Prepared(lib *gatelib.Library) (*network.Network, error)
}

// localSource prepares on demand for single-flow entry points.
type localSource struct{ n *network.Network }

func (s localSource) Base() (*network.Network, error) { return s.n, nil }
func (s localSource) Prepared(lib *gatelib.Library) (*network.Network, error) {
	return lib.Prepare(s.n)
}

// RunFlow executes one flow on one benchmark. A nil error with a nil
// Layout never occurs: infeasible or out-of-budget flows return an
// error (classify it with ClassifyOutcome). The context carries the
// obs registry/logger for spans and may cancel the flow between stages.
func RunFlow(ctx context.Context, b bench.Benchmark, flow Flow, limits Limits) (*Entry, error) {
	return runFlowImpl(ctx, b, localSource{b.Build()}, flow, limits)
}

// RunFlowOnNetwork executes one flow on an ad-hoc network that is not
// part of a registered benchmark suite (used by the CLI's layout
// command). set names the pseudo-suite in the resulting entry.
func RunFlowOnNetwork(ctx context.Context, n *network.Network, set string, flow Flow, limits Limits) (*Entry, error) {
	b := bench.Benchmark{
		Set:    set,
		Name:   n.Name,
		PubIn:  n.NumPIs(),
		PubOut: n.NumPOs(),
		// PubNodes mirrors the MNT Bench convention of counting logic
		// nodes without buffers/fanouts.
		PubNodes: n.NumLogicGates(),
		Build:    n.Clone,
	}
	return runFlowImpl(ctx, b, localSource{n}, flow, limits)
}

func runFlowImpl(ctx context.Context, b bench.Benchmark, src netSource, flow Flow, limits Limits) (entry *Entry, err error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented fallback: a nil ctx means "no caller context"
		ctx = context.Background()
	}
	limits = limits.withDefaults()

	ctx, flowSpan := obs.StartSpan(ctx, "flow",
		obs.L("algorithm", algoLabel(flow.Algorithm)), obs.L("library", libID(flow.Library)))
	// Trace-only identity: benchmark names and flow IDs are unbounded and
	// must stay out of metric labels, but retained traces want them.
	flowSpan.Annotate("set", b.Set)
	flowSpan.Annotate("benchmark", b.Name)
	flowSpan.Annotate("flow", flow.ID())
	if corr := obs.CorrelationFrom(ctx); corr.Campaign != "" {
		// Correlation IDs thread campaign → job → flow: a journal reader
		// holding a (campaign, job) pair can find the matching flow trace.
		flowSpan.Annotate("campaign", corr.Campaign)
		flowSpan.Annotate("job", strconv.Itoa(corr.Job))
	}
	defer func() {
		flowSpan.SetError(err)
		flowSpan.End()
		obs.RegistryFrom(ctx).Counter(MetricFlowTotal,
			obs.L("outcome", outcomeLabel(err))).Inc()
	}()

	// stage times one pipeline step under a span, aborting early when
	// the campaign has been canceled.
	stages := make(map[string]time.Duration)
	stage := func(name string, fn func() error) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("core: canceled before %s: %w", name, cerr)
		}
		_, sp := obs.StartSpan(ctx, name)
		serr := fn()
		sp.SetError(serr)
		stages[name] = sp.End()
		return serr
	}

	// base is fetched at most once per flow; the clone a cached source
	// hands out is reused by placement and equivalence checking.
	var base *network.Network
	getBase := func() (*network.Network, error) {
		if base != nil {
			return base, nil
		}
		var berr error
		base, berr = src.Base()
		return base, berr
	}

	var prepared *network.Network
	if err = stage(StagePrepare, func() error {
		var perr error
		prepared, perr = src.Prepared(flow.Library)
		return perr
	}); err != nil {
		return nil, err
	}

	if flow.Algorithm != AlgoExact && flow.Algorithm != AlgoOrtho && flow.Algorithm != AlgoNanoPlaceR {
		return nil, fmt.Errorf("core: unknown algorithm %q", flow.Algorithm)
	}
	placeStage := StagePlace(flow.Algorithm)
	var l *layout.Layout
	if err = stage(placeStage, func() error {
		var perr error
		switch flow.Algorithm {
		case AlgoExact:
			l, perr = runExact(prepared, flow, limits)
		case AlgoOrtho:
			var n *network.Network
			if n, perr = getBase(); perr == nil {
				l, perr = runOrtho(n, flow, limits)
			}
		case AlgoNanoPlaceR:
			l, perr = runNano(prepared, flow, limits)
		}
		return perr
	}); err != nil {
		return nil, err
	}

	if flow.Hexagonalize {
		if err = stage(StageHexagonalize, func() error {
			var herr error
			l, herr = hexagonal.Map(l)
			return herr
		}); err != nil {
			return nil, err
		}
	}
	if flow.PostLayout {
		if l.NumTiles() > limits.PLOMaxTiles {
			return nil, fmt.Errorf("core: %w: layout too large for PLO (%d tiles > %d)",
				ErrInfeasible, l.NumTiles(), limits.PLOMaxTiles)
		}
		if err = stage(StagePostLayout, func() error {
			var oerr error
			l, oerr = postlayout.Optimize(l, postlayout.Options{Timeout: limits.PLOTimeout})
			return oerr
		}); err != nil {
			return nil, err
		}
	}

	l.Name = b.Name
	l.Library = flow.Library.Name

	// The paper's runtime column: placement and optimization effort only.
	runtime := stages[placeStage] + stages[StageHexagonalize] + stages[StagePostLayout]
	e := &Entry{Benchmark: b, Flow: flow, Layout: l, Runtime: runtime, Stages: stages}
	s := l.ComputeStats()
	e.Width, e.Height, e.Area = s.Width, s.Height, s.Area
	e.Gates, e.Wires, e.Crossings = s.Gates, s.Wires, s.Crossings

	if err = stage(StageDRC, func() error {
		if cerr := flow.Library.CheckLayout(l); cerr != nil {
			return fmt.Errorf("core: %s/%s %s: %w: %w", b.Set, b.Name, flow, ErrVerifyFailed, cerr)
		}
		if derr := verify.CheckDesignRules(l).Error(); derr != nil {
			return fmt.Errorf("core: %s/%s %s: %w: %w", b.Set, b.Name, flow, ErrVerifyFailed, derr)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if l.NumTiles() <= limits.VerifyMaxTiles {
		if err = stage(StageEquivalence, func() error {
			n, verr := getBase()
			if verr != nil {
				return fmt.Errorf("core: %s/%s %s: %w: %w", b.Set, b.Name, flow, ErrVerifyFailed, verr)
			}
			eq, verr := verify.Equivalent(l, n)
			if verr != nil {
				return fmt.Errorf("core: %s/%s %s: %w: %w", b.Set, b.Name, flow, ErrVerifyFailed, verr)
			}
			if !eq {
				return fmt.Errorf("core: %s/%s %s: %w: layout not equivalent to network", b.Set, b.Name, flow, ErrVerifyFailed)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		e.Verified = true
	} else {
		e.VerifyNote = "DRC only (layout above equivalence-check size limit)"
	}
	if limits.DiscardLayouts {
		e.Layout = nil
	}
	return e, nil
}

func runExact(prepared *network.Network, flow Flow, limits Limits) (*layout.Layout, error) {
	if prepared.NumGates()+prepared.NumPIs()+prepared.NumPOs() > limits.ExactMaxNodes {
		return nil, fmt.Errorf("core: %w: network too large for exact (%d nodes > %d)",
			ErrInfeasible, prepared.NumGates()+prepared.NumPIs()+prepared.NumPOs(), limits.ExactMaxNodes)
	}
	return exact.Place(prepared, exact.Options{
		Scheme:   flow.Scheme,
		Topo:     flow.Library.Topology,
		Timeout:  limits.ExactTimeout,
		MaxSteps: limits.ExactSteps,
	})
}

func runOrtho(n *network.Network, flow Flow, limits Limits) (*layout.Layout, error) {
	if flow.Scheme != clocking.TwoDDWave && !flow.Hexagonalize {
		return nil, fmt.Errorf("core: %w: ortho targets 2DDWave, not %s", ErrInfeasible, flow.Scheme)
	}
	// ortho itself only guarantees two-input nodes; functions the target
	// library cannot realize (e.g. XOR under QCA ONE) must be decomposed
	// here. MAJ is excluded because ortho has only two input ports.
	set := network.GateSet{network.Buf: true, network.Fanout: true}
	for g, ok := range flow.Library.Gates {
		if ok && g != network.Maj {
			set[g] = true
		}
	}
	work := n.Clone()
	if err := work.Decompose(set); err != nil {
		return nil, err
	}
	if !flow.InputOrder {
		return ortho.Place(work, ortho.Options{})
	}
	// The full InOrd candidate search evaluates ortho once per PI swap;
	// beyond these sizes a single barycenter-ordered run is the right
	// cost/benefit point.
	const maxSwapPIs = 48
	size := work.NumGates() + work.NumPIs() + work.NumPOs()
	if size > limits.InOrdMaxNodes || work.NumPIs() > maxSwapPIs {
		return ortho.Place(work, ortho.Options{InputOrder: inord.BarycenterOrder(work)})
	}
	l, _, err := inord.Place(work, inord.Options{Workers: limits.Workers})
	return l, err
}

func runNano(prepared *network.Network, flow Flow, limits Limits) (*layout.Layout, error) {
	return nanoplacer.Place(prepared, nanoplacer.Options{
		Scheme:   flow.Scheme,
		Topo:     flow.Library.Topology,
		Seed:     nanoSeed(prepared.Name, flow),
		Timeout:  limits.NanoTimeout,
		MaxNodes: limits.NanoMaxNodes,
	})
}

// nanoSeed derives the NanoPlaceR seed deterministically from the
// benchmark name and the flow identifier, so the stochastic search is
// repeatable run-to-run and independent of campaign worker scheduling
// (no shared random state between concurrent flows).
func nanoSeed(name string, flow Flow) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, name)
	_, _ = io.WriteString(h, "|")
	_, _ = io.WriteString(h, flow.ID())
	s := h.Sum64()
	if s == 0 {
		return 1 // nanoplacer treats 0 as "use the default seed"
	}
	return s
}

// Flows enumerates the feasible tool combinations for a library, in the
// order MNT Bench explores them.
func Flows(lib *gatelib.Library) []Flow {
	var flows []Flow
	if lib.Topology == layout.Cartesian {
		for _, scheme := range []*clocking.Scheme{clocking.TwoDDWave, clocking.USE, clocking.RES, clocking.ESR} {
			flows = append(flows, Flow{Library: lib, Scheme: scheme, Algorithm: AlgoExact})
		}
		flows = append(flows,
			Flow{Library: lib, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho},
			Flow{Library: lib, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho, InputOrder: true},
			Flow{Library: lib, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho, InputOrder: true, PostLayout: true},
			Flow{Library: lib, Scheme: clocking.TwoDDWave, Algorithm: AlgoNanoPlaceR},
			Flow{Library: lib, Scheme: clocking.TwoDDWave, Algorithm: AlgoNanoPlaceR, PostLayout: true},
		)
		return flows
	}
	// Hexagonal (Bestagon): ROW clocking; ortho-based flows go through
	// the 45° mapping.
	flows = append(flows,
		Flow{Library: lib, Scheme: clocking.Row, Algorithm: AlgoExact},
		Flow{Library: lib, Scheme: clocking.Row, Algorithm: AlgoOrtho, Hexagonalize: true},
		Flow{Library: lib, Scheme: clocking.Row, Algorithm: AlgoOrtho, InputOrder: true, Hexagonalize: true},
		Flow{Library: lib, Scheme: clocking.Row, Algorithm: AlgoOrtho, InputOrder: true, Hexagonalize: true, PostLayout: true},
		Flow{Library: lib, Scheme: clocking.Row, Algorithm: AlgoNanoPlaceR},
	)
	return flows
}
