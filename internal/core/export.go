package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fgl"
)

// ManifestSchema versions the campaign manifest wire format. Readers
// reject manifests written by a newer schema instead of guessing.
const ManifestSchema = 1

// ManifestFileName is the canonical manifest file written next to the
// .fgl layouts of an exported campaign database.
const ManifestFileName = "manifest.json"

// Manifest describes an exported campaign database: one record per
// written .fgl layout, keyed by file name and content hash. It is the
// export seam between `generate` and the layout registry's bulk
// importer — the importer verifies every blob against the recorded
// hash and re-imports idempotently by comparing hashes. The manifest
// is deterministic: records are sorted by file name and carry no
// timestamps, so the same database always marshals byte-identically.
type Manifest struct {
	Schema  int              `json:"schema"`
	Layouts []ManifestLayout `json:"layouts"`
}

// ManifestLayout is one exported layout in a Manifest.
type ManifestLayout struct {
	// File is the layout's file name within the database directory,
	// e.g. "trindade16__mux21__qcaone_2ddwave_ortho.fgl".
	File string `json:"file"`
	Set  string `json:"set"`
	Name string `json:"name"`
	// FlowID is the compact flow identifier (Flow.ID()).
	FlowID string `json:"flow"`
	// SHA256 is the lowercase hex digest of the .fgl file body; it is
	// the layout's content address in the registry.
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`

	Width     int `json:"width"`
	Height    int `json:"height"`
	Area      int `json:"area"`
	Gates     int `json:"gates"`
	Wires     int `json:"wires"`
	Crossings int `json:"crossings"`

	// Verified records whether the entry passed full equivalence
	// checking when it was generated (DRC always ran).
	Verified bool `json:"verified"`
}

// HashBytes returns the lowercase hex SHA-256 digest of data — the
// content address used for exported layouts throughout the registry.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// BuildManifest derives the manifest of db as SaveDatabase would write
// it: one record per entry, hashed over the rendered .fgl body, sorted
// by file name. Entries must retain their layouts.
func BuildManifest(db *Database) (*Manifest, error) {
	m := &Manifest{Schema: ManifestSchema}
	for _, e := range db.Entries {
		if e.Layout == nil {
			return nil, fmt.Errorf("core: entry %s has no layout to export (generated with DiscardLayouts?)", EntryFileName(e))
		}
		text, err := fgl.WriteString(e.Layout)
		if err != nil {
			return nil, err
		}
		m.Layouts = append(m.Layouts, ManifestLayout{
			File:      EntryFileName(e) + ".fgl",
			Set:       e.Benchmark.Set,
			Name:      e.Benchmark.Name,
			FlowID:    e.Flow.ID(),
			SHA256:    HashBytes([]byte(text)),
			Bytes:     int64(len(text)),
			Width:     e.Width,
			Height:    e.Height,
			Area:      e.Area,
			Gates:     e.Gates,
			Wires:     e.Wires,
			Crossings: e.Crossings,
			Verified:  e.Verified,
		})
	}
	sort.Slice(m.Layouts, func(i, j int) bool { return m.Layouts[i].File < m.Layouts[j].File })
	return m, nil
}

// Marshal renders the manifest as indented JSON with a trailing
// newline, byte-stable for a given database.
func (m *Manifest) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteManifest builds db's manifest and writes it to
// dir/manifest.json, creating dir if needed.
func WriteManifest(db *Database, dir string) error {
	m, err := BuildManifest(db)
	if err != nil {
		return err
	}
	data, err := m.Marshal()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestFileName), data, 0o644)
}

// ReadManifest loads dir/manifest.json. A missing file returns
// (nil, nil): the manifest is an optional integrity layer, directories
// exported before it existed still import by scanning.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: %s: %w", ManifestFileName, err)
	}
	if m.Schema > ManifestSchema {
		return nil, fmt.Errorf("core: %s has schema %d, this build reads up to %d", ManifestFileName, m.Schema, ManifestSchema)
	}
	return &m, nil
}
