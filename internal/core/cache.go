package core

import (
	"sync"

	"repro/internal/bench"
	"repro/internal/gatelib"
	"repro/internal/network"
)

// campaignCache memoizes the expensive, flow-independent network work of
// one Generate campaign: building a benchmark's logic network
// (bench.Benchmark.Build) once per benchmark, and rewriting it for a
// gate library (gatelib.Library.Prepare) once per (benchmark, library).
// Without it, the N flows of a benchmark re-parse and re-decompose the
// same network N times.
//
// Accessors hand out Clone()s of the cached networks so concurrent
// flows never share mutable state; the cached originals are written
// exactly once under a per-key sync.Once and only read afterwards.
type campaignCache struct {
	mu    sync.Mutex
	built map[netKey]*cacheEntry
	preps map[prepKey]*cacheEntry
}

type netKey struct{ set, name string }

type prepKey struct{ set, name, lib string }

// cacheEntry is one memoized network; once guards the single
// build/prepare, after which net and err are immutable.
type cacheEntry struct {
	once sync.Once
	net  *network.Network
	err  error
}

func newCampaignCache() *campaignCache {
	return &campaignCache{
		built: make(map[netKey]*cacheEntry),
		preps: make(map[prepKey]*cacheEntry),
	}
}

// builtEntry returns the memoized built network for a benchmark, shared
// and read-only. Callers that pass it on to a flow must Clone it.
func (c *campaignCache) builtEntry(b bench.Benchmark) *cacheEntry {
	key := netKey{set: b.Set, name: b.Name}
	c.mu.Lock()
	e := c.built[key]
	if e == nil {
		e = &cacheEntry{}
		c.built[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.net = b.Build() })
	return e
}

// Built returns a private clone of the benchmark's logic network,
// building it at most once per campaign. The clone's backing slices are
// carved from a (per-worker) arena when one is supplied, so repeated
// cloning across jobs reuses buffers instead of allocating per node.
func (c *campaignCache) Built(b bench.Benchmark, a *network.Arena) (*network.Network, error) {
	e := c.builtEntry(b)
	if e.err != nil {
		return nil, e.err
	}
	return e.net.CloneInto(a), nil
}

// Prepared returns a private clone of the library-prepared network,
// preparing it at most once per (benchmark, library). A preparation
// error is memoized too: every flow of the pair observes the same error,
// exactly as if it had prepared the network itself.
func (c *campaignCache) Prepared(b bench.Benchmark, lib *gatelib.Library, a *network.Arena) (*network.Network, error) {
	key := prepKey{set: b.Set, name: b.Name, lib: lib.Name}
	c.mu.Lock()
	e := c.preps[key]
	if e == nil {
		e = &cacheEntry{}
		c.preps[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		base := c.builtEntry(b)
		if base.err != nil {
			e.err = base.err
			return
		}
		// Prepare clones its input, so handing it the shared built
		// network is a pure read.
		e.net, e.err = lib.Prepare(base.net)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.net.CloneInto(a), nil
}

// cachedSource adapts the campaign cache to the netSource interface a
// flow consumes: every call hands out a fresh clone. The arena, when
// set, is the calling worker's; the scheduler resets it between jobs,
// which is sound because a flow's clones never outlive its job (the
// recorded Entry keeps only the Layout).
type cachedSource struct {
	b     bench.Benchmark
	cache *campaignCache
	arena *network.Arena
}

func (s cachedSource) Base() (*network.Network, error) { return s.cache.Built(s.b, s.arena) }
func (s cachedSource) Prepared(lib *gatelib.Library) (*network.Network, error) {
	return s.cache.Prepared(s.b, lib, s.arena)
}
