package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestManifestDeterministicAndRoundTrips(t *testing.T) {
	db := smallDatabase(t)
	m1, err := BuildManifest(db)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := m1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := BuildManifest(db)
	b2, _ := m2.Marshal()
	if string(b1) != string(b2) {
		t.Fatal("manifest marshalling is not byte-stable")
	}
	if len(m1.Layouts) != len(db.Entries) {
		t.Fatalf("%d manifest records for %d entries", len(m1.Layouts), len(db.Entries))
	}
	for i, ml := range m1.Layouts {
		if ml.SHA256 == "" || ml.Bytes == 0 || ml.File == "" {
			t.Fatalf("record %d incomplete: %+v", i, ml)
		}
		if i > 0 && m1.Layouts[i-1].File >= ml.File {
			t.Fatal("manifest records not sorted by file name")
		}
	}

	dir := t.TempDir()
	if err := WriteManifest(db, dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || len(got.Layouts) != len(m1.Layouts) {
		t.Fatalf("round trip = schema %d, %d layouts", got.Schema, len(got.Layouts))
	}
	// Manifest hashes agree with the files SaveDatabase actually writes.
	if _, err := SaveDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	for _, ml := range got.Layouts {
		data, err := os.ReadFile(filepath.Join(dir, ml.File))
		if err != nil {
			t.Fatalf("manifest names unwritten file: %v", err)
		}
		if HashBytes(data) != ml.SHA256 {
			t.Fatalf("%s: written bytes hash differs from manifest", ml.File)
		}
	}
}

func TestReadManifestMissingAndFuture(t *testing.T) {
	if m, err := ReadManifest(t.TempDir()); m != nil || err != nil {
		t.Fatalf("missing manifest = %+v, %v, want nil, nil", m, err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestFileName), []byte(`{"schema":99,"layouts":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("newer-schema manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFileName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestBuildManifestRejectsDiscardedLayouts(t *testing.T) {
	db := smallDatabase(t)
	db.Entries[0].Layout = nil
	if _, err := BuildManifest(db); err == nil {
		t.Fatal("manifest built over an entry without a layout")
	}
}
