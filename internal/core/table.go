package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/gatelib"
)

// Database holds all generated layout entries, the MNT Bench catalogue.
type Database struct {
	Entries []*Entry
	// Failures records flows that produced no layout (infeasible, over
	// budget, timed out) for reporting.
	Failures []Failure
}

// Failure describes a flow that produced no layout.
type Failure struct {
	Benchmark bench.Benchmark
	Flow      Flow
	Reason    string
	// Outcome classifies the failure (infeasible, timeout, ...).
	Outcome Outcome
}

// Progress reports one finished flow of a Generate campaign to the
// progress callback; exactly one of Entry and Err is set. Delivery is
// serialized: callbacks never run concurrently, and they arrive in
// benchmark-major/flow-minor order regardless of the worker count.
type Progress struct {
	Benchmark bench.Benchmark
	Flow      Flow
	// Done flows out of Total have finished, this one included.
	Done, Total int
	Entry       *Entry // nil when the flow failed
	Err         error  // nil when the flow succeeded
	Outcome     Outcome
	Elapsed     time.Duration
	// Throughput is the campaign's running completion rate in flows per
	// second since the campaign started; ETA extrapolates the remaining
	// flows at that rate. Both are zero when unknown (hand-constructed
	// Progress values, or a finished campaign's ETA).
	Throughput float64
	ETA        time.Duration
}

// String renders the progress line the CLI prints per flow.
func (p Progress) String() string {
	var rate string
	if p.Throughput > 0 {
		rate = fmt.Sprintf("  %.1f flows/s", p.Throughput)
		if p.ETA > 0 {
			rate += fmt.Sprintf(" ETA %v", p.ETA.Round(time.Second))
		}
	}
	if p.Err != nil {
		return fmt.Sprintf("%-10s %-14s %-40s skipped: %s (%v)%s",
			p.Benchmark.Set, p.Benchmark.Name, p.Flow.String(), p.Outcome, p.Elapsed, rate)
	}
	return fmt.Sprintf("%-10s %-14s %-40s %4dx%-4d A=%-8d (%v)%s",
		p.Benchmark.Set, p.Benchmark.Name, p.Flow.String(),
		p.Entry.Width, p.Entry.Height, p.Entry.Area, p.Elapsed, rate)
}

// Skipped summarizes the recorded failures by outcome.
func (db *Database) Skipped() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, f := range db.Failures {
		out[f.Outcome]++
	}
	return out
}

// SkippedSummary renders Skipped as a one-line report like
// "3 flows skipped (2 infeasible, 1 timeout)"; empty when nothing was
// skipped.
func (db *Database) SkippedSummary() string {
	return renderSkipped(len(db.Failures), db.Skipped())
}

// renderSkipped is the shared formatter behind SkippedSummary and the
// journal summary: failure counts by outcome, sorted by outcome name so
// the line is byte-stable. Empty when total is zero.
func renderSkipped(total int, counts map[Outcome]int) string {
	if total == 0 {
		return ""
	}
	outcomes := make([]string, 0, len(counts))
	for o := range counts {
		outcomes = append(outcomes, string(o))
	}
	sort.Strings(outcomes)
	parts := make([]string, 0, len(outcomes))
	for _, o := range outcomes {
		parts = append(parts, fmt.Sprintf("%d %s", counts[Outcome(o)], o))
	}
	return fmt.Sprintf("%d flows skipped (%s)", total, strings.Join(parts, ", "))
}

// Best returns the minimum-area entry for one benchmark under one
// library, or nil when no flow succeeded. Ties on area are broken by
// fewer crossings, then by the lexicographically smallest Flow.ID(), so
// the winner never depends on database insertion order.
func (db *Database) Best(set, name string, lib *gatelib.Library) *Entry {
	var best *Entry
	for _, e := range db.Entries {
		if e.Benchmark.Set != set || e.Benchmark.Name != name || e.Flow.Library != lib {
			continue
		}
		if best == nil || e.Area < best.Area ||
			(e.Area == best.Area && e.Crossings < best.Crossings) ||
			(e.Area == best.Area && e.Crossings == best.Crossings && e.Flow.ID() < best.Flow.ID()) {
			best = e
		}
	}
	return best
}

// Baseline returns the reference entry against which the paper's ΔA
// improvement is computed: the plain scalable flow of the library
// (ortho under 2DDWave for QCA ONE; ortho+45° under ROW for Bestagon),
// falling back to plain exact when ortho produced nothing.
func (db *Database) Baseline(set, name string, lib *gatelib.Library) *Entry {
	var fallback *Entry
	for _, e := range db.Entries {
		if e.Benchmark.Set != set || e.Benchmark.Name != name || e.Flow.Library != lib {
			continue
		}
		if e.Flow.Algorithm == AlgoOrtho && !e.Flow.InputOrder && !e.Flow.PostLayout {
			return e
		}
		if fallback == nil || e.Area > fallback.Area {
			fallback = e // worst area over all flows approximates "previous state of the art"
		}
	}
	return fallback
}

// Filter narrows entries like the MNT Bench website's selection panes.
type Filter struct {
	Set       string // benchmark suite, "" = any
	Name      string // function name, "" = any
	Library   string // gate library name, "" = any
	Scheme    string // clocking scheme name, "" = any
	Algorithm string // physical design algorithm, "" = any
	InOrd     *bool  // input ordering applied
	PLO       *bool  // post-layout optimization applied
}

// Match reports whether the entry satisfies the filter.
func (f Filter) Match(e *Entry) bool {
	eq := strings.EqualFold
	if f.Set != "" && !eq(f.Set, e.Benchmark.Set) {
		return false
	}
	if f.Name != "" && !eq(f.Name, e.Benchmark.Name) {
		return false
	}
	if f.Library != "" {
		want, err := gatelib.ByName(f.Library)
		if err != nil || e.Flow.Library != want {
			return false
		}
	}
	if f.Scheme != "" && !eq(f.Scheme, e.Flow.Scheme.Name) {
		return false
	}
	if f.Algorithm != "" && !eq(f.Algorithm, string(e.Flow.Algorithm)) {
		return false
	}
	if f.InOrd != nil && *f.InOrd != e.Flow.InputOrder {
		return false
	}
	if f.PLO != nil && *f.PLO != e.Flow.PostLayout {
		return false
	}
	return true
}

// Select returns all entries matching the filter, smallest area first.
// Equal-area entries order by benchmark (set, name), then by Flow.ID(),
// so the listing is byte-stable regardless of insertion order.
func (db *Database) Select(f Filter) []*Entry {
	var out []*Entry
	for _, e := range db.Entries {
		if f.Match(e) {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Area != b.Area {
			return a.Area < b.Area
		}
		if a.Benchmark.Set != b.Benchmark.Set {
			return a.Benchmark.Set < b.Benchmark.Set
		}
		if a.Benchmark.Name != b.Benchmark.Name {
			return a.Benchmark.Name < b.Benchmark.Name
		}
		return a.Flow.ID() < b.Flow.ID()
	})
	return out
}

// TableRow is one line of the paper's Table I for one gate library.
type TableRow struct {
	Set        string
	Name       string
	In, Out    int
	Nodes      int
	Width      int
	Height     int
	Area       int
	RuntimeSec float64
	Algorithm  string
	Scheme     string
	// DeltaA is the relative area change of the best layout versus the
	// library's baseline flow (negative = smaller, as in the paper).
	DeltaA float64
	// Verified reflects the winning entry's verification status.
	Verified bool
}

// TableI computes the per-function best-layout rows for one library,
// mirroring the paper's Table I (one half per gate library).
func (db *Database) TableI(benches []bench.Benchmark, lib *gatelib.Library) []TableRow {
	var rows []TableRow
	for _, b := range benches {
		best := db.Best(b.Set, b.Name, lib)
		if best == nil {
			continue
		}
		row := TableRow{
			Set: b.Set, Name: b.Name,
			In: b.PubIn, Out: b.PubOut, Nodes: b.PubNodes,
			Width: best.Width, Height: best.Height, Area: best.Area,
			RuntimeSec: best.Runtime.Seconds(),
			Algorithm:  best.Flow.String(),
			Scheme:     best.Flow.Scheme.Name,
			Verified:   best.Verified,
		}
		if base := db.Baseline(b.Set, b.Name, lib); base != nil && base.Area > 0 {
			row.DeltaA = (float64(best.Area) - float64(base.Area)) / float64(base.Area) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTableI formats rows like the paper's Table I.
func RenderTableI(rows []TableRow, lib *gatelib.Library) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s gate library — most area-efficient layouts discovered\n", lib.Name)
	fmt.Fprintf(&sb, "%-11s %-14s %8s %6s | %5s x %-5s = %-10s %7s  %-34s %-9s %8s\n",
		"Set", "Name", "I/O", "N", "w", "h", "A", "t[s]", "Algorithm", "Clk.", "ΔA")
	sb.WriteString(strings.Repeat("-", 132) + "\n")
	prevSet := ""
	for _, r := range rows {
		set := r.Set
		if set == prevSet {
			set = ""
		} else {
			prevSet = set
		}
		delta := fmt.Sprintf("%+.1f%%", r.DeltaA)
		if r.DeltaA == 0 {
			delta = "±0%"
		}
		fmt.Fprintf(&sb, "%-11s %-14s %8s %6d | %5d x %-5d = %-10d %7.2f  %-34s %-9s %8s\n",
			set, r.Name, fmt.Sprintf("%d/%d", r.In, r.Out), r.Nodes,
			r.Width, r.Height, r.Area, r.RuntimeSec, r.Algorithm, r.Scheme, delta)
	}
	return sb.String()
}
