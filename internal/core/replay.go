package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// JobKey identifies one (benchmark, flow) campaign job in journal
// events and resume sets.
type JobKey struct {
	Set       string
	Benchmark string
	Flow      string
}

func (k JobKey) String() string { return k.Set + "/" + k.Benchmark + " " + k.Flow }

// less orders keys set-major, then benchmark, then flow — the same
// lexicographic order everywhere so renderings are byte-stable.
func (k JobKey) less(o JobKey) bool {
	if k.Set != o.Set {
		return k.Set < o.Set
	}
	if k.Benchmark != o.Benchmark {
		return k.Benchmark < o.Benchmark
	}
	return k.Flow < o.Flow
}

// jobReplay tracks one job through its start/done events.
type jobReplay struct {
	key                 JobKey
	started, finished   bool
	outcome             Outcome
	width, height, area int
	verified            bool
}

// CampaignReplay is one campaign reconstructed purely from its journal
// events — the saved database is never consulted, which is exactly what
// makes it a cross-check.
type CampaignReplay struct {
	ID         string
	Library    string
	Benchmarks int
	Total      int
	Workers    int
	Env        *obs.EnvStamp
	// Finished reports a campaign_done record; Canceled that it marked
	// the campaign as stopped early. Done counts job_done events.
	Finished bool
	Canceled bool
	Done     int
	jobs     map[int]*jobReplay // by 1-based job number
}

func (c *CampaignReplay) job(n int) *jobReplay {
	if c.jobs == nil {
		c.jobs = make(map[int]*jobReplay)
	}
	j := c.jobs[n]
	if j == nil {
		j = &jobReplay{}
		c.jobs[n] = j
	}
	return j
}

// Complete reports a healthy end-to-end campaign: a campaign_done
// record, not canceled, every scheduled job finished.
func (c *CampaignReplay) Complete() bool {
	return c.Finished && !c.Canceled && len(c.Unfinished()) == 0 && c.Done == c.Total
}

// Unfinished returns the jobs that started but never finished — the
// in-flight work a crashed or killed campaign lost — sorted by key.
func (c *CampaignReplay) Unfinished() []JobKey {
	var out []JobKey
	for _, j := range c.jobs {
		if j.started && !j.finished {
			out = append(out, j.key)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].less(out[k]) })
	return out
}

// OutcomeCounts tallies finished jobs by outcome, "ok" included.
func (c *CampaignReplay) OutcomeCounts() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, j := range c.jobs {
		if j.finished {
			out[j.outcome]++
		}
	}
	return out
}

// DoneKeys returns the keys of finished jobs, sorted — the resume seam:
// a restarted campaign can skip exactly this set. Canceled-outcome jobs
// are excluded (their flows were cut short mid-stage and must rerun).
func (c *CampaignReplay) DoneKeys() []JobKey {
	var out []JobKey
	for _, j := range c.jobs {
		if j.finished && j.outcome != OutcomeCanceled {
			out = append(out, j.key)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].less(out[k]) })
	return out
}

// OKKeys returns the keys of jobs that produced a layout, sorted.
func (c *CampaignReplay) OKKeys() []JobKey {
	var out []JobKey
	for _, j := range c.jobs {
		if j.finished && j.outcome == OutcomeOK {
			out = append(out, j.key)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].less(out[k]) })
	return out
}

// JournalReplay is the reconstruction of a whole journal file, which
// may hold several campaigns (generate runs one per gate library).
type JournalReplay struct {
	Campaigns []*CampaignReplay
	// Truncated reports that the journal's final line was damaged — the
	// signature of a crashed writer. Issues lists structural problems
	// found during replay (sequence gaps, unmatched events, counter
	// mismatches); a clean journal has none.
	Truncated bool
	Issues    []string
}

// ReplayJournal reconstructs campaigns from journal events (as read by
// obs.ReadJournal, whose truncated flag is passed through). The replay
// itself never fails: every structural problem is recorded as an issue
// so verification can report all of them at once.
func ReplayJournal(events []obs.Event, truncated bool) *JournalReplay {
	rep := &JournalReplay{Truncated: truncated}
	issue := func(format string, args ...any) {
		rep.Issues = append(rep.Issues, fmt.Sprintf(format, args...))
	}
	byID := make(map[string]*CampaignReplay)
	var lastSeq uint64
	for _, e := range events {
		if e.Seq != lastSeq+1 {
			issue("seq %d: expected sequence number %d (events lost or reordered)", e.Seq, lastSeq+1)
		}
		lastSeq = e.Seq
		switch e.Type {
		case obs.EventCampaignStart:
			if byID[e.Campaign] != nil {
				issue("seq %d: duplicate campaign_start for campaign %s", e.Seq, e.Campaign)
				continue
			}
			c := &CampaignReplay{ID: e.Campaign, Library: e.Library,
				Benchmarks: e.Benchmarks, Total: e.Total, Workers: e.Workers, Env: e.Env}
			byID[e.Campaign] = c
			rep.Campaigns = append(rep.Campaigns, c)
		case obs.EventJobStart:
			c := byID[e.Campaign]
			if c == nil {
				issue("seq %d: job_start for unknown campaign %q", e.Seq, e.Campaign)
				continue
			}
			j := c.job(e.Job)
			if j.started {
				issue("campaign %s: duplicate job_start for job %d (%s)", c.ID, e.Job, j.key)
			}
			j.started = true
			j.key = JobKey{Set: e.Set, Benchmark: e.Benchmark, Flow: e.Flow}
		case obs.EventJobDone:
			c := byID[e.Campaign]
			if c == nil {
				issue("seq %d: job_done for unknown campaign %q", e.Seq, e.Campaign)
				continue
			}
			j := c.job(e.Job)
			if !j.started {
				issue("campaign %s: job_done without job_start for job %d (%s/%s %s)",
					c.ID, e.Job, e.Set, e.Benchmark, e.Flow)
				j.key = JobKey{Set: e.Set, Benchmark: e.Benchmark, Flow: e.Flow}
			}
			if j.finished {
				issue("campaign %s: duplicate job_done for job %d (%s)", c.ID, e.Job, j.key)
				continue
			}
			j.finished = true
			j.outcome = Outcome(e.Outcome)
			j.width, j.height, j.area = e.Width, e.Height, e.Area
			j.verified = e.Verified
			c.Done++
		case obs.EventCampaignDone:
			c := byID[e.Campaign]
			if c == nil {
				issue("seq %d: campaign_done for unknown campaign %q", e.Seq, e.Campaign)
				continue
			}
			if c.Finished {
				issue("campaign %s: duplicate campaign_done", c.ID)
				continue
			}
			c.Finished = true
			c.Canceled = e.Canceled
			if e.Done != c.Done {
				issue("campaign %s: campaign_done reports %d finished jobs, journal holds %d",
					c.ID, e.Done, c.Done)
			}
			counts := c.OutcomeCounts()
			if e.Entries != counts[OutcomeOK] {
				issue("campaign %s: campaign_done reports %d entries, journal holds %d ok jobs",
					c.ID, e.Entries, counts[OutcomeOK])
			}
			if e.Failures != c.Done-counts[OutcomeOK] {
				issue("campaign %s: campaign_done reports %d failures, journal holds %d",
					c.ID, e.Failures, c.Done-counts[OutcomeOK])
			}
			for o, n := range e.Outcomes {
				if counts[Outcome(o)] != n {
					issue("campaign %s: campaign_done reports %d %s jobs, journal holds %d",
						c.ID, n, o, counts[Outcome(o)])
				}
			}
		default:
			issue("seq %d: unknown event type %q", e.Seq, e.Type)
		}
	}
	return rep
}

// OutcomeRow is one line of a campaign outcome table: the job identity,
// its outcome, and — for successful jobs — the layout metrics.
type OutcomeRow struct {
	Key                 JobKey
	Outcome             Outcome
	Width, Height, Area int
	Verified            bool
}

// OutcomeRows lists the campaign's finished jobs as table rows, sorted
// by key so the rendering is identical at any worker count.
func (c *CampaignReplay) OutcomeRows() []OutcomeRow {
	rows := make([]OutcomeRow, 0, len(c.jobs))
	for _, j := range c.jobs {
		if !j.finished {
			continue
		}
		rows = append(rows, OutcomeRow{Key: j.key, Outcome: j.outcome,
			Width: j.width, Height: j.height, Area: j.area, Verified: j.verified})
	}
	sort.Slice(rows, func(i, k int) bool { return rows[i].Key.less(rows[k].Key) })
	return rows
}

// DatabaseOutcomeRows renders an in-memory campaign database as the
// same outcome table a journal replay produces, so the two can be
// compared byte for byte.
func DatabaseOutcomeRows(db *Database) []OutcomeRow {
	rows := make([]OutcomeRow, 0, len(db.Entries)+len(db.Failures))
	for _, e := range db.Entries {
		rows = append(rows, OutcomeRow{
			Key:     JobKey{Set: e.Benchmark.Set, Benchmark: e.Benchmark.Name, Flow: e.Flow.ID()},
			Outcome: OutcomeOK, Width: e.Width, Height: e.Height, Area: e.Area, Verified: e.Verified})
	}
	for _, f := range db.Failures {
		rows = append(rows, OutcomeRow{
			Key:     JobKey{Set: f.Benchmark.Set, Benchmark: f.Benchmark.Name, Flow: f.Flow.ID()},
			Outcome: f.Outcome})
	}
	sort.Slice(rows, func(i, k int) bool { return rows[i].Key.less(rows[k].Key) })
	return rows
}

// RenderOutcomeRows formats an outcome table, one job per line.
func RenderOutcomeRows(rows []OutcomeRow) string {
	var sb strings.Builder
	for _, r := range rows {
		if r.Outcome == OutcomeOK {
			fmt.Fprintf(&sb, "  %-13s %-10s %-14s %-34s %4dx%-4d A=%d",
				r.Outcome, r.Key.Set, r.Key.Benchmark, r.Key.Flow, r.Width, r.Height, r.Area)
			if r.Verified {
				sb.WriteString(" verified")
			}
			sb.WriteByte('\n')
			continue
		}
		fmt.Fprintf(&sb, "  %-13s %-10s %-14s %s\n", r.Outcome, r.Key.Set, r.Key.Benchmark, r.Key.Flow)
	}
	return sb.String()
}

// campaignStatus is the one-word status suffix of a summary header.
func (c *CampaignReplay) campaignStatus() string {
	switch {
	case c.Complete():
		return "complete"
	case c.Canceled:
		return fmt.Sprintf("canceled after %d/%d jobs", c.Done, c.Total)
	default:
		return fmt.Sprintf("INCOMPLETE (%d/%d jobs)", c.Done, c.Total)
	}
}

// RenderJournalSummary renders the campaign outcome tables of a replay:
// per campaign a header, the sorted job table, and the layouts/skipped
// counters in the same format the generate command prints.
func RenderJournalSummary(rep *JournalReplay) string {
	var sb strings.Builder
	for _, c := range rep.Campaigns {
		fmt.Fprintf(&sb, "campaign %s: library=%s benchmarks=%d jobs=%d workers=%d — %s\n",
			c.ID, c.Library, c.Benchmarks, c.Total, c.Workers, c.campaignStatus())
		sb.WriteString(RenderOutcomeRows(c.OutcomeRows()))
		counts := c.OutcomeCounts()
		ok := counts[OutcomeOK]
		delete(counts, OutcomeOK)
		line := fmt.Sprintf("  %d layouts", ok)
		if s := renderSkipped(c.Done-ok, counts); s != "" {
			line += ", " + s
		}
		sb.WriteString(line + "\n")
	}
	if len(rep.Campaigns) == 0 {
		sb.WriteString("no campaigns recorded\n")
	}
	return sb.String()
}

// RenderJournalVerify renders the integrity report of a replay and
// reports whether the journal passed: no damaged tail, no structural
// issues, and every campaign complete.
func RenderJournalVerify(rep *JournalReplay) (string, bool) {
	var sb strings.Builder
	ok := true
	if rep.Truncated {
		ok = false
		sb.WriteString("damaged tail: the final journal line was cut short (crashed writer); events after the last complete line are lost\n")
	}
	for _, is := range rep.Issues {
		ok = false
		fmt.Fprintf(&sb, "issue: %s\n", is)
	}
	if len(rep.Campaigns) == 0 {
		ok = false
		sb.WriteString("no campaigns recorded\n")
	}
	for _, c := range rep.Campaigns {
		if c.Complete() {
			fmt.Fprintf(&sb, "campaign %s: complete — %d jobs, %d layouts\n",
				c.ID, c.Done, c.OutcomeCounts()[OutcomeOK])
			continue
		}
		ok = false
		fmt.Fprintf(&sb, "campaign %s: %s\n", c.ID, c.campaignStatus())
		if !c.Finished {
			sb.WriteString("  no campaign_done record: the campaign was interrupted mid-run\n")
		}
		for _, k := range c.Unfinished() {
			fmt.Fprintf(&sb, "  unfinished: %s\n", k)
		}
		started := 0
		for _, j := range c.jobs {
			if j.started {
				started++
			}
		}
		if never := c.Total - started; never > 0 {
			fmt.Fprintf(&sb, "  %d jobs never started\n", never)
		}
	}
	return sb.String(), ok
}

// CheckReplayAgainstDir cross-checks the journal's successful jobs
// against a SaveDatabase output directory: every ok job must have its
// {set}__{name}__{flowID}.fgl layout file and vice versa. It returns
// the number of matched layouts; any difference is an error listing the
// mismatches.
func CheckReplayAgainstDir(rep *JournalReplay, dir string) (int, error) {
	want := make(map[JobKey]bool)
	for _, c := range rep.Campaigns {
		for _, k := range c.OKKeys() {
			// Saved file stems lowercase the set and benchmark name.
			want[JobKey{Set: strings.ToLower(k.Set), Benchmark: strings.ToLower(k.Benchmark), Flow: k.Flow}] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	got := make(map[JobKey]bool)
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".fgl") {
			continue
		}
		parts := strings.SplitN(strings.TrimSuffix(name, ".fgl"), "__", 3)
		if len(parts) != 3 {
			continue
		}
		got[JobKey{Set: parts[0], Benchmark: parts[1], Flow: parts[2]}] = true
	}
	var missing, extra []JobKey
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return len(want), nil
	}
	sort.Slice(missing, func(i, k int) bool { return missing[i].less(missing[k]) })
	sort.Slice(extra, func(i, k int) bool { return extra[i].less(extra[k]) })
	var parts []string
	for _, k := range missing {
		parts = append(parts, fmt.Sprintf("journal has ok job %s but %s has no layout for it", k, dir))
	}
	for _, k := range extra {
		parts = append(parts, fmt.Sprintf("%s has layout %s the journal never recorded as ok", dir, filepath.Join(dir, k.Set+"__"+k.Benchmark+"__"+k.Flow+".fgl")))
	}
	return 0, fmt.Errorf("journal does not match %s:\n  %s", dir, strings.Join(parts, "\n  "))
}
