package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/obs"
)

// campaignCounter disambiguates campaigns started within the same
// second of one process (generate runs one campaign per gate library).
var campaignCounter atomic.Uint64

// newCampaignID returns a process-unique campaign identifier combining
// the UTC start time with a process-wide counter. No randomness: the ID
// only needs to be unique within a journal file, and journals are
// opened by one process at a time.
func newCampaignID() string {
	return fmt.Sprintf("c%s-%04d", time.Now().UTC().Format("20060102T150405"), campaignCounter.Add(1))
}

// jobDoneEvent builds the job_done journal record for one finished job.
func jobDoneEvent(campaign string, j job, worker string, e *Entry, err error, elapsed time.Duration) obs.Event {
	ev := obs.Event{Type: obs.EventJobDone, Campaign: campaign, Job: j.idx + 1,
		Set: j.bench.Set, Benchmark: j.bench.Name, Flow: j.flow.ID(), Worker: worker,
		Outcome: string(ClassifyOutcome(err)), ElapsedUS: elapsed.Microseconds()}
	if err != nil {
		ev.Error = err.Error()
		return ev
	}
	ev.Width, ev.Height, ev.Area, ev.Crossings = e.Width, e.Height, e.Area, e.Crossings
	ev.Verified = e.Verified
	if len(e.Stages) > 0 {
		ev.StagesUS = make(map[string]int64, len(e.Stages))
		for name, d := range e.Stages {
			ev.StagesUS[name] = d.Microseconds()
		}
	}
	return ev
}

// campaignDoneEvent summarizes a campaign's results for the journal.
// canceled marks campaigns stopped by context cancellation; their
// journal is complete as a file but the campaign did not cover every
// scheduled job.
func campaignDoneEvent(campaign string, db *Database, done int, canceled bool) obs.Event {
	outcomes := make(map[string]int)
	for o, n := range db.Skipped() {
		outcomes[string(o)] = n
	}
	if len(db.Entries) > 0 {
		outcomes[string(OutcomeOK)] = len(db.Entries)
	}
	return obs.Event{Type: obs.EventCampaignDone, Campaign: campaign, Done: done,
		Entries: len(db.Entries), Failures: len(db.Failures), Outcomes: outcomes, Canceled: canceled}
}

// job is one (benchmark, flow) unit of campaign work. idx is its
// position in the benchmark-major/flow-minor enumeration and fixes the
// reporting order regardless of completion order.
type job struct {
	idx   int
	bench bench.Benchmark
	flow  Flow
}

// jobResult is one finished (or skipped) job travelling from a worker
// to the collector.
type jobResult struct {
	idx     int
	entry   *Entry
	err     error
	elapsed time.Duration
	// skipped marks a job that never started because the campaign was
	// canceled first; it is not recorded in the database, mirroring the
	// sequential engine, which stopped before such flows.
	skipped bool
}

// Generate runs every feasible flow of the given library over the given
// benchmarks, fanning the (benchmark, flow) jobs out over
// Limits.Workers workers (default: all CPU cores) that share one
// prepared-network cache. A nil progress callback is allowed.
//
// Output is deterministic regardless of worker count and completion
// order: entries, failures, and progress callbacks are reported in
// benchmark-major/flow-minor enumeration order, and progress delivery
// is serialized through a single collector (callbacks never run
// concurrently). The context's obs registry receives campaign gauges
// (flows done/total, workers, in-flight, the current benchmark) and
// per-flow outcome counters; canceling the context stops scheduling,
// drains in-flight flows at their next stage boundary, and returns the
// partial database.
func Generate(ctx context.Context, benches []bench.Benchmark, lib *gatelib.Library, limits Limits, progress func(Progress)) *Database {
	return GenerateFlows(ctx, benches, Flows(lib), limits, progress)
}

// campaignLibLabel names the library of a flow list for the campaign
// info gauge. The value set is bounded: the fixed library catalogue
// plus "mixed" for cross-library campaigns (the conformance selftest)
// and "none" for empty flow lists.
//
//lint:bounded
func campaignLibLabel(flows []Flow) string {
	if len(flows) == 0 {
		return "none"
	}
	id := libID(flows[0].Library)
	for _, f := range flows[1:] {
		if libID(f.Library) != id {
			return "mixed"
		}
	}
	return id
}

// GenerateFlows is Generate with an explicit flow list: every flow is
// run over every benchmark, in benchmark-major/flow-minor order. The
// flows may span multiple gate libraries (the prepared-network cache is
// keyed per library); Generate delegates here with the full catalogue
// of a single library. The determinism and cancellation contract is the
// same as Generate's.
func GenerateFlows(ctx context.Context, benches []bench.Benchmark, flows []Flow, limits Limits, progress func(Progress)) *Database {
	if ctx == nil {
		//lint:ignore ctxfirst documented fallback: a nil ctx means "no caller context"
		ctx = context.Background()
	}
	limits = limits.withDefaults()
	reg := obs.RegistryFrom(ctx)
	log := obs.LoggerFrom(ctx)
	reg.Help(MetricFlowTotal, "Flows finished, by outcome.")
	reg.Help(MetricCampaignTotal, "Flows scheduled in the current generation campaign.")
	reg.Help(MetricCampaignDone, "Flows finished in the current generation campaign.")
	reg.Help(MetricCampaignCurrent, "Benchmark currently being generated (info gauge).")
	reg.Help(MetricCampaignWorkers, "Concurrent workers of the current generation campaign.")
	reg.Help(MetricCampaignInflight, "Flows currently executing.")

	libLabel := campaignLibLabel(flows)
	total := len(benches) * len(flows)
	if total == 0 {
		return &Database{}
	}
	workers := limits.Workers
	if workers > total {
		workers = total
	}
	reg.Gauge(MetricCampaignTotal).Set(float64(total))
	doneGauge := reg.Gauge(MetricCampaignDone)
	doneGauge.Set(0)
	reg.Gauge(MetricCampaignWorkers).Set(float64(workers))
	inflight := reg.Gauge(MetricCampaignInflight)
	inflight.Set(0)
	log.Info("campaign start", "library", libLabel,
		"benchmarks", len(benches), "flows", total, "workers", workers)

	// The flight recorder, when the context carries one: campaign_start
	// stamps the environment fingerprint; every job start/finish and the
	// final summary follow. Journal methods no-op on nil.
	journal := obs.JournalFrom(ctx)
	campaignID := newCampaignID()
	env := obs.Environment()
	journal.Append(obs.Event{Type: obs.EventCampaignStart, Campaign: campaignID,
		Schema: obs.JournalSchema, Library: libLabel, Benchmarks: len(benches),
		Total: total, Workers: workers, Env: &env})

	cache := newCampaignCache()
	jobs := make(chan job)
	results := make(chan jobResult, workers+1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Per-worker clone arena: every job's Built/Prepared clones are
			// carved from it and it is rewound once the job is done, so a
			// long campaign reuses two slabs per worker instead of
			// allocating per-node slices for every (benchmark, flow) pair.
			arena := network.NewArena()
			for j := range jobs {
				if ctx.Err() != nil {
					results <- jobResult{idx: j.idx, skipped: true}
					continue
				}
				inflight.Inc()
				start := time.Now()
				wctx, sp := obs.StartSpan(ctx, StageWorker, obs.L("worker", workerLabel(id)))
				// Trace-only identity: the exact worker index (the metric
				// label saturates at w32+) plus what the worker is running,
				// so trace exports can pin each flow to a worker timeline.
				sp.Annotate("worker_id", strconv.Itoa(id))
				sp.Annotate("set", j.bench.Set)
				sp.Annotate("benchmark", j.bench.Name)
				sp.Annotate("flow", j.flow.ID())
				sp.Annotate("campaign", campaignID)
				sp.Annotate("job", strconv.Itoa(j.idx+1))
				// Correlation threads campaign → job identity into the flow
				// span and any journal consumer below runFlowImpl.
				wctx = obs.WithCorrelation(wctx, obs.Correlation{Campaign: campaignID, Job: j.idx + 1})
				journal.Append(obs.Event{Type: obs.EventJobStart, Campaign: campaignID,
					Job: j.idx + 1, Set: j.bench.Set, Benchmark: j.bench.Name,
					Flow: j.flow.ID(), Worker: workerLabel(id)})
				e, err := runFlowImpl(wctx, j.bench, cachedSource{b: j.bench, cache: cache, arena: arena}, j.flow, limits)
				// The flow is done and nothing it produced references its
				// clones (the Entry keeps only the Layout), so the arena
				// slabs can be reused by the next job.
				arena.Reset()
				sp.SetError(err)
				sp.End()
				inflight.Dec()
				elapsed := time.Since(start).Round(time.Millisecond)
				journal.Append(jobDoneEvent(campaignID, j, workerLabel(id), e, err, elapsed))
				results <- jobResult{idx: j.idx, entry: e, err: err, elapsed: elapsed}
			}
		}(w)
	}

	// The feeder enumerates jobs strictly in order, so at any point the
	// fed set is a prefix of the enumeration: cancellation never leaves
	// index gaps for the collector to stall on.
	go func() {
		defer close(jobs)
		idx := 0
		for _, b := range benches {
			for _, flow := range flows {
				if ctx.Err() != nil {
					return
				}
				select {
				case jobs <- job{idx: idx, bench: b, flow: flow}:
				case <-ctx.Done():
					return
				}
				idx++
			}
		}
	}()
	//lint:ignore goroleak shutdown relay: wg.Wait returns once the ctx-aware workers exit, so cancellation bounds it transitively
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: the only goroutine that touches the database, the done
	// gauge, and the progress callback. Results are buffered until their
	// enumeration predecessors arrive, then emitted in order.
	db := &Database{}
	done := 0
	prevBench := -1
	campaignStart := time.Now()
	defer reg.Reset(MetricCampaignCurrent)
	emit := func(r jobResult) {
		bi := r.idx / len(flows)
		b := benches[bi]
		if bi != prevBench {
			prevBench = bi
			reg.Reset(MetricCampaignCurrent)
			//lint:ignore obslabel info gauge over the fixed benchmark catalogue; Reset above keeps it at one series
			reg.Gauge(MetricCampaignCurrent, obs.L("set", b.Set), obs.L("benchmark", b.Name), obs.L("library", libLabel)).Set(1)
		}
		flow := flows[r.idx%len(flows)]
		done++
		doneGauge.Set(float64(done))
		outcome := ClassifyOutcome(r.err)
		if r.err != nil {
			db.Failures = append(db.Failures, Failure{Benchmark: b, Flow: flow, Reason: r.err.Error(), Outcome: outcome})
			log.Debug("flow skipped", "set", b.Set, "benchmark", b.Name,
				"flow", flow.String(), "outcome", outcome, "elapsed", r.elapsed, "reason", r.err)
		} else {
			db.Entries = append(db.Entries, r.entry)
			log.Debug("flow ok", "set", b.Set, "benchmark", b.Name, "flow", flow.String(),
				"area", r.entry.Area, "crossings", r.entry.Crossings, "elapsed", r.elapsed)
		}
		if progress != nil {
			p := Progress{Benchmark: b, Flow: flow, Done: done, Total: total,
				Entry: r.entry, Err: r.err, Outcome: outcome, Elapsed: r.elapsed}
			// Running rate over the whole campaign so far; the ETA
			// extrapolates the remaining jobs at that rate and is left zero
			// on the final flow.
			if wall := time.Since(campaignStart); wall > 0 {
				p.Throughput = float64(done) / wall.Seconds()
				if remaining := total - done; remaining > 0 && p.Throughput > 0 {
					p.ETA = time.Duration(float64(remaining) / p.Throughput * float64(time.Second))
				}
			}
			progress(p)
		}
	}
	pending := make(map[int]jobResult, workers)
	next := 0
	//lint:ignore ctxloop drain loop: on cancellation the workers exit and the relay closes results, ending the range; draining keeps the merge deterministic
	for r := range results {
		pending[r.idx] = r
		for {
			nr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if nr.skipped {
				continue
			}
			emit(nr)
		}
	}

	if ctx.Err() != nil {
		log.Warn("campaign canceled", "done", done, "total", total)
		journal.Append(campaignDoneEvent(campaignID, db, done, true))
		return db
	}
	log.Info("campaign done", "library", libLabel,
		"layouts", len(db.Entries), "skipped", len(db.Failures))
	journal.Append(campaignDoneEvent(campaignID, db, done, false))
	return db
}
