package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/obs"
)

// campaignText renders the Table I text of one campaign at the given
// worker count, so tests can compare runs byte-for-byte.
//
// The limits steer every flow away from its wall-clock budget boundary:
// exact is skipped outright (ExactMaxNodes=1) because its anytime search
// legitimately returns whatever the deadline allows, and the stochastic
// budgets are far above what the tiny circuits need, so NanoPlaceR's 12
// seeded restarts and the PLO passes always run to completion. The
// measured-runtime column is zeroed before rendering: wall time is a
// measurement, not a result, and may differ between identical campaigns.
func campaignText(t *testing.T, benches []bench.Benchmark, workers int) string {
	t.Helper()
	limits := Limits{
		ExactMaxNodes: 1,
		NanoTimeout:   30 * time.Second,
		PLOTimeout:    30 * time.Second,
		Workers:       workers,
	}
	limits.DiscardLayouts = true
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	db := Generate(ctx, benches, gatelib.QCAOne, limits, nil)
	if len(db.Entries) == 0 {
		t.Fatal("campaign produced no entries")
	}
	rows := db.TableI(benches, gatelib.QCAOne)
	for i := range rows {
		rows[i].RuntimeSec = 0
	}
	return RenderTableI(rows, gatelib.QCAOne)
}

// TestGenerateParallelDeterminism runs the same campaign twice at
// workers=4 and once at workers=1 and requires byte-identical Table I
// output: the scheduler must merge results in enumeration order and
// every flow (including NanoPlaceR's seeded search) must be repeatable.
func TestGenerateParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign generation in -short mode")
	}
	benches := bench.BySet("Trindade16")[:3] // mux21, xor2, xnor2
	first := campaignText(t, benches, 4)
	second := campaignText(t, benches, 4)
	if first != second {
		t.Errorf("two workers=4 runs differ:\n--- first\n%s--- second\n%s", first, second)
	}
	serial := campaignText(t, benches, 1)
	if first != serial {
		t.Errorf("workers=4 differs from workers=1:\n--- parallel\n%s--- serial\n%s", first, serial)
	}
}

// TestGenerateReportsInOrder pins the progress contract under
// concurrency: callbacks arrive serialized, in benchmark-major /
// flow-minor order, with Done counting up from 1, and the database
// lists entries and failures in the same order.
func TestGenerateReportsInOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign generation in -short mode")
	}
	benches := bench.BySet("Trindade16")[:2]
	flows := Flows(gatelib.QCAOne)
	limits := fastLimits()
	limits.Workers = 4
	limits.DiscardLayouts = true
	var got []Progress
	db := Generate(context.Background(), benches, gatelib.QCAOne, limits, func(p Progress) {
		got = append(got, p) // no locking: delivery must already be serialized
	})
	if len(got) != len(benches)*len(flows) {
		t.Fatalf("progress callbacks = %d, want %d", len(got), len(benches)*len(flows))
	}
	for i, p := range got {
		if p.Done != i+1 {
			t.Errorf("callback %d: Done = %d, want %d", i, p.Done, i+1)
		}
		wantBench := benches[i/len(flows)]
		wantFlow := flows[i%len(flows)]
		if p.Benchmark.Name != wantBench.Name || p.Flow.ID() != wantFlow.ID() {
			t.Errorf("callback %d: got %s/%s, want %s/%s",
				i, p.Benchmark.Name, p.Flow.ID(), wantBench.Name, wantFlow.ID())
		}
	}
	if len(db.Entries)+len(db.Failures) != len(got) {
		t.Errorf("entries %d + failures %d != callbacks %d", len(db.Entries), len(db.Failures), len(got))
	}
}

// TestGenerateCancelMidCampaign cancels a workers=4 campaign partway
// through and checks the partial database is consistent: no flow is in
// both Entries and Failures, and done never exceeds total.
func TestGenerateCancelMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign generation in -short mode")
	}
	benches := bench.BySet("Trindade16")
	flows := Flows(gatelib.QCAOne)
	total := len(benches) * len(flows)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	limits := fastLimits()
	limits.Workers = 4
	limits.DiscardLayouts = true
	lastDone := 0
	db := Generate(ctx, benches, gatelib.QCAOne, limits, func(p Progress) {
		lastDone = p.Done
		if p.Done == 3 {
			cancel()
		}
		if p.Total != total {
			t.Errorf("Total = %d, want %d", p.Total, total)
		}
	})
	if lastDone > total {
		t.Errorf("done %d > total %d", lastDone, total)
	}
	if got := len(db.Entries) + len(db.Failures); got != lastDone {
		t.Errorf("recorded %d flows, last Done was %d", got, lastDone)
	}
	if got := len(db.Entries) + len(db.Failures); got >= total {
		t.Errorf("canceled campaign recorded all %d flows", got)
	}
	kind := make(map[string]string)
	key := func(b bench.Benchmark, f Flow) string { return b.Set + "/" + b.Name + "/" + f.ID() }
	for _, e := range db.Entries {
		kind[key(e.Benchmark, e.Flow)] = "entry"
	}
	for _, f := range db.Failures {
		if kind[key(f.Benchmark, f.Flow)] == "entry" {
			t.Errorf("flow %s recorded as both entry and failure", key(f.Benchmark, f.Flow))
		}
	}
}

// countingBenchmark wraps a tiny network in a Benchmark whose Build
// invocations are counted.
func countingBenchmark(name string, builds *atomic.Int32) bench.Benchmark {
	build := func() *network.Network {
		builds.Add(1)
		n := network.New(name)
		a := n.AddPI("a")
		b := n.AddPI("b")
		n.AddPO(n.AddAnd(a, b), "f")
		return n
	}
	return bench.Benchmark{Set: "test", Name: name, PubIn: 2, PubOut: 1, PubNodes: 1, Build: build}
}

// TestCampaignBuildsEachBenchmarkOnce verifies the shared cache: a
// campaign over F flows calls Build once per benchmark, not F times.
func TestCampaignBuildsEachBenchmarkOnce(t *testing.T) {
	var builds atomic.Int32
	benches := []bench.Benchmark{
		countingBenchmark("one", &builds),
		countingBenchmark("two", &builds),
	}
	limits := fastLimits()
	limits.Workers = 4
	limits.DiscardLayouts = true
	db := Generate(context.Background(), benches, gatelib.QCAOne, limits, nil)
	if len(db.Entries) == 0 {
		t.Fatal("no entries generated")
	}
	if got := builds.Load(); got != int32(len(benches)) {
		t.Errorf("Build called %d times, want %d (once per benchmark)", got, len(benches))
	}
}

// TestCampaignCacheClonesAndMemoizes exercises the cache directly under
// concurrency: every accessor returns a distinct clone and the
// underlying network is built exactly once.
func TestCampaignCacheClonesAndMemoizes(t *testing.T) {
	var builds atomic.Int32
	b := countingBenchmark("shared", &builds)
	c := newCampaignCache()
	const goroutines = 8
	nets := make([]*network.Network, goroutines)
	preps := make([]*network.Network, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := c.Built(b, nil)
			if err != nil {
				t.Errorf("Built: %v", err)
				return
			}
			p, err := c.Prepared(b, gatelib.QCAOne, nil)
			if err != nil {
				t.Errorf("Prepared: %v", err)
				return
			}
			nets[i], preps[i] = n, p
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("Build called %d times, want 1", got)
	}
	for i := 1; i < goroutines; i++ {
		if nets[i] == nets[0] || preps[i] == preps[0] {
			t.Fatalf("goroutine %d received a shared network, want private clones", i)
		}
	}
	for i, n := range nets {
		if n.NumPIs() != 2 || n.NumPOs() != 1 {
			t.Errorf("clone %d malformed: %d PIs, %d POs", i, n.NumPIs(), n.NumPOs())
		}
	}
}

// TestBestTieBreaksOnFlowID pins the Flow.ID() tie-break: with equal
// area and crossings the lexicographically smallest flow ID wins, no
// matter the insertion order.
func TestBestTieBreaksOnFlowID(t *testing.T) {
	b := bench.Benchmark{Set: "test", Name: "tie"}
	mk := func(algo Algorithm) *Entry {
		return &Entry{
			Benchmark: b,
			Flow:      Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: algo},
			Area:      12, Crossings: 1,
		}
	}
	exact, nano := mk(AlgoExact), mk(AlgoNanoPlaceR)
	want := exact // smallest flow ID wins the tie
	if nano.Flow.ID() < want.Flow.ID() {
		want = nano
	}
	for name, db := range map[string]*Database{
		"exact-first": {Entries: []*Entry{exact, nano}},
		"nano-first":  {Entries: []*Entry{nano, exact}},
	} {
		if got := db.Best("test", "tie", gatelib.QCAOne); got != want {
			t.Errorf("%s: Best picked flow %q, want %q", name, got.Flow.ID(), want.Flow.ID())
		}
	}
}

// TestNanoSeedDeterministicAndDistinct pins the NanoPlaceR seeding
// scheme: stable for a (benchmark, flow) pair, different across pairs,
// and never the zero value nanoplacer would replace with its default.
func TestNanoSeedDeterministicAndDistinct(t *testing.T) {
	f1 := Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoNanoPlaceR}
	f2 := Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoNanoPlaceR, PostLayout: true}
	if nanoSeed("mux21", f1) != nanoSeed("mux21", f1) {
		t.Error("seed not deterministic")
	}
	if nanoSeed("mux21", f1) == nanoSeed("xor2", f1) {
		t.Error("seed ignores the benchmark name")
	}
	if nanoSeed("mux21", f1) == nanoSeed("mux21", f2) {
		t.Error("seed ignores the flow ID")
	}
	if nanoSeed("mux21", f1) == 0 || nanoSeed("xor2", f2) == 0 {
		t.Error("zero seed would silently fall back to nanoplacer's default")
	}
}
