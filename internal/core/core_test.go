package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/fgl"
	"repro/internal/gatelib"
)

func fastLimits() Limits {
	return Limits{
		ExactTimeout: 2 * time.Second,
		NanoTimeout:  2 * time.Second,
		PLOTimeout:   5 * time.Second,
	}
}

func mustBench(t *testing.T, set, name string) bench.Benchmark {
	t.Helper()
	b, err := bench.ByName(set, name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunFlowOrthoQCAOne(t *testing.T) {
	b := mustBench(t, "Trindade16", "mux21")
	e, err := RunFlow(context.Background(), b, Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho}, fastLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !e.Verified {
		t.Error("entry not verified")
	}
	if e.Area != e.Width*e.Height {
		t.Error("area inconsistent")
	}
	if e.Layout.Library != "QCA ONE" {
		t.Errorf("library tag = %q", e.Layout.Library)
	}
}

func TestRunFlowXorNeedsDecompositionOnQCAOne(t *testing.T) {
	b := mustBench(t, "Trindade16", "ha") // contains XOR
	e, err := RunFlow(context.Background(), b, Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho}, fastLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !e.Verified {
		t.Error("not verified")
	}
}

func TestRunFlowBestagonHexagonalized(t *testing.T) {
	b := mustBench(t, "Trindade16", "ha")
	e, err := RunFlow(context.Background(), b, Flow{Library: gatelib.Bestagon, Scheme: clocking.Row, Algorithm: AlgoOrtho, Hexagonalize: true}, fastLimits())
	if err != nil {
		t.Fatal(err)
	}
	if e.Flow.Scheme != clocking.Row {
		t.Error("wrong scheme")
	}
	if !e.Verified {
		t.Error("not verified")
	}
}

func TestRunFlowExact(t *testing.T) {
	b := mustBench(t, "Trindade16", "xor2")
	e, err := RunFlow(context.Background(), b, Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoExact}, fastLimits())
	if err != nil {
		t.Skipf("exact within budget failed: %v", err)
	}
	if !e.Verified {
		t.Error("not verified")
	}
}

func TestRunFlowRejectsOrthoOnUSE(t *testing.T) {
	b := mustBench(t, "Trindade16", "mux21")
	_, err := RunFlow(context.Background(), b, Flow{Library: gatelib.QCAOne, Scheme: clocking.USE, Algorithm: AlgoOrtho}, fastLimits())
	if err == nil {
		t.Fatal("ortho on USE accepted")
	}
}

func TestGenerateAndTableTrindade(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow generation in -short mode")
	}
	benches := bench.BySet("Trindade16")[:3] // mux21, xor2, xnor2
	db := Generate(context.Background(), benches, gatelib.QCAOne, fastLimits(), nil)
	if len(db.Entries) == 0 {
		t.Fatal("no entries generated")
	}
	for _, b := range benches {
		best := db.Best(b.Set, b.Name, gatelib.QCAOne)
		if best == nil {
			t.Fatalf("no best layout for %s", b.Name)
		}
		base := db.Baseline(b.Set, b.Name, gatelib.QCAOne)
		if base == nil {
			t.Fatalf("no baseline for %s", b.Name)
		}
		if best.Area > base.Area {
			t.Errorf("%s: best %d worse than baseline %d", b.Name, best.Area, base.Area)
		}
	}
	rows := db.TableI(benches, gatelib.QCAOne)
	if len(rows) != len(benches) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DeltaA > 0 {
			t.Errorf("%s: positive ΔA %+.1f%%", r.Name, r.DeltaA)
		}
	}
	text := RenderTableI(rows, gatelib.QCAOne)
	for _, want := range []string{"QCA ONE", "mux21", "Algorithm", "ΔA"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

func TestFilterMatching(t *testing.T) {
	b := mustBench(t, "Trindade16", "mux21")
	e, err := RunFlow(context.Background(), b, Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho}, fastLimits())
	if err != nil {
		t.Fatal(err)
	}
	db := &Database{Entries: []*Entry{e}}
	cases := []struct {
		f    Filter
		want int
	}{
		{Filter{}, 1},
		{Filter{Set: "trindade16"}, 1},
		{Filter{Set: "EPFL"}, 0},
		{Filter{Library: "qcaone"}, 1},
		{Filter{Library: "bestagon"}, 0},
		{Filter{Scheme: "2ddwave"}, 1},
		{Filter{Scheme: "USE"}, 0},
		{Filter{Algorithm: "ortho"}, 1},
		{Filter{Algorithm: "exact"}, 0},
	}
	for i, c := range cases {
		if got := len(db.Select(c.f)); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
	no := false
	if got := len(db.Select(Filter{InOrd: &no})); got != 1 {
		t.Errorf("InOrd=false filter: %d", got)
	}
	yes := true
	if got := len(db.Select(Filter{PLO: &yes})); got != 0 {
		t.Errorf("PLO=true filter: %d", got)
	}
}

func TestFlowString(t *testing.T) {
	f := Flow{Library: gatelib.Bestagon, Scheme: clocking.Row, Algorithm: AlgoOrtho, InputOrder: true, Hexagonalize: true, PostLayout: true}
	if got := f.String(); got != "ortho, InOrd (SDN), 45°, PLO" {
		t.Errorf("Flow.String() = %q", got)
	}
	if got := f.ID(); got != "bestagon_row_ortho+inord+hex+plo" {
		t.Errorf("Flow.ID() = %q", got)
	}
}

func TestFlowsEnumeration(t *testing.T) {
	qf := Flows(gatelib.QCAOne)
	if len(qf) < 8 {
		t.Errorf("QCA ONE flows = %d, want >= 8", len(qf))
	}
	bf := Flows(gatelib.Bestagon)
	if len(bf) < 5 {
		t.Errorf("Bestagon flows = %d, want >= 5", len(bf))
	}
	for _, f := range bf {
		if f.Scheme != clocking.Row {
			t.Errorf("Bestagon flow with scheme %s", f.Scheme)
		}
	}
}

func TestFlowIDRoundTrip(t *testing.T) {
	flows := []Flow{
		{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoExact},
		{Library: gatelib.QCAOne, Scheme: clocking.USE, Algorithm: AlgoNanoPlaceR, PostLayout: true},
		{Library: gatelib.Bestagon, Scheme: clocking.Row, Algorithm: AlgoOrtho, InputOrder: true, Hexagonalize: true, PostLayout: true},
	}
	for _, f := range flows {
		got, err := ParseFlowID(f.ID())
		if err != nil {
			t.Fatalf("%s: %v", f.ID(), err)
		}
		if got.Library != f.Library || got.Scheme != f.Scheme || got.Algorithm != f.Algorithm ||
			got.InputOrder != f.InputOrder || got.Hexagonalize != f.Hexagonalize || got.PostLayout != f.PostLayout {
			t.Errorf("round trip %s -> %+v", f.ID(), got)
		}
	}
	for _, bad := range []string{"x", "qcaone_2ddwave_frobnicate", "qcaone_nope_ortho", "nope_row_ortho", "qcaone_2ddwave_ortho+quantum"} {
		if _, err := ParseFlowID(bad); err == nil {
			t.Errorf("ParseFlowID accepted %q", bad)
		}
	}
}

func TestLoadDatabaseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := mustBench(t, "Trindade16", "mux21")
	e, err := RunFlow(context.Background(), b, Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho}, fastLimits())
	if err != nil {
		t.Fatal(err)
	}
	text, err := fgl.WriteString(e.Layout)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, EntryFileName(e)+".fgl"), []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	// A junk file must be skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "junk.fgl"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDatabase(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Entries) != 1 {
		t.Fatalf("loaded %d entries", len(db.Entries))
	}
	got := db.Entries[0]
	if got.Area != e.Area || got.Flow.ID() != e.Flow.ID() || got.Benchmark.Name != "mux21" {
		t.Errorf("loaded entry mismatch: %+v", got)
	}
	if !got.Verified {
		t.Error("reverify did not mark the entry verified")
	}
	if len(db.Failures) == 0 {
		t.Error("junk file not recorded as failure")
	}
}

func TestLoadDatabaseEmptyDir(t *testing.T) {
	if _, err := LoadDatabase(t.TempDir(), false); err == nil {
		t.Error("empty directory accepted")
	}
}
