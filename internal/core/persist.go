package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/fgl"
	"repro/internal/gatelib"
	"repro/internal/verify"
	"repro/internal/verilog"
)

// EntryFileName returns the canonical file stem used when an entry is
// written to disk: {set}__{name}__{flowID}.
func EntryFileName(e *Entry) string {
	return fmt.Sprintf("%s__%s__%s",
		strings.ToLower(e.Benchmark.Set), strings.ToLower(e.Benchmark.Name), e.Flow.ID())
}

// ParseFlowID reverses Flow.ID: "{lib}_{scheme}_{algo}[+inord][+hex][+plo]".
func ParseFlowID(id string) (Flow, error) {
	parts := strings.SplitN(id, "_", 3)
	if len(parts) != 3 {
		return Flow{}, fmt.Errorf("core: malformed flow id %q", id)
	}
	lib, err := gatelib.ByName(parts[0])
	if err != nil {
		return Flow{}, fmt.Errorf("core: flow id %q: %w", id, err)
	}
	scheme, err := clocking.ByName(parts[1])
	if err != nil {
		return Flow{}, fmt.Errorf("core: flow id %q: %w", id, err)
	}
	flow := Flow{Library: lib, Scheme: scheme}
	segs := strings.Split(parts[2], "+")
	switch strings.ToLower(segs[0]) {
	case "exact":
		flow.Algorithm = AlgoExact
	case "ortho":
		flow.Algorithm = AlgoOrtho
	case strings.ToLower(string(AlgoNanoPlaceR)):
		flow.Algorithm = AlgoNanoPlaceR
	default:
		return Flow{}, fmt.Errorf("core: flow id %q: unknown algorithm %q", id, segs[0])
	}
	for _, s := range segs[1:] {
		switch s {
		case "inord":
			flow.InputOrder = true
		case "hex":
			flow.Hexagonalize = true
		case "plo":
			flow.PostLayout = true
		default:
			return Flow{}, fmt.Errorf("core: flow id %q: unknown optimization %q", id, s)
		}
	}
	return flow, nil
}

// SaveDatabase writes every entry of db to dir: one
// {set}__{name}__{flowID}.fgl layout file per entry plus one
// {set}__{name}.v Verilog source per benchmark (written once, from the
// first entry of that benchmark), creating dir if needed. Entries must
// retain their layouts — a campaign that should be saved must not set
// Limits.DiscardLayouts. Failures are not persisted; LoadDatabase
// re-derives failures from what it finds on disk. The output is
// deterministic: the same database always produces byte-identical
// files, so save→load→save round-trips reproduce the directory exactly.
// It returns the number of .fgl files written.
func SaveDatabase(db *Database, dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	written := 0
	for _, e := range db.Entries {
		if e.Layout == nil {
			return written, fmt.Errorf("core: entry %s has no layout to save (generated with DiscardLayouts?)", EntryFileName(e))
		}
		text, err := fgl.WriteString(e.Layout)
		if err != nil {
			return written, err
		}
		if err := os.WriteFile(filepath.Join(dir, EntryFileName(e)+".fgl"), []byte(text), 0o644); err != nil {
			return written, err
		}
		written++
		vname := filepath.Join(dir, strings.ToLower(e.Benchmark.Set)+"__"+strings.ToLower(e.Benchmark.Name)+".v")
		if _, err := os.Stat(vname); os.IsNotExist(err) {
			vtext, err := verilog.WriteString(e.Benchmark.Build())
			if err != nil {
				return written, err
			}
			if err := os.WriteFile(vname, []byte(vtext), 0o644); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// LoadDatabase reads every {set}__{name}__{flow}.fgl file in dir into a
// Database. Layouts are design-rule checked on load; when reverify is
// set and the layout is small enough, functional equivalence against
// the registered benchmark network is re-established too.
func LoadDatabase(dir string, reverify bool) (*Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := &Database{}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".fgl") {
			continue
		}
		stem := strings.TrimSuffix(name, ".fgl")
		parts := strings.SplitN(stem, "__", 3)
		if len(parts) != 3 {
			db.Failures = append(db.Failures, Failure{Reason: fmt.Sprintf("%s: not a generated layout file name", name), Outcome: OutcomeError})
			continue
		}
		bm, err := bench.ByName(parts[0], parts[1])
		if err != nil {
			db.Failures = append(db.Failures, Failure{Reason: fmt.Sprintf("%s: %v", name, err), Outcome: OutcomeError})
			continue
		}
		flow, err := ParseFlowID(parts[2])
		if err != nil {
			db.Failures = append(db.Failures, Failure{Benchmark: bm, Reason: err.Error(), Outcome: OutcomeError})
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		l, err := fgl.Read(f)
		f.Close()
		if err != nil {
			db.Failures = append(db.Failures, Failure{Benchmark: bm, Flow: flow, Reason: err.Error(), Outcome: OutcomeError})
			continue
		}
		if err := verify.CheckDesignRules(l).Error(); err != nil {
			db.Failures = append(db.Failures, Failure{Benchmark: bm, Flow: flow, Reason: err.Error(), Outcome: OutcomeVerifyFailed})
			continue
		}
		e := &Entry{Benchmark: bm, Flow: flow, Layout: l}
		s := l.ComputeStats()
		e.Width, e.Height, e.Area = s.Width, s.Height, s.Area
		e.Gates, e.Wires, e.Crossings = s.Gates, s.Wires, s.Crossings
		e.VerifyNote = "loaded from disk (DRC only)"
		if reverify && l.NumTiles() <= (Limits{}).withDefaults().VerifyMaxTiles {
			eq, verr := verify.Equivalent(l, bm.Build())
			if verr != nil || !eq {
				db.Failures = append(db.Failures, Failure{Benchmark: bm, Flow: flow,
					Reason:  fmt.Sprintf("not equivalent to %s/%s (%v)", bm.Set, bm.Name, verr),
					Outcome: OutcomeVerifyFailed})
				continue
			}
			e.Verified = true
			e.VerifyNote = ""
		}
		db.Entries = append(db.Entries, e)
	}
	if len(db.Entries) == 0 {
		return nil, fmt.Errorf("core: no loadable .fgl layouts in %s", dir)
	}
	return db, nil
}
