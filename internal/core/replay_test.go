package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/gatelib"
	"repro/internal/obs"
)

// journaledCampaign runs one campaign with a journal attached and
// returns the database next to the replay reconstructed purely from the
// journal bytes.
func journaledCampaign(t *testing.T, benches []bench.Benchmark, workers int, limits Limits) (*Database, *JournalReplay) {
	t.Helper()
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	j := obs.NewJournal(&buf, reg)
	ctx := obs.WithJournal(obs.WithRegistry(context.Background(), reg), j)
	limits.Workers = workers
	db := Generate(ctx, benches, gatelib.QCAOne, limits, nil)
	if err := j.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}
	events, truncated, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading journal back: %v", err)
	}
	rep := ReplayJournal(events, truncated)
	for _, is := range rep.Issues {
		t.Errorf("journal issue: %s", is)
	}
	if len(rep.Campaigns) != 1 {
		t.Fatalf("replayed %d campaigns, want 1", len(rep.Campaigns))
	}
	return db, rep
}

// TestJournalReplayMatchesDatabase is the acceptance check of the
// flight recorder: the outcome table recomputed from journal events
// alone must be byte-identical to the one rendered from the saved
// database, at any worker count.
func TestJournalReplayMatchesDatabase(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign generation in -short mode")
	}
	benches := bench.BySet("Trindade16")[:3]
	limits := Limits{
		ExactMaxNodes:  1,
		NanoTimeout:    30 * time.Second,
		PLOTimeout:     30 * time.Second,
		DiscardLayouts: true,
	}
	var first string
	for _, workers := range []int{1, 4} {
		db, rep := journaledCampaign(t, benches, workers, limits)
		c := rep.Campaigns[0]
		if !c.Complete() {
			t.Fatalf("workers=%d: campaign replay incomplete: %s", workers, c.campaignStatus())
		}
		fromJournal := RenderOutcomeRows(c.OutcomeRows())
		fromDB := RenderOutcomeRows(DatabaseOutcomeRows(db))
		if fromJournal != fromDB {
			t.Errorf("workers=%d: journal and database outcome tables differ:\n--- journal\n%s--- database\n%s",
				workers, fromJournal, fromDB)
		}
		if c.Total != len(benches)*len(Flows(gatelib.QCAOne)) || c.Done != c.Total {
			t.Errorf("workers=%d: replay counts done=%d total=%d", workers, c.Done, c.Total)
		}
		if c.Env == nil || c.Env.GoVersion == "" {
			t.Errorf("workers=%d: campaign_start carried no environment stamp", workers)
		}
		if first == "" {
			first = fromJournal
		} else if fromJournal != first {
			t.Errorf("outcome table depends on the worker count:\n--- workers=1\n%s--- workers=%d\n%s",
				first, workers, fromJournal)
		}
	}
}

// TestJournalRecordsCanceledCampaign cancels a campaign mid-run and
// checks the journal tells the truth about it: a campaign_done record
// with Canceled set, verify not ok, and no phantom jobs.
func TestJournalRecordsCanceledCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign generation in -short mode")
	}
	benches := bench.BySet("Trindade16")
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	j := obs.NewJournal(&buf, reg)
	ctx, cancel := context.WithCancel(obs.WithJournal(obs.WithRegistry(context.Background(), reg), j))
	defer cancel()
	limits := fastLimits()
	limits.Workers = 4
	limits.DiscardLayouts = true
	done := 0
	Generate(ctx, benches, gatelib.QCAOne, limits, func(p Progress) {
		done = p.Done
		if p.Done == 2 {
			cancel()
		}
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, truncated, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil || truncated {
		t.Fatalf("reading journal: err=%v truncated=%v", err, truncated)
	}
	rep := ReplayJournal(events, truncated)
	for _, is := range rep.Issues {
		t.Errorf("journal issue: %s", is)
	}
	c := rep.Campaigns[0]
	if !c.Finished || !c.Canceled {
		t.Fatalf("canceled campaign: Finished=%v Canceled=%v", c.Finished, c.Canceled)
	}
	if c.Complete() {
		t.Error("canceled campaign replays as complete")
	}
	if c.Done != done {
		t.Errorf("replay Done=%d, campaign reported %d", c.Done, done)
	}
	if text, ok := RenderJournalVerify(rep); ok {
		t.Errorf("verify passed a canceled campaign:\n%s", text)
	}
}

// interruptedEvents is a hand-built journal of a campaign killed
// mid-run: job 1 finished, job 2 was in flight, job 3 never started,
// and no campaign_done record exists.
func interruptedEvents() []obs.Event {
	return []obs.Event{
		{Seq: 1, Type: obs.EventCampaignStart, Campaign: "c1", Schema: obs.JournalSchema,
			Library: "qcaone", Benchmarks: 3, Total: 3, Workers: 2},
		{Seq: 2, Type: obs.EventJobStart, Campaign: "c1", Job: 1,
			Set: "Trindade16", Benchmark: "mux21", Flow: "exact-2ddwave", Worker: "w00"},
		{Seq: 3, Type: obs.EventJobStart, Campaign: "c1", Job: 2,
			Set: "Trindade16", Benchmark: "xor2", Flow: "exact-2ddwave", Worker: "w01"},
		{Seq: 4, Type: obs.EventJobDone, Campaign: "c1", Job: 1,
			Set: "Trindade16", Benchmark: "mux21", Flow: "exact-2ddwave", Worker: "w00",
			Outcome: "ok", Width: 3, Height: 3, Area: 9, Verified: true},
	}
}

// TestVerifyFlagsInterruptedJournal is the second acceptance check:
// verify must call out the interrupted campaign and list the exact
// (benchmark, flow) jobs that never finished.
func TestVerifyFlagsInterruptedJournal(t *testing.T) {
	rep := ReplayJournal(interruptedEvents(), false)
	if len(rep.Issues) != 0 {
		t.Fatalf("unexpected issues: %v", rep.Issues)
	}
	c := rep.Campaigns[0]
	if c.Complete() {
		t.Fatal("interrupted campaign replays as complete")
	}
	unfinished := c.Unfinished()
	if len(unfinished) != 1 || unfinished[0] != (JobKey{Set: "Trindade16", Benchmark: "xor2", Flow: "exact-2ddwave"}) {
		t.Fatalf("Unfinished = %v, want the in-flight xor2 job", unfinished)
	}
	text, ok := RenderJournalVerify(rep)
	if ok {
		t.Fatal("verify passed an interrupted journal")
	}
	for _, want := range []string{
		"no campaign_done record",
		"unfinished: Trindade16/xor2 exact-2ddwave",
		"1 jobs never started",
		"INCOMPLETE (1/3 jobs)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("verify output missing %q:\n%s", want, text)
		}
	}
	// The resume seam: only the finished job is in DoneKeys.
	if keys := c.DoneKeys(); len(keys) != 1 || keys[0].Benchmark != "mux21" {
		t.Errorf("DoneKeys = %v, want just the finished mux21 job", keys)
	}
}

func TestReplayDetectsStructuralIssues(t *testing.T) {
	events := interruptedEvents()
	// Introduce a sequence gap and a counter lie.
	events[3].Seq = 9
	events = append(events, obs.Event{Seq: 10, Type: obs.EventCampaignDone, Campaign: "c1",
		Done: 3, Entries: 2, Failures: 1, Outcomes: map[string]int{"ok": 2, "timeout": 1}})
	rep := ReplayJournal(events, false)
	if len(rep.Issues) == 0 {
		t.Fatal("no issues reported for a journal with a seq gap and wrong counters")
	}
	text := strings.Join(rep.Issues, "\n")
	for _, want := range []string{"expected sequence number", "reports 3 finished jobs", "reports 2 entries"} {
		if !strings.Contains(text, want) {
			t.Errorf("issues missing %q:\n%s", want, text)
		}
	}
	if _, ok := RenderJournalVerify(rep); ok {
		t.Error("verify passed a structurally broken journal")
	}
}

func TestReplayTruncatedJournalFailsVerify(t *testing.T) {
	rep := ReplayJournal(interruptedEvents(), true)
	text, ok := RenderJournalVerify(rep)
	if ok {
		t.Fatal("verify passed a truncated journal")
	}
	if !strings.Contains(text, "damaged tail") {
		t.Errorf("verify output missing the damaged-tail warning:\n%s", text)
	}
}

func TestRenderJournalSummaryEmpty(t *testing.T) {
	rep := ReplayJournal(nil, false)
	if got := RenderJournalSummary(rep); got != "no campaigns recorded\n" {
		t.Errorf("empty summary = %q", got)
	}
	if _, ok := RenderJournalVerify(rep); ok {
		t.Error("verify passed an empty journal")
	}
}

// TestCheckReplayAgainstDir runs a real (tiny) campaign, saves the
// layouts, and cross-checks the journal against the directory — then
// breaks the directory both ways.
func TestCheckReplayAgainstDir(t *testing.T) {
	var builds atomic.Int32
	benches := []bench.Benchmark{
		countingBenchmark("one", &builds),
		countingBenchmark("two", &builds),
	}
	limits := fastLimits()
	db, rep := journaledCampaign(t, benches, 2, limits)
	if len(db.Entries) == 0 {
		t.Fatal("campaign produced no layouts")
	}
	dir := t.TempDir()
	if _, err := SaveDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	n, err := CheckReplayAgainstDir(rep, dir)
	if err != nil {
		t.Fatalf("cross-check of a faithful directory failed: %v", err)
	}
	if n != len(db.Entries) {
		t.Errorf("cross-check matched %d layouts, database has %d", n, len(db.Entries))
	}

	// Remove one layout: the journal now claims an ok job with no file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	removed := ""
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".fgl") {
			removed = filepath.Join(dir, de.Name())
			break
		}
	}
	if removed == "" {
		t.Fatal("no .fgl files saved")
	}
	if err := os.Remove(removed); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckReplayAgainstDir(rep, dir); err == nil {
		t.Error("cross-check passed with a missing layout file")
	}

	// Restore balance, then plant a layout the journal never recorded.
	if err := os.WriteFile(removed, []byte("placeholder"), 0o644); err != nil {
		t.Fatal(err)
	}
	extra := filepath.Join(dir, "test__phantom__exact-2ddwave.fgl")
	if err := os.WriteFile(extra, []byte("placeholder"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckReplayAgainstDir(rep, dir); err == nil {
		t.Error("cross-check passed with an unrecorded extra layout")
	}
}

// TestProgressStringRate pins the throughput/ETA suffix of the progress
// line: present with a rate, absent without one, ETA dropped when zero.
func TestProgressStringRate(t *testing.T) {
	p := Progress{
		Benchmark: bench.Benchmark{Set: "Trindade16", Name: "mux21"},
		Flow:      Flow{Library: gatelib.QCAOne, Algorithm: AlgoOrtho},
		Done:      2, Total: 4,
		Entry:   &Entry{Width: 4, Height: 3, Area: 12},
		Elapsed: 100 * time.Millisecond,
	}
	if s := p.String(); strings.Contains(s, "flows/s") {
		t.Errorf("zero-throughput progress renders a rate: %q", s)
	}
	p.Throughput = 2.5
	p.ETA = 62 * time.Second
	if s := p.String(); !strings.HasSuffix(s, "2.5 flows/s ETA 1m2s") {
		t.Errorf("progress line missing rate suffix: %q", s)
	}
	p.ETA = 0 // final flow: rate without ETA
	if s := p.String(); !strings.HasSuffix(s, "2.5 flows/s") || strings.Contains(s, "ETA") {
		t.Errorf("final progress line: %q", s)
	}
	p.Err = context.DeadlineExceeded
	p.Entry = nil
	p.Outcome = OutcomeTimeout
	p.Throughput = 1.25
	p.ETA = 2 * time.Second
	if s := p.String(); !strings.HasSuffix(s, "1.2 flows/s ETA 2s") {
		t.Errorf("failed-flow progress line missing rate: %q", s)
	}
}

// TestGenerateProgressCarriesThroughput checks the scheduler computes a
// running rate: every callback after the first carries Throughput > 0,
// intermediate ones an ETA, and the final one no ETA.
func TestGenerateProgressCarriesThroughput(t *testing.T) {
	var builds atomic.Int32
	benches := []bench.Benchmark{countingBenchmark("tp", &builds)}
	limits := fastLimits()
	limits.Workers = 2
	limits.DiscardLayouts = true
	var last Progress
	sawRate := false
	Generate(context.Background(), benches, gatelib.QCAOne, limits, func(p Progress) {
		if p.Throughput > 0 {
			sawRate = true
			if p.Done < p.Total && p.ETA <= 0 {
				t.Errorf("callback %d/%d has rate %.2f but no ETA", p.Done, p.Total, p.Throughput)
			}
		}
		last = p
	})
	if !sawRate {
		t.Error("no progress callback carried a throughput")
	}
	if last.ETA != 0 {
		t.Errorf("final callback has ETA %v, want 0", last.ETA)
	}
}
