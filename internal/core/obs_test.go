package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/physical/exact"
)

// TestRuntimeExcludesVerification pins the Entry.Runtime definition:
// placement plus optimization stages only — library preparation and
// verification (DRC, equivalence) are reported in Stages but never count
// toward the paper's runtime column.
func TestRuntimeExcludesVerification(t *testing.T) {
	b := mustBench(t, "Trindade16", "ha")
	e, err := RunFlow(context.Background(), b, Flow{
		Library: gatelib.Bestagon, Scheme: clocking.Row, Algorithm: AlgoOrtho,
		Hexagonalize: true, PostLayout: true,
	}, fastLimits())
	if err != nil {
		t.Fatal(err)
	}
	place := e.Stages[StagePlace(AlgoOrtho)]
	if place <= 0 {
		t.Fatalf("placement stage not timed: %v", e.Stages)
	}
	want := place + e.Stages[StageHexagonalize] + e.Stages[StagePostLayout]
	if e.Runtime != want {
		t.Errorf("Runtime = %v, want placement+hex+plo = %v (stages %v)", e.Runtime, want, e.Stages)
	}
	// Verification ran and was timed, but is kept out of Runtime.
	for _, stage := range []string{StagePrepare, StageDRC, StageEquivalence} {
		if _, ok := e.Stages[stage]; !ok {
			t.Errorf("stage %q missing from Stages: %v", stage, e.Stages)
		}
	}
}

func TestRunFlowRecordsSpansAndOutcome(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	b := mustBench(t, "Trindade16", "mux21")
	if _, err := RunFlow(ctx, b, Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho}, fastLimits()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricFlowTotal, obs.L("outcome", string(OutcomeOK))).Value(); got != 1 {
		t.Errorf("ok outcome counter = %d, want 1", got)
	}
	for _, stage := range []string{StagePrepare, StagePlace(AlgoOrtho), StageDRC, StageEquivalence, "flow"} {
		labels := []obs.Label{obs.L("stage", stage)}
		if stage == "flow" {
			labels = append(labels, obs.L("algorithm", "ortho"), obs.L("library", "qcaone"))
		}
		if s := reg.Histogram(obs.SpanMetric, nil, labels...).Snapshot(); s.Count != 1 {
			t.Errorf("stage %q histogram count = %d, want 1", stage, s.Count)
		}
	}
}

// TestRunFlowTraceCapture checks the span→trace wiring end to end: one
// flow run under an enabled trace store yields one retained trace whose
// root carries the benchmark identity and whose children are the
// pipeline stages.
func TestRunFlowTraceCapture(t *testing.T) {
	ts := obs.NewTraceStore(obs.TracePolicy{})
	ctx := obs.WithTraces(obs.WithRegistry(context.Background(), obs.NewRegistry()), ts)
	b := mustBench(t, "Trindade16", "mux21")
	flow := Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho}
	if _, err := RunFlow(ctx, b, flow, fastLimits()); err != nil {
		t.Fatal(err)
	}
	snap := ts.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("retained %d traces, want 1", len(snap))
	}
	tr := snap[0]
	if tr.Root != "flow" || tr.Failed {
		t.Fatalf("trace root %q failed %v", tr.Root, tr.Failed)
	}
	attrs := tr.RootAttrs()
	if attrs["set"] != "Trindade16" || attrs["benchmark"] != "mux21" || attrs["flow"] != flow.ID() {
		t.Errorf("flow identity missing from trace: %v", attrs)
	}
	stages := map[string]bool{}
	for _, e := range tr.Children(tr.Events[0].ID) {
		stages[e.Name] = true
		if e.Duration <= 0 {
			t.Errorf("stage %q has no duration", e.Name)
		}
	}
	for _, want := range []string{StagePrepare, StagePlace(AlgoOrtho), StageDRC, StageEquivalence} {
		if !stages[want] {
			t.Errorf("stage %q missing from trace children: %v", want, stages)
		}
	}
}

// TestGenerateWorkerTraces runs a campaign where the exact flows all
// time out: the failed worker traces must be retained (with the exact
// worker identity annotated), and retention must stay within the
// configured bounds.
func TestGenerateWorkerTraces(t *testing.T) {
	ts := obs.NewTraceStore(obs.TracePolicy{MaxFailed: 4, SlowestPerRoot: 2, SampleEvery: 2, MaxSampled: 2})
	ctx := obs.WithTraces(obs.WithRegistry(context.Background(), obs.NewRegistry()), ts)
	benches := []bench.Benchmark{mustBench(t, "Trindade16", "mux21")}
	limits := fastLimits()
	limits.ExactTimeout = time.Nanosecond
	db := Generate(ctx, benches, gatelib.QCAOne, limits, nil)
	if len(db.Entries) == 0 || len(db.Failures) == 0 {
		t.Fatalf("campaign: %d entries, %d failures; want both nonzero", len(db.Entries), len(db.Failures))
	}

	st := ts.Stats()
	if st.Seen == 0 {
		t.Fatal("no traces offered by the campaign")
	}
	if st.Failed == 0 {
		t.Error("timed-out flows produced no failed traces")
	}
	if st.Failed > 4 || st.Retained > 4+2+2 {
		t.Errorf("retention bounds exceeded: %+v", st)
	}
	for _, tr := range ts.Snapshot() {
		if tr.Root != "worker" {
			t.Fatalf("campaign trace root = %q, want worker", tr.Root)
		}
		if tr.RootAttrs()["worker_id"] == "" {
			t.Errorf("worker trace without worker_id: %v", tr.RootAttrs())
		}
		fe := tr.FlowEvent()
		if fe == nil {
			t.Fatal("worker trace without a flow event")
		}
		if fe.Attrs["benchmark"] != "mux21" || fe.Attrs["flow"] == "" {
			t.Errorf("flow event attrs = %v", fe.Attrs)
		}
		if tr.Failed && tr.Events[0].Err == "" {
			t.Errorf("failed worker trace lost its error: %+v", tr.Events[0])
		}
	}
}

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OutcomeOK},
		{exact.ErrTimeout, OutcomeTimeout},
		{exact.ErrNoLayout, OutcomeInfeasible},
		{ErrInfeasible, OutcomeInfeasible},
		{ErrVerifyFailed, OutcomeVerifyFailed},
		{context.Canceled, OutcomeCanceled},
		{context.DeadlineExceeded, OutcomeCanceled},
		{errors.New("boom"), OutcomeError},
	}
	for _, c := range cases {
		if got := ClassifyOutcome(c.err); got != c.want {
			t.Errorf("ClassifyOutcome(%v) = %s, want %s", c.err, got, c.want)
		}
	}
	// Wrapped sentinels classify the same way.
	b := mustBench(t, "Trindade16", "mux21")
	_, err := RunFlow(context.Background(), b,
		Flow{Library: gatelib.QCAOne, Scheme: clocking.USE, Algorithm: AlgoOrtho}, fastLimits())
	if got := ClassifyOutcome(err); got != OutcomeInfeasible {
		t.Errorf("ortho-on-USE outcome = %s, want infeasible (%v)", got, err)
	}
}

func TestGenerateSkippedSummary(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	benches := []bench.Benchmark{mustBench(t, "Trindade16", "mux21")}
	// A nanosecond exact budget forces every exact flow to time out while
	// the scalable flows still succeed.
	limits := fastLimits()
	limits.ExactTimeout = time.Nanosecond
	db := Generate(ctx, benches, gatelib.QCAOne, limits, nil)
	if len(db.Entries) == 0 {
		t.Fatal("no layouts generated at all")
	}
	skipped := db.Skipped()
	if skipped[OutcomeTimeout] == 0 {
		t.Errorf("no timeouts recorded: %v (failures %d)", skipped, len(db.Failures))
	}
	summary := db.SkippedSummary()
	if !strings.Contains(summary, "timeout") || !strings.Contains(summary, "flows skipped") {
		t.Errorf("summary = %q", summary)
	}
	if got := reg.Counter(MetricFlowTotal, obs.L("outcome", string(OutcomeTimeout))).Value(); got == 0 {
		t.Error("timeout outcome counter not incremented")
	}
	if done, total := reg.Gauge(MetricCampaignDone).Value(), reg.Gauge(MetricCampaignTotal).Value(); done != total {
		t.Errorf("campaign done %v != total %v after completion", done, total)
	}
	// Every failure carries a non-empty outcome.
	for _, f := range db.Failures {
		if f.Outcome == "" {
			t.Errorf("failure without outcome: %q", f.Reason)
		}
	}
}

func TestGenerateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first flow
	benches := []bench.Benchmark{mustBench(t, "Trindade16", "mux21")}
	db := Generate(ctx, benches, gatelib.QCAOne, fastLimits(), nil)
	if len(db.Entries) != 0 {
		t.Errorf("canceled campaign produced %d entries", len(db.Entries))
	}
	// The campaign must return promptly with the partial database rather
	// than running all flows; at most the in-flight flow is recorded.
	if len(db.Failures) > 1 {
		t.Errorf("canceled campaign recorded %d failures", len(db.Failures))
	}
	empty := &Database{}
	if s := empty.SkippedSummary(); s != "" {
		t.Errorf("empty summary = %q", s)
	}
}
