package core

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/gatelib"
)

// smallDatabase generates a couple of cheap ortho layouts over the
// registered Trindade16 functions, plus synthetic failures of every
// skip class, so the round-trip test covers entries and failures alike.
func smallDatabase(t *testing.T) *Database {
	t.Helper()
	db := &Database{}
	flow := Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: AlgoOrtho}
	for _, name := range []string{"mux21", "xor2"} {
		b, err := bench.ByName("trindade16", name)
		if err != nil {
			t.Fatalf("benchmark %s: %v", name, err)
		}
		e, err := RunFlow(nil, b, flow, Limits{})
		if err != nil {
			t.Fatalf("flow on %s: %v", name, err)
		}
		db.Entries = append(db.Entries, e)
	}
	infeasible, err := bench.ByName("trindade16", "par_gen")
	if err != nil {
		t.Fatalf("par_gen: %v", err)
	}
	db.Failures = append(db.Failures,
		Failure{Benchmark: infeasible, Flow: flow, Reason: "too large for exact", Outcome: OutcomeInfeasible},
		Failure{Benchmark: infeasible, Flow: flow, Reason: "deadline", Outcome: OutcomeTimeout},
	)
	return db
}

// dirContents maps every file name in dir to its bytes.
func dirContents(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, de := range des {
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", de.Name(), err)
		}
		out[de.Name()] = string(data)
	}
	return out
}

// TestSaveLoadSaveRoundTrip pins that save → load → save reproduces the
// on-disk database byte-for-byte: the .fgl writer is deterministic, the
// loader reconstructs enough of each entry to re-save it, and failures
// (which are not persisted) neither break the save nor leak into it.
func TestSaveLoadSaveRoundTrip(t *testing.T) {
	db := smallDatabase(t)
	dir1 := t.TempDir()
	written, err := SaveDatabase(db, dir1)
	if err != nil {
		t.Fatalf("first save: %v", err)
	}
	if written != len(db.Entries) {
		t.Fatalf("first save wrote %d layouts, want %d", written, len(db.Entries))
	}
	first := dirContents(t, dir1)
	// Two entries on distinct benchmarks → two .fgl plus two .v files.
	if len(first) != 4 {
		t.Fatalf("first save produced %d files, want 4: %v", len(first), fileNames(first))
	}

	loaded, err := LoadDatabase(dir1, true)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded.Entries) != len(db.Entries) {
		t.Fatalf("loaded %d entries, want %d", len(loaded.Entries), len(db.Entries))
	}
	if len(loaded.Failures) != 0 {
		t.Fatalf("load invented failures: %+v", loaded.Failures)
	}
	for i, e := range loaded.Entries {
		if !e.Verified {
			t.Fatalf("loaded entry %d (%s) not re-verified", i, EntryFileName(e))
		}
		if e.Flow.ID() != db.Entries[i].Flow.ID() {
			t.Fatalf("entry %d flow id %q, want %q", i, e.Flow.ID(), db.Entries[i].Flow.ID())
		}
	}

	dir2 := t.TempDir()
	if _, err := SaveDatabase(loaded, dir2); err != nil {
		t.Fatalf("second save: %v", err)
	}
	second := dirContents(t, dir2)
	if len(second) != len(first) {
		t.Fatalf("second save produced %d files, want %d", len(second), len(first))
	}
	for name, data := range first {
		got, ok := second[name]
		if !ok {
			t.Fatalf("second save is missing %s", name)
		}
		if got != data {
			t.Fatalf("%s differs after save→load→save round trip", name)
		}
	}
}

// TestLoadDatabaseRecordsSkippedEntries pins that the loader reports
// unreadable and misnamed files as classified failures instead of
// aborting, and that those failures show up in the Skipped summary.
func TestLoadDatabaseRecordsSkippedEntries(t *testing.T) {
	db := smallDatabase(t)
	dir := t.TempDir()
	if _, err := SaveDatabase(db, dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	junk := map[string]string{
		"notalayout.fgl": "junk: not a valid file name shape",
		"trindade16__mux21__qcaone_use_exact.fgl": "garbage that does not parse as fgl",
	}
	for name, data := range junk {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	loaded, err := LoadDatabase(dir, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded.Entries) != len(db.Entries) {
		t.Fatalf("loaded %d entries, want %d", len(loaded.Entries), len(db.Entries))
	}
	if len(loaded.Failures) != len(junk) {
		t.Fatalf("loaded %d failures, want %d: %+v", len(loaded.Failures), len(junk), loaded.Failures)
	}
	if got := loaded.Skipped()[OutcomeError]; got != len(junk) {
		t.Fatalf("Skipped()[error] = %d, want %d", got, len(junk))
	}
	if loaded.SkippedSummary() == "" {
		t.Fatal("SkippedSummary empty despite failures")
	}
}

// TestSaveDatabaseRejectsDiscardedLayouts pins the error path for
// entries whose layouts were dropped by Limits.DiscardLayouts.
func TestSaveDatabaseRejectsDiscardedLayouts(t *testing.T) {
	db := smallDatabase(t)
	db.Entries[0].Layout = nil
	if _, err := SaveDatabase(db, t.TempDir()); err == nil {
		t.Fatal("expected an error saving an entry without a layout")
	}
}

func fileNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
