package conformance

import (
	"reflect"
	"testing"

	"repro/internal/network"
)

// twoGateSpec: x0, x1, x2; g0 = AND(x0, x1) -> signal 3;
// g1 = XOR(3, x2) -> signal 4; POs y0=4, y1=3.
func twoGateSpec() Spec {
	return Spec{
		PIs: 3,
		Gates: []GateSpec{
			{Fn: network.And, In: []int{0, 1}},
			{Fn: network.Xor, In: []int{3, 2}},
		},
		POs: []int{4, 3},
	}
}

func TestRemoveGateRemapsSignals(t *testing.T) {
	s := twoGateSpec()

	// Bypassing g0 rewires its consumers to x0 and shifts g1 down.
	got := removeGate(s, 0)
	want := Spec{
		PIs:   3,
		Gates: []GateSpec{{Fn: network.Xor, In: []int{0, 2}}},
		POs:   []int{3, 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("removeGate(s, 0) = %+v, want %+v", got, want)
	}

	// Bypassing g1 rewires the first PO to g1's first fanin (signal 3).
	got = removeGate(s, 1)
	want = Spec{
		PIs:   3,
		Gates: []GateSpec{{Fn: network.And, In: []int{0, 1}}},
		POs:   []int{3, 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("removeGate(s, 1) = %+v, want %+v", got, want)
	}
}

func TestRemovePIRemapsSignals(t *testing.T) {
	// x1 is unused: g0 = NOT(x0), POs reference x2's successor indexes.
	s := Spec{
		PIs:   3,
		Gates: []GateSpec{{Fn: network.Not, In: []int{0}}},
		POs:   []int{3, 2},
	}
	got := removePI(s, 1)
	want := Spec{
		PIs:   2,
		Gates: []GateSpec{{Fn: network.Not, In: []int{0}}},
		POs:   []int{2, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("removePI(s, 1) = %+v, want %+v", got, want)
	}
}

// TestReductionsStayBuildable: every one-step reduction of a random
// well-formed spec must still elaborate into a valid network — the
// shrinker's safety property.
func TestReductionsStayBuildable(t *testing.T) {
	for i := 0; i < 100; i++ {
		spec := Random(CaseSeed(13, i), GenConfig{})
		for ri, cand := range reductions(spec) {
			if _, err := cand.Build("cand"); err != nil {
				t.Fatalf("case %d reduction %d: %+v -> %+v: %v", i, ri, spec, cand, err)
			}
		}
	}
}

// TestReductionsShrinkSize: each reduction strictly removes a gate, a
// PO, or a PI, so the greedy loop always terminates.
func TestReductionsShrinkSize(t *testing.T) {
	size := func(s Spec) int { return s.PIs + len(s.Gates) + len(s.POs) }
	for i := 0; i < 50; i++ {
		spec := Random(CaseSeed(17, i), GenConfig{})
		for ri, cand := range reductions(spec) {
			if size(cand) >= size(spec) {
				t.Fatalf("case %d reduction %d did not shrink: %+v -> %+v", i, ri, spec, cand)
			}
		}
	}
}
