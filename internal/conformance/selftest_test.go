package conformance

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/network"
)

func TestSelectFlows(t *testing.T) {
	all := SelectFlows("")
	if want := 0; true {
		for _, lib := range gatelib.All() {
			want += len(core.Flows(lib))
		}
		if len(all) == 0 || len(all) != want {
			t.Fatalf("empty filter matched %d flows, catalogue has %d", len(all), want)
		}
	}
	total := len(SelectFlows("qcaone")) + len(SelectFlows("bestagon"))
	if total != len(all) {
		t.Fatalf("library filters cover %d flows, catalogue has %d", total, len(all))
	}
	ortho := SelectFlows("ortho")
	if len(ortho) == 0 {
		t.Fatal("ortho filter matched nothing")
	}
	for _, f := range ortho {
		if !strings.Contains(f.ID(), "ortho") {
			t.Errorf("filter ortho matched %s", f.ID())
		}
	}
	multi := SelectFlows("qcaone_2ddwave_exact, qcaone_use_exact")
	if len(multi) != 2 {
		t.Fatalf("comma filter matched %d flows, want 2", len(multi))
	}
	// Exact IDs beat substring expansion: this selects one flow even
	// though it is a prefix of the +inord variants.
	if got := SelectFlows("qcaone_2ddwave_ortho"); len(got) != 1 || got[0].ID() != "qcaone_2ddwave_ortho" {
		t.Fatalf("exact flow ID filter matched %d flows", len(got))
	}
	if got := SelectFlows("nosuchflow"); got != nil {
		t.Fatalf("bogus filter matched %v", got)
	}
}

// TestSelftestCleanRun: a small run over the fast heuristic flows of
// both libraries must be violation-free and produce runs for every
// (case, flow) pair.
func TestSelftestCleanRun(t *testing.T) {
	cfg := Config{Seed: 1, N: 4, Flows: "ortho,nanoplacer", ReproDir: t.TempDir()}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean run reported violations:\n%s", rep.Text())
	}
	if rep.OK == 0 {
		t.Fatal("no successful runs")
	}
	skipped := 0
	for _, v := range rep.Skipped {
		skipped += v
	}
	if rep.OK+skipped != rep.Runs {
		t.Fatalf("ok %d + skipped %d != runs %d", rep.OK, skipped, rep.Runs)
	}
	if len(rep.Cases) != cfg.N {
		t.Fatalf("report has %d cases, want %d", len(rep.Cases), cfg.N)
	}
}

// TestSelftestWorkerInvariance pins the headline determinism property:
// the report is byte-identical no matter how the work is scheduled.
// Covers every registered flow (including the step-budgeted exact
// search) with a small case count to stay fast.
func TestSelftestWorkerInvariance(t *testing.T) {
	base := Config{Seed: 1, N: 2, ReproDir: t.TempDir()}
	serial := base
	serial.Workers = 1
	r1, err := Run(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = runtime.NumCPU()
	r2, err := Run(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if r1.JSON() != r2.JSON() {
		t.Fatalf("report differs between 1 and %d workers:\n--- serial ---\n%s--- parallel ---\n%s",
			runtime.NumCPU(), r1.JSON(), r2.JSON())
	}
	if r1.Text() != r2.Text() {
		t.Fatal("text report differs between worker counts")
	}
	if r1.Failed() {
		t.Fatalf("clean run reported violations:\n%s", r1.Text())
	}
}

// TestSelftestTamperedFlowIsCaught is the acceptance-criterion test: an
// injected routing bug (the guarded tamper hook) must fail the
// selftest, the shrinker must emit a minimal repro of at most 8 gates,
// and replaying the artifact must reproduce the same invariant.
func TestSelftestTamperedFlowIsCaught(t *testing.T) {
	testHookTamper = TamperFirstWire
	defer func() { testHookTamper = nil }()

	dir := t.TempDir()
	cfg := Config{Seed: 1, N: 3, Flows: "qcaone_2ddwave_ortho", Shrink: true, MaxRepros: 1, ReproDir: dir}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("tampered layouts passed the invariant battery")
	}
	sawDRC := false
	for _, v := range rep.Violations {
		if v.Invariant == InvDRC {
			sawDRC = true
		}
		if v.Invariant == InvRerun {
			t.Errorf("tamper hook broke rerun determinism: %s", v)
		}
	}
	if !sawDRC {
		t.Fatalf("no DRC violation among:\n%s", rep.Text())
	}
	if len(rep.Repros) != 1 {
		t.Fatalf("got %d repro artifacts, want 1", len(rep.Repros))
	}

	repro, err := ReadRepro(rep.Repros[0])
	if err != nil {
		t.Fatal(err)
	}
	if repro.Gates > 8 {
		t.Errorf("shrunk repro has %d gates, want <= 8", repro.Gates)
	}
	if repro.Invariant != InvDRC {
		t.Errorf("repro invariant = %s, want %s", repro.Invariant, InvDRC)
	}
	if repro.RootSeed != cfg.Seed || repro.Verilog == "" {
		t.Errorf("repro metadata incomplete: %+v", repro)
	}

	violations, got, err := Replay(context.Background(), rep.Repros[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != "qcaone_2ddwave_ortho" {
		t.Errorf("replayed flow = %s", got.Flow)
	}
	replayed := false
	for _, v := range violations {
		if v.Invariant == repro.Invariant {
			replayed = true
		}
	}
	if !replayed {
		t.Fatalf("replay did not reproduce invariant %s, got %v", repro.Invariant, violations)
	}
}

// TestReplayCleanAfterFix: once the hook (the "bug") is gone, replaying
// the artifact reports no violations — the fixed-bug workflow.
func TestReplayCleanAfterFix(t *testing.T) {
	testHookTamper = TamperFirstWire
	dir := t.TempDir()
	rep, err := Run(context.Background(), Config{
		Seed: 1, N: 2, Flows: "qcaone_2ddwave_ortho", Shrink: true, MaxRepros: 1, ReproDir: dir,
	})
	testHookTamper = nil
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repros) == 0 {
		t.Fatal("no repro to replay")
	}
	violations, _, err := Replay(context.Background(), rep.Repros[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("replay after fix still violates: %v", violations)
	}
}

// TestBatteryFlagsBrokenEquivalence: corrupting the source network (not
// the layout) must surface as an equivalence violation — the oracle
// checks the layout against the network it was supposedly built from.
func TestBatteryFlagsBrokenEquivalence(t *testing.T) {
	spec := Spec{
		PIs:   2,
		Gates: []GateSpec{{Fn: network.And, In: []int{0, 1}}},
		POs:   []int{2},
	}
	n := spec.MustBuild("case")
	flows := SelectFlows("qcaone_2ddwave_ortho")
	if len(flows) != 1 {
		t.Fatal("flow filter broken")
	}
	limits := Config{Workers: 1}.withDefaults().limits()

	// Run the real flow on the AND network, then hand the battery an OR
	// network as the claimed source.
	wrong := Spec{
		PIs:   2,
		Gates: []GateSpec{{Fn: network.Or, In: []int{0, 1}}},
		POs:   []int{2},
	}.MustBuild("case")
	run := runOne(context.Background(), n, 1, flows[0], limits)
	if len(run.violations) != 0 {
		t.Fatalf("clean case violated: %v", run.violations)
	}
	run = runOne(context.Background(), wrong, 1, flows[0], limits)
	if len(run.violations) != 0 {
		t.Fatalf("clean OR case violated: %v", run.violations)
	}
	// Now the mismatch: flow output for n, battery told the source is `wrong`.
	e, err := core.RunFlowOnNetwork(context.Background(), n.Clone(), "selftest", flows[0], limits)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := runBattery(context.Background(), e, wrong, 1, flows[0], limits)
	found := false
	for _, v := range mismatch.violations {
		if v.Invariant == InvEquivalence {
			found = true
		}
	}
	if !found {
		t.Fatalf("equivalence mismatch not caught: %v", mismatch.violations)
	}
}
