// Package conformance is the property-based conformance harness behind
// `mntbench selftest`: a deterministic random logic-network generator, a
// differential oracle that runs every generated network through every
// registered (library × clocking × algorithm) flow and asserts the full
// invariant battery, and an automatic shrinker that reduces failures to
// minimal repro artifacts.
//
// Everything in this package is seed-driven and deterministic: the same
// seed produces the same networks, the same flow results, and the same
// report bytes regardless of worker count (see docs/CONFORMANCE.md).
package conformance

import (
	"encoding/json"
	"fmt"

	"repro/internal/network"
)

// rng is the xorshift64* generator used for all conformance randomness.
// It is deliberately not math/rand: the stream must be stable across Go
// releases because seeds are recorded in repro artifacts.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// between returns a value in [lo, hi].
func (r *rng) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// GenConfig parameterizes the random network distribution. The zero
// value gives the selftest defaults: tiny networks (so even the exact
// search is feasible) over the full gate mix including MAJ, XOR, and
// reconvergent fanout.
type GenConfig struct {
	MinPIs, MaxPIs     int // default 2..4
	MinPOs, MaxPOs     int // default 1..2 (grows to absorb unconsumed gates)
	MinGates, MaxGates int // default 1..6
	// MaxDepth bounds the logic depth (0 = unbounded). Fanin picks that
	// would exceed it are redrawn from shallower signals.
	MaxDepth int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MinPIs <= 0 {
		c.MinPIs = 2
	}
	if c.MaxPIs < c.MinPIs {
		c.MaxPIs = c.MinPIs + 2
	}
	if c.MinPOs <= 0 {
		c.MinPOs = 1
	}
	if c.MaxPOs < c.MinPOs {
		c.MaxPOs = c.MinPOs + 1
	}
	if c.MinGates <= 0 {
		c.MinGates = 1
	}
	if c.MaxGates < c.MinGates {
		c.MaxGates = c.MinGates + 5
	}
	return c
}

// gateMix is the weighted gate distribution. Two-input gates dominate;
// MAJ, XOR/XNOR, and inverters appear often enough that every flow's
// decomposition paths are exercised. Fanout is not drawn explicitly —
// signal reuse (several consumers picking the same fanin) produces it
// naturally and library preparation makes it explicit.
var gateMix = []struct {
	fn     network.Gate
	weight int
}{
	{network.And, 5},
	{network.Or, 5},
	{network.Nand, 3},
	{network.Nor, 3},
	{network.Xor, 4},
	{network.Xnor, 2},
	{network.Maj, 3},
	{network.Not, 3},
	{network.Buf, 1},
}

// GateSpec is one gate of a Spec: a function and its fanin signal
// indexes (0..PIs-1 are the PIs; PIs+i is the output of gate i).
type GateSpec struct {
	Fn network.Gate `json:"fn"`
	In []int        `json:"in"`
}

// gateSpecJSON is the wire form of a GateSpec: the gate function
// travels by name ("AND", "MAJ", …), not by enum value, so repro
// artifacts stay readable and survive enum reordering.
type gateSpecJSON struct {
	Fn string `json:"fn"`
	In []int  `json:"in"`
}

// MarshalJSON renders the gate function by name.
func (g GateSpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(gateSpecJSON{Fn: g.Fn.String(), In: g.In})
}

// UnmarshalJSON parses the named gate function.
func (g *GateSpec) UnmarshalJSON(data []byte) error {
	var raw gateSpecJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	fn, err := network.GateFromString(raw.Fn)
	if err != nil {
		return fmt.Errorf("conformance: gate spec: %w", err)
	}
	g.Fn, g.In = fn, raw.In
	return nil
}

// Spec is the canonical, shrinkable form of a generated test case: a
// straight-line program over signal indexes. The shrinker operates on
// Specs (dropping gates, POs, and PIs) and Build turns one into a
// network; keeping this layer separate from *network.Network makes
// reductions trivially safe.
type Spec struct {
	PIs   int        `json:"pis"`
	Gates []GateSpec `json:"gates"`
	POs   []int      `json:"pos"` // signal indexes driving each PO
}

// NumSignals is the number of signal indexes a Spec defines.
func (s Spec) NumSignals() int { return s.PIs + len(s.Gates) }

// Build elaborates the spec into a named network. PIs are named x0, x1,
// … and POs y0, y1, … so equivalence checking can align by name.
func (s Spec) Build(name string) (*network.Network, error) {
	if s.PIs <= 0 {
		return nil, fmt.Errorf("conformance: spec has no PIs")
	}
	if len(s.POs) == 0 {
		return nil, fmt.Errorf("conformance: spec has no POs")
	}
	n := network.New(name)
	ids := make([]network.ID, 0, s.NumSignals())
	for i := 0; i < s.PIs; i++ {
		ids = append(ids, n.AddPI(fmt.Sprintf("x%d", i)))
	}
	for gi, g := range s.Gates {
		want := g.Fn.Arity()
		if want != len(g.In) {
			return nil, fmt.Errorf("conformance: gate %d (%s) has %d fanins, want %d", gi, g.Fn, len(g.In), want)
		}
		fanins := make([]network.ID, len(g.In))
		for k, idx := range g.In {
			if idx < 0 || idx >= s.PIs+gi {
				return nil, fmt.Errorf("conformance: gate %d references signal %d (have %d)", gi, idx, s.PIs+gi)
			}
			fanins[k] = ids[idx]
		}
		ids = append(ids, n.AddGate(g.Fn, fanins...))
	}
	for pi, idx := range s.POs {
		if idx < 0 || idx >= s.NumSignals() {
			return nil, fmt.Errorf("conformance: PO %d references signal %d (have %d)", pi, idx, s.NumSignals())
		}
		n.AddPO(ids[idx], fmt.Sprintf("y%d", pi))
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: generated network invalid: %w", err)
	}
	return n, nil
}

// MustBuild is Build for specs known to be well-formed (generated ones).
func (s Spec) MustBuild(name string) *network.Network {
	n, err := s.Build(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Random draws one test-case spec from the configured distribution,
// fully determined by seed. The construction guarantees a well-formed
// case: every PI feeds some gate (leftover PIs get buffers), every gate
// output is consumed by a later gate or a PO, and every PO is driven by
// a gate output.
func Random(seed uint64, cfg GenConfig) Spec {
	cfg = cfg.withDefaults()
	r := newRNG(seed)
	pis := r.between(cfg.MinPIs, cfg.MaxPIs)
	gates := r.between(cfg.MinGates, cfg.MaxGates)

	spec := Spec{PIs: pis}
	depth := make([]int, 0, pis+gates+pis)
	for i := 0; i < pis; i++ {
		depth = append(depth, 0)
	}
	pick := func(limit int) int {
		// Bias toward recent signals so depth actually grows, while
		// keeping every signal reachable; redraw (boundedly) when a
		// depth cap is configured.
		for attempt := 0; attempt < 8; attempt++ {
			var idx int
			if limit > 2 && r.intn(2) == 0 {
				idx = limit - 1 - r.intn((limit+1)/2)
			} else {
				idx = r.intn(limit)
			}
			if cfg.MaxDepth <= 0 || depth[idx] < cfg.MaxDepth {
				return idx
			}
		}
		// Redraws exhausted: fall back to a uniform pick over the signals
		// below the cap. The PIs (depth 0) are always eligible, so the cap
		// is exact, never best-effort.
		var eligible []int
		for idx := 0; idx < limit; idx++ {
			if depth[idx] < cfg.MaxDepth {
				eligible = append(eligible, idx)
			}
		}
		return eligible[r.intn(len(eligible))]
	}
	for g := 0; g < gates; g++ {
		fn := drawGate(r)
		limit := spec.NumSignals()
		in := make([]int, fn.Arity())
		d := 0
		for k := range in {
			in[k] = pick(limit)
			if depth[in[k]] > d {
				d = depth[in[k]]
			}
		}
		spec.Gates = append(spec.Gates, GateSpec{Fn: fn, In: in})
		depth = append(depth, d+1)
	}

	// Leftover PIs get buffers so no input dangles.
	used := make([]bool, spec.NumSignals())
	for _, g := range spec.Gates {
		for _, idx := range g.In {
			used[idx] = true
		}
	}
	for i := 0; i < pis; i++ {
		if !used[i] {
			spec.Gates = append(spec.Gates, GateSpec{Fn: network.Buf, In: []int{i}})
			used = append(used, false)
			used[i] = true
		}
	}

	// POs absorb every unconsumed gate output (so nothing dangles), then
	// random gate outputs up to the drawn PO count.
	target := r.between(cfg.MinPOs, cfg.MaxPOs)
	for gi := range spec.Gates {
		if !used[spec.PIs+gi] {
			spec.POs = append(spec.POs, spec.PIs+gi)
		}
	}
	for len(spec.POs) < target {
		spec.POs = append(spec.POs, spec.PIs+r.intn(len(spec.Gates)))
	}
	return spec
}

// drawGate picks a gate function from the weighted mix.
func drawGate(r *rng) network.Gate {
	total := 0
	for _, w := range gateMix {
		total += w.weight
	}
	n := r.intn(total)
	for _, w := range gateMix {
		n -= w.weight
		if n < 0 {
			return w.fn
		}
	}
	return network.And
}

// CaseSeed derives the per-case generator seed from the selftest root
// seed via splitmix64, so cases are independent streams and any single
// case is reproducible from (seed, index) alone.
func CaseSeed(root uint64, index int) uint64 {
	z := root + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// CaseName names case i of a selftest run: rand000, rand001, …
func CaseName(index int) string { return fmt.Sprintf("rand%03d", index) }
