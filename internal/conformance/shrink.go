package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/verilog"
)

// maxShrinkAttempts bounds the total number of candidate evaluations
// per shrink (each evaluation re-runs the flow and the battery).
const maxShrinkAttempts = 200

// Repro is the artifact a shrunk failure is persisted as: everything
// needed to replay the failure — the seeds, the offending flow ID, and
// the reduced network both as a canonical Spec (used by Replay) and as
// Verilog (for humans and external tools).
type Repro struct {
	Case      string `json:"case"`
	RootSeed  uint64 `json:"root_seed"`
	CaseSeed  uint64 `json:"case_seed"`
	Flow      string `json:"flow"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	Gates     int    `json:"gates"`
	Spec      Spec   `json:"spec"`
	Verilog   string `json:"verilog"`
}

// Shrink greedily reduces a failing spec while the failure reproduces:
// drop POs, bypass gates (consumers are rewired to the gate's first
// fanin), and drop PIs that fell out of use. A candidate is accepted
// when re-running the flow plus the invariant battery on the reduced
// network still violates the same invariant. The candidate order and
// the accept-first-improvement loop are deterministic, so the same
// failure always shrinks to the same minimal spec.
func Shrink(ctx context.Context, spec Spec, target Violation, flow core.Flow, limits core.Limits) (Spec, Violation) {
	log := obs.LoggerFrom(ctx)
	fails := func(s Spec) (Violation, bool) {
		n, err := s.Build(target.Case)
		if err != nil {
			return Violation{}, false
		}
		run := runOne(ctx, n, target.CaseSeed, flow, limits)
		for _, v := range run.violations {
			if v.Invariant == target.Invariant {
				return v, true
			}
		}
		return Violation{}, false
	}

	cur, curV := spec, target
	attempts := 0
	for {
		improved := false
		for _, cand := range reductions(cur) {
			attempts++
			if attempts > maxShrinkAttempts {
				log.Debug("shrink attempt budget exhausted", "case", target.Case, "gates", len(cur.Gates))
				return cur, curV
			}
			if v, ok := fails(cand); ok {
				cur, curV = cand, v
				improved = true
				break // restart the enumeration on the smaller spec
			}
		}
		if !improved {
			log.Debug("shrink converged", "case", target.Case,
				"gates", len(cur.Gates), "pis", cur.PIs, "pos", len(cur.POs), "attempts", attempts)
			return cur, curV
		}
	}
}

// reductions enumerates the one-step reductions of a spec in the order
// the shrinker tries them: gate bypasses from the outputs backwards
// (they cut the most), then PO drops, then unused-PI drops.
func reductions(s Spec) []Spec {
	var out []Spec
	for g := len(s.Gates) - 1; g >= 0; g-- {
		out = append(out, removeGate(s, g))
	}
	if len(s.POs) > 1 {
		for p := len(s.POs) - 1; p >= 0; p-- {
			c := Spec{PIs: s.PIs, Gates: s.Gates, POs: append(append([]int{}, s.POs[:p]...), s.POs[p+1:]...)}
			out = append(out, c)
		}
	}
	if s.PIs > 1 {
		used := make([]bool, s.NumSignals())
		for _, g := range s.Gates {
			for _, idx := range g.In {
				used[idx] = true
			}
		}
		for _, idx := range s.POs {
			used[idx] = true
		}
		for p := s.PIs - 1; p >= 0; p-- {
			if !used[p] {
				out = append(out, removePI(s, p))
			}
		}
	}
	return out
}

// removeGate bypasses gate g: every reference to its output signal is
// rewired to its first fanin, and later signal indexes shift down.
func removeGate(s Spec, g int) Spec {
	sg := s.PIs + g
	repl := s.Gates[g].In[0]
	remap := func(idx int) int {
		switch {
		case idx == sg:
			return repl
		case idx > sg:
			return idx - 1
		}
		return idx
	}
	c := Spec{PIs: s.PIs}
	for i, gs := range s.Gates {
		if i == g {
			continue
		}
		in := make([]int, len(gs.In))
		for k, idx := range gs.In {
			in[k] = remap(idx)
		}
		c.Gates = append(c.Gates, GateSpec{Fn: gs.Fn, In: in})
	}
	for _, idx := range s.POs {
		c.POs = append(c.POs, remap(idx))
	}
	return c
}

// removePI drops unused primary input p, shifting all higher signal
// indexes down by one.
func removePI(s Spec, p int) Spec {
	remap := func(idx int) int {
		if idx > p {
			return idx - 1
		}
		return idx
	}
	c := Spec{PIs: s.PIs - 1}
	for _, gs := range s.Gates {
		in := make([]int, len(gs.In))
		for k, idx := range gs.In {
			in[k] = remap(idx)
		}
		c.Gates = append(c.Gates, GateSpec{Fn: gs.Fn, In: in})
	}
	for _, idx := range s.POs {
		c.POs = append(c.POs, remap(idx))
	}
	return c
}

// shrinkAndWrite reduces the report's failures — one per distinct
// (flow, invariant) pair, up to cfg.MaxRepros — and writes each as a
// repro artifact under cfg.ReproDir. Returns the artifact paths in
// deterministic order.
func shrinkAndWrite(ctx context.Context, cfg Config, specs []Spec, report *Report) ([]string, error) {
	caseIdx := make(map[string]int, len(report.Cases))
	for i, c := range report.Cases {
		caseIdx[c.Name] = i
	}
	type key struct{ flow, inv string }
	seen := map[key]bool{}
	var paths []string
	for _, v := range report.Violations {
		k := key{v.Flow, v.Invariant}
		if seen[k] || len(paths) >= cfg.MaxRepros {
			continue
		}
		seen[k] = true
		flow, err := core.ParseFlowID(v.Flow)
		if err != nil {
			return paths, fmt.Errorf("conformance: cannot shrink %s: %w", v.Flow, err)
		}
		ci, ok := caseIdx[v.Case]
		if !ok {
			return paths, fmt.Errorf("conformance: violation references unknown case %q", v.Case)
		}
		reduced, final := Shrink(ctx, specs[ci], v, flow, cfg.limits())
		vtext, err := verilog.WriteString(reduced.MustBuild(v.Case))
		if err != nil {
			return paths, err
		}
		repro := Repro{
			Case: v.Case, RootSeed: cfg.Seed, CaseSeed: v.CaseSeed,
			Flow: v.Flow, Invariant: final.Invariant, Detail: final.Detail,
			Gates: len(reduced.Gates), Spec: reduced, Verilog: vtext,
		}
		path, err := writeRepro(cfg.ReproDir, repro)
		if err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// writeRepro persists one artifact as {case}__{flowID}.json in dir.
func writeRepro(dir string, r Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s__%s.json", r.Case, r.Flow))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadRepro loads a repro artifact from disk.
func ReadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("conformance: %s is not a repro artifact: %w", path, err)
	}
	return &r, nil
}

// Replay re-runs a repro artifact: the reduced network goes through the
// recorded flow and the full invariant battery, and the resulting
// violations (empty when the underlying bug has been fixed) are
// returned in battery order.
func Replay(ctx context.Context, path string, workers int) ([]Violation, *Repro, error) {
	r, err := ReadRepro(path)
	if err != nil {
		return nil, nil, err
	}
	flow, err := core.ParseFlowID(r.Flow)
	if err != nil {
		return nil, r, err
	}
	n, err := r.Spec.Build(r.Case)
	if err != nil {
		return nil, r, err
	}
	limits := Config{Workers: workers}.withDefaults().limits()
	run := runOne(ctx, n, r.CaseSeed, flow, limits)
	if run.skipped != "" {
		return nil, r, fmt.Errorf("conformance: replay of %s was skipped (%s)", path, run.skipped)
	}
	return run.violations, r, nil
}
