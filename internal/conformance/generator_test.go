package conformance

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/network"
)

// specDepths computes the logic depth of every signal in a spec.
func specDepths(s Spec) []int {
	d := make([]int, 0, s.NumSignals())
	for i := 0; i < s.PIs; i++ {
		d = append(d, 0)
	}
	for _, g := range s.Gates {
		max := 0
		for _, idx := range g.In {
			if d[idx] > max {
				max = d[idx]
			}
		}
		d = append(d, max+1)
	}
	return d
}

func TestRandomDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		seed := CaseSeed(42, i)
		a := Random(seed, GenConfig{})
		b := Random(seed, GenConfig{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %#x: two draws differ:\n%+v\n%+v", seed, a, b)
		}
	}
	if reflect.DeepEqual(Random(CaseSeed(42, 0), GenConfig{}), Random(CaseSeed(42, 1), GenConfig{})) {
		t.Fatal("distinct case seeds produced identical specs")
	}
}

func TestRandomWellFormed(t *testing.T) {
	for i := 0; i < 200; i++ {
		spec := Random(CaseSeed(7, i), GenConfig{})
		n, err := spec.Build(CaseName(i))
		if err != nil {
			t.Fatalf("case %d: %+v: %v", i, spec, err)
		}
		if n.NumPIs() != spec.PIs || n.NumPOs() != len(spec.POs) {
			t.Fatalf("case %d: network I/O %d/%d does not match spec %d/%d",
				i, n.NumPIs(), n.NumPOs(), spec.PIs, len(spec.POs))
		}
		// Nothing dangles: every signal is consumed by a later gate or a PO.
		used := make([]bool, spec.NumSignals())
		for _, g := range spec.Gates {
			for _, idx := range g.In {
				used[idx] = true
			}
		}
		for _, idx := range spec.POs {
			used[idx] = true
		}
		for s, u := range used {
			if !u {
				t.Fatalf("case %d: signal %d dangles in %+v", i, s, spec)
			}
		}
	}
}

// TestRandomGateMixCoverage checks the distribution actually exercises
// the paper-relevant gate classes: majority, XOR-family, inverters, and
// reconvergent fanout (one signal feeding several consumers).
func TestRandomGateMixCoverage(t *testing.T) {
	seen := map[network.Gate]bool{}
	fanout := false
	for i := 0; i < 300; i++ {
		spec := Random(CaseSeed(3, i), GenConfig{})
		consumers := make([]int, spec.NumSignals())
		for _, g := range spec.Gates {
			seen[g.Fn] = true
			for _, idx := range g.In {
				consumers[idx]++
			}
		}
		for _, c := range consumers {
			if c > 1 {
				fanout = true
			}
		}
	}
	for _, fn := range []network.Gate{network.And, network.Or, network.Xor, network.Maj, network.Not} {
		if !seen[fn] {
			t.Errorf("gate %s never drawn in 300 cases", fn)
		}
	}
	if !fanout {
		t.Error("no implicit fanout (signal with >1 consumer) in 300 cases")
	}
}

func TestRandomDepthBound(t *testing.T) {
	cfg := GenConfig{MaxGates: 12, MaxDepth: 2}
	for i := 0; i < 100; i++ {
		spec := Random(CaseSeed(11, i), cfg)
		for s, d := range specDepths(spec) {
			if d > cfg.MaxDepth {
				t.Fatalf("case %d: signal %d has depth %d under MaxDepth %d", i, s, d, cfg.MaxDepth)
			}
		}
	}
}

func TestCaseSeedsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := CaseSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("CaseSeed(1, %d) == CaseSeed(1, %d) == %#x", i, prev, s)
		}
		seen[s] = i
	}
}

// TestSpecJSONRoundTrip pins the repro-artifact wire format: gate
// functions travel by canonical name (readable, enum-order independent)
// and decode back to the same spec.
func TestSpecJSONRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		spec := Random(CaseSeed(19, i), GenConfig{})
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, data, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("case %d: round trip changed spec:\n%+v\n%+v", i, spec, back)
		}
	}
	data, err := json.Marshal(GateSpec{Fn: network.And, In: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"fn":"AND"`) {
		t.Fatalf("gate function not encoded by name: %s", data)
	}
	var g GateSpec
	if err := json.Unmarshal([]byte(`{"fn":"FROB","in":[0]}`), &g); err == nil {
		t.Fatal("unknown gate name accepted")
	}
}

func TestSpecBuildRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no PIs", Spec{POs: []int{0}}},
		{"no POs", Spec{PIs: 1}},
		{"bad arity", Spec{PIs: 2, Gates: []GateSpec{{Fn: network.And, In: []int{0}}}, POs: []int{2}}},
		{"forward ref", Spec{PIs: 1, Gates: []GateSpec{{Fn: network.Not, In: []int{1}}}, POs: []int{1}}},
		{"PO out of range", Spec{PIs: 1, POs: []int{3}}},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Build("bad"); err == nil {
			t.Errorf("%s: Build accepted malformed spec %+v", tc.name, tc.spec)
		}
	}
}
