package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/obs"
)

// Config parameterizes a selftest run. The zero value (plus a seed)
// gives the defaults used by `mntbench selftest` and `make selftest`.
type Config struct {
	// Seed is the root seed; every case seed derives from it.
	Seed uint64
	// N is the number of random networks to generate (default 10).
	N int
	// Workers bounds campaign and battery parallelism (default: all CPU
	// cores). The report is byte-identical for any value.
	Workers int
	// Flows filters the flow list: comma-separated, case-insensitive
	// substrings matched against Flow.ID(); empty runs every registered
	// flow of every library.
	Flows string
	// Gen shapes the random network distribution.
	Gen GenConfig
	// ExactSteps is the deterministic exact-search budget (default
	// 20000 backtracking steps, calibrated so a default run spends a few
	// seconds in exact); the wall-clock ExactTimeout is kept generous so
	// the step budget is always the binding constraint and
	// success-vs-timeout cannot depend on machine load.
	ExactSteps int
	// Shrink enables reducing each failure to a minimal repro artifact.
	Shrink bool
	// ReproDir is where repro artifacts are written (default
	// internal/conformance/testdata/repros under the working directory —
	// the CLI passes an explicit directory).
	ReproDir string
	// MaxRepros caps how many distinct failures are shrunk (default 3).
	MaxRepros int
	// Progress, when set, receives campaign progress callbacks.
	Progress func(core.Progress)
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.ExactSteps <= 0 {
		c.ExactSteps = 20000
	}
	if c.ReproDir == "" {
		c.ReproDir = "internal/conformance/testdata/repros"
	}
	if c.MaxRepros <= 0 {
		c.MaxRepros = 3
	}
	return c
}

// limits are the effort bounds a selftest flow runs under. Every budget
// that could flip between success and failure is deterministic (steps,
// node counts); the wall-clock deadlines are kept far above what the
// tiny generated networks need, so they never bind in practice.
func (c Config) limits() core.Limits {
	return core.Limits{
		Workers:      c.Workers,
		ExactSteps:   c.ExactSteps,
		ExactTimeout: 5 * time.Minute,
	}
}

// CaseInfo summarizes one generated network in the report.
type CaseInfo struct {
	Name  string `json:"name"`
	Seed  uint64 `json:"seed"`
	PIs   int    `json:"pis"`
	POs   int    `json:"pos"`
	Gates int    `json:"gates"`
}

// Report is the deterministic result of a selftest run: for a given
// (seed, n, flow filter, generator config) it is byte-identical across
// worker counts and machines. It deliberately contains no wall-clock
// timings — those go to logs and spans.
type Report struct {
	Seed       uint64         `json:"seed"`
	Flows      []string       `json:"flows"`
	Cases      []CaseInfo     `json:"cases"`
	Runs       int            `json:"runs"`
	OK         int            `json:"ok"`
	Skipped    map[string]int `json:"skipped,omitempty"`
	Advisories map[string]int `json:"advisories,omitempty"`
	Violations []Violation    `json:"violations,omitempty"`
	Repros     []string       `json:"repros,omitempty"`
}

// Failed reports whether any hard invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// JSON renders the report as indented JSON (stable key order).
func (r *Report) JSON() string {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Report contains only marshalable fields; this cannot happen.
		//lint:ignore panicban marshaling a plain struct of basic types cannot fail
		panic(err)
	}
	return string(data) + "\n"
}

// Text renders the human-readable summary, likewise byte-stable.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "selftest: seed %d, %d cases x %d flows = %d runs\n",
		r.Seed, len(r.Cases), len(r.Flows), r.Runs)
	fmt.Fprintf(&sb, "  ok       %d\n", r.OK)
	for _, k := range sortedKeys(r.Skipped) {
		fmt.Fprintf(&sb, "  skipped  %d (%s)\n", r.Skipped[k], k)
	}
	for _, k := range sortedKeys(r.Advisories) {
		fmt.Fprintf(&sb, "  advisory %d (%s)\n", r.Advisories[k], k)
	}
	if len(r.Violations) == 0 {
		sb.WriteString("  violations: none\n")
	} else {
		fmt.Fprintf(&sb, "  VIOLATIONS: %d\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "    %s\n", v)
		}
	}
	for _, p := range r.Repros {
		fmt.Fprintf(&sb, "  repro: %s\n", p)
	}
	return sb.String()
}

// SelectFlows resolves a -flows filter against the full registered flow
// catalogue (every library × clocking scheme × algorithm combination).
// Each comma-separated pattern matches case-insensitively: a pattern
// that equals a flow ID selects exactly that flow; anything else is a
// substring match (so "ortho" selects the whole ortho family while
// "qcaone_2ddwave_ortho" selects one flow, not its +inord variants).
func SelectFlows(filter string) []core.Flow {
	var flows []core.Flow
	for _, lib := range gatelib.All() {
		flows = append(flows, core.Flows(lib)...)
	}
	if filter == "" {
		return flows
	}
	var pats []string
	for _, p := range strings.Split(filter, ",") {
		if p = strings.TrimSpace(strings.ToLower(p)); p != "" {
			pats = append(pats, p)
		}
	}
	if len(pats) == 0 {
		return flows
	}
	exact := make(map[string]bool)
	for _, f := range flows {
		id := strings.ToLower(f.ID())
		for _, p := range pats {
			if id == p {
				exact[p] = true
			}
		}
	}
	var out []core.Flow
	for _, f := range flows {
		id := strings.ToLower(f.ID())
		for _, p := range pats {
			if id == p || (!exact[p] && strings.Contains(id, p)) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// Run executes the conformance selftest: generate cfg.N random networks
// from cfg.Seed, run each through every selected flow via the parallel
// campaign scheduler, apply the invariant battery to every resulting
// layout, and (when cfg.Shrink is set) reduce failures to minimal repro
// artifacts under cfg.ReproDir.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented fallback: a nil ctx means "no caller context"
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	log := obs.LoggerFrom(ctx)
	flows := SelectFlows(cfg.Flows)
	if len(flows) == 0 {
		return nil, fmt.Errorf("conformance: flow filter %q matches no registered flow", cfg.Flows)
	}

	report := &Report{
		Seed:       cfg.Seed,
		Skipped:    map[string]int{},
		Advisories: map[string]int{},
	}
	for _, f := range flows {
		report.Flows = append(report.Flows, f.ID())
	}

	// Generate the cases. Each benchmark's Build hands out clones of the
	// case network, exactly like a registered suite.
	specs := make([]Spec, cfg.N)
	nets := make([]*network.Network, cfg.N)
	benches := make([]bench.Benchmark, cfg.N)
	for i := 0; i < cfg.N; i++ {
		seed := CaseSeed(cfg.Seed, i)
		specs[i] = Random(seed, cfg.Gen)
		n, err := specs[i].Build(CaseName(i))
		if err != nil {
			return nil, err
		}
		nets[i] = n
		benches[i] = bench.Benchmark{
			Set: "selftest", Name: n.Name, Origin: bench.SyntheticOrigin,
			PubIn: n.NumPIs(), PubOut: n.NumPOs(), PubNodes: n.NumLogicGates(),
			Build: n.Clone,
		}
		report.Cases = append(report.Cases, CaseInfo{
			Name: n.Name, Seed: seed, PIs: n.NumPIs(), POs: n.NumPOs(), Gates: len(specs[i].Gates),
		})
	}

	limits := cfg.limits()
	report.Runs = cfg.N * len(flows)
	log.Info("selftest start", "seed", cfg.Seed, "cases", cfg.N, "flows", len(flows), "workers", cfg.Workers)

	db := core.GenerateFlows(ctx, benches, flows, limits, cfg.Progress)

	// Index helpers for deterministic (case-major, flow-minor) ordering.
	caseIdx := make(map[string]int, cfg.N)
	for i, b := range benches {
		caseIdx[b.Name] = i
	}
	flowIdx := make(map[string]int, len(flows))
	for i, f := range flows {
		flowIdx[f.ID()] = i
	}
	ord := func(caseName, flowID string) int { return caseIdx[caseName]*len(flows) + flowIdx[flowID] }

	// The invariant battery runs over the entries in a worker pool; each
	// result lands in its entry's slot, so aggregation order never
	// depends on scheduling.
	runs := make([]caseRun, len(db.Entries))
	var wg sync.WaitGroup
	idxCh := make(chan int)
	workers := cfg.Workers
	if workers > len(db.Entries) {
		workers = len(db.Entries)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//lint:ignore ctxloop bounded work queue: the feeder sends exactly len(db.Entries) indexes then closes idxCh, and each battery run observes ctx through its span context
			for i := range idxCh {
				e := db.Entries[i]
				ci := caseIdx[e.Benchmark.Name]
				bctx, sp := obs.StartSpan(ctx, "battery")
				sp.Annotate("case", e.Benchmark.Name)
				sp.Annotate("flow", e.Flow.ID())
				runs[i] = runBattery(bctx, e, nets[ci], report.Cases[ci].Seed, e.Flow, limits)
				if len(runs[i].violations) > 0 {
					sp.SetError(fmt.Errorf("%d invariant violations", len(runs[i].violations)))
				}
				sp.End()
			}
		}()
	}
	for i := range db.Entries {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	// Aggregate in enumeration order: entries and campaign failures are
	// merged by their (case, flow) position.
	type ordered struct {
		ord int
		run caseRun
	}
	all := make([]ordered, 0, len(db.Entries)+len(db.Failures))
	for i, e := range db.Entries {
		all = append(all, ordered{ord(e.Benchmark.Name, e.Flow.ID()), runs[i]})
	}
	for _, f := range db.Failures {
		ci := caseIdx[f.Benchmark.Name]
		run := classifyFlowErr(f.Benchmark.Name, report.Cases[ci].Seed, f.Flow, fmt.Errorf("%s", f.Reason))
		// ClassifyOutcome on a re-wrapped reason string loses the typed
		// error chain, so trust the campaign's recorded outcome instead.
		if f.Outcome == core.OutcomeInfeasible || f.Outcome == core.OutcomeTimeout || f.Outcome == core.OutcomeCanceled {
			run = caseRun{skipped: f.Outcome, advisories: map[string]int{}}
		}
		all = append(all, ordered{ord(f.Benchmark.Name, f.Flow.ID()), run})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ord < all[j].ord })

	for _, o := range all {
		switch {
		case o.run.skipped != "":
			report.Skipped[string(o.run.skipped)]++
		case len(o.run.violations) > 0:
			report.Violations = append(report.Violations, o.run.violations...)
		default:
			report.OK++
		}
		for k, v := range o.run.advisories {
			if v > 0 {
				report.Advisories[k] += v
			}
		}
	}

	if cfg.Shrink && len(report.Violations) > 0 {
		paths, err := shrinkAndWrite(ctx, cfg, specs, report)
		if err != nil {
			return report, err
		}
		report.Repros = paths
	}
	log.Info("selftest done", "ok", report.OK, "violations", len(report.Violations))
	return report, nil
}
