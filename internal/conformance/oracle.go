package conformance

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fgl"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/verify"
	"repro/internal/verilog"
)

// Invariant names reported by the battery. Hard invariants fail the
// selftest; advisory rules (border I/O, straight crossings) are known to
// be violated by the heuristic flows and are reported as counts only.
const (
	// InvFlow: the flow itself reported verify_failed or an internal
	// error (infeasible/timeout outcomes are skips, not violations).
	InvFlow = "flow"
	// InvStats: the entry's recorded metrics disagree with the layout
	// (area != width*height, stats not reproducible, area below the
	// occupied bounding box).
	InvStats = "stats"
	// InvDRC: library gate-map check or CheckDesignRules failed on the
	// final layout.
	InvDRC = "drc"
	// InvEquivalence: the layout does not implement the source network.
	InvEquivalence = "equivalence"
	// InvFGLRoundTrip: write→read→write of the layout is not byte-stable
	// or the re-read layout fails DRC.
	InvFGLRoundTrip = "fgl_roundtrip"
	// InvVerilogRoundTrip: writing the source network as Verilog and
	// re-parsing it changed its function.
	InvVerilogRoundTrip = "verilog_roundtrip"
	// InvRerun: cloning the source network and re-running the flow did
	// not reproduce the identical layout bytes.
	InvRerun = "rerun_determinism"

	// AdvBorderIO / AdvBentCrossings are the advisory rule counters.
	AdvBorderIO      = "border_io"
	AdvBentCrossings = "bent_crossings"
)

// Violation is one failed hard invariant on one (case, flow) run.
type Violation struct {
	Case      string `json:"case"`
	CaseSeed  uint64 `json:"case_seed"`
	Flow      string `json:"flow"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %s [%s] %s", v.Case, v.Flow, v.Invariant, v.Detail)
}

// testHookTamper, when non-nil, deterministically corrupts every
// layout right after its flow succeeds and before the invariant battery
// inspects it. It exists solely so tests can inject a "routing bug" and
// assert that the oracle catches it and the shrinker reduces it; it is
// never set outside tests.
var testHookTamper func(*layout.Layout)

// TamperFirstWire is a ready-made tamper hook for tests: it deletes the
// first wire tile in deterministic coordinate order, breaking the wire
// chain the way a buggy router would. Layouts without wires are left
// alone (so tiny direct-adjacency layouts don't mask the bug class).
func TamperFirstWire(l *layout.Layout) {
	for _, c := range l.Coords() {
		if t := l.At(c); t != nil && t.IsWire() {
			for _, dst := range append([]layout.Coord{}, l.Outgoing(c)...) {
				mustEdit(l.Disconnect(c, dst))
			}
			for _, src := range append([]layout.Coord{}, t.Incoming...) {
				mustEdit(l.Disconnect(src, c))
			}
			mustEdit(l.Clear(c))
			return
		}
	}
}

// mustEdit asserts a layout mutation whose preconditions the caller
// has just established (edges read off the layout itself).
func mustEdit(err error) {
	if err != nil {
		panic(err)
	}
}

// caseRun is the outcome of running one flow on one case network and
// applying the battery: either a skip (outcome set), or a set of
// violations (possibly empty = fully conformant) plus advisory counts.
type caseRun struct {
	violations []Violation
	advisories map[string]int
	skipped    core.Outcome // non-empty when the flow was skipped
}

// runBattery asserts every hard invariant over a successful flow entry
// and counts the advisory rules. src is the source network the entry
// was generated from (never mutated); limits must be the ones the flow
// ran under so the rerun check replays the identical search.
func runBattery(ctx context.Context, e *core.Entry, src *network.Network, caseSeed uint64, flow core.Flow, limits core.Limits) caseRun {
	run := caseRun{advisories: map[string]int{}}
	report := func(invariant, detail string) {
		run.violations = append(run.violations, Violation{
			Case: src.Name, CaseSeed: caseSeed, Flow: flow.ID(), Invariant: invariant, Detail: detail,
		})
	}
	l := e.Layout
	if l == nil {
		report(InvStats, "entry has no layout (campaign must keep layouts)")
		return run
	}
	if testHookTamper != nil {
		testHookTamper(l)
	}

	// DRC: the library's gate-map check plus the structural rules.
	if err := flow.Library.CheckLayout(l); err != nil {
		report(InvDRC, err.Error())
	} else if err := verify.CheckDesignRules(l).Error(); err != nil {
		report(InvDRC, err.Error())
	}

	// Functional equivalence against the source network.
	if eq, err := verify.Equivalent(l, src); err != nil {
		report(InvEquivalence, err.Error())
	} else if !eq {
		report(InvEquivalence, "layout function differs from source network")
	}

	// Stats consistency: recorded metrics must be reproducible from the
	// layout, and the area must cover the occupied bounding box.
	s := l.ComputeStats()
	if e.Width != s.Width || e.Height != s.Height || e.Area != s.Area {
		report(InvStats, fmt.Sprintf("recorded %dx%d area %d, layout has %dx%d area %d",
			e.Width, e.Height, e.Area, s.Width, s.Height, s.Area))
	}
	if e.Area != e.Width*e.Height {
		report(InvStats, fmt.Sprintf("area %d != width %d * height %d", e.Area, e.Width, e.Height))
	}
	if e.Gates != s.Gates || e.Wires != s.Wires || e.Crossings != s.Crossings {
		report(InvStats, fmt.Sprintf("recorded gates/wires/crossings %d/%d/%d, layout has %d/%d/%d",
			e.Gates, e.Wires, e.Crossings, s.Gates, s.Wires, s.Crossings))
	}

	// Advisory rules: deterministic counts, never failures — the
	// heuristic flows are known to violate them (see docs/CONFORMANCE.md).
	run.advisories[AdvBorderIO] = len(verify.CheckBorderIO(l).Violations)
	run.advisories[AdvBentCrossings] = len(verify.CheckStraightCrossings(l).Violations)

	// Metamorphic: .fgl write→read→write must be byte-stable and the
	// re-read layout must still be DRC-clean.
	text1, err := fgl.WriteString(l)
	if err != nil {
		report(InvFGLRoundTrip, fmt.Sprintf("write: %v", err))
	} else if reread, err := fgl.Read(strings.NewReader(text1)); err != nil {
		report(InvFGLRoundTrip, fmt.Sprintf("read back: %v", err))
	} else if text2, err := fgl.WriteString(reread); err != nil {
		report(InvFGLRoundTrip, fmt.Sprintf("rewrite: %v", err))
	} else if text1 != text2 {
		report(InvFGLRoundTrip, "write→read→write is not byte-stable")
	} else if (verify.CheckDesignRules(reread).Error() == nil) != (verify.CheckDesignRules(l).Error() == nil) {
		report(InvFGLRoundTrip, "DRC verdict changed across the fgl round trip")
	}

	// Metamorphic: Verilog write→parse must preserve the function.
	vtext, err := verilog.WriteString(src)
	if err != nil {
		report(InvVerilogRoundTrip, fmt.Sprintf("write: %v", err))
	} else if parsed, err := verilog.Parse(strings.NewReader(vtext)); err != nil {
		report(InvVerilogRoundTrip, fmt.Sprintf("parse back: %v", err))
	} else if eq, err := network.Equivalent(src, parsed); err != nil {
		report(InvVerilogRoundTrip, err.Error())
	} else if !eq {
		report(InvVerilogRoundTrip, "re-parsed network function differs")
	}

	// Metamorphic: clone-then-rerun determinism. The clone keeps the
	// network name, so seeded searches (NanoPlaceR) replay identically;
	// the rerun layout must match the campaign layout byte for byte.
	clone := src.Clone()
	re, err := core.RunFlowOnNetwork(ctx, clone, "selftest", flow, limits)
	if err != nil {
		report(InvRerun, fmt.Sprintf("rerun failed where the campaign succeeded: %v", err))
	} else {
		if testHookTamper != nil {
			testHookTamper(re.Layout)
		}
		text1, err1 := fgl.WriteString(l)
		text2, err2 := fgl.WriteString(re.Layout)
		if err1 != nil || err2 != nil {
			report(InvRerun, fmt.Sprintf("serializing for comparison: %v %v", err1, err2))
		} else if text1 != text2 {
			report(InvRerun, "re-running the flow on a clone produced different layout bytes")
		}
	}
	return run
}

// runOne executes one flow on one source network and applies the
// battery; used by the shrinker and repro replay (the campaign path
// batches the flow runs through core.GenerateFlows instead).
func runOne(ctx context.Context, src *network.Network, caseSeed uint64, flow core.Flow, limits core.Limits) caseRun {
	e, err := core.RunFlowOnNetwork(ctx, src.Clone(), "selftest", flow, limits)
	if err != nil {
		return classifyFlowErr(src.Name, caseSeed, flow, err)
	}
	return runBattery(ctx, e, src, caseSeed, flow, limits)
}

// classifyFlowErr folds a failed flow into the oracle's terms: budget
// and feasibility outcomes are skips; verification failures and
// internal errors are violations of the flow invariant.
func classifyFlowErr(caseName string, caseSeed uint64, flow core.Flow, err error) caseRun {
	outcome := core.ClassifyOutcome(err)
	switch outcome {
	case core.OutcomeInfeasible, core.OutcomeTimeout, core.OutcomeCanceled:
		return caseRun{skipped: outcome, advisories: map[string]int{}}
	}
	return caseRun{
		advisories: map[string]int{},
		violations: []Violation{{
			Case: caseName, CaseSeed: caseSeed, Flow: flow.ID(), Invariant: InvFlow, Detail: err.Error(),
		}},
	}
}

// sortedKeys returns the keys of a string-counter map in sorted order.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
