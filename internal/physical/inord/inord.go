// Package inord implements input-ordering signal distribution network
// optimization (Walter et al., ISVLSI 2023) on top of the ortho physical
// design method: primary inputs are reordered to shorten the input
// distribution wiring and reduce crossings, which shrinks the resulting
// 2DDWave layout.
//
// Candidate orders come from a consumer-barycenter heuristic plus the
// identity and reversal; greedy pairwise-swap refinement then polishes
// the best candidate. Every candidate is evaluated by actually running
// ortho and measuring the layout area.
package inord

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/ortho"
)

// Options tunes the optimization.
type Options struct {
	// MaxSwapRounds bounds the greedy refinement (default 2 rounds of
	// adjacent-pair swaps).
	MaxSwapRounds int
	// Workers bounds the number of concurrent ortho evaluations of
	// candidate orders (0 or 1 = serial). Each candidate of a round is
	// an independent placement, so rounds parallelize perfectly; the
	// search result is identical for every worker count because
	// candidates are generated up front and merged in candidate order.
	Workers int
}

func (o Options) swapRounds() int {
	if o.MaxSwapRounds <= 0 {
		return 2
	}
	return o.MaxSwapRounds
}

// Place returns the best ortho layout over the explored input orders,
// together with the order that produced it.
//
// The search proceeds in rounds: the seed round evaluates the identity,
// reversal, and barycenter orders; each refinement round evaluates
// every adjacent-pair swap of the best order so far and keeps the
// winner (earliest candidate on area ties), stopping when a round
// brings no improvement.
func Place(n *network.Network, opts Options) (*layout.Layout, []int, error) {
	numPIs := n.NumPIs()
	if numPIs == 0 {
		return nil, nil, fmt.Errorf("inord: network has no primary inputs")
	}

	seen := make(map[string]bool)
	var best *layout.Layout
	var bestOrder []int

	// evalRound places every not-yet-seen candidate (concurrently when
	// Workers > 1) and folds the results in candidate order, so the
	// earliest candidate wins area ties no matter which finished first.
	evalRound := func(orders [][]int) error {
		fresh := orders[:0:0]
		for _, o := range orders {
			key := fmt.Sprint(o)
			if seen[key] {
				continue
			}
			seen[key] = true
			fresh = append(fresh, o)
		}
		layouts, err := placeAll(n, fresh, opts.Workers)
		if err != nil {
			return err
		}
		for i, l := range layouts {
			if best == nil || l.Area() < best.Area() {
				best = l
				bestOrder = append([]int(nil), fresh[i]...)
			}
		}
		return nil
	}

	identity := make([]int, numPIs)
	for i := range identity {
		identity[i] = i
	}
	reversed := make([]int, numPIs)
	for i := range reversed {
		reversed[i] = numPIs - 1 - i
	}
	if err := evalRound([][]int{identity, reversed, BarycenterOrder(n)}); err != nil {
		return nil, nil, err
	}

	// Greedy adjacent-swap refinement of the best order so far.
	for round := 0; round < opts.swapRounds(); round++ {
		prev := best.Area()
		cands := make([][]int, 0, numPIs-1)
		for i := 0; i+1 < numPIs; i++ {
			cand := append([]int(nil), bestOrder...)
			cand[i], cand[i+1] = cand[i+1], cand[i]
			cands = append(cands, cand)
		}
		if err := evalRound(cands); err != nil {
			return nil, nil, err
		}
		if best.Area() >= prev {
			break
		}
	}
	return best, bestOrder, nil
}

// placeAll runs ortho over every candidate order and returns the
// layouts indexed like the input. With workers > 1 the placements run
// concurrently (ortho only reads the shared network: it clones before
// normalizing); the first error in candidate order wins either way.
func placeAll(n *network.Network, orders [][]int, workers int) ([]*layout.Layout, error) {
	layouts := make([]*layout.Layout, len(orders))
	if workers > len(orders) {
		workers = len(orders)
	}
	if workers <= 1 {
		for i, o := range orders {
			l, err := ortho.Place(n, ortho.Options{InputOrder: o})
			if err != nil {
				return nil, err
			}
			layouts[i] = l
		}
		return layouts, nil
	}
	errs := make([]error, len(orders))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range orders {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			layouts[i], errs[i] = ortho.Place(n, ortho.Options{InputOrder: orders[i]})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return layouts, nil
}

// BarycenterOrder sorts PIs by the average topological index of their
// transitive consumers' first level, a standard crossing-reduction
// heuristic from layered graph drawing.
func BarycenterOrder(n *network.Network) []int {
	order := n.MustTopoOrder()
	topoIdx := make(map[network.ID]int, len(order))
	for i, id := range order {
		topoIdx[id] = i
	}
	lists := n.FanoutLists()
	pis := n.PIs()
	type keyed struct {
		idx int
		bc  float64
	}
	ks := make([]keyed, len(pis))
	for i, pi := range pis {
		consumers := lists[pi]
		if len(consumers) == 0 {
			ks[i] = keyed{idx: i, bc: float64(i)}
			continue
		}
		sum := 0
		for _, c := range consumers {
			sum += topoIdx[c]
		}
		ks[i] = keyed{idx: i, bc: float64(sum) / float64(len(consumers))}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].bc < ks[b].bc })
	out := make([]int, len(pis))
	for i, k := range ks {
		out[i] = k.idx
	}
	return out
}
