// Package inord implements input-ordering signal distribution network
// optimization (Walter et al., ISVLSI 2023) on top of the ortho physical
// design method: primary inputs are reordered to shorten the input
// distribution wiring and reduce crossings, which shrinks the resulting
// 2DDWave layout.
//
// Candidate orders come from a consumer-barycenter heuristic plus the
// identity and reversal; greedy pairwise-swap refinement then polishes
// the best candidate. Every candidate is evaluated by actually running
// ortho and measuring the layout area.
package inord

import (
	"fmt"
	"sort"

	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/ortho"
)

// Options tunes the optimization.
type Options struct {
	// MaxSwapRounds bounds the greedy refinement (default 2 rounds of
	// adjacent-pair swaps).
	MaxSwapRounds int
}

func (o Options) swapRounds() int {
	if o.MaxSwapRounds <= 0 {
		return 2
	}
	return o.MaxSwapRounds
}

// Place returns the best ortho layout over the explored input orders,
// together with the order that produced it.
func Place(n *network.Network, opts Options) (*layout.Layout, []int, error) {
	numPIs := n.NumPIs()
	if numPIs == 0 {
		return nil, nil, fmt.Errorf("inord: network has no primary inputs")
	}

	seen := make(map[string]bool)
	var best *layout.Layout
	var bestOrder []int

	eval := func(order []int) error {
		key := fmt.Sprint(order)
		if seen[key] {
			return nil
		}
		seen[key] = true
		l, err := ortho.Place(n, ortho.Options{InputOrder: order})
		if err != nil {
			return err
		}
		if best == nil || l.Area() < best.Area() {
			best = l
			bestOrder = append([]int(nil), order...)
		}
		return nil
	}

	identity := make([]int, numPIs)
	for i := range identity {
		identity[i] = i
	}
	reversed := make([]int, numPIs)
	for i := range reversed {
		reversed[i] = numPIs - 1 - i
	}
	if err := eval(identity); err != nil {
		return nil, nil, err
	}
	if err := eval(reversed); err != nil {
		return nil, nil, err
	}
	if err := eval(BarycenterOrder(n)); err != nil {
		return nil, nil, err
	}

	// Greedy adjacent-swap refinement of the best order so far.
	for round := 0; round < opts.swapRounds(); round++ {
		improved := false
		for i := 0; i+1 < numPIs; i++ {
			cand := append([]int(nil), bestOrder...)
			cand[i], cand[i+1] = cand[i+1], cand[i]
			prev := best.Area()
			if err := eval(cand); err != nil {
				return nil, nil, err
			}
			if best.Area() < prev {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best, bestOrder, nil
}

// BarycenterOrder sorts PIs by the average topological index of their
// transitive consumers' first level, a standard crossing-reduction
// heuristic from layered graph drawing.
func BarycenterOrder(n *network.Network) []int {
	order := n.MustTopoOrder()
	topoIdx := make(map[network.ID]int, len(order))
	for i, id := range order {
		topoIdx[id] = i
	}
	lists := n.FanoutLists()
	pis := n.PIs()
	type keyed struct {
		idx int
		bc  float64
	}
	ks := make([]keyed, len(pis))
	for i, pi := range pis {
		consumers := lists[pi]
		if len(consumers) == 0 {
			ks[i] = keyed{idx: i, bc: float64(i)}
			continue
		}
		sum := 0
		for _, c := range consumers {
			sum += topoIdx[c]
		}
		ks[i] = keyed{idx: i, bc: float64(sum) / float64(len(consumers))}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].bc < ks[b].bc })
	out := make([]int, len(pis))
	for i, k := range ks {
		out[i] = k.idx
	}
	return out
}
