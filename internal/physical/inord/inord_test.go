package inord

import (
	"testing"

	"repro/internal/network"
	"repro/internal/physical/ortho"
	"repro/internal/verify"
)

// crossy builds a function whose natural PI order causes long input
// wiring under ortho: later PIs feed earlier gates.
func crossy() *network.Network {
	n := network.New("crossy")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	d := n.AddPI("d")
	g1 := n.AddAnd(c, d)
	g2 := n.AddOr(a, b)
	g3 := n.AddXor(g1, g2)
	n.AddPO(g3, "f")
	return n
}

func TestPlaceImprovesOrNeverWorsens(t *testing.T) {
	n := crossy()
	base, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	best, order, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Area() > base.Area() {
		t.Errorf("InOrd area %d worse than plain ortho %d", best.Area(), base.Area())
	}
	if len(order) != n.NumPIs() {
		t.Errorf("order length %d, want %d", len(order), n.NumPIs())
	}
	if err := verify.Check(best, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceSingleInput(t *testing.T) {
	n := network.New("inv")
	a := n.AddPI("a")
	n.AddPO(n.AddNot(a), "f")
	best, order, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != 0 {
		t.Errorf("order = %v", order)
	}
	if err := verify.Check(best, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceNoInputsFails(t *testing.T) {
	n := network.New("const")
	n.AddPO(n.AddConst(true), "f")
	if _, _, err := Place(n, Options{}); err == nil {
		t.Fatal("accepted a network without PIs")
	}
}

func TestBarycenterOrderValidPermutation(t *testing.T) {
	n := crossy()
	order := BarycenterOrder(n)
	seen := make(map[int]bool)
	for _, idx := range order {
		if idx < 0 || idx >= n.NumPIs() || seen[idx] {
			t.Fatalf("invalid permutation %v", order)
		}
		seen[idx] = true
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := crossy()
	a1, o1, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, o2, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Area() != a2.Area() {
		t.Fatal("nondeterministic area")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("nondeterministic order")
		}
	}
}
