// Package nanoplacer provides a stochastic placement-and-routing engine
// standing in for NanoPlaceR (Hofmann et al., DAC 2023), the
// reinforcement-learning-based physical design tool used by MNT Bench.
//
// The original couples a learned placement policy with A* routing; this
// reproduction keeps the exact same role in the flow — a randomized
// search that often finds smaller layouts than the constructive ortho
// heuristic on small and mid-size functions — using seeded
// simulated-annealing-style restarts instead of a neural policy, so the
// package is dependency-free and fully deterministic for a fixed seed.
package nanoplacer

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/route"
)

// Options tunes the search.
type Options struct {
	// Scheme is the clocking scheme (default 2DDWave).
	Scheme *clocking.Scheme
	// Topo is the grid topology (default Cartesian).
	Topo layout.Topology
	// Restarts is the number of randomized placement episodes (default 12).
	Restarts int
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// Timeout bounds the total search time (default 10s).
	Timeout time.Duration
	// MaxNodes rejects networks beyond the practical episode size
	// (default 400), mirroring NanoPlaceR's small/mid-size scope.
	MaxNodes int
}

func (o Options) scheme() *clocking.Scheme {
	if o.Scheme == nil {
		return clocking.TwoDDWave
	}
	return o.Scheme
}

func (o Options) restarts() int {
	if o.Restarts <= 0 {
		return 12
	}
	return o.Restarts
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 10 * time.Second
	}
	return o.Timeout
}

func (o Options) maxNodes() int {
	if o.MaxNodes <= 0 {
		return 400
	}
	return o.MaxNodes
}

// ErrNoLayout is returned when no episode produced a legal layout.
var ErrNoLayout = errors.New("nanoplacer: no legal layout found")

// ErrTooLarge is returned for networks beyond Options.MaxNodes.
var ErrTooLarge = errors.New("nanoplacer: network too large")

// rng is a deterministic xorshift generator.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Place runs randomized placement episodes and returns the smallest
// layout found. The network must be technology-prepared (placeable
// functions, fanout <= 2).
func Place(n *network.Network, opts Options) (*layout.Layout, error) {
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("nanoplacer: %w", err)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	var nodes []network.ID
	for _, id := range order {
		if n.Gate(id) != network.None {
			nodes = append(nodes, id)
		}
	}
	if len(nodes) > opts.maxNodes() {
		return nil, fmt.Errorf("%w: %d nodes > %d", ErrTooLarge, len(nodes), opts.maxNodes())
	}

	deadline := time.Now().Add(opts.timeout())
	gen := rng(opts.seed()*0x9E3779B97F4A7C15 + 0x1234567)

	var best *layout.Layout
	for ep := 0; ep < opts.restarts(); ep++ {
		if time.Now().After(deadline) {
			break
		}
		// Episode bounds: start tight and widen with the episode index so
		// early episodes hunt for compact layouts and later ones ensure a
		// solution exists.
		side := boundFor(len(nodes), ep)
		l, ok := episode(n, nodes, side, &gen, opts)
		if !ok {
			continue
		}
		if best == nil || l.Area() < best.Area() {
			best = l
		}
	}
	if best == nil {
		return nil, ErrNoLayout
	}
	return best, nil
}

// boundFor picks the square bounding-box side for an episode.
func boundFor(nodes, episode int) int {
	// The tightest plausible square packs nodes with ~2x wiring overhead.
	base := 2
	for base*base < 3*nodes {
		base++
	}
	return base + episode
}

// episode greedily places all nodes within a side x side box using a
// randomized candidate policy; returns the layout and whether it is
// complete.
func episode(n *network.Network, nodes []network.ID, side int, gen *rng, opts Options) (*layout.Layout, bool) {
	l := layout.New(n.Name, opts.Topo, opts.scheme())
	pos := make(map[network.ID]layout.Coord, len(nodes))
	ropts := route.Options{MaxX: side - 1, MaxY: side - 1, AllowCrossings: true, MaxExpansions: side * side * 16}

	// remaining[v] counts outputs of v not yet consumed by a routed
	// edge; such nodes must keep an escape route.
	remaining := make(map[network.ID]int, len(nodes))
	counts := n.FanoutCounts()

	hasEscape := func(c layout.Coord) bool {
		for _, o := range l.OutgoingNeighbors(c) {
			if o.X < side && o.Y < side && l.IsEmpty(o) {
				return true
			}
		}
		return false
	}
	// strangled reports whether any placed node with pending outputs has
	// lost its last escape tile.
	strangled := func() bool {
		for v, r := range remaining {
			if r > 0 && !hasEscape(pos[v]) {
				return true
			}
		}
		return false
	}

	for _, v := range nodes {
		nd := n.Node(v)
		cands := episodeCandidates(l, pos, nd, side, opts)
		if len(cands) == 0 {
			return nil, false
		}
		placed := false
		// Try up to 16 candidates; the head of the list is the greedy
		// choice, with occasional random exploration.
		tries := 16
		if tries > len(cands) {
			tries = len(cands)
		}
		for t := 0; t < tries; t++ {
			pick := t
			if t > 0 && gen.intn(4) == 0 {
				pick = gen.intn(len(cands))
			}
			c := cands[pick]
			if !l.IsEmpty(c) {
				continue
			}
			if !tryPlace(l, pos, v, nd, c, ropts) {
				continue
			}
			for _, f := range nd.Fanins {
				remaining[f]--
			}
			if counts[v] > 0 {
				remaining[v] = counts[v]
			}
			if strangled() {
				// Revert: this placement (or its wiring) walled somebody in.
				for _, f := range nd.Fanins {
					remaining[f]++
				}
				delete(remaining, v)
				revertPlace(l, pos, v, nd, c)
				continue
			}
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return l, true
}

// revertPlace removes a just-placed node and its fanin wiring.
func revertPlace(l *layout.Layout, pos map[network.ID]layout.Coord, v network.ID, nd network.Node, c layout.Coord) {
	for _, f := range nd.Fanins {
		mustUnwind("revert", route.RemoveWirePath(l, pos[f], c))
	}
	mustUnwind("revert", l.Clear(c))
	delete(pos, v)
}

// mustUnwind asserts that reverting a speculative placement succeeded;
// a failed revert would leave the layout corrupted mid-episode.
func mustUnwind(op string, err error) {
	if err != nil {
		panic(fmt.Sprintf("nanoplacer: %s failed: %v", op, err))
	}
}

func episodeCandidates(l *layout.Layout, pos map[network.ID]layout.Coord, nd network.Node, side int, opts Options) []layout.Coord {
	minX, minY := 0, 0
	if !opts.scheme().InPlaneFeedback {
		constrainX := opts.scheme() != clocking.Row
		constrainY := opts.scheme() != clocking.Columnar
		for _, f := range nd.Fanins {
			p := pos[f]
			if constrainX && p.X > minX {
				minX = p.X
			}
			if constrainY && p.Y > minY {
				minY = p.Y
			}
		}
	}
	var cands []layout.Coord
	for y := minY; y < side; y++ {
		for x := minX; x < side; x++ {
			c := layout.C(x, y)
			if l.IsEmpty(c) {
				cands = append(cands, c)
			}
		}
	}
	cost := func(c layout.Coord) int {
		if len(nd.Fanins) == 0 {
			// Spread sources: crowding PIs together strangles their
			// escape routes.
			crowd := 0
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}, {1, -1}, {-1, 1}} {
				if !l.IsEmpty(layout.C(c.X+d[0], c.Y+d[1])) {
					crowd++
				}
			}
			return 4*(c.X+c.Y) + 16*crowd
		}
		t := 0
		for _, f := range nd.Fanins {
			p := pos[f]
			dx, dy := c.X-p.X, c.Y-p.Y
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			t += dx + dy
		}
		return 4*t + (c.X+c.Y)/4
	}
	sort.SliceStable(cands, func(i, j int) bool { return cost(cands[i]) < cost(cands[j]) })
	return cands
}

func tryPlace(l *layout.Layout, pos map[network.ID]layout.Coord, v network.ID, nd network.Node, c layout.Coord, ropts route.Options) bool {
	if err := l.Place(c, layout.Tile{Fn: nd.Fn, Node: v, Name: nd.Name}); err != nil {
		return false
	}
	routed := 0
	ok := true
	for _, f := range nd.Fanins {
		if err := route.Connect(l, pos[f], c, ropts); err != nil {
			ok = false
			break
		}
		routed++
	}
	if !ok {
		for i := 0; i < routed; i++ {
			mustUnwind("rollback", route.RemoveWirePath(l, pos[nd.Fanins[i]], c))
		}
		mustUnwind("rollback", l.Clear(c))
		return false
	}
	pos[v] = c
	return true
}
