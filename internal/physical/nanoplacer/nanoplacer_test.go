package nanoplacer

import (
	"errors"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/physical/ortho"
	"repro/internal/verify"
)

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	n.AddPO(n.AddOr(n.AddAnd(a, ns), n.AddAnd(b, s)), "f")
	return n
}

func TestPlaceMux21(t *testing.T) {
	n := mux21()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Place(prep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceBeatsOrthoOnSmallFunctions(t *testing.T) {
	// The role of NanoPlaceR in MNT Bench: find smaller layouts than the
	// constructive heuristic on small functions.
	n := mux21()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	np, err := Place(prep, Options{Restarts: 16})
	if err != nil {
		t.Fatal(err)
	}
	or, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if np.Area() >= or.Area() {
		t.Errorf("nanoplacer area %d not smaller than ortho %d", np.Area(), or.Area())
	}
}

func TestPlaceDeterministicForSeed(t *testing.T) {
	n := mux21()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := Place(prep, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Place(prep, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if l1.Area() != l2.Area() || l1.NumTiles() != l2.NumTiles() {
		t.Fatal("same seed produced different layouts")
	}
}

func TestPlaceRejectsHugeNetworks(t *testing.T) {
	n := network.New("huge")
	a := n.AddPI("a")
	cur := a
	for i := 0; i < 500; i++ {
		cur = n.AddNot(cur)
	}
	n.AddPO(cur, "f")
	_, err := Place(n, Options{})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestPlaceMidSizeFunction(t *testing.T) {
	// An 8-bit parity tree.
	n := network.New("par8")
	var lvl []network.ID
	for i := 0; i < 8; i++ {
		lvl = append(lvl, n.AddPI(string(rune('a'+i))))
	}
	for len(lvl) > 1 {
		var next []network.ID
		for i := 0; i+1 < len(lvl); i += 2 {
			next = append(next, n.AddXor(lvl[i], lvl[i+1]))
		}
		lvl = next
	}
	n.AddPO(lvl[0], "p")
	prep, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Place(prep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}
