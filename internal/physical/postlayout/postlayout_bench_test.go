package postlayout

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/gatelib"
	"repro/internal/physical/ortho"
)

func BenchmarkOptimizeParCheck(b *testing.B) {
	bm, err := bench.ByName("Trindade16", "par_check")
	if err != nil {
		b.Fatal(err)
	}
	prep, err := gatelib.QCAOne.Prepare(bm.Build())
	if err != nil {
		b.Fatal(err)
	}
	l, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := Optimize(l, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(opt.Area()), "tiles")
	}
}
