package postlayout

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
	"repro/internal/verify"
)

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	n.AddPO(n.AddOr(n.AddAnd(a, ns), n.AddAnd(b, s)), "f")
	return n
}

func TestOptimizeShrinksOrthoLayout(t *testing.T) {
	n := mux21()
	l, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := l.Area()
	opt, err := Optimize(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := opt.Area()
	if after > before {
		t.Fatalf("area grew: %d -> %d", before, after)
	}
	if after == before {
		t.Logf("warning: no shrink (%d)", before)
	}
	if err := verify.Check(opt, n); err != nil {
		t.Fatal(err)
	}
	// The input layout must be untouched.
	if l.Area() != before {
		t.Error("Optimize mutated its input")
	}
}

func TestOptimizeHexRowLayout(t *testing.T) {
	n := mux21()
	cart, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := hexagonal.Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	before := hex.Area()
	opt, err := Optimize(hex, Options{MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Area() > before {
		t.Fatalf("hex area grew: %d -> %d", before, opt.Area())
	}
	if err := verify.Check(opt, n); err != nil {
		t.Fatal(err)
	}
}

func TestCompressRemovesEmptyBands(t *testing.T) {
	n := mux21()
	l, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shift deep into the grid: compress must pull it back.
	if err := l.Shift(8, 12); err != nil {
		t.Fatal(err)
	}
	grown := l.Area()
	if err := Compress(l); err != nil {
		t.Fatal(err)
	}
	if l.Area() >= grown {
		t.Fatalf("compress did not shrink: %d -> %d", grown, l.Area())
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	n := mux21()
	run := func() int {
		l, err := ortho.Place(n, ortho.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimize(l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return opt.Area()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic areas: %d vs %d", a, b)
	}
}

func TestOptimizePreservesFunctionQuick(t *testing.T) {
	f := func(shape [6]uint8) bool {
		n := randomNetwork(shape[:])
		l, err := ortho.Place(n, ortho.Options{})
		if err != nil {
			t.Logf("place: %v", err)
			return false
		}
		opt, err := Optimize(l, Options{MaxPasses: 2, MaxCandidates: 24})
		if err != nil {
			t.Logf("optimize: %v", err)
			return false
		}
		if opt.Area() > l.Area() {
			t.Logf("area grew")
			return false
		}
		if err := verify.Check(opt, n); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func randomNetwork(seed []uint8) *network.Network {
	n := network.New("rand")
	ids := []network.ID{n.AddPI("a"), n.AddPI("b"), n.AddPI("c")}
	gates := []network.Gate{network.And, network.Or, network.Xor, network.Nand, network.Not}
	for _, s := range seed {
		g := gates[int(s)%len(gates)]
		pick := func(k int) network.ID { return ids[(int(s)/(k+3))%len(ids)] }
		var id network.ID
		if g.Arity() == 1 {
			id = n.AddGate(g, pick(1))
		} else {
			id = n.AddGate(g, pick(1), pick(2))
		}
		ids = append(ids, id)
	}
	n.AddPO(ids[len(ids)-1], "f")
	n.AddPO(ids[len(ids)-2], "g")
	return n
}
