// Package postlayout implements post-layout optimization (PLO) for FCN
// gate-level layouts (Hofmann et al., NANOARCH 2023): gates are
// iteratively relocated toward the layout origin with full rerouting of
// their connections, wire detours are straightened, and empty rows and
// columns are compressed out in scheme-period multiples. The result is a
// functionally identical layout with a smaller bounding box.
package postlayout

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/route"
)

// Options tunes the optimization effort.
type Options struct {
	// MaxPasses bounds the number of full relocation sweeps (default 4).
	MaxPasses int
	// MaxCandidates bounds how many target positions are tried per gate
	// and pass (default 64).
	MaxCandidates int
	// AllowCrossings permits second-layer wires during rerouting
	// (default true; set DisableCrossings to turn off).
	DisableCrossings bool
	// Timeout bounds the total optimization time; once exceeded, the
	// current pass finishes its gate and the best-so-far layout is
	// returned. Zero means no limit.
	Timeout time.Duration
}

func (o Options) passes() int {
	if o.MaxPasses <= 0 {
		return 4
	}
	return o.MaxPasses
}

func (o Options) candidates() int {
	if o.MaxCandidates <= 0 {
		return 64
	}
	return o.MaxCandidates
}

// Optimize returns an area-optimized copy of the layout.
func Optimize(l *layout.Layout, opts Options) (*layout.Layout, error) {
	work := l.Clone()
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	expired := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	for pass := 0; pass < opts.passes() && !expired(); pass++ {
		movedAny, err := relocationPass(work, opts, deadline)
		if err != nil {
			return nil, err
		}
		if err := straightenPass(work, opts); err != nil {
			return nil, err
		}
		if err := Compress(work); err != nil {
			return nil, err
		}
		if !movedAny {
			break
		}
	}
	return work, nil
}

// connection is one logical signal edge between two non-wire tiles.
type connection struct {
	src, dst layout.Coord
	dstIdx   int // fanin index at the destination tile
}

// endpoints traces the logical connections touching the non-wire tile at
// c: the gate/PI/fanout sources of its fanins and the gate/PO/fanout
// destinations of its outputs.
func endpoints(l *layout.Layout, c layout.Coord) (ins []connection, outs []connection, err error) {
	t := l.At(c)
	for idx, in := range t.Incoming {
		src := in
		for l.At(src).IsWire() {
			w := l.At(src)
			if len(w.Incoming) != 1 {
				return nil, nil, fmt.Errorf("postlayout: wire %v has %d inputs", src, len(w.Incoming))
			}
			src = w.Incoming[0]
		}
		ins = append(ins, connection{src: src, dst: c, dstIdx: idx})
	}
	for _, out := range l.Outgoing(c) {
		dst := out
		for l.At(dst).IsWire() {
			nexts := l.Outgoing(dst)
			if len(nexts) != 1 {
				return nil, nil, fmt.Errorf("postlayout: wire %v drives %d tiles", dst, len(nexts))
			}
			dst = nexts[0]
		}
		// Locate the fanin index: the destination's incoming entry whose
		// chain leads back to c.
		idx, err := faninIndexVia(l, dst, c)
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, connection{src: c, dst: dst, dstIdx: idx})
	}
	return ins, outs, nil
}

// faninIndexVia finds which incoming entry of dst traces back (through
// wires) to the non-wire tile src.
func faninIndexVia(l *layout.Layout, dst, src layout.Coord) (int, error) {
	for i, in := range l.At(dst).Incoming {
		cur := in
		for l.At(cur) != nil && l.At(cur).IsWire() {
			cur = l.At(cur).Incoming[0]
		}
		if cur == src {
			return i, nil
		}
	}
	return -1, fmt.Errorf("postlayout: no fanin of %v traces back to %v", dst, src)
}

// relocationPass tries to move every gate, fanout, PI and PO tile toward
// the origin, rerouting all its connections. Returns whether any tile
// moved.
func relocationPass(l *layout.Layout, opts Options, deadline time.Time) (bool, error) {
	w, h := l.BoundingBox()
	ropts := route.Options{
		MaxX:           w - 1,
		MaxY:           h - 1,
		AllowCrossings: !opts.DisableCrossings,
	}

	// Non-wire tiles in ascending (x+y) order: sources first so
	// consumers can follow them inward.
	var tiles []layout.Coord
	for _, c := range l.Coords() {
		if !l.At(c).IsWire() {
			tiles = append(tiles, c)
		}
	}
	sort.Slice(tiles, func(i, j int) bool {
		a, b := tiles[i], tiles[j]
		if a.X+a.Y != b.X+b.Y {
			return a.X+a.Y < b.X+b.Y
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})

	moved := false
	for i, c := range tiles {
		if i%16 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		didMove, err := relocate(l, c, ropts, opts.candidates())
		if err != nil {
			return moved, err
		}
		moved = moved || didMove
	}
	return moved, nil
}

// relocate attempts to move the tile at c to a cheaper position.
func relocate(l *layout.Layout, c layout.Coord, ropts route.Options, maxCand int) (bool, error) {
	t := l.At(c)
	if t == nil || t.IsWire() {
		return false, nil
	}
	ins, outs, err := endpoints(l, c)
	if err != nil {
		return false, err
	}

	// Rerouting one connection can occupy tiles another connection of the
	// same gate needs, so re-placing at the original position is not
	// guaranteed to succeed; keep a snapshot for wholesale restore.
	snap := l.Clone()

	// Tear down the current connections (wire chains die with them).
	for _, in := range ins {
		if err := route.RemoveWirePath(l, in.src, c); err != nil {
			return false, err
		}
	}
	for _, out := range outs {
		if err := route.RemoveWirePath(l, c, out.dst); err != nil {
			return false, err
		}
	}
	tile := layout.Tile{Fn: t.Fn, Wire: t.Wire, Node: t.Node, Name: t.Name}
	if err := l.Clear(c); err != nil {
		return false, err
	}

	// Candidates are enumerated after the teardown so that tiles freed by
	// the gate's own wire chains become available targets. The outer
	// bounds come from the routing options (the pass-level bounding box):
	// the box recomputed after teardown could exclude the fallback.
	cands := candidatePositions(l, c, ins, outs, ropts.MaxX, ropts.MaxY, maxCand)

	try := func(p layout.Coord) bool {
		if err := l.Place(p, tile); err != nil {
			return false
		}
		done := 0
		outsDone := 0
		ok := true
		for _, in := range ins {
			if err := route.Connect(l, in.src, p, ropts); err != nil {
				ok = false
				break
			}
			done++
		}
		if ok {
			for _, out := range outs {
				if err := route.Connect(l, p, out.dst, ropts); err != nil {
					ok = false
					break
				}
				// Restore the original fanin index at the destination.
				ni := l.IncomingIndex(out.dst, lastIncoming(l, out.dst))
				mustUnwind("fanin reorder", l.MoveIncoming(out.dst, ni, out.dstIdx))
				outsDone++
			}
		}
		if ok {
			return true
		}
		// Undo partial work.
		for i := 0; i < outsDone; i++ {
			mustUnwind("undo", route.RemoveWirePath(l, p, outs[i].dst))
		}
		for i := 0; i < done; i++ {
			mustUnwind("undo", route.RemoveWirePath(l, ins[i].src, p))
		}
		mustUnwind("undo", l.Clear(p))
		return false
	}

	for _, p := range cands {
		if try(p) {
			return p != c, nil
		}
	}
	// All candidates failed; restore at the original position, falling
	// back to the snapshot if the fresh routing attempt cannot reproduce
	// a legal wiring.
	if !try(c) {
		*l = *snap
	}
	return false, nil
}

// mustUnwind asserts that reverting a speculative relocation succeeded;
// a failed revert would leave the layout corrupted mid-optimization.
func mustUnwind(op string, err error) {
	if err != nil {
		panic(fmt.Sprintf("postlayout: %s failed: %v", op, err))
	}
}

// lastIncoming returns the most recently added incoming coordinate of
// dst (route.Connect appends).
func lastIncoming(l *layout.Layout, dst layout.Coord) layout.Coord {
	in := l.At(dst).Incoming
	return in[len(in)-1]
}

// candidatePositions enumerates empty ground positions cheaper than c
// (smaller x+y), nearest-origin first, honoring dataflow monotonicity
// for schemes without in-plane feedback. The current position c is
// always appended last as the fallback.
func candidatePositions(l *layout.Layout, c layout.Coord, ins, outs []connection, boundX, boundY, maxCand int) []layout.Coord {
	minX, minY := 0, 0
	maxX, maxY := boundX, boundY
	if !l.Scheme.InPlaneFeedback {
		// Monotone schemes (2DDWave, ROW, Columnar): position must lie in
		// the box spanned by sources and destinations. ROW constrains only
		// Y; Columnar only X; 2DDWave both.
		constrainX := l.Scheme != clocking.Row
		constrainY := l.Scheme != clocking.Columnar
		for _, in := range ins {
			if constrainX && in.src.X > minX {
				minX = in.src.X
			}
			if constrainY && in.src.Y > minY {
				minY = in.src.Y
			}
		}
		for _, out := range outs {
			if constrainX && out.dst.X < maxX {
				maxX = out.dst.X
			}
			if constrainY && out.dst.Y < maxY {
				maxY = out.dst.Y
			}
		}
	}
	var cands []layout.Coord
	cur := c.X + c.Y
	for s := minX + minY; s < cur && len(cands) < maxCand; s++ {
		for y := minY; y <= s-minX && y <= maxY && len(cands) < maxCand; y++ {
			x := s - y
			if x < minX || x > maxX {
				continue
			}
			p := layout.C(x, y)
			if l.IsEmpty(p) {
				cands = append(cands, p)
			}
		}
	}
	cands = append(cands, c)
	return cands
}

// straightenPass reroutes every logical connection with the A* router,
// which can only shorten wire chains (the removed chain's tiles are
// available to the search).
func straightenPass(l *layout.Layout, opts Options) error {
	w, h := l.BoundingBox()
	ropts := route.Options{MaxX: w - 1, MaxY: h - 1, AllowCrossings: !opts.DisableCrossings}
	for _, c := range l.Coords() {
		t := l.At(c)
		if t == nil || t.IsWire() {
			continue
		}
		ins, _, err := endpoints(l, c)
		if err != nil {
			return err
		}
		for _, in := range ins {
			if err := route.RemoveWirePath(l, in.src, c); err != nil {
				return err
			}
			if err := route.Connect(l, in.src, c, ropts); err != nil {
				return fmt.Errorf("postlayout: straighten reroute failed (%v -> %v): %w", in.src, c, err)
			}
			ni := l.IncomingIndex(c, lastIncoming(l, c))
			if err := l.MoveIncoming(c, ni, in.dstIdx); err != nil {
				return err
			}
		}
	}
	return nil
}

// Compress removes fully empty column and row bands in multiples of the
// clocking periods (so zones stay aligned) and shifts the layout flush
// with the origin.
func Compress(l *layout.Layout) error {
	for {
		changed, err := compressOnce(l)
		if err != nil {
			return err
		}
		if !changed {
			return nil
		}
	}
}

func compressOnce(l *layout.Layout) (bool, error) {
	w, h := l.BoundingBox()
	if w == 0 || h == 0 {
		return false, nil
	}
	colUsed := make([]bool, w)
	rowUsed := make([]bool, h)
	for _, c := range l.Coords() {
		colUsed[c.X] = true
		rowUsed[c.Y] = true
	}
	// Origin shift first: leading empty bands.
	px, py := l.Scheme.PeriodX(), l.Scheme.PeriodY()
	if l.Topo == layout.HexOddRow && py%2 == 1 {
		py *= 2 // preserve hexagonal row parity
	}
	lead := func(used []bool) int {
		n := 0
		for n < len(used) && !used[n] {
			n++
		}
		return n
	}
	dx := -(lead(colUsed) / px * px)
	dy := -(lead(rowUsed) / py * py)
	if dx != 0 || dy != 0 {
		if err := l.Shift(dx, dy); err != nil {
			return false, err
		}
		return true, nil
	}
	// Interior bands: remove the first run of >= period empty columns.
	if cut, n := firstBand(colUsed, px); n > 0 {
		if err := removeBand(l, cut, n, true); err != nil {
			return false, err
		}
		return true, nil
	}
	if cut, n := firstBand(rowUsed, py); n > 0 {
		if err := removeBand(l, cut, n, false); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// firstBand finds the first run of empty entries of length >= period and
// returns its start and the removable length (rounded down to a period
// multiple).
func firstBand(used []bool, period int) (start, n int) {
	run := 0
	for i, u := range used {
		if u {
			run = 0
			continue
		}
		run++
		if run >= period {
			// Extend greedily.
			j := i + 1
			for j < len(used) && !used[j] {
				j++
			}
			total := j - (i - run + 1)
			return i - run + 1, total / period * period
		}
	}
	return 0, 0
}

// removeBand deletes n empty columns (cols=true) or rows starting at cut
// by shifting the tiles beyond it. Connections never span a fully empty
// band wider than one tile, so adjacency is preserved.
func removeBand(l *layout.Layout, cut, n int, cols bool) error {
	// Rebuild tile-by-tile: Shift only supports uniform translation, so
	// split the layout virtually: coordinates beyond the band move by -n.
	adj := func(c layout.Coord) layout.Coord {
		if cols && c.X >= cut+n {
			c.X -= n
		}
		if !cols && c.Y >= cut+n {
			c.Y -= n
		}
		return c
	}
	fresh := layout.New(l.Name, l.Topo, l.Scheme)
	fresh.Library = l.Library
	coords := l.Coords()
	for _, c := range coords {
		t := l.At(c)
		if err := fresh.Place(adj(c), layout.Tile{Fn: t.Fn, Wire: t.Wire, Node: t.Node, Name: t.Name}); err != nil {
			return err
		}
	}
	for _, c := range coords {
		t := l.At(c)
		nc := adj(c)
		for _, in := range t.Incoming {
			if err := fresh.Connect(adj(in), nc); err != nil {
				return err
			}
		}
	}
	*l = *fresh
	return nil
}
