package hexagonal

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/physical/ortho"
)

func BenchmarkMapParity(b *testing.B) {
	bm, err := bench.ByName("Fontes18", "parity")
	if err != nil {
		b.Fatal(err)
	}
	l, err := ortho.Place(bm.Build(), ortho.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(l); err != nil {
			b.Fatal(err)
		}
	}
}
