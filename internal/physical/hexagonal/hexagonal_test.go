package hexagonal

import (
	"testing"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/physical/ortho"
	"repro/internal/verify"
)

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	n.AddPO(n.AddOr(n.AddAnd(a, ns), n.AddAnd(b, s)), "f")
	return n
}

func TestMapPreservesFunction(t *testing.T) {
	n := mux21()
	cart, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	if hex.Topo != layout.HexOddRow {
		t.Fatalf("topology = %s", hex.Topo)
	}
	if hex.Scheme != clocking.Row {
		t.Fatalf("scheme = %s", hex.Scheme)
	}
	if err := verify.Check(hex, n); err != nil {
		t.Fatal(err)
	}
}

func TestMapGeometry(t *testing.T) {
	n := mux21()
	cart, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	cw, ch := cart.BoundingBox()
	_, hh := hex.BoundingBox()
	if want := cw + ch - 1; hh != want {
		t.Errorf("hex height = %d, want %d (w+h-1 anti-diagonals)", hh, want)
	}
	if hex.NumTiles() != cart.NumTiles() {
		t.Errorf("tile count changed: %d -> %d", cart.NumTiles(), hex.NumTiles())
	}
}

func TestMapRejectsWrongInputs(t *testing.T) {
	l := layout.New("x", layout.HexOddRow, clocking.Row)
	if _, err := Map(l); err == nil {
		t.Error("accepted hexagonal input")
	}
	l2 := layout.New("x", layout.Cartesian, clocking.USE)
	if _, err := Map(l2); err == nil {
		t.Error("accepted USE-clocked input")
	}
}

func TestMapEmptyLayout(t *testing.T) {
	l := layout.New("empty", layout.Cartesian, clocking.TwoDDWave)
	hex, err := Map(l)
	if err != nil {
		t.Fatal(err)
	}
	if hex.NumTiles() != 0 {
		t.Error("empty layout mapped to non-empty")
	}
}

func TestMapKeepsCrossings(t *testing.T) {
	// Build a tiny layout with a crossing by hand and map it.
	n := network.New("xing")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(a, n.AddNot(b)), "f")
	n.AddPO(n.AddAnd(b, a), "g")
	cart, err := ortho.Place(n, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	cs := cart.ComputeStats()
	hs := hex.ComputeStats()
	if cs.Crossings != hs.Crossings {
		t.Errorf("crossings changed: %d -> %d", cs.Crossings, hs.Crossings)
	}
	if err := verify.Check(hex, n); err != nil {
		t.Fatal(err)
	}
}
