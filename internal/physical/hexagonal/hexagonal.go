// Package hexagonal implements the 45-degree hexagonalization transform
// (Hofmann et al., IEEE-NANO 2023): a 2DDWave-clocked Cartesian layout is
// mapped onto a ROW-clocked hexagonal layout by turning every Cartesian
// anti-diagonal into one hexagonal row.
//
// The mapping sends tile (x, y) to hexagonal position
//
//	row  r = x + y
//	col  h = x - ceil(r/2) + shift
//
// Under odd-row offset hexagonal coordinates, the Cartesian east and
// south neighbors of a tile map exactly onto the two downward hexagonal
// neighbors of its image, and the 2DDWave zone (x+y) mod 4 equals the ROW
// zone r mod 4 — so connectivity and clocking are preserved without any
// rerouting. This is how MNT Bench derives Bestagon layouts from ortho's
// Cartesian results.
package hexagonal

import (
	"fmt"

	"repro/internal/clocking"
	"repro/internal/layout"
)

// Map converts a 2DDWave Cartesian gate-level layout into an equivalent
// ROW-clocked hexagonal layout.
func Map(l *layout.Layout) (*layout.Layout, error) {
	if l.Topo != layout.Cartesian {
		return nil, fmt.Errorf("hexagonal: input must be Cartesian, got %s", l.Topo)
	}
	if l.Scheme != clocking.TwoDDWave {
		return nil, fmt.Errorf("hexagonal: input must be 2DDWave-clocked, got %s", l.Scheme)
	}

	// The raw column index x - ceil((x+y)/2) can be negative; shift all
	// columns east so the smallest becomes zero. A uniform x shift keeps
	// row parity and therefore hexagonal adjacency intact.
	coords := l.Coords()
	if len(coords) == 0 {
		return layout.New(l.Name, layout.HexOddRow, clocking.Row), nil
	}
	minCol := int(^uint(0) >> 1)
	for _, c := range coords {
		if col := rawCol(c); col < minCol {
			minCol = col
		}
	}
	shift := -minCol

	hex := layout.New(l.Name, layout.HexOddRow, clocking.Row)
	hex.Library = l.Library

	mapCoord := func(c layout.Coord) layout.Coord {
		return layout.Coord{X: rawCol(c) + shift, Y: c.X + c.Y, Z: c.Z}
	}

	// First pass: place all tiles (without connections). Second pass:
	// connect, so sources always exist.
	for _, c := range coords {
		t := l.At(c)
		cp := layout.Tile{Fn: t.Fn, Wire: t.Wire, Node: t.Node, Name: t.Name}
		if err := hex.Place(mapCoord(c), cp); err != nil {
			return nil, fmt.Errorf("hexagonal: %w", err)
		}
	}
	for _, c := range coords {
		t := l.At(c)
		dst := mapCoord(c)
		for _, src := range t.Incoming {
			if err := hex.Connect(mapCoord(src), dst); err != nil {
				return nil, fmt.Errorf("hexagonal: %w", err)
			}
		}
	}
	return hex, nil
}

// rawCol computes the unshifted hexagonal column of a Cartesian tile.
func rawCol(c layout.Coord) int {
	r := c.X + c.Y
	return c.X - (r+1)/2
}
