// Package ortho implements the scalable orthogonal-graph-drawing-based
// physical design method for FCN circuits (Walter et al., ASP-DAC 2019),
// targeting the 2DDWave clocking scheme on Cartesian grids.
//
// The algorithm 2-colors the network's signal edges east/south such that
// every node receives at most one eastward (west-port) and one southward
// (north-port) input and drives at most one edge of each color. Nodes are
// then swept in topological order onto a staircase layout where east
// edges run horizontally in their source's row and south edges run
// vertically, crossing existing wires on the second layer. The
// construction is correct by construction under 2DDWave (all dataflow is
// east/south, every hop advances one clock zone) and runs in linear time
// in the number of placed tiles.
package ortho

import (
	"fmt"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
)

// Options configures the layout generation.
type Options struct {
	// InputOrder optionally permutes the primary inputs before placement
	// (used by the InOrd signal-distribution-network optimization).
	// InputOrder[i] is the index of the network PI to place i-th.
	InputOrder []int
}

// edgeColor distinguishes the two wiring directions.
type edgeColor uint8

const (
	colorEast  edgeColor = iota // horizontal edge, enters consumer's west port
	colorSouth                  // vertical edge, enters consumer's north port
)

// edge is one signal connection u -> v (fanin index idx of v).
type edge struct {
	u, v  network.ID
	idx   int
	color edgeColor
}

// Place generates a 2DDWave gate-level layout for the network. The
// network is first normalized: MAJ gates are decomposed (the orthogonal
// placement has only west/north input ports), XOR/XNOR/NAND/NOR are kept
// (they are two-input), and fanouts are limited to degree two.
func Place(n *network.Network, opts Options) (*layout.Layout, error) {
	work := n.Clone()
	// Two input ports per tile: everything up to two fanins is fine, MAJ
	// is not. Decompose it over the remaining gate set.
	if err := work.Decompose(network.GateSet{
		network.And: true, network.Or: true, network.Not: true,
		network.Nand: true, network.Nor: true,
		network.Xor: true, network.Xnor: true, network.Buf: true,
	}); err != nil {
		return nil, fmt.Errorf("ortho: %w", err)
	}
	work.SubstituteFanouts(2)
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("ortho: %w", err)
	}

	edges, err := colorEdges(work)
	if err != nil {
		return nil, fmt.Errorf("ortho: %w", err)
	}
	return sweep(work, edges, opts)
}

// colorEdges assigns east/south colors such that no node has two
// same-colored incoming edges and no node has two same-colored outgoing
// edges. The conflict graph (one slot per node side, edges connecting
// the slots they touch) has maximum degree two and is bipartite, so an
// alternating walk over its paths and even cycles always succeeds.
func colorEdges(n *network.Network) ([]edge, error) {
	var edges []edge
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, v := range order {
		for idx, u := range n.Fanins(v) {
			edges = append(edges, edge{u: u, v: v, idx: idx})
		}
	}
	// adjacency: for every node, the edge indices leaving it (out side)
	// and entering it (in side).
	outEdges := make(map[network.ID][]int)
	inEdges := make(map[network.ID][]int)
	for i, e := range edges {
		outEdges[e.u] = append(outEdges[e.u], i)
		inEdges[e.v] = append(inEdges[e.v], i)
	}
	for id, es := range outEdges {
		if len(es) > 2 {
			return nil, fmt.Errorf("node %d has fanout %d > 2 after substitution", id, len(es))
		}
	}
	for id, es := range inEdges {
		if len(es) > 2 {
			return nil, fmt.Errorf("node %d has %d fanins > 2", id, len(es))
		}
	}

	colored := make([]bool, len(edges))
	// Walk alternating chains: from an uncolored edge, extend in both
	// directions through degree-2 slots, flipping colors.
	var assign func(i int, c edgeColor)
	assign = func(i int, c edgeColor) {
		if colored[i] {
			return
		}
		colored[i] = true
		edges[i].color = c
		// The sibling edge on the out side of u must take the other color.
		for _, j := range outEdges[edges[i].u] {
			if j != i {
				assign(j, 1-c)
			}
		}
		// The sibling edge on the in side of v must take the other color.
		for _, j := range inEdges[edges[i].v] {
			if j != i {
				assign(j, 1-c)
			}
		}
	}
	for i := range edges {
		if !colored[i] {
			assign(i, colorEast)
		}
	}
	// Verify the invariants (cheap and guards future changes).
	checkSide := func(m map[network.ID][]int, side string) error {
		for id, es := range m {
			if len(es) == 2 && edges[es[0]].color == edges[es[1]].color {
				return fmt.Errorf("coloring failed: node %d has two %s edges on its %s side",
					id, []string{"east", "south"}[edges[es[0]].color], side)
			}
		}
		return nil
	}
	if err := checkSide(outEdges, "output"); err != nil {
		return nil, err
	}
	if err := checkSide(inEdges, "input"); err != nil {
		return nil, err
	}
	return edges, nil
}

// sweep places nodes in topological order on the staircase.
func sweep(n *network.Network, edges []edge, opts Options) (*layout.Layout, error) {
	l := layout.New(n.Name, layout.Cartesian, clocking.TwoDDWave)

	// Per-node incoming edges by color for quick lookup.
	inEast := make(map[network.ID]*edge)
	inSouth := make(map[network.ID]*edge)
	for i := range edges {
		e := &edges[i]
		if e.color == colorEast {
			if inEast[e.v] != nil {
				return nil, fmt.Errorf("ortho: node %d has two east inputs", e.v)
			}
			inEast[e.v] = e
		} else {
			if inSouth[e.v] != nil {
				return nil, fmt.Errorf("ortho: node %d has two south inputs", e.v)
			}
			inSouth[e.v] = e
		}
	}

	pos := make(map[network.ID]layout.Coord)
	curX, curY := 0, 0

	order, err := topoWithInputOrder(n, opts.InputOrder)
	if err != nil {
		return nil, err
	}

	// Resource mapping: an east-colored edge leaves its source through the
	// column below it (vertical first), a south-colored edge leaves
	// through the row east of it (horizontal first). The coloring
	// invariant (at most one edge of each color per side) therefore means
	// every row and every column carries at most one wire run.

	// placeWire puts one wire tile at ground level, or on the crossing
	// layer when the ground tile is an existing wire, chaining from prev.
	placeWire := func(prev layout.Coord, x, y int) (layout.Coord, error) {
		c := layout.C(x, y)
		if !l.IsEmpty(c) {
			if t := l.At(c); !t.IsWire() {
				return prev, fmt.Errorf("ortho: wire blocked by %s at %v", t.Fn, c)
			}
			c = c.Above()
		}
		if err := l.Place(c, layout.Tile{Fn: network.Buf, Wire: true, Node: network.Invalid, Incoming: []layout.Coord{prev}}); err != nil {
			return prev, err
		}
		return c, nil
	}
	// placeHorizontal lays wires at (x1..x2, y), chaining from prev.
	placeHorizontal := func(prev layout.Coord, y, x1, x2 int) (layout.Coord, error) {
		var err error
		for x := x1; x <= x2; x++ {
			if prev, err = placeWire(prev, x, y); err != nil {
				return prev, err
			}
		}
		return prev, nil
	}
	// placeVertical lays wires at (x, y1..y2), chaining from prev.
	placeVertical := func(prev layout.Coord, x, y1, y2 int) (layout.Coord, error) {
		var err error
		for y := y1; y <= y2; y++ {
			if prev, err = placeWire(prev, x, y); err != nil {
				return prev, err
			}
		}
		return prev, nil
	}

	for _, v := range order {
		nd := n.Node(v)
		if nd.Fn == network.None {
			continue
		}
		eE, eS := inEast[v], inSouth[v]
		var at layout.Coord
		switch {
		case len(nd.Fanins) == 0:
			// PIs and constants claim a fresh diagonal slot.
			at = layout.C(curX, curY)
			curX++
			curY++
			if err := l.Place(at, layout.Tile{Fn: nd.Fn, Node: v, Name: nd.Name}); err != nil {
				return nil, err
			}
		case len(nd.Fanins) == 1 && eE != nil:
			// East-colored input: descend the fanin's column onto a fresh
			// row (south chain).
			a := pos[eE.u]
			at = layout.C(a.X, curY)
			curY++
			last, err := placeVertical(a, a.X, a.Y+1, at.Y-1)
			if err != nil {
				return nil, err
			}
			if err := l.Place(at, layout.Tile{Fn: nd.Fn, Node: v, Name: nd.Name, Incoming: []layout.Coord{last}}); err != nil {
				return nil, err
			}
		case len(nd.Fanins) == 1 && eS != nil:
			// South-colored input: run east in the fanin's row onto a
			// fresh column (east chain).
			a := pos[eS.u]
			at = layout.C(curX, a.Y)
			curX++
			last, err := placeHorizontal(a, a.Y, a.X+1, at.X-1)
			if err != nil {
				return nil, err
			}
			if err := l.Place(at, layout.Tile{Fn: nd.Fn, Node: v, Name: nd.Name, Incoming: []layout.Coord{last}}); err != nil {
				return nil, err
			}
		default:
			// Two fanins: fresh column and row. The east-colored edge
			// descends its source's column to v's fresh row, then runs
			// east into the west port. The south-colored edge runs east in
			// its source's row to v's fresh column, then descends into the
			// north port.
			if eE == nil || eS == nil {
				return nil, fmt.Errorf("ortho: node %d lacks a properly colored fanin pair", v)
			}
			at = layout.C(curX, curY)
			curX++
			curY++
			a, b := pos[eE.u], pos[eS.u]

			lastA, err := placeVertical(a, a.X, a.Y+1, at.Y)
			if err != nil {
				return nil, err
			}
			lastA, err = placeHorizontal(lastA, at.Y, a.X+1, at.X-1)
			if err != nil {
				return nil, err
			}
			lastB, err := placeHorizontal(b, b.Y, b.X+1, at.X)
			if err != nil {
				return nil, err
			}
			lastB, err = placeVertical(lastB, at.X, b.Y+1, at.Y-1)
			if err != nil {
				return nil, err
			}
			in := make([]layout.Coord, 2)
			in[eE.idx] = lastA
			in[eS.idx] = lastB
			if err := l.Place(at, layout.Tile{Fn: nd.Fn, Node: v, Name: nd.Name, Incoming: in}); err != nil {
				return nil, err
			}
		}
		pos[v] = at
	}
	return l, nil
}

// topoWithInputOrder returns a topological order whose PIs appear in the
// requested permutation (PIs always sort before interior nodes here, so
// reordering them is safe).
func topoWithInputOrder(n *network.Network, inputOrder []int) ([]network.ID, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	if inputOrder == nil {
		return order, nil
	}
	if len(inputOrder) != n.NumPIs() {
		return nil, fmt.Errorf("ortho: input order has %d entries, network has %d PIs", len(inputOrder), n.NumPIs())
	}
	pis := n.PIs()
	seen := make(map[int]bool)
	permuted := make([]network.ID, 0, len(pis))
	for _, idx := range inputOrder {
		if idx < 0 || idx >= len(pis) || seen[idx] {
			return nil, fmt.Errorf("ortho: invalid input order %v", inputOrder)
		}
		seen[idx] = true
		permuted = append(permuted, pis[idx])
	}
	isPI := make(map[network.ID]bool, len(pis))
	for _, pi := range pis {
		isPI[pi] = true
	}
	out := make([]network.ID, 0, len(order))
	pi := 0
	for _, id := range order {
		if isPI[id] {
			out = append(out, permuted[pi])
			pi++
			continue
		}
		out = append(out, id)
	}
	return out, nil
}
