package ortho

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/verify"
)

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	n.AddPO(n.AddOr(n.AddAnd(a, ns), n.AddAnd(b, s)), "f")
	return n
}

func halfAdder() *network.Network {
	n := network.New("ha")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddXor(a, b), "sum")
	n.AddPO(n.AddAnd(a, b), "carry")
	return n
}

func fullAdder() *network.Network {
	n := network.New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	cin := n.AddPI("cin")
	s1 := n.AddXor(a, b)
	n.AddPO(n.AddXor(s1, cin), "sum")
	n.AddPO(n.AddMaj(a, b, cin), "cout")
	return n
}

func TestPlaceMux21(t *testing.T) {
	n := mux21()
	l, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
	if l.Area() == 0 {
		t.Fatal("empty layout")
	}
}

func TestPlaceHalfAdder(t *testing.T) {
	n := halfAdder()
	l, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceFullAdderDecomposesMaj(t *testing.T) {
	n := fullAdder()
	l, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
	// MAJ must not appear on any tile: ortho has only two input ports.
	for _, c := range l.Coords() {
		if l.At(c).Fn == network.Maj {
			t.Fatal("MAJ tile survived ortho placement")
		}
	}
}

func TestPlaceHighFanout(t *testing.T) {
	n := network.New("hifan")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g := n.AddAnd(a, b)
	// g and a drive many consumers each.
	for i := 0; i < 5; i++ {
		x := n.AddXor(g, a)
		n.AddPO(x, "o"+string(rune('0'+i)))
	}
	l, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := mux21()
	l1, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := l1.Coords(), l2.Coords()
	if len(c1) != len(c2) {
		t.Fatal("nondeterministic tile count")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("nondeterministic layout")
		}
	}
}

func TestPlaceInputOrder(t *testing.T) {
	n := mux21()
	l, err := Place(n, Options{InputOrder: []int{2, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(n, Options{InputOrder: []int{0, 0, 1}}); err == nil {
		t.Error("duplicate input order accepted")
	}
	if _, err := Place(n, Options{InputOrder: []int{0, 1}}); err == nil {
		t.Error("short input order accepted")
	}
}

func TestPlaceSameFaninTwice(t *testing.T) {
	n := network.New("sq")
	a := n.AddPI("a")
	n.AddPO(n.AddAnd(a, a), "f")
	l, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceConstants(t *testing.T) {
	n := network.New("const")
	a := n.AddPI("a")
	n.AddPO(n.AddAnd(a, n.AddConst(true)), "f")
	l, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceWideNetwork(t *testing.T) {
	// A parity tree over 16 inputs: deep XOR structure with no reuse.
	n := network.New("parity16")
	var level []network.ID
	for i := 0; i < 16; i++ {
		level = append(level, n.AddPI("x"+string(rune('a'+i))))
	}
	for len(level) > 1 {
		var next []network.ID
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, n.AddXor(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	n.AddPO(level[0], "p")
	l, err := Place(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceRandomNetworksQuick property-checks the construction on
// random small networks: every generated layout must pass DRC and be
// functionally equivalent to its source.
func TestPlaceRandomNetworksQuick(t *testing.T) {
	f := func(shape [8]uint8) bool {
		n := randomNetwork(shape[:])
		l, err := Place(n, Options{})
		if err != nil {
			t.Logf("place failed: %v", err)
			return false
		}
		if err := verify.Check(l, n); err != nil {
			t.Logf("verify failed: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomNetwork(seed []uint8) *network.Network {
	n := network.New("rand")
	ids := []network.ID{n.AddPI("a"), n.AddPI("b"), n.AddPI("c"), n.AddPI("d")}
	gates := []network.Gate{
		network.And, network.Or, network.Xor, network.Xnor,
		network.Nand, network.Nor, network.Not, network.Maj,
	}
	for _, s := range seed {
		g := gates[int(s)%len(gates)]
		pick := func(k int) network.ID { return ids[(int(s)/(k+3))%len(ids)] }
		var id network.ID
		switch g.Arity() {
		case 1:
			id = n.AddGate(g, pick(1))
		case 2:
			id = n.AddGate(g, pick(1), pick(2))
		case 3:
			id = n.AddGate(g, pick(1), pick(2), pick(5))
		}
		ids = append(ids, id)
	}
	n.AddPO(ids[len(ids)-1], "f")
	n.AddPO(ids[len(ids)-2], "g")
	return n
}

func BenchmarkPlaceMux21(b *testing.B) {
	n := mux21()
	for i := 0; i < b.N; i++ {
		if _, err := Place(n, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
