package exact

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clocking"
	"repro/internal/gatelib"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/verify"
)

func and2() *network.Network {
	n := network.New("and2")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddAnd(a, b), "f")
	return n
}

func mux21() *network.Network {
	n := network.New("mux21")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddPI("s")
	ns := n.AddNot(s)
	n.AddPO(n.AddOr(n.AddAnd(a, ns), n.AddAnd(b, s)), "f")
	return n
}

func TestPlaceAnd2Minimal(t *testing.T) {
	n := and2()
	l, err := Place(n, Options{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
	// 4 tiles suffice: two PIs, the AND, the PO — the search must find an
	// area-4 box (2x2 is impossible under 2DDWave fan-in geometry, but
	// 4x1/1x4/2x2 enumeration guarantees area-4 optimality check).
	if l.Area() > 6 {
		t.Errorf("area = %d, expected a minimal (<= 6 tile) layout", l.Area())
	}
}

func TestPlaceMux21(t *testing.T) {
	n := mux21()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Place(prep, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
	// The paper's exact method reaches 3x4=12 for mux21 under QCA ONE;
	// allow modest slack for the router-based search.
	if l.Area() > 16 {
		t.Errorf("mux21 area = %d, want <= 16", l.Area())
	}
	t.Logf("mux21 exact area: %d (%s)", l.Area(), l.ComputeStats())
}

func TestPlaceBorderIO(t *testing.T) {
	n := and2()
	l, err := Place(n, Options{BorderIO: true, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
	w, h := l.BoundingBox()
	for _, c := range append(l.PITiles(), l.POTiles()...) {
		if c.X != 0 && c.Y != 0 && c.X != w-1 && c.Y != h-1 {
			t.Errorf("I/O tile %v not on the border of %dx%d", c, w, h)
		}
	}
}

func TestPlaceUSEScheme(t *testing.T) {
	n := and2()
	l, err := Place(n, Options{Scheme: clocking.USE, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceHexRow(t *testing.T) {
	n := and2()
	l, err := Place(n, Options{Scheme: clocking.Row, Topo: layout.HexOddRow, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if l.Topo != layout.HexOddRow {
		t.Fatal("wrong topology")
	}
	if err := verify.Check(l, n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceTimeout(t *testing.T) {
	// A function large enough that a 1ns budget must expire.
	n := network.New("big")
	var ids []network.ID
	for i := 0; i < 8; i++ {
		ids = append(ids, n.AddPI(string(rune('a'+i))))
	}
	cur := ids[0]
	for i := 1; i < 8; i++ {
		cur = n.AddXor(cur, ids[i])
	}
	n.AddPO(cur, "f")
	_, err := Place(n, Options{Timeout: time.Nanosecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPlaceAreaBound(t *testing.T) {
	n := mux21()
	_, err := Place(n, Options{MaxArea: 4, Timeout: 10 * time.Second})
	if !errors.Is(err, ErrNoLayout) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrNoLayout", err)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := and2()
	l1, err := Place(n, Options{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Place(n, Options{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if l1.Area() != l2.Area() || l1.NumTiles() != l2.NumTiles() {
		t.Fatal("nondeterministic exact search")
	}
}

func TestSizesAscendingArea(t *testing.T) {
	s := sizes(4, 36)
	for i := 1; i < len(s); i++ {
		if s[i].w*s[i].h < s[i-1].w*s[i-1].h {
			t.Fatalf("sizes not ascending at %d: %v", i, s[i-1:i+1])
		}
	}
}

// TestPlaceMaxStepsDeterministic pins the deterministic step budget:
// a tiny budget always reports ErrTimeout, a generous one always finds
// the same layout, and both behave identically across repeated runs —
// the property the conformance selftest needs for worker-count-invariant
// reports.
func TestPlaceMaxStepsDeterministic(t *testing.T) {
	n := mux21()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := Place(prep, Options{Timeout: time.Hour, MaxSteps: 5}); !errors.Is(err, ErrTimeout) {
			t.Fatalf("run %d: tiny step budget: got %v, want ErrTimeout", i, err)
		}
	}
	var want string
	for i := 0; i < 3; i++ {
		l, err := Place(prep, Options{Timeout: time.Hour, MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("run %d: generous step budget: %v", i, err)
		}
		got := fglFingerprint(t, l)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d produced a different layout under the same step budget", i)
		}
	}
}

// fglFingerprint renders a layout canonically for equality checks.
func fglFingerprint(t *testing.T, l *layout.Layout) string {
	t.Helper()
	var sb []byte
	for _, c := range l.Coords() {
		tl := l.At(c)
		sb = append(sb, []byte(c.String()+tl.Fn.String()+tl.Name+";")...)
	}
	return string(sb)
}
