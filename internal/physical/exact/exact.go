// Package exact implements minimum-area physical design search for small
// FCN circuits, standing in for the SMT-based exact method (Walter et
// al., DATE 2018). Layout dimensions are enumerated in increasing area;
// for each candidate bounding box a pruned backtracking search places the
// network's nodes in topological order and routes every connection with
// the clocking-aware A* router.
//
// Unlike the SMT formulation, the search does not branch over alternative
// wire paths (the router always picks a cheapest path), so in rare
// congested cases it may miss a feasible placement at a given size and
// report the next-larger one. In exchange it needs no external solver.
// The first layout found is returned; sizes are tried smallest-area
// first, so the result is minimal over the explored space.
package exact

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/clocking"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/route"
)

// Options configures the search.
type Options struct {
	// Scheme is the clocking scheme (default 2DDWave).
	Scheme *clocking.Scheme
	// Topology of the target grid (default Cartesian). Hexagonal grids
	// pair with the ROW scheme.
	Topo layout.Topology
	// Timeout bounds the total search time (default 10s).
	Timeout time.Duration
	// MaxSteps bounds the total number of backtracking steps across all
	// candidate sizes (0 = unlimited). Unlike Timeout, exhausting the
	// step budget is deterministic: the same network and options always
	// explore the same search prefix regardless of machine load, so a
	// step-bounded search either always finds the same layout or always
	// reports ErrTimeout.
	MaxSteps int
	// MaxArea stops the enumeration once w*h exceeds it (default 144).
	MaxArea int
	// BorderIO requires PI and PO tiles to lie on the bounding-box
	// border, matching fabrication constraints.
	BorderIO bool
}

func (o Options) scheme() *clocking.Scheme {
	if o.Scheme == nil {
		return clocking.TwoDDWave
	}
	return o.Scheme
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 10 * time.Second
	}
	return o.Timeout
}

func (o Options) maxArea() int {
	if o.MaxArea <= 0 {
		return 144
	}
	return o.MaxArea
}

// ErrTimeout is returned when the search exhausts its time budget before
// finding any layout.
var ErrTimeout = errors.New("exact: search timed out")

// ErrNoLayout is returned when no layout exists within MaxArea.
var ErrNoLayout = errors.New("exact: no layout within the area bound")

// Place searches for a minimum-area layout of the network. The network
// must already be technology-prepared (every node function placeable,
// fanout degree at most 2, at most 2 fanins per node — run
// gatelib.Library.Prepare and decompose MAJ if needed).
func Place(n *network.Network, opts Options) (*layout.Layout, error) {
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	var nodes []network.ID
	for _, id := range order {
		if n.Gate(id) != network.None {
			nodes = append(nodes, id)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("exact: empty network")
	}

	deadline := time.Now().Add(opts.timeout())
	timedOut := false

	// The step budget is shared across all candidate sizes so the total
	// effort — not the per-size effort — is what the caller bounds.
	var budget *int
	if opts.MaxSteps > 0 {
		b := opts.MaxSteps
		budget = &b
	}

	for _, dim := range sizes(len(nodes), opts.maxArea()) {
		if budget != nil && *budget <= 0 {
			timedOut = true
			break
		}
		if time.Now().After(deadline) {
			timedOut = true
			break
		}
		s := &searcher{
			n:        n,
			nodes:    nodes,
			w:        dim.w,
			h:        dim.h,
			opts:     opts,
			deadline: deadline,
			budget:   budget,
		}
		l, found := s.run()
		if found {
			return l, nil
		}
		if s.timedOut {
			timedOut = true
			break
		}
	}
	if timedOut {
		return nil, ErrTimeout
	}
	return nil, ErrNoLayout
}

type size struct{ w, h int }

// sizes enumerates candidate bounding boxes by increasing area, then by
// squareness, starting from the smallest box that can hold all nodes.
func sizes(minTiles, maxArea int) []size {
	var out []size
	for area := minTiles; area <= maxArea; area++ {
		for w := 1; w <= area; w++ {
			if area%w != 0 {
				continue
			}
			h := area / w
			out = append(out, size{w, h})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := out[i].w*out[i].h, out[j].w*out[j].h
		if ai != aj {
			return ai < aj
		}
		di := out[i].w - out[i].h
		if di < 0 {
			di = -di
		}
		dj := out[j].w - out[j].h
		if dj < 0 {
			dj = -dj
		}
		return di < dj
	})
	return out
}

type searcher struct {
	n        *network.Network
	nodes    []network.ID
	w, h     int
	opts     Options
	deadline time.Time

	// budget, when non-nil, is the remaining deterministic step budget
	// shared with the other candidate sizes of the same Place call.
	budget *int

	l        *layout.Layout
	pos      map[network.ID]layout.Coord
	steps    int
	timedOut bool
}

// run searches one bounding box. It returns the layout on success.
func (s *searcher) run() (*layout.Layout, bool) {
	s.l = layout.New(s.n.Name, s.opts.Topo, s.opts.scheme())
	s.pos = make(map[network.ID]layout.Coord)
	if s.place(0) {
		return s.l, true
	}
	return nil, false
}

func (s *searcher) checkDeadline() bool {
	s.steps++
	if s.budget != nil {
		*s.budget--
		if *s.budget <= 0 {
			s.timedOut = true
			return true
		}
	}
	if s.steps%256 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
	}
	return s.timedOut
}

// place recursively places nodes[idx:].
func (s *searcher) place(idx int) bool {
	if s.timedOut || s.checkDeadline() {
		return false
	}
	if idx == len(s.nodes) {
		return true
	}
	v := s.nodes[idx]
	nd := s.n.Node(v)

	for _, c := range s.candidates(v, nd) {
		if s.tryAt(v, nd, c) {
			if s.place(idx + 1) {
				return true
			}
			s.undoAt(v, nd, c)
		}
		if s.timedOut {
			return false
		}
	}
	return false
}

// candidates lists legal empty ground tiles for node v, cheapest first.
func (s *searcher) candidates(v network.ID, nd network.Node) []layout.Coord {
	minX, minY := 0, 0
	// Monotone schemes: consumers lie weakly east/south of producers.
	if !s.opts.scheme().InPlaneFeedback {
		constrainX := s.opts.scheme() != clocking.Row
		constrainY := s.opts.scheme() != clocking.Columnar
		for _, f := range nd.Fanins {
			p := s.pos[f]
			if constrainX && p.X > minX {
				minX = p.X
			}
			if constrainY && p.Y > minY {
				minY = p.Y
			}
		}
	}
	var cands []layout.Coord
	for y := minY; y < s.h; y++ {
		for x := minX; x < s.w; x++ {
			c := layout.C(x, y)
			if !s.l.IsEmpty(c) {
				continue
			}
			if s.opts.BorderIO {
				border := x == 0 || y == 0 || x == s.w-1 || y == s.h-1
				if (nd.Fn == network.PI || nd.Fn == network.PO) && !border {
					continue
				}
			}
			cands = append(cands, c)
		}
	}
	// Order: close to fanins (or to the origin for PIs).
	cost := func(c layout.Coord) int {
		if len(nd.Fanins) == 0 {
			return c.X + c.Y
		}
		t := 0
		for _, f := range nd.Fanins {
			p := s.pos[f]
			dx, dy := c.X-p.X, c.Y-p.Y
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			t += dx + dy
		}
		return t
	}
	sort.SliceStable(cands, func(i, j int) bool { return cost(cands[i]) < cost(cands[j]) })
	return cands
}

// tryAt places v at c and routes its fanins; on failure everything is
// rolled back and false returned.
func (s *searcher) tryAt(v network.ID, nd network.Node, c layout.Coord) bool {
	if err := s.l.Place(c, layout.Tile{Fn: nd.Fn, Node: v, Name: nd.Name}); err != nil {
		return false
	}
	ropts := route.Options{MaxX: s.w - 1, MaxY: s.h - 1, AllowCrossings: true, MaxExpansions: 4 * s.w * s.h * 4}
	routed := 0
	ok := true
	for _, f := range nd.Fanins {
		if err := route.Connect(s.l, s.pos[f], c, ropts); err != nil {
			ok = false
			break
		}
		routed++
	}
	if !ok {
		for i := 0; i < routed; i++ {
			mustUnwind("rollback", route.RemoveWirePath(s.l, s.pos[nd.Fanins[i]], c))
		}
		mustUnwind("rollback", s.l.Clear(c))
		return false
	}
	s.pos[v] = c
	return true
}

// undoAt removes v and its fanin wiring from the layout.
func (s *searcher) undoAt(v network.ID, nd network.Node, c layout.Coord) {
	for _, f := range nd.Fanins {
		mustUnwind("undo", route.RemoveWirePath(s.l, s.pos[f], c))
	}
	mustUnwind("undo", s.l.Clear(c))
	delete(s.pos, v)
}

// mustUnwind asserts that reverting a speculative placement succeeded;
// a failed revert would leave the shared layout corrupted mid-search.
func mustUnwind(op string, err error) {
	if err != nil {
		panic(fmt.Sprintf("exact: %s failed: %v", op, err))
	}
}
