package perf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Thresholds maps a metric key to the maximum tolerated relative change
// before perfdiff flags a regression. A positive threshold guards
// against increases (ns_per_op: 0.30 fails when the new value is more
// than 30% above the old), a negative threshold guards against
// decreases (a throughput metric like "flows/s": -0.30 fails when it
// drops by more than 30%). Metrics without a threshold are reported but
// never fail the diff — custom benchmark metrics (areas, counts) are
// results, not performance, unless the caller opts them in.
type Thresholds map[string]float64

// DefaultThresholds guards the built-in measurements. Wall time gets a
// generous margin because benchmark machines are noisy; allocation
// counts are near-deterministic and held tighter.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MetricNsPerOp:     0.30,
		MetricAllocsPerOp: 0.10,
		MetricBytesPerOp:  0.15,
	}
}

// ParseThresholds parses a "metric=rel,metric=rel" flag value and
// overlays it on the defaults ("ns_per_op=0.5,flows/s=-0.2"). A bare
// "none" drops the defaults, leaving everything informational.
func ParseThresholds(s string) (Thresholds, error) {
	th := DefaultThresholds()
	if strings.TrimSpace(s) == "none" {
		return Thresholds{}, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("perf: threshold %q is not metric=relative", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("perf: threshold %q: %w", part, err)
		}
		if f == 0 {
			return nil, fmt.Errorf("perf: threshold %q: zero tolerance would fail on noise; delete the metric instead", part)
		}
		th[strings.TrimSpace(k)] = f
	}
	return th, nil
}

// DiffStatus classifies one compared metric.
type DiffStatus string

// The diff statuses. Regressed and Missing fail the diff; the others
// are informational.
const (
	StatusOK        DiffStatus = "ok"
	StatusImproved  DiffStatus = "improved"
	StatusRegressed DiffStatus = "regressed"
	StatusMissing   DiffStatus = "missing"
	StatusAdded     DiffStatus = "added"
)

// DiffEntry is one (experiment, metric) comparison.
type DiffEntry struct {
	Experiment string     `json:"experiment"`
	Metric     string     `json:"metric"`
	Old        float64    `json:"old"`
	New        float64    `json:"new"`
	Delta      float64    `json:"delta"` // relative: (new-old)/old; 0 when old == 0
	Status     DiffStatus `json:"status"`
}

// DiffReport is the full comparison of two snapshots.
type DiffReport struct {
	OldEnv  Env         `json:"old_env"`
	NewEnv  Env         `json:"new_env"`
	Entries []DiffEntry `json:"entries"`
}

// Failed reports whether the diff found regressions or lost
// experiments/metrics.
func (r *DiffReport) Failed() bool { return r.count(StatusRegressed)+r.count(StatusMissing) > 0 }

func (r *DiffReport) count(st DiffStatus) int {
	n := 0
	for _, e := range r.Entries {
		if e.Status == st {
			n++
		}
	}
	return n
}

// Diff compares two snapshots metric by metric. Every experiment of old
// must still exist in new with every metric it had — disappearing data
// counts as failure (StatusMissing) so a suite can't silently shrink
// its way past the gate. Experiments or metrics new in new are
// informational (StatusAdded).
func Diff(old, new *Snapshot, th Thresholds) *DiffReport {
	if th == nil {
		th = DefaultThresholds()
	}
	rep := &DiffReport{OldEnv: old.Env, NewEnv: new.Env}
	newByID := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		newByID[r.ID] = r
	}
	oldByID := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldByID[r.ID] = r
	}
	for _, or := range old.Results {
		nr, ok := newByID[or.ID]
		if !ok || (or.Error == "" && nr.Error != "") {
			rep.Entries = append(rep.Entries, DiffEntry{Experiment: or.ID, Metric: "*", Status: StatusMissing})
			continue
		}
		if or.Error != "" {
			continue // the old run has nothing comparable
		}
		om, nm := metricsOf(or), metricsOf(nr)
		for _, key := range sortedKeys(om) {
			ov := om[key]
			nv, ok := nm[key]
			if !ok {
				rep.Entries = append(rep.Entries, DiffEntry{Experiment: or.ID, Metric: key, Old: ov, Status: StatusMissing})
				continue
			}
			rep.Entries = append(rep.Entries, classify(or.ID, key, ov, nv, th))
		}
		for _, key := range sortedKeys(nm) {
			if _, ok := om[key]; !ok {
				rep.Entries = append(rep.Entries, DiffEntry{Experiment: or.ID, Metric: key, New: nm[key], Status: StatusAdded})
			}
		}
	}
	for _, nr := range new.Results {
		if _, ok := oldByID[nr.ID]; !ok {
			rep.Entries = append(rep.Entries, DiffEntry{Experiment: nr.ID, Metric: "*", Status: StatusAdded})
		}
	}
	sort.Slice(rep.Entries, func(i, j int) bool {
		if rep.Entries[i].Experiment != rep.Entries[j].Experiment {
			return rep.Entries[i].Experiment < rep.Entries[j].Experiment
		}
		return rep.Entries[i].Metric < rep.Entries[j].Metric
	})
	return rep
}

// classify scores one metric pair against its threshold.
func classify(exp, key string, old, new float64, th Thresholds) DiffEntry {
	e := DiffEntry{Experiment: exp, Metric: key, Old: old, New: new, Status: StatusOK}
	switch {
	case old == 0 && new == 0:
		return e
	case old == 0:
		e.Delta = 1 // appeared from zero; direction judged below via threshold sign
	default:
		e.Delta = (new - old) / old
	}
	t, guarded := th[key]
	switch {
	case guarded && t > 0 && e.Delta > t:
		e.Status = StatusRegressed
	case guarded && t < 0 && e.Delta < t:
		e.Status = StatusRegressed
	case guarded && t > 0 && e.Delta < 0:
		e.Status = StatusImproved
	case guarded && t < 0 && e.Delta > 0:
		e.Status = StatusImproved
	}
	return e
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Text renders the regression table. verbose includes unguarded and
// unchanged metrics; otherwise only regressions, improvements, and
// missing/added rows print.
func (r *DiffReport) Text(verbose bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "old: %s\n", r.OldEnv.String())
	fmt.Fprintf(&sb, "new: %s\n", r.NewEnv.String())
	fmt.Fprintf(&sb, "%-16s %-14s %14s %14s %9s  %s\n", "experiment", "metric", "old", "new", "delta", "status")
	shown := 0
	for _, e := range r.Entries {
		if !verbose && e.Status == StatusOK {
			continue
		}
		shown++
		switch e.Status {
		case StatusMissing, StatusAdded:
			fmt.Fprintf(&sb, "%-16s %-14s %14s %14s %9s  %s\n",
				e.Experiment, e.Metric, fmtMetric(e.Old), fmtMetric(e.New), "-", e.Status)
		default:
			fmt.Fprintf(&sb, "%-16s %-14s %14s %14s %+8.1f%%  %s\n",
				e.Experiment, e.Metric, fmtMetric(e.Old), fmtMetric(e.New), 100*e.Delta, e.Status)
		}
	}
	if shown == 0 {
		sb.WriteString("(no notable changes)\n")
	}
	fmt.Fprintf(&sb, "compared %d metrics: %d regressed, %d improved, %d missing, %d added\n",
		len(r.Entries), r.count(StatusRegressed), r.count(StatusImproved),
		r.count(StatusMissing), r.count(StatusAdded))
	return sb.String()
}

func fmtMetric(v float64) string {
	if v == 0 {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
