package perf

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// snapshotNameRe matches the committed trajectory files: BENCH_<n>.json.
var snapshotNameRe = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// LatestSnapshot returns the path and sequence number of the
// highest-numbered BENCH_<n>.json in dir; n is 0 with an empty path
// when none exist.
func LatestSnapshot(dir string) (path string, n int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := snapshotNameRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		k, err := strconv.Atoi(m[1])
		if err != nil || k <= n {
			continue
		}
		n, path = k, filepath.Join(dir, e.Name())
	}
	return path, n, nil
}

// NextSnapshotPath returns where `mntbench perfsnap` should write the
// next trajectory point: BENCH_<latest+1>.json in dir.
func NextSnapshotPath(dir string) (string, error) {
	_, n, err := LatestSnapshot(dir)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n+1)), nil
}

// Handler serves the latest BENCH_<n>.json under dir at /debug/perf —
// the live view of the repository's most recent committed performance
// snapshot. 404 when the directory holds none.
func Handler(dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path, n, err := LatestSnapshot(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if path == "" {
			http.Error(w, "no BENCH_<n>.json snapshot found; run `mntbench perfsnap`", http.StatusNotFound)
			return
		}
		data, err := os.ReadFile(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if _, err := Unmarshal(data); err != nil {
			http.Error(w, fmt.Sprintf("%s: %v", path, err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Perf-Snapshot", strconv.Itoa(n))
		_, _ = w.Write(data)
	})
}
