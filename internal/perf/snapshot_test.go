package perf

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testSnapshot builds a small valid snapshot.
func testSnapshot() *Snapshot {
	return &Snapshot{
		Schema:    SchemaVersion,
		CreatedAt: "2026-08-08T12:00:00Z",
		BenchTime: "1x",
		Env: Env{
			GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
			NumCPU: 8, Module: "(devel)",
		},
		Results: []Result{
			{
				ID: "E1", Name: "TableIQCAOne", Iterations: 3,
				NsPerOp: 1.25e9, AllocsPerOp: 1000, BytesPerOp: 500000,
				Metrics: map[string]float64{"tiles-total": 4242, "ΔA-mean-%": -4.2},
				Runtime: RuntimeDelta{HeapLiveBytes: 1 << 20, Goroutines: 4, AllocBytesDelta: 123},
			},
			{
				ID: "E6/mux21", Name: "OrthoScaling Trindade16/mux21", Iterations: 100,
				NsPerOp: 52000, AllocsPerOp: 210, BytesPerOp: 9000,
			},
		},
	}
}

// TestSnapshotRoundTrip pins the byte-stability contract: a committed
// BENCH_<n>.json re-read and re-marshaled must not churn.
func TestSnapshotRoundTrip(t *testing.T) {
	first, err := testSnapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Unmarshal(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := parsed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("re-marshal is not byte-stable:\n--- first\n%s--- second\n%s", first, second)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Error("snapshot JSON lacks trailing newline")
	}
}

// TestMarshalSortsResults ensures unordered results are canonicalized.
func TestMarshalSortsResults(t *testing.T) {
	s := testSnapshot()
	s.Results[0], s.Results[1] = s.Results[1], s.Results[0]
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Results[0].ID != "E1" {
		t.Errorf("results not sorted: first ID = %q", parsed.Results[0].ID)
	}
}

// TestFingerprintDeterminism: the environment stamp is identical across
// calls in one process.
func TestFingerprintDeterminism(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fingerprint not deterministic:\n%+v\n%+v", a, b)
	}
	if a.GoVersion == "" || a.GOOS == "" || a.GOARCH == "" || a.NumCPU <= 0 || a.Module == "" {
		t.Errorf("incomplete fingerprint: %+v", a)
	}
	if !strings.Contains(a.String(), a.GOOS+"/"+a.GOARCH) {
		t.Errorf("Env.String() = %q misses platform", a.String())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		want   string
	}{
		{"bad schema", func(s *Snapshot) { s.Schema = 99 }, "schema"},
		{"empty env", func(s *Snapshot) { s.Env.GoVersion = "" }, "fingerprint"},
		{"no cpus", func(s *Snapshot) { s.Env.NumCPU = 0 }, "num_cpu"},
		{"no results", func(s *Snapshot) { s.Results = nil }, "no results"},
		{"dup id", func(s *Snapshot) { s.Results[1].ID = "E1" }, "sorted"},
		{"zero iters", func(s *Snapshot) { s.Results[0].Iterations = 0 }, "iterations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSnapshot()
			tc.mutate(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCollectSynthetic runs the harness over synthetic experiments:
// custom metrics survive, failures are recorded without aborting, and
// the assembled snapshot validates and round-trips.
func TestCollectSynthetic(t *testing.T) {
	var sink int
	exps := []Experiment{
		{ID: "T2", Name: "failing", Bench: func(_ context.Context, b *testing.B) { b.Fatal("boom") }},
		{ID: "T1", Name: "tiny", Bench: func(_ context.Context, b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += i
			}
			b.ReportMetric(42, "answer")
		}},
	}
	var progress []string
	s, err := Collect(context.Background(), exps, Options{
		BenchTime: "1x",
		Now:       time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Progress:  func(line string) { progress = append(progress, line) },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sink
	if len(s.Results) != 2 || s.Results[0].ID != "T1" || s.Results[1].ID != "T2" {
		t.Fatalf("results = %+v", s.Results)
	}
	ok, failed := s.Results[0], s.Results[1]
	if ok.Iterations < 1 || ok.Metrics["answer"] != 42 {
		t.Errorf("T1 = %+v", ok)
	}
	if failed.Error == "" {
		t.Errorf("T2 should carry an error: %+v", failed)
	}
	if len(progress) != 2 {
		t.Errorf("progress lines = %v", progress)
	}
	if s.CreatedAt != "2026-08-08T12:00:00Z" {
		t.Errorf("CreatedAt = %q", s.CreatedAt)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data); err != nil {
		t.Errorf("collected snapshot does not round-trip: %v", err)
	}
	if !strings.Contains(s.Summary(), "T1") || !strings.Contains(s.Summary(), "FAILED") {
		t.Errorf("summary:\n%s", s.Summary())
	}
}

func TestCollectFilters(t *testing.T) {
	exps := []Experiment{
		{ID: "E6/mux21", Name: "a", Bench: func(context.Context, *testing.B) {}},
		{ID: "E7", Name: "b", Bench: func(context.Context, *testing.B) {}},
	}
	s, err := Collect(context.Background(), exps, Options{BenchTime: "1x", Only: "E6"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 1 || s.Results[0].ID != "E6/mux21" {
		t.Errorf("filter kept %+v", s.Results)
	}
	if _, err := Collect(context.Background(), exps, Options{BenchTime: "1x", Only: "nope"}); err == nil {
		t.Error("empty selection should error")
	}
}
