package perf

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// Experiment is one callable benchmark body. The suite package exports
// the repository's E1–E7 set; tests register synthetic ones. The
// context is the caller's (it carries the obs registry and logger, per
// the ctx-first convention) — bodies thread it into the pipeline.
type Experiment struct {
	ID    string // stable snapshot key, e.g. "E1" or "E6/mux21"
	Name  string // human-readable name, e.g. "TableIQCAOne"
	Bench func(context.Context, *testing.B)
}

// Options configures a Collect run.
type Options struct {
	// BenchTime is the testing benchtime each experiment runs under
	// ("1x", "100ms", "1s", ...). Empty keeps the testing default (1s).
	BenchTime string
	// Only restricts the run to experiments whose ID equals or has one
	// of these comma-separated values as a prefix ("E6" matches
	// "E6/mux21"). Empty runs everything.
	Only string
	// ProfileDir, when non-empty, receives a CPU and a heap profile per
	// experiment (<id>.cpu.pprof, <id>.heap.pprof; "/" in IDs becomes "_").
	ProfileDir string
	// Progress, when non-nil, receives one status line per experiment.
	Progress func(string)
	// Now stamps the snapshot's CreatedAt; zero leaves it empty (used by
	// tests that need byte-identical output).
	Now time.Time
}

// benchInit makes the testing package's benchmark flags available in a
// non-test binary, exactly once.
var benchInit sync.Once

// setBenchTime routes Options.BenchTime into the testing package. The
// testing flags live on flag.CommandLine; mntbench subcommands parse
// their own FlagSets, so registering them is collision-free.
func setBenchTime(v string) error {
	benchInit.Do(testing.Init)
	if v == "" {
		return nil
	}
	if flag.Lookup("test.benchtime") == nil {
		return fmt.Errorf("perf: testing flags unavailable")
	}
	if err := flag.Set("test.benchtime", v); err != nil {
		return fmt.Errorf("perf: invalid benchtime %q: %w", v, err)
	}
	return nil
}

// matchOnly reports whether an experiment ID is selected by the Only
// filter.
func matchOnly(only, id string) bool {
	if only == "" {
		return true
	}
	for _, want := range strings.Split(only, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if id == want || strings.HasPrefix(id, want+"/") {
			return true
		}
	}
	return false
}

// Collect runs the selected experiments through testing.Benchmark,
// sampling Go runtime telemetry around each, and assembles the
// snapshot. Experiments that fail (b.Fatal/b.Error) are recorded with
// an error instead of aborting the suite; Collect itself errors only on
// setup problems (bad benchtime, unwritable profile dir, empty
// selection).
func Collect(ctx context.Context, exps []Experiment, opts Options) (*Snapshot, error) {
	if err := setBenchTime(opts.BenchTime); err != nil {
		return nil, err
	}
	if opts.ProfileDir != "" {
		if err := os.MkdirAll(opts.ProfileDir, 0o755); err != nil {
			return nil, fmt.Errorf("perf: profile dir: %w", err)
		}
	}
	s := &Snapshot{
		Schema:    SchemaVersion,
		BenchTime: opts.BenchTime,
		Env:       Fingerprint(),
	}
	if !opts.Now.IsZero() {
		s.CreatedAt = opts.Now.UTC().Format(time.RFC3339)
	}
	ran := 0
	for _, e := range exps {
		if !matchOnly(opts.Only, e.ID) {
			continue
		}
		ran++
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("running %s (%s)", e.ID, e.Name))
		}
		s.Results = append(s.Results, runExperiment(ctx, e, opts.ProfileDir))
	}
	if ran == 0 {
		return nil, fmt.Errorf("perf: no experiments match %q", opts.Only)
	}
	sort.Slice(s.Results, func(i, j int) bool { return s.Results[i].ID < s.Results[j].ID })
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// runExperiment measures one experiment, bracketing it with runtime
// telemetry reads and optional profiles.
func runExperiment(ctx context.Context, e Experiment, profileDir string) Result {
	res := Result{ID: e.ID, Name: e.Name}
	var cpuProfile *os.File
	if profileDir != "" {
		f, err := os.Create(profilePath(profileDir, e.ID, "cpu"))
		if err == nil && pprof.StartCPUProfile(f) == nil {
			cpuProfile = f
		} else if f != nil {
			f.Close()
		}
	}
	before := obs.ReadRuntimeStats()
	r := testing.Benchmark(func(b *testing.B) { e.Bench(ctx, b) })
	after := obs.ReadRuntimeStats()
	if cpuProfile != nil {
		pprof.StopCPUProfile()
		cpuProfile.Close()
	}
	if profileDir != "" {
		if f, err := os.Create(profilePath(profileDir, e.ID, "heap")); err == nil {
			_ = pprof.WriteHeapProfile(f) // best-effort; the measurement stands without it
			f.Close()
		}
	}
	if r.N == 0 {
		// testing.Benchmark returns a zero result when the body failed.
		res.Error = "benchmark failed (b.Fatal or b.Error); run `go test -bench` for details"
		return res
	}
	res.Iterations = r.N
	res.NsPerOp = float64(r.NsPerOp())
	res.AllocsPerOp = r.AllocsPerOp()
	res.BytesPerOp = r.AllocedBytesPerOp()
	if len(r.Extra) > 0 {
		res.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Metrics[k] = v
		}
	}
	res.Runtime = RuntimeDelta{
		HeapLiveBytes:   after.HeapLiveBytes,
		Goroutines:      after.Goroutines,
		AllocBytesDelta: after.HeapAllocsBytes - before.HeapAllocsBytes,
		GCCyclesDelta:   after.GCCycles - before.GCCycles,
		GCPauseDeltaSec: max(0, after.GCPauseSeconds-before.GCPauseSeconds),
		SchedLatencyP99: after.SchedLatencyP99,
	}
	return res
}

func profilePath(dir, id, kind string) string {
	return filepath.Join(dir, strings.ReplaceAll(id, "/", "_")+"."+kind+".pprof")
}
