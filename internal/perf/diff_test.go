package perf

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the perfdiff golden outputs")

func loadSnapshot(t *testing.T, name string) *Snapshot {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "diff", name))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return s
}

// diffThresholds are the fixture thresholds: defaults plus the
// throughput metric guarded in the downward direction.
func diffThresholds(t *testing.T) Thresholds {
	t.Helper()
	th, err := ParseThresholds("flows/s=-0.25")
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "diff", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/perf -update-golden` to create)", err)
	}
	if string(want) != got {
		t.Errorf("%s mismatch:\n--- want\n%s--- got\n%s", name, want, got)
	}
}

func TestDiffRegression(t *testing.T) {
	old := loadSnapshot(t, "old.json")
	rep := Diff(old, loadSnapshot(t, "new_regression.json"), diffThresholds(t))
	if !rep.Failed() {
		t.Fatal("regression fixture did not fail the diff")
	}
	var regressed []string
	for _, e := range rep.Entries {
		if e.Status == StatusRegressed {
			regressed = append(regressed, e.Experiment+":"+e.Metric)
		}
	}
	// E1 wall time +50% (> 30%) and flows/s -33% (< -25%); the +0.5%
	// allocs and +2% bytes stay inside their thresholds, as does E4's
	// +2% wall time.
	want := []string{"E1:flows/s", "E1:ns_per_op"}
	if strings.Join(regressed, " ") != strings.Join(want, " ") {
		t.Errorf("regressed = %v, want %v", regressed, want)
	}
	checkGolden(t, "golden_regression.txt", rep.Text(false))
}

func TestDiffImprovement(t *testing.T) {
	old := loadSnapshot(t, "old.json")
	rep := Diff(old, loadSnapshot(t, "new_improvement.json"), diffThresholds(t))
	if rep.Failed() {
		t.Fatalf("improvement fixture failed the diff:\n%s", rep.Text(true))
	}
	improved := 0
	for _, e := range rep.Entries {
		if e.Status == StatusImproved {
			improved++
		}
	}
	if improved < 2 { // E1 ns_per_op -40%, flows/s +67%
		t.Errorf("improved entries = %d, want >= 2\n%s", improved, rep.Text(true))
	}
	checkGolden(t, "golden_improvement.txt", rep.Text(false))
}

func TestDiffMissing(t *testing.T) {
	old := loadSnapshot(t, "old.json")
	rep := Diff(old, loadSnapshot(t, "new_missing.json"), diffThresholds(t))
	if !rep.Failed() {
		t.Fatal("missing fixture did not fail the diff")
	}
	var missing []string
	for _, e := range rep.Entries {
		if e.Status == StatusMissing {
			missing = append(missing, e.Experiment+":"+e.Metric)
		}
	}
	// The whole E4 experiment and E1's tiles-total metric vanished.
	want := []string{"E1:tiles-total", "E4:*"}
	if strings.Join(missing, " ") != strings.Join(want, " ") {
		t.Errorf("missing = %v, want %v", missing, want)
	}
	checkGolden(t, "golden_missing.txt", rep.Text(false))
}

func TestDiffIdentical(t *testing.T) {
	old := loadSnapshot(t, "old.json")
	rep := Diff(old, loadSnapshot(t, "old.json"), nil)
	if rep.Failed() {
		t.Fatalf("identical snapshots failed:\n%s", rep.Text(true))
	}
	for _, e := range rep.Entries {
		if e.Status != StatusOK {
			t.Errorf("identical snapshots produced %s on %s:%s", e.Status, e.Experiment, e.Metric)
		}
	}
}

func TestParseThresholds(t *testing.T) {
	th, err := ParseThresholds("ns_per_op=0.5,flows/s=-0.2")
	if err != nil {
		t.Fatal(err)
	}
	if th[MetricNsPerOp] != 0.5 || th["flows/s"] != -0.2 {
		t.Errorf("parsed = %v", th)
	}
	if th[MetricAllocsPerOp] != DefaultThresholds()[MetricAllocsPerOp] {
		t.Error("defaults not preserved under overlay")
	}
	if none, err := ParseThresholds("none"); err != nil || len(none) != 0 {
		t.Errorf("none = %v, %v", none, err)
	}
	for _, bad := range []string{"ns_per_op", "ns_per_op=x", "ns_per_op=0"} {
		if _, err := ParseThresholds(bad); err == nil {
			t.Errorf("ParseThresholds(%q) accepted", bad)
		}
	}
}

func TestSnapshotHandler(t *testing.T) {
	dir := t.TempDir()
	srv := httptest.NewServer(Handler(dir))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/perf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty dir: status %d, want 404", resp.StatusCode)
	}

	for _, n := range []int{1, 2} {
		s := testSnapshot()
		s.CreatedAt = ""
		data, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		path, err := NextSnapshotPath(dir)
		if err != nil {
			t.Fatal(err)
		}
		if want := filepath.Join(dir, "BENCH_"+string(rune('0'+n))+".json"); path != want {
			t.Fatalf("NextSnapshotPath = %q, want %q", path, want)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/perf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Perf-Snapshot"); got != "2" {
		t.Errorf("served snapshot %s, want the latest (2)", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
}
