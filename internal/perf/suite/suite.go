// Package suite holds the callable bodies of the repository's E1–E7
// experiment benchmarks (see DESIGN.md, experiment index). The
// top-level bench_test.go wraps them as ordinary `go test -bench`
// benchmarks, and `mntbench perfsnap` runs the same bodies through
// testing.Benchmark to write BENCH_<n>.json trajectory snapshots — one
// implementation, two consumers, so the committed perf curve measures
// exactly what the benchmarks measure.
package suite

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/layout"
	"repro/internal/network"
	"repro/internal/perf"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/inord"
	"repro/internal/physical/ortho"
	"repro/internal/physical/postlayout"
	"repro/internal/route"
	"repro/internal/server"
)

// FullRun reports whether the large ISCAS85/EPFL circuits are in scope
// (slow: tens of minutes, several GB of memory).
func FullRun() bool { return os.Getenv("MNTBENCH_FULL") == "1" }

// TableBenches is the benchmark selection of the table experiments:
// the small suites by default, everything under MNTBENCH_FULL=1.
func TableBenches() []bench.Benchmark {
	var out []bench.Benchmark
	for _, bm := range bench.All() {
		if !FullRun() && bm.PubNodes > 120 {
			continue
		}
		out = append(out, bm)
	}
	return out
}

// TableLimits are the per-flow budgets the table experiments run under.
func TableLimits() core.Limits {
	return core.Limits{
		ExactTimeout: 2 * time.Second,
		NanoTimeout:  3 * time.Second,
		PLOTimeout:   10 * time.Second,
	}
}

// BenchTableI generates the Table I rows for one library and reports
// the aggregate area and mean ΔA (E1 for QCA ONE, E2 for Bestagon).
func BenchTableI(ctx context.Context, b *testing.B, lib *gatelib.Library) {
	benches := TableBenches()
	for i := 0; i < b.N; i++ {
		db := core.Generate(ctx, benches, lib, TableLimits(), nil)
		rows := db.TableI(benches, lib)
		if len(rows) == 0 {
			b.Fatal("no table rows")
		}
		totalArea, deltaSum := 0, 0.0
		for _, r := range rows {
			totalArea += r.Area
			deltaSum += r.DeltaA
		}
		b.ReportMetric(float64(totalArea), "tiles-total")
		b.ReportMetric(deltaSum/float64(len(rows)), "ΔA-mean-%")
		b.ReportMetric(float64(len(rows)), "functions")
	}
}

// BenchDeltaA measures the best-vs-baseline area improvement that MNT
// Bench's optimal tool combinations deliver (E3, the ΔA column).
func BenchDeltaA(ctx context.Context, b *testing.B) {
	benches := bench.BySet("Trindade16")
	for i := 0; i < b.N; i++ {
		db := core.Generate(ctx, benches, gatelib.QCAOne, TableLimits(), nil)
		improved, total := 0, 0
		worst := 0.0
		for _, bm := range benches {
			best := db.Best(bm.Set, bm.Name, gatelib.QCAOne)
			base := db.Baseline(bm.Set, bm.Name, gatelib.QCAOne)
			if best == nil || base == nil {
				continue
			}
			total++
			if best.Area < base.Area {
				improved++
			}
			d := (float64(best.Area) - float64(base.Area)) / float64(base.Area) * 100
			if d < worst {
				worst = d
			}
		}
		b.ReportMetric(float64(improved), "improved")
		b.ReportMetric(float64(total), "functions")
		b.ReportMetric(worst, "bestΔA-%")
	}
}

// BenchWebInterface exercises the Figure 1 web interface (E4): filtered
// catalogue queries and .fgl downloads against a live server. The setup
// campaign runs under a deterministic exact-search step budget (like
// the conformance selftest) instead of a wall-clock timeout, so the
// catalogue being served — and with it the measured bytes and
// allocations per request — does not drift when flow code gets faster
// or slower.
func BenchWebInterface(ctx context.Context, b *testing.B) {
	benches := bench.BySet("Trindade16")[:3]
	limits := TableLimits()
	limits.ExactSteps = 20000
	db := core.Generate(ctx, benches, gatelib.QCAOne, limits, nil)
	srv := httptest.NewServer(server.New(db))
	defer srv.Close()
	paths := []string{
		"/api/benchmarks",
		"/api/benchmarks?library=QCA+ONE&best=1",
		"/api/benchmarks?algorithm=ortho",
		"/api/filters",
		"/",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("%s: status %d", p, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// BenchRouterBestagon reproduces the §II claim that the best Bestagon
// flow for the EPFL router function needs a small fraction of the plain
// hexagonalization baseline's area (paper: 23.6% of [7]) (E5).
func BenchRouterBestagon(b *testing.B) {
	bm, err := bench.ByName("EPFL", "router")
	if err != nil {
		b.Fatal(err)
	}
	n := bm.Build()
	prep, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		baseCart, err := ortho.Place(prep, ortho.Options{})
		if err != nil {
			b.Fatal(err)
		}
		baseline, err := hexagonal.Map(baseCart)
		if err != nil {
			b.Fatal(err)
		}
		cart, err := ortho.Place(prep, ortho.Options{InputOrder: inord.BarycenterOrder(prep)})
		if err != nil {
			b.Fatal(err)
		}
		hex, err := hexagonal.Map(cart)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := postlayout.Optimize(hex, postlayout.Options{MaxPasses: 2, Timeout: 60 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(opt.Area()) / float64(baseline.Area()) * 100
		b.ReportMetric(float64(baseline.Area()), "baseline-tiles")
		b.ReportMetric(float64(opt.Area()), "optimized-tiles")
		b.ReportMetric(ratio, "area-%of-baseline")
	}
}

// OrthoCase is one circuit of the E6 scaling experiment.
type OrthoCase struct{ Set, Name string }

// OrthoCases returns the E6 circuit ladder: small through c432 by
// default, the giant circuits under full.
func OrthoCases(full bool) []OrthoCase {
	cases := []OrthoCase{
		{"Trindade16", "mux21"},
		{"Fontes18", "parity"},
		{"ISCAS85", "c432"},
	}
	if full {
		cases = append(cases, OrthoCase{"ISCAS85", "c5315"}, OrthoCase{"EPFL", "sin"})
	}
	return cases
}

// BenchOrthoCase measures ortho's runtime on one circuit (E6, the t
// column): the paper reports sub-second runtimes for the scalable flow
// on every benchmark.
func BenchOrthoCase(b *testing.B, c OrthoCase) {
	bm, err := bench.ByName(c.Set, c.Name)
	if err != nil {
		b.Fatal(err)
	}
	n := bm.Build()
	prep, err := gatelib.QCAOne.Prepare(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := ortho.Place(prep, ortho.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(l.Area()), "tiles")
	}
}

// BenchCampaign measures campaign scheduler throughput over the
// Trindade16 suite at the given worker count (E7) and returns the
// rendered Table I with the runtime column zeroed, so callers can
// assert worker-count determinism (timing is a measurement, not a
// result; everything else — areas, algorithms, schemes, ΔA — must match
// exactly).
func BenchCampaign(ctx context.Context, b *testing.B, workers int) string {
	benches := bench.BySet("Trindade16")
	limits := TableLimits()
	limits.Workers = workers
	limits.DiscardLayouts = true
	table := ""
	for i := 0; i < b.N; i++ {
		db := core.Generate(ctx, benches, gatelib.QCAOne, limits, nil)
		rows := db.TableI(benches, gatelib.QCAOne)
		if len(rows) != len(benches) {
			b.Fatalf("table rows = %d, want %d", len(rows), len(benches))
		}
		flows := len(db.Entries) + len(db.Failures)
		b.ReportMetric(float64(flows)/b.Elapsed().Seconds()*float64(b.N), "flows/s")
		for j := range rows {
			rows[j].RuntimeSec = 0
		}
		table = core.RenderTableI(rows, gatelib.QCAOne)
	}
	return table
}

// BenchExactMux21 measures the exact search on the paper's smallest
// showcase function (Table I reports < 1 s and area 12 for mux21).
func BenchExactMux21(ctx context.Context, b *testing.B) {
	bm, err := bench.ByName("Trindade16", "mux21")
	if err != nil {
		b.Fatal(err)
	}
	limits := core.Limits{ExactTimeout: 10 * time.Second}
	flow := core.Flow{Library: gatelib.QCAOne, Scheme: clocking.TwoDDWave, Algorithm: core.AlgoExact}
	for i := 0; i < b.N; i++ {
		e, err := core.RunFlow(ctx, bm, flow, limits)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(e.Area), "tiles")
	}
}

// simBenchNetwork builds the network the E9 simulation-throughput
// experiments run on (ISCAS85 c432: wide and deep enough that gate
// evaluation, not setup, dominates the measurement).
func simBenchNetwork(b *testing.B) *network.Network {
	bm, err := bench.ByName("ISCAS85", "c432")
	if err != nil {
		b.Fatal(err)
	}
	return bm.Build()
}

// BenchSimulateWords measures bit-parallel simulation throughput
// (E9/words): one SimulateWords call evaluates 64 input vectors, so the
// vectors_per_sec metric is directly comparable with E9/scalar.
func BenchSimulateWords(b *testing.B) {
	n := simBenchNetwork(b)
	words := make([]uint64, n.NumPIs())
	var x uint64 = 0x9E3779B97F4A7C15
	for i := range words {
		x = x*6364136223846793005 + 1442695040888963407
		words[i] = x
	}
	if _, err := n.SimulateWords(words); err != nil { // warm the compile cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.SimulateWords(words); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(64*b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
}

// BenchSimulateScalar measures the single-pattern Simulate path over the
// same 64-vector budget on the same network (E9/scalar). The ratio of
// the two vectors_per_sec metrics is the bit-parallel win.
func BenchSimulateScalar(b *testing.B) {
	n := simBenchNetwork(b)
	vecs := network.RandomVectors(n.NumPIs(), 64, 1)
	if _, err := n.Simulate(vecs[0]); err != nil { // warm the compile cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vecs {
			if _, err := n.Simulate(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(64*b.N)/b.Elapsed().Seconds(), "vectors_per_sec")
}

// BenchRouteExpansions measures raw A* search throughput on the
// flat-grid frontier (E10): a corner-to-corner query across an empty
// 32x32 2DDWave grid, reported in settled open-list entries per second.
func BenchRouteExpansions(b *testing.B) {
	l := layout.New("b", layout.Cartesian, clocking.TwoDDWave)
	l.MustPlace(layout.C(0, 0), layout.Tile{Fn: network.PI, Name: "a"})
	l.MustPlace(layout.C(31, 31), layout.Tile{Fn: network.PO, Name: "f"})
	opts := route.Options{MaxX: 31, MaxY: 31}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := route.RouteWithStats(l, layout.C(0, 0), layout.C(31, 31), opts)
		if err != nil {
			b.Fatal(err)
		}
		total += st.Expansions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "expansions_per_sec")
}

// Experiments returns the full E1–E7 suite as perfsnap experiments.
// Sub-benchmarked experiments are flattened into one experiment per
// case (E6/<circuit>; E7/serial and E7/parallel) so every snapshot row
// is a single comparable measurement. The extra ExactMux21 showcase
// rides along as E8.
func Experiments() []perf.Experiment {
	exps := []perf.Experiment{
		{ID: "E1", Name: "TableIQCAOne", Bench: func(ctx context.Context, b *testing.B) { BenchTableI(ctx, b, gatelib.QCAOne) }},
		{ID: "E2", Name: "TableIBestagon", Bench: func(ctx context.Context, b *testing.B) { BenchTableI(ctx, b, gatelib.Bestagon) }},
		{ID: "E3", Name: "DeltaA", Bench: BenchDeltaA},
		{ID: "E4", Name: "WebInterface", Bench: BenchWebInterface},
		{ID: "E5", Name: "RouterBestagon", Bench: func(_ context.Context, b *testing.B) { BenchRouterBestagon(b) }},
	}
	for _, c := range OrthoCases(FullRun()) {
		c := c
		exps = append(exps, perf.Experiment{
			ID:    "E6/" + c.Name,
			Name:  fmt.Sprintf("OrthoScaling %s/%s", c.Set, c.Name),
			Bench: func(_ context.Context, b *testing.B) { BenchOrthoCase(b, c) },
		})
	}
	exps = append(exps,
		perf.Experiment{ID: "E7/parallel", Name: fmt.Sprintf("Campaign workers=%d", runtime.NumCPU()),
			Bench: func(ctx context.Context, b *testing.B) { BenchCampaign(ctx, b, runtime.NumCPU()) }},
		perf.Experiment{ID: "E7/serial", Name: "Campaign workers=1",
			Bench: func(ctx context.Context, b *testing.B) { BenchCampaign(ctx, b, 1) }},
		perf.Experiment{ID: "E8", Name: "ExactMux21", Bench: BenchExactMux21},
		perf.Experiment{ID: "E9/words", Name: "SimulateWords c432",
			Bench: func(_ context.Context, b *testing.B) { BenchSimulateWords(b) }},
		perf.Experiment{ID: "E9/scalar", Name: "SimulateScalar c432",
			Bench: func(_ context.Context, b *testing.B) { BenchSimulateScalar(b) }},
		perf.Experiment{ID: "E10", Name: "RouteExpansions 32x32",
			Bench: func(_ context.Context, b *testing.B) { BenchRouteExpansions(b) }},
	)
	return exps
}
