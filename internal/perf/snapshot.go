// Package perf records the repository's performance trajectory. It runs
// the E1–E7 experiment suite programmatically (see the sibling suite
// package), collects wall time, allocations, custom benchmark metrics,
// and Go runtime telemetry into a schema-versioned, environment-stamped
// snapshot (BENCH_<n>.json), and diffs two snapshots against
// configurable regression thresholds. The snapshots are the seam that
// hot-path optimization PRs and CI assert against: a rework that claims
// a speedup commits the BENCH_<n>.json that proves it, and `mntbench
// perfdiff` turns an accidental slowdown into a nonzero exit.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
)

// SchemaVersion identifies the snapshot wire format. Bump it on any
// incompatible change to Snapshot and teach Validate the migration.
const SchemaVersion = 1

// Snapshot is one measured point on the repository's performance
// trajectory: every experiment's result plus the environment it ran in.
type Snapshot struct {
	Schema    int      `json:"schema"`
	CreatedAt string   `json:"created_at,omitempty"` // RFC 3339; informational, not fingerprinted
	BenchTime string   `json:"benchtime,omitempty"`  // testing benchtime the suite ran under
	Env       Env      `json:"env"`
	Results   []Result `json:"results"` // sorted by experiment ID
}

// Env is the environment fingerprint stamped into every snapshot.
// Snapshots are only comparable when their fingerprints are compatible
// (same GOOS/GOARCH at minimum); perfdiff prints both so a cross-machine
// comparison is visibly apples-to-oranges.
type Env struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Module    string      `json:"module_version"`
	VCS       obs.VCSInfo `json:"vcs"`
}

// Fingerprint captures the current environment. Deterministic: two
// calls in the same process return identical values. It shares the
// fingerprinting behind obs.Environment, so perf snapshots and journal
// campaign_start events stamp identical environments.
func Fingerprint() Env {
	e := obs.Environment()
	return Env{
		GoVersion: e.GoVersion,
		GOOS:      e.GOOS,
		GOARCH:    e.GOARCH,
		NumCPU:    e.NumCPU,
		Module:    e.Module,
		VCS:       e.VCS,
	}
}

// String renders the fingerprint as one line for report headers.
func (e Env) String() string {
	commit := e.VCS.Revision
	if commit == "" {
		commit = "unknown"
	} else if len(commit) > 12 {
		commit = commit[:12]
	}
	if e.VCS.Modified {
		commit += "+dirty"
	}
	return fmt.Sprintf("%s %s/%s cpu=%d module=%s commit=%s",
		e.GoVersion, e.GOOS, e.GOARCH, e.NumCPU, e.Module, commit)
}

// Result is one experiment's measurement.
type Result struct {
	ID          string             `json:"id"`   // experiment ID, e.g. "E1" or "E6/mux21"
	Name        string             `json:"name"` // human name, e.g. "TableIQCAOne"
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric values
	Runtime     RuntimeDelta       `json:"runtime"`
	Error       string             `json:"error,omitempty"` // non-empty when the experiment failed
}

// RuntimeDelta is the Go runtime telemetry sampled around one
// experiment: absolute readings after the run plus the deltas it
// caused.
type RuntimeDelta struct {
	HeapLiveBytes   uint64  `json:"heap_live_bytes"`           // after the run
	Goroutines      int64   `json:"goroutines"`                // after the run
	AllocBytesDelta uint64  `json:"alloc_bytes_delta"`         // heap bytes allocated by the run
	GCCyclesDelta   uint64  `json:"gc_cycles_delta"`           // GC cycles triggered by the run
	GCPauseDeltaSec float64 `json:"gc_pause_seconds_delta"`    // approximate pause time added
	SchedLatencyP99 float64 `json:"sched_latency_p99_seconds"` // approximate, after the run
}

// MetricKeys are the built-in per-experiment metrics every snapshot
// carries; custom benchmark metrics ride alongside under their
// b.ReportMetric names.
const (
	MetricNsPerOp     = "ns_per_op"
	MetricAllocsPerOp = "allocs_per_op"
	MetricBytesPerOp  = "bytes_per_op"
)

// builtinMetrics maps a built-in metric key to its value on a result.
func builtinMetrics(r Result) map[string]float64 {
	return map[string]float64{
		MetricNsPerOp:     r.NsPerOp,
		MetricAllocsPerOp: float64(r.AllocsPerOp),
		MetricBytesPerOp:  float64(r.BytesPerOp),
	}
}

// Marshal renders the snapshot as canonical JSON: two-space indent,
// sorted map keys (encoding/json sorts them by construction), trailing
// newline. Unmarshal → Marshal is byte-stable, which is what lets
// BENCH_<n>.json files live in version control without churn.
func (s *Snapshot) Marshal() ([]byte, error) {
	sort.Slice(s.Results, func(i, j int) bool { return s.Results[i].ID < s.Results[j].ID })
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Unmarshal parses a snapshot and validates it.
func Unmarshal(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: parsing snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the structural invariants of a snapshot: known
// schema, complete fingerprint, sorted unique experiment IDs, finite
// metric values.
func (s *Snapshot) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("perf: snapshot schema %d, this tool reads %d", s.Schema, SchemaVersion)
	}
	if s.Env.GoVersion == "" || s.Env.GOOS == "" || s.Env.GOARCH == "" {
		return fmt.Errorf("perf: snapshot env fingerprint incomplete: %+v", s.Env)
	}
	if s.Env.NumCPU <= 0 {
		return fmt.Errorf("perf: snapshot env num_cpu = %d", s.Env.NumCPU)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("perf: snapshot has no results")
	}
	prev := ""
	for _, r := range s.Results {
		if r.ID == "" {
			return fmt.Errorf("perf: result with empty experiment ID")
		}
		if r.ID <= prev {
			return fmt.Errorf("perf: results not sorted by unique ID at %q (previous %q)", r.ID, prev)
		}
		prev = r.ID
		if r.Error != "" {
			continue // failed experiments carry no meaningful numbers
		}
		if r.Iterations <= 0 {
			return fmt.Errorf("perf: %s: iterations = %d", r.ID, r.Iterations)
		}
		for k, v := range metricsOf(r) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("perf: %s: metric %s is %v", r.ID, k, v)
			}
		}
	}
	return nil
}

// metricsOf flattens a result into one metric map: built-ins plus the
// custom benchmark metrics.
func metricsOf(r Result) map[string]float64 {
	out := builtinMetrics(r)
	for k, v := range r.Metrics {
		out[k] = v
	}
	return out
}

// Summary renders a one-line-per-experiment table of a snapshot.
func (s *Snapshot) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "env: %s\n", s.Env.String())
	fmt.Fprintf(&sb, "%-16s %6s %14s %14s %12s\n", "experiment", "iters", "ns/op", "allocs/op", "B/op")
	for _, r := range s.Results {
		if r.Error != "" {
			fmt.Fprintf(&sb, "%-16s FAILED: %s\n", r.ID, r.Error)
			continue
		}
		fmt.Fprintf(&sb, "%-16s %6d %14.0f %14d %12d\n",
			r.ID, r.Iterations, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	return sb.String()
}
