package sidbsim

import (
	"strings"
	"testing"

	"repro/internal/export"
	"repro/internal/gatelib"
	"repro/internal/network"
	"repro/internal/physical/hexagonal"
	"repro/internal/physical/ortho"
)

func TestSingleDBIsNegative(t *testing.T) {
	sys, err := NewSystem([]DB{{0, 0, 0}}, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	gs, err := sys.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	// An isolated DB holds its electron under µ- = -0.32 eV.
	if gs.Charges[0] != -1 {
		t.Errorf("isolated DB charge = %d, want -1", gs.Charges[0])
	}
	if gs.EnergyEV != 0 {
		t.Errorf("single-charge energy = %v, want 0", gs.EnergyEV)
	}
}

func TestClosePairSharesOneElectron(t *testing.T) {
	// Two DBs one lattice site apart: Coulomb repulsion (~0.9 eV at
	// 0.384 nm) far exceeds |µ-|, so both cannot stay negative.
	sys, err := NewSystem([]DB{{0, 0, 0}, {1, 0, 0}}, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	gs, err := sys.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	negative := 0
	for _, q := range gs.Charges {
		if q == -1 {
			negative++
		}
	}
	if negative == 2 {
		t.Errorf("adjacent DBs both negative: %v", gs.Charges)
	}
}

func TestFarPairBothNegative(t *testing.T) {
	// 20 dimer rows apart (~15 nm): screened interaction is negligible.
	sys, err := NewSystem([]DB{{0, 0, 0}, {0, 20, 0}}, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	gs, err := sys.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range gs.Charges {
		if q != -1 {
			t.Errorf("distant DB %d charge = %d, want -1", i, q)
		}
	}
}

func TestCriticalSeparation(t *testing.T) {
	rows := CriticalSeparation(Defaults())
	if rows <= 0 || rows > 20 {
		t.Fatalf("critical separation = %d rows, expected a small positive count", rows)
	}
	// Just below the critical separation the pair must not be doubly
	// negative (consistency with the definition).
	if rows > 1 {
		sys, _ := NewSystem([]DB{{0, 0, 0}, {0, rows - 1, 0}}, Defaults())
		gs, err := sys.GroundState()
		if err != nil {
			t.Fatal(err)
		}
		negative := 0
		for _, q := range gs.Charges {
			if q == -1 {
				negative++
			}
		}
		if negative == 2 {
			t.Errorf("pair at %d rows already doubly negative", rows-1)
		}
	}
}

func TestExcitedStatesSorted(t *testing.T) {
	dbs := []DB{{0, 0, 0}, {0, 6, 0}, {6, 3, 0}, {12, 0, 0}}
	sys, err := NewSystem(dbs, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	states, err := sys.ExcitedStates(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatal("no stable states")
	}
	for i := 1; i < len(states); i++ {
		if states[i].EnergyEV < states[i-1].EnergyEV {
			t.Fatal("states not sorted by energy")
		}
	}
	gs, err := sys.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if states[0].EnergyEV != gs.EnergyEV {
		t.Errorf("first excited-state energy %v != ground state %v", states[0].EnergyEV, gs.EnergyEV)
	}
	if limited, _ := sys.ExcitedStates(2); len(limited) > 2 {
		t.Error("limit ignored")
	}
}

func TestEnergyNonNegative(t *testing.T) {
	dbs := []DB{{0, 0, 0}, {0, 8, 0}, {8, 4, 1}}
	sys, err := NewSystem(dbs, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	charges := []Charge{-1, -1, -1}
	if e := sys.Energy(charges); e <= 0 {
		t.Errorf("repulsive energy = %v, want > 0", e)
	}
	if e := sys.Energy([]Charge{0, 0, 0}); e != 0 {
		t.Errorf("empty energy = %v", e)
	}
}

func TestScreeningReducesInteraction(t *testing.T) {
	strong := Params{MuMinus: -0.32, EpsilonR: 5.6, LambdaTF: 100}
	weak := Params{MuMinus: -0.32, EpsilonR: 5.6, LambdaTF: 1}
	mk := func(p Params) float64 {
		sys, err := NewSystem([]DB{{0, 0, 0}, {0, 4, 0}}, p)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Energy([]Charge{-1, -1})
	}
	if mk(weak) >= mk(strong) {
		t.Error("stronger screening must reduce the interaction energy")
	}
}

func TestRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewSystem(nil, Defaults()); err == nil {
		t.Error("accepted empty system")
	}
	if _, err := NewSystem([]DB{{1, 2, 0}, {1, 2, 0}}, Defaults()); err == nil {
		t.Error("accepted duplicate DBs")
	}
}

func TestTooLargeForExhaustive(t *testing.T) {
	var dbs []DB
	for i := 0; i < MaxExhaustiveDBs+1; i++ {
		dbs = append(dbs, DB{N: i * 4, M: 0, L: 0})
	}
	sys, err := NewSystem(dbs, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.GroundState(); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Errorf("err = %v", err)
	}
}

// TestBestagonTileGroundState feeds one exported Bestagon gate tile
// through the .sqd round trip into the charge simulator: the dot
// arrangement must admit a population-stable ground state.
func TestBestagonTileGroundState(t *testing.T) {
	n := network.New("and2")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO(n.AddAnd(a, b), "f")
	prep, err := gatelib.Bestagon.Prepare(n)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := ortho.Place(prep, ortho.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := hexagonal.Map(cart)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := gatelib.ExpandBestagon(hex)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := export.WriteSQD(&sb, cells); err != nil {
		t.Fatal(err)
	}
	dots, err := export.ReadSQDDots(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dots) == 0 {
		t.Fatal("no dots")
	}
	// Take the first tile's worth of dots (bounded for the exhaustive
	// search) and find its ground state.
	limit := len(dots)
	if limit > 16 {
		limit = 16
	}
	var dbs []DB
	for _, d := range dots[:limit] {
		dbs = append(dbs, DB{N: d[0], M: d[1], L: d[2]})
	}
	sys, err := NewSystem(dbs, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	gs, err := sys.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if !gs.Stable {
		t.Fatal("ground state not stable")
	}
}

func TestOccupationProbabilityMonotone(t *testing.T) {
	// A system with a near-degenerate excited state: occupation of the
	// ground state decreases with temperature.
	dbs := []DB{{0, 0, 0}, {0, 5, 0}, {10, 0, 0}, {10, 5, 1}}
	sys, err := NewSystem(dbs, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 1.1
	for _, temp := range []float64{1, 50, 100, 300, 600} {
		p, err := sys.OccupationProbability(temp)
		if err != nil {
			t.Fatal(err)
		}
		if p <= 0 || p > 1 {
			t.Fatalf("P(%vK) = %v out of range", temp, p)
		}
		if p > prev+1e-9 {
			t.Fatalf("occupation increased with temperature: %v -> %v at %vK", prev, p, temp)
		}
		prev = p
	}
	if _, err := sys.OccupationProbability(-1); err == nil {
		t.Error("accepted negative temperature")
	}
}

func TestCriticalTemperature(t *testing.T) {
	// A single DB has only one stable state: ground occupation is 1 at
	// any temperature, so the critical temperature caps at maxK.
	single, err := NewSystem([]DB{{0, 0, 0}}, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := single.CriticalTemperature(0.99, 400)
	if err != nil {
		t.Fatal(err)
	}
	if ct != 400 {
		t.Errorf("isolated DB critical temperature = %v, want 400 (cap)", ct)
	}

	// A frustrated pair with close excited states degrades at finite T.
	pair, err := NewSystem([]DB{{0, 0, 0}, {0, 7, 0}}, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := pair.CriticalTemperature(0.9999, 400)
	if err != nil {
		t.Fatal(err)
	}
	if ct2 <= 0 || ct2 > 400 {
		t.Errorf("pair critical temperature = %v", ct2)
	}
	if _, err := pair.CriticalTemperature(1.5, 400); err == nil {
		t.Error("accepted confidence > 1")
	}
	if _, err := pair.CriticalTemperature(0.9, 0.5); err == nil {
		t.Error("accepted maxK < 1")
	}
}
