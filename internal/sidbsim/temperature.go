package sidbsim

import (
	"fmt"
	"math"
)

// Boltzmann constant in eV/K.
const BoltzmannEVK = 8.617333262e-5

// OccupationProbability returns the Boltzmann probability that the
// system occupies its ground state at temperature T (Kelvin), computed
// over all population-stable configurations.
func (s *System) OccupationProbability(tempK float64) (float64, error) {
	if tempK <= 0 {
		return 0, fmt.Errorf("sidbsim: temperature must be positive, got %v", tempK)
	}
	states, err := s.ExcitedStates(0)
	if err != nil {
		return 0, err
	}
	if len(states) == 0 {
		return 0, fmt.Errorf("sidbsim: no stable states")
	}
	e0 := states[0].EnergyEV
	kt := BoltzmannEVK * tempK
	z := 0.0
	p0 := 0.0
	for _, st := range states {
		w := math.Exp(-(st.EnergyEV - e0) / kt)
		z += w
		// Degenerate ground states all count as "ground".
		if st.EnergyEV-e0 < 1e-9 {
			p0 += w
		}
	}
	return p0 / z, nil
}

// CriticalTemperature returns the highest temperature (in Kelvin, within
// [1, maxK]) at which the ground state is occupied with probability at
// least confidence (e.g. 0.99) — the standard SiDB gate robustness
// figure. It returns maxK when the ground state survives the entire
// range and 0 when even 1 K fails.
func (s *System) CriticalTemperature(confidence, maxK float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("sidbsim: confidence must be in (0,1), got %v", confidence)
	}
	if maxK < 1 {
		return 0, fmt.Errorf("sidbsim: maxK must be >= 1, got %v", maxK)
	}
	ok := func(t float64) (bool, error) {
		p, err := s.OccupationProbability(t)
		if err != nil {
			return false, err
		}
		return p >= confidence, nil
	}
	if pass, err := ok(1); err != nil {
		return 0, err
	} else if !pass {
		return 0, nil
	}
	if pass, err := ok(maxK); err != nil {
		return 0, err
	} else if pass {
		return maxK, nil
	}
	lo, hi := 1.0, maxK // lo passes, hi fails
	for hi-lo > 0.5 {
		mid := (lo + hi) / 2
		pass, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if pass {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
