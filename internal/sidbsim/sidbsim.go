// Package sidbsim computes charge-state ground states of silicon
// dangling bond (SiDB) arrangements — the physical layer beneath the
// Bestagon gate library — with the electrostatic model used by SiQAD and
// fiction's exact ground-state search (ExGS):
//
//   - every dangling bond holds charge 0 or -1 (DB- / DB0),
//   - charges interact through a screened Coulomb potential
//     V(r) = k/r · exp(-r/λ_tf),
//   - a configuration is physically valid if it is population stable
//     (each site's electrochemical potential justifies its charge state
//     against the bulk µ-) and its total energy is minimal.
//
// The exhaustive search enumerates all 2^n charge configurations and is
// exact for the small arrangements that make up individual gates (n up
// to ~24). For invariants across larger designs use the per-gate
// decomposition of the layout.
package sidbsim

import (
	"fmt"
	"math"
	"sort"
)

// Physical constants (SiQAD defaults for H-Si(100)-2x1).
const (
	// LatticeA is the surface lattice pitch along a dimer row (nm).
	LatticeA = 0.384
	// LatticeB is the pitch between dimer rows (nm).
	LatticeB = 0.768
	// LatticeDimer is the intra-dimer spacing (nm).
	LatticeDimer = 0.225
)

// Params configures the physical model.
type Params struct {
	// MuMinus is the bulk electrochemical potential µ- in eV
	// (SiQAD default -0.32: how favorable a DB- charge is).
	MuMinus float64
	// EpsilonR is the relative permittivity (default 5.6).
	EpsilonR float64
	// LambdaTF is the Thomas-Fermi screening length in nm (default 5.0).
	LambdaTF float64
}

// Defaults returns the SiQAD default physical parameters.
func Defaults() Params {
	return Params{MuMinus: -0.32, EpsilonR: 5.6, LambdaTF: 5.0}
}

func (p Params) withDefaults() Params {
	if p.MuMinus == 0 {
		p.MuMinus = -0.32
	}
	if p.EpsilonR == 0 {
		p.EpsilonR = 5.6
	}
	if p.LambdaTF == 0 {
		p.LambdaTF = 5.0
	}
	return p
}

// DB is one dangling bond at H-Si(100)-2x1 lattice coordinates:
// n = dimer column, m = dimer row pair, l = 0/1 position in the dimer.
type DB struct {
	N, M, L int
}

// PositionNM returns the DB's physical surface position in nanometres.
func (d DB) PositionNM() (x, y float64) {
	x = float64(d.N) * LatticeA
	y = float64(d.M)*LatticeB + float64(d.L)*LatticeDimer
	return x, y
}

// Charge is a site's charge state: 0 (DB0) or -1 (DB-).
type Charge int8

// Configuration is one assignment of charges to all DBs.
type Configuration struct {
	Charges []Charge
	// EnergyEV is the total electrostatic energy in eV (pairwise
	// repulsion of the negative charges).
	EnergyEV float64
	// Stable reports population stability under µ-.
	Stable bool
}

// System is a set of dangling bonds with a physical model.
type System struct {
	dbs    []DB
	params Params
	// vij[i][j] is the screened Coulomb potential between sites (eV per
	// electron pair).
	vij [][]float64
}

// MaxExhaustiveDBs bounds the exhaustive ground-state search.
const MaxExhaustiveDBs = 24

// NewSystem builds a simulation system for the given dangling bonds.
func NewSystem(dbs []DB, params Params) (*System, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("sidbsim: no dangling bonds")
	}
	seen := make(map[DB]bool)
	for _, d := range dbs {
		if seen[d] {
			return nil, fmt.Errorf("sidbsim: duplicate dangling bond at %+v", d)
		}
		seen[d] = true
	}
	s := &System{dbs: append([]DB(nil), dbs...), params: params.withDefaults()}
	s.buildPotentials()
	return s, nil
}

// kEVnm is e^2/(4 pi eps0) in eV*nm.
const kEVnm = 1.43996

func (s *System) buildPotentials() {
	n := len(s.dbs)
	s.vij = make([][]float64, n)
	for i := range s.vij {
		s.vij[i] = make([]float64, n)
	}
	k := kEVnm / s.params.EpsilonR
	for i := 0; i < n; i++ {
		xi, yi := s.dbs[i].PositionNM()
		for j := i + 1; j < n; j++ {
			xj, yj := s.dbs[j].PositionNM()
			r := math.Hypot(xi-xj, yi-yj)
			v := k / r * math.Exp(-r/s.params.LambdaTF)
			s.vij[i][j] = v
			s.vij[j][i] = v
		}
	}
}

// NumDBs returns the number of dangling bonds.
func (s *System) NumDBs() int { return len(s.dbs) }

// localPotential returns the electrostatic potential at site i caused by
// the other sites' charges (eV per unit electron charge; positive when
// surrounded by electrons).
func (s *System) localPotential(charges []Charge, i int) float64 {
	v := 0.0
	for j, q := range charges {
		if j == i || q == 0 {
			continue
		}
		v += s.vij[i][j]
	}
	return v
}

// Energy computes the total pairwise electrostatic energy of a
// configuration in eV.
func (s *System) Energy(charges []Charge) float64 {
	e := 0.0
	for i := range charges {
		if charges[i] == 0 {
			continue
		}
		for j := i + 1; j < len(charges); j++ {
			if charges[j] == 0 {
				continue
			}
			e += s.vij[i][j]
		}
	}
	return e
}

// PopulationStable checks the SiQAD population-stability criterion:
// a site may be DB- only if its electrochemical potential µ- + V_local
// stays <= 0 (it is energetically favorable to hold the electron), and
// DB0 only if releasing the electron is favorable (µ- + V_local >= 0).
func (s *System) PopulationStable(charges []Charge) bool {
	for i, q := range charges {
		v := s.localPotential(charges, i)
		mu := s.params.MuMinus + v
		if q == -1 && mu > 0 {
			return false
		}
		if q == 0 && mu < 0 {
			return false
		}
	}
	return true
}

// GroundState exhaustively enumerates charge configurations and returns
// the minimum-energy population-stable configuration. It fails when no
// stable configuration exists (which physics does not permit for
// sensible parameters) or when the system is too large.
func (s *System) GroundState() (Configuration, error) {
	n := len(s.dbs)
	if n > MaxExhaustiveDBs {
		return Configuration{}, fmt.Errorf("sidbsim: %d DBs exceed the exhaustive limit %d", n, MaxExhaustiveDBs)
	}
	best := Configuration{EnergyEV: math.Inf(1)}
	charges := make([]Charge, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				charges[i] = -1
			} else {
				charges[i] = 0
			}
		}
		if !s.PopulationStable(charges) {
			continue
		}
		e := s.Energy(charges)
		if e < best.EnergyEV {
			best = Configuration{
				Charges:  append([]Charge(nil), charges...),
				EnergyEV: e,
				Stable:   true,
			}
		}
	}
	if !best.Stable {
		return Configuration{}, fmt.Errorf("sidbsim: no population-stable configuration found")
	}
	return best, nil
}

// ExcitedStates returns all population-stable configurations sorted by
// energy (the ground state first), up to the given limit.
func (s *System) ExcitedStates(limit int) ([]Configuration, error) {
	n := len(s.dbs)
	if n > MaxExhaustiveDBs {
		return nil, fmt.Errorf("sidbsim: %d DBs exceed the exhaustive limit %d", n, MaxExhaustiveDBs)
	}
	var out []Configuration
	charges := make([]Charge, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				charges[i] = -1
			} else {
				charges[i] = 0
			}
		}
		if !s.PopulationStable(charges) {
			continue
		}
		out = append(out, Configuration{
			Charges:  append([]Charge(nil), charges...),
			EnergyEV: s.Energy(charges),
			Stable:   true,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].EnergyEV < out[j].EnergyEV })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// CriticalSeparation returns the distance (in dimer rows) below which
// two isolated DBs stop both holding electrons under the given
// parameters — a characteristic length of the technology used when
// validating gate geometries.
func CriticalSeparation(params Params) int {
	for rows := 1; rows < 64; rows++ {
		dbs := []DB{{0, 0, 0}, {0, rows, 0}}
		sys, err := NewSystem(dbs, params)
		if err != nil {
			return -1
		}
		gs, err := sys.GroundState()
		if err != nil {
			return -1
		}
		negative := 0
		for _, q := range gs.Charges {
			if q == -1 {
				negative++
			}
		}
		if negative == 2 {
			return rows
		}
	}
	return -1
}
